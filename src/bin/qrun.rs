//! `qrun` — assemble and execute a timed-QASM program on a configurable
//! QuAPE machine, printing the operation timeline and run statistics.
//!
//! ```sh
//! qrun program.qasm [--config scalar|superscalar8|multiprocessor=N]
//!                   [--seed N] [--model zero|one|coin|p=0.25]
//!                   [--timeline] [--ces] [--listing] [--limit CYCLES]
//!                   [--emit-object out.qobj]
//! qrun program.qobj ...      # binary containers load directly
//! ```

use quape::core::{render_timeline, TimelineOptions};
use quape::prelude::*;
use std::process::ExitCode;

struct Args {
    path: String,
    config: QuapeConfig,
    model: MeasurementModel,
    timeline: bool,
    ces: bool,
    listing: bool,
    limit: u64,
    emit_object: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut config = QuapeConfig::superscalar(8);
    let mut model = MeasurementModel::Bernoulli { p_one: 0.5 };
    let mut timeline = false;
    let mut ces = false;
    let mut listing = false;
    let mut limit = 10_000_000u64;
    let mut seed = 1u64;
    let mut emit_object = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => {
                let v = args.next().ok_or("--config needs a value")?;
                config = match v.as_str() {
                    "scalar" => QuapeConfig::scalar_baseline(),
                    "superscalar8" => QuapeConfig::superscalar(8),
                    other => match other.strip_prefix("multiprocessor=") {
                        Some(n) => QuapeConfig::multiprocessor(
                            n.parse()
                                .map_err(|_| format!("bad processor count `{n}`"))?,
                        ),
                        None => return Err(format!("unknown config `{other}`")),
                    },
                };
            }
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad seed".to_string())?;
            }
            "--model" => {
                let v = args.next().ok_or("--model needs a value")?;
                model = match v.as_str() {
                    "zero" => MeasurementModel::AlwaysZero,
                    "one" => MeasurementModel::AlwaysOne,
                    "coin" => MeasurementModel::Bernoulli { p_one: 0.5 },
                    other => match other.strip_prefix("p=") {
                        Some(p) => MeasurementModel::Bernoulli {
                            p_one: p.parse().map_err(|_| format!("bad probability `{p}`"))?,
                        },
                        None => return Err(format!("unknown model `{other}`")),
                    },
                };
            }
            "--timeline" => timeline = true,
            "--ces" => ces = true,
            "--listing" => listing = true,
            "--emit-object" => {
                emit_object = Some(args.next().ok_or("--emit-object needs a path")?);
            }
            "--limit" => {
                limit = args
                    .next()
                    .ok_or("--limit needs a value")?
                    .parse()
                    .map_err(|_| "bad cycle limit".to_string())?;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let path = path.ok_or("usage: qrun <program.qasm|program.qobj> [options]")?;
    Ok(Args {
        path,
        config: config.with_seed(seed),
        model,
        timeline,
        ces,
        listing,
        limit,
        emit_object,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("qrun: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = if args.path.ends_with(".qobj") {
        match std::fs::read(&args.path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| quape::isa::read_object(&bytes).map_err(|e| e.to_string()))
        {
            Ok(p) => p,
            Err(e) => {
                eprintln!("qrun: {}: {e}", args.path);
                return ExitCode::FAILURE;
            }
        }
    } else {
        let source = match std::fs::read_to_string(&args.path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("qrun: cannot read {}: {e}", args.path);
                return ExitCode::FAILURE;
            }
        };
        match assemble(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("qrun: {}: {e}", args.path);
                return ExitCode::FAILURE;
            }
        }
    };
    if let Some(out) = &args.emit_object {
        match quape::isa::write_object(&program) {
            Ok(bytes) => {
                if let Err(e) = std::fs::write(out, bytes) {
                    eprintln!("qrun: cannot write {out}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {out}");
            }
            Err(e) => {
                eprintln!("qrun: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.listing {
        print!("{}", program.listing());
    }
    println!(
        "{}: {} quantum + {} classical instructions, {} block(s)",
        args.path,
        program.quantum_count(),
        program.classical_count(),
        program.blocks().len().max(1)
    );
    let cfg = args.config;
    let qpu = BehavioralQpu::new(cfg.timings, args.model, cfg.seed);
    let machine = match Machine::new(cfg.clone(), program, Box::new(qpu)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("qrun: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = machine.run_with_limit(args.limit);
    println!(
        "stop: {:?} after {} cycles ({} ns); {} ops issued, {} measurement(s)",
        report.stop,
        report.cycles,
        report.execution_time_ns(),
        report.issued_count(),
        report.measurements.len()
    );
    println!(
        "timing: {} late issue(s), {} QPU violation(s), {} context switch(es)",
        report.stats.late_issues,
        report.violations.len(),
        report
            .stats
            .processors
            .iter()
            .map(|p| p.context_switches)
            .sum::<u64>()
    );
    for m in &report.measurements {
        println!(
            "  t = {:>6} ns  {} -> {}",
            m.time_ns,
            m.qubit,
            u8::from(m.value)
        );
    }
    if args.timeline {
        println!();
        print!("{}", render_timeline(&report, &TimelineOptions::default()));
    }
    if args.ces {
        println!();
        print!("{}", ces_report_paper(&report));
    }
    if matches!(report.stop, StopReason::Completed | StopReason::Halted) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
