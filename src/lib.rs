//! # quape — a full reproduction of the QuAPE quantum control microarchitecture
//!
//! This facade crate re-exports the whole stack built for the MICRO 2021
//! paper *"Exploiting Different Levels of Parallelism in the Quantum
//! Control Microarchitecture for Superconducting Qubits"* (Zhang, Xie
//! et al.):
//!
//! * [`isa`] — the timed-QASM instruction set (timing labels, auxiliary
//!   classical instructions, 32-bit encoding, assembler);
//! * [`circuit`] — gate-level circuit IR and the circuit-step scheduler;
//! * [`compiler`] — circuit → timed-program lowering and program-block
//!   partitioning;
//! * [`qpu`] — QPU substrates: behavioural/PRNG backend, noisy
//!   state-vector simulator, Clifford group, RB + decay fitting;
//! * [`core`] — the cycle-accurate QuAPE machine: multiprocessor
//!   scheduler with block information table and prefetching, quantum
//!   superscalar pre-decoder, timing queue/controller, MRCE fast context
//!   switch, AWG/DAQ device models, CES/TR metrics;
//! * [`workloads`] — the paper's benchmarks: Shor syndrome measurement
//!   (Steane code), the seven suite circuits, RB programs;
//! * [`server`] — the multi-tenant job service: compile cache, fair
//!   shot-quantum scheduling, and the streaming job lifecycle;
//! * [`router`] — the HiMA-style sharded front router placing jobs
//!   across multiple serving shards;
//! * [`obs`] — fleet-wide telemetry: wait-free metrics, per-job
//!   lifecycle tracing with Chrome trace-event export, and the
//!   trace-correctness audits.
//!
//! ## Quickstart
//!
//! ```
//! use quape::prelude::*;
//!
//! // The paper's §2.2 listing, on an 8-way superscalar QuAPE.
//! let program = assemble("0 H q0\n0 H q1\n2 CNOT q0, q1\nSTOP\n")?;
//! let cfg = QuapeConfig::superscalar(8);
//! let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysZero, 1);
//! let report = Machine::new(cfg, program, Box::new(qpu))?.run();
//! assert_eq!(report.issued_count(), 3);
//! assert!(report.timing_clean());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the `examples/` directory for runnable scenarios and
//! `crates/bench` for the binaries that regenerate every table and figure
//! of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use quape_circuit as circuit;
pub use quape_compiler as compiler;
pub use quape_core as core;
pub use quape_isa as isa;
pub use quape_obs as obs;
pub use quape_qpu as qpu;
pub use quape_router as router;
pub use quape_server as server;
pub use quape_workloads as workloads;

/// Declarative machine descriptions: the serializable config surface
/// covering every microarchitectural knob, with named builtins and
/// lossless [`QuapeConfig`](quape_core::QuapeConfig) round trips.
pub use quape_core::machdesc as machine;

/// The most common imports in one place.
pub mod prelude {
    pub use quape_circuit::{Circuit, CircuitOp, ScheduledCircuit};
    pub use quape_compiler::{partition_two_blocks, Compiler};
    pub use quape_core::{
        ces_report_paper, AwgViolation, AwgViolationKind, BatchAggregate, BatchReport, CompiledJob,
        DescriptionError, Machine, MachineDescription, PlaybackEvent, QpuFactory, QuapeConfig,
        RunReport, Shot, ShotEngine, StateVectorQpu, StateVectorQpuFactory, StepMode, StopReason,
    };
    pub use quape_isa::{
        assemble, ClassicalOp, Cond, CondOp, Cycles, Gate1, Gate2, Instruction, Program,
        ProgramBuilder, QuantumOp, Qubit,
    };
    pub use quape_obs::{
        audit_complete, audit_lifecycle, chrome_trace, flight_recorder, MetricsSnapshot, ObsScope,
        Recorder, TraceEvent, TraceKind,
    };
    pub use quape_qpu::{
        fit_decay, run_simrb_experiment, BehavioralQpu, BehavioralQpuFactory, CliffordGroup,
        MeasurementModel, RbConfig, StateVector,
    };
    pub use quape_router::{
        AdmissionConfig, FaultPlan, FleetHandle, FleetSnapshot, FrontDoor, Placement, RetryPolicy,
        RoutedJob, RoutedResult, Router, RouterConfig, ShardProfile, ShardSnapshot, ShardStatus,
        StealConfig, TenantStatsRow,
    };
    pub use quape_server::{
        JobError, JobHandle, JobProgress, JobRequest, JobServer, JobSource, MachineSpec,
        PackerConfig, PackerStats, Priority, ServerConfig, ServingServer, ShotPolicy,
    };
    pub use quape_workloads::{benchmark_suite, ShorSyndrome, ShorSyndromeConfig};
}
