//! # quape-compiler — circuits to timed-QASM programs
//!
//! The paper's evaluation relies on a "preliminary compiler \[written\] to
//! generate instructions for the evaluation and experiment" (§7). This
//! crate is that compiler: it lowers step-scheduled circuits into timed
//! programs for the QuAPE machine and performs the *program block
//! division* that the multiprocessor scheduler consumes.
//!
//! Lowering rules:
//!
//! * each circuit step becomes one quantum-instruction group: the first
//!   instruction carries a timing label equal to the previous step's
//!   duration (in clock cycles); the rest carry label 0;
//! * labels that exceed the 7-bit field are materialized as `QWAIT`;
//! * every instruction is tagged with its circuit step so the machine can
//!   meter CES/TR;
//! * for the two-block partition of Fig. 12, the circuit is cut into
//!   *sections*: runs of steps whose operations stay within one half of
//!   the qubits become two parallel blocks (same priority), steps with
//!   cross-half operations become a joint block at the next priority.
//!
//! ```
//! use quape_circuit::Circuit;
//! use quape_compiler::Compiler;
//!
//! let mut c = Circuit::new(2);
//! c.h(0)?.h(1)?.cnot(0, 1)?.measure(1)?;
//! let program = Compiler::new().compile(&c)?;
//! assert_eq!(program.quantum_count(), 4);
//! assert!(program.num_steps() >= 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lower;
mod partition;
mod vliw;

pub use lower::{CompileError, Compiler, CompilerOptions, TimedStepOps};
pub use partition::{
    partition_best_cut, partition_crosstalk_aware, partition_two_blocks, PartitionReport,
};
pub use vliw::{somq_report, vliw_report, SomqReport, VliwReport};
