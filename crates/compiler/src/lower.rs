//! Step-schedule lowering: circuit steps → timed quantum instructions.

use quape_circuit::{Circuit, ScheduledCircuit, Step};
use quape_isa::{
    ClassicalOp, Cycles, OpTimings, Program, ProgramBuilder, ProgramError, StepId, MAX_TIMING,
};
use std::fmt;

/// Compilation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The produced program failed validation.
    Program(ProgramError),
    /// A step contained an operation with no hardware counterpart.
    EmptyCircuit,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Program(e) => write!(f, "program validation failed: {e}"),
            CompileError::EmptyCircuit => write!(f, "cannot compile an empty circuit"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Program(e) => Some(e),
            CompileError::EmptyCircuit => None,
        }
    }
}

impl From<ProgramError> for CompileError {
    fn from(e: ProgramError) -> Self {
        CompileError::Program(e)
    }
}

/// Compiler parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerOptions {
    /// Clock period used to convert step durations into timing labels.
    pub clock_ns: u64,
    /// Operation durations (must match the machine configuration for the
    /// schedule to be physically clean).
    pub timings: OpTimings,
    /// Tag instructions with their circuit step (needed for CES/TR).
    pub tag_steps: bool,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            clock_ns: 10,
            timings: OpTimings {
                single_qubit_ns: 20,
                two_qubit_ns: 40,
                readout_pulse_ns: 300,
            },
            tag_steps: true,
        }
    }
}

/// The circuit-to-program compiler.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    options: CompilerOptions,
}

impl Compiler {
    /// A compiler with default options (10 ns clock, paper-style timings).
    pub fn new() -> Self {
        Self::default()
    }

    /// A compiler with explicit options.
    pub fn with_options(options: CompilerOptions) -> Self {
        Compiler { options }
    }

    /// The options in force.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Duration of a step, rounded up to clock cycles.
    pub fn step_cycles(&self, step: &Step) -> u32 {
        let ns = step.duration_ns(&self.options.timings);
        ns.div_ceil(self.options.clock_ns) as u32
    }

    /// Compiles a circuit into a single-block program ending in `STOP`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::EmptyCircuit`] for circuits with no
    /// operations.
    pub fn compile(&self, circuit: &Circuit) -> Result<Program, CompileError> {
        self.compile_scheduled(&circuit.schedule())
    }

    /// Compiles an already-scheduled circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::EmptyCircuit`] when the schedule has no
    /// steps.
    pub fn compile_scheduled(&self, sched: &ScheduledCircuit) -> Result<Program, CompileError> {
        if sched.depth() == 0 {
            return Err(CompileError::EmptyCircuit);
        }
        let mut b = ProgramBuilder::new();
        self.emit_steps(&mut b, sched.steps(), 0);
        b.set_step(None);
        b.push(ClassicalOp::Stop);
        Ok(b.finish()?)
    }

    /// Emits the instruction stream of a step slice into `builder`,
    /// numbering steps from `first_step`. Returns the number of steps
    /// emitted.
    pub fn emit_steps(&self, builder: &mut ProgramBuilder, steps: &[Step], first_step: u32) -> u32 {
        let stream: Vec<TimedStepOps> = steps
            .iter()
            .enumerate()
            .map(|(i, step)| TimedStepOps {
                step: StepId(first_step + i as u32),
                ops: step
                    .ops()
                    .iter()
                    .map(|o| o.to_quantum_op().expect("scheduler strips barriers"))
                    .collect(),
                duration_cycles: self.step_cycles(step),
            })
            .collect();
        self.emit_step_stream(builder, &stream);
        steps.len() as u32
    }

    /// Emits a stream of per-step operation lists with explicit durations.
    ///
    /// Entries with empty `ops` contribute their duration to the next
    /// group's timing label instead of emitting instructions — this is how
    /// the block partitioner keeps each half of a split circuit on the
    /// *global* step timeline.
    pub fn emit_step_stream(&self, builder: &mut ProgramBuilder, stream: &[TimedStepOps]) {
        let mut label: u32 = 0; // interval since the previous issued group
        for entry in stream {
            if entry.ops.is_empty() {
                label = label.saturating_add(entry.duration_cycles);
                continue;
            }
            if self.options.tag_steps {
                builder.set_step(Some(entry.step));
            }
            let mut head_label = label;
            if head_label > MAX_TIMING {
                builder.push(ClassicalOp::Qwait {
                    cycles: Cycles::new(head_label),
                });
                head_label = 0;
            }
            for (i, &qop) in entry.ops.iter().enumerate() {
                builder.quantum(if i == 0 { head_label } else { 0 }, qop);
            }
            label = entry.duration_cycles;
        }
    }
}

/// One step's worth of operations plus its duration on the global
/// timeline (input to [`Compiler::emit_step_stream`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedStepOps {
    /// Global circuit-step id (used for CES/TR tagging).
    pub step: StepId,
    /// Operations issued at this step (possibly empty for one half of a
    /// partitioned circuit).
    pub ops: Vec<quape_isa::QuantumOp>,
    /// The step's duration in clock cycles on the global schedule.
    pub duration_cycles: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_circuit::Circuit;
    use quape_isa::Instruction;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0)
            .unwrap()
            .h(1)
            .unwrap()
            .cnot(0, 1)
            .unwrap()
            .measure(0)
            .unwrap()
            .measure(1)
            .unwrap();
        c
    }

    #[test]
    fn labels_follow_step_durations() {
        let p = Compiler::new().compile(&bell()).unwrap();
        // step 0: H,H (label 0,0); step 1: CNOT (label 2 = 20 ns);
        // step 2: MEAS,MEAS (label 4 = 40 ns, then 0); STOP.
        let labels: Vec<u32> = p
            .instructions()
            .iter()
            .filter_map(|i| i.as_quantum().map(|q| q.timing.count()))
            .collect();
        assert_eq!(labels, vec![0, 0, 2, 4, 0]);
    }

    #[test]
    fn steps_are_tagged() {
        let p = Compiler::new().compile(&bell()).unwrap();
        assert_eq!(p.num_steps(), 3);
        assert_eq!(p.step_of(0), Some(StepId(0)));
        assert_eq!(p.step_of(2), Some(StepId(1)));
        assert_eq!(p.step_of(3), Some(StepId(2)));
        // STOP is untagged.
        assert_eq!(p.step_of(p.len() - 1), None);
    }

    #[test]
    fn program_ends_with_stop() {
        let p = Compiler::new().compile(&bell()).unwrap();
        assert_eq!(
            p.instruction(p.len() - 1),
            &Instruction::Classical(ClassicalOp::Stop)
        );
    }

    #[test]
    fn long_intervals_become_qwait() {
        // A 2 µs readout forces a 200-cycle interval > MAX_TIMING.
        let mut c = Circuit::new(1);
        c.measure(0).unwrap();
        c.x(0).unwrap();
        let opts = CompilerOptions {
            timings: OpTimings {
                single_qubit_ns: 20,
                two_qubit_ns: 40,
                readout_pulse_ns: 2000,
            },
            ..Default::default()
        };
        let p = Compiler::with_options(opts).compile(&c).unwrap();
        let has_qwait = p
            .instructions()
            .iter()
            .any(|i| matches!(i, Instruction::Classical(ClassicalOp::Qwait { cycles }) if cycles.count() == 200));
        assert!(has_qwait, "{p}");
    }

    #[test]
    fn empty_circuit_rejected() {
        let c = Circuit::new(3);
        assert_eq!(Compiler::new().compile(&c), Err(CompileError::EmptyCircuit));
    }

    #[test]
    fn quantum_counts_preserved() {
        let c = bell();
        let p = Compiler::new().compile(&c).unwrap();
        assert_eq!(p.quantum_count(), c.gate_count());
    }
}
