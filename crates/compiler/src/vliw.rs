//! Static VLIW / SOMQ analysis — quantifying the §9 design rationale.
//!
//! The paper prefers a superscalar over QuMA_v2's VLIW because (1) a
//! fixed-length ISA needs no re-encoding when execution units grow and
//! (2) "the amount of inserted QNOPs in the VLIW bundle will lead to
//! additional program size". This module computes that overhead for any
//! program: how many QNOP slots a `width`-way VLIW encoding would insert,
//! and the resulting code-size expansion relative to the fixed 32-bit
//! stream the superscalar executes.
//!
//! It also analyses QuMA_v2's SOMQ (single operation, multiple qubits)
//! opportunity: how many quantum instructions could fuse into mask-based
//! instructions because a timing group applies the *same* gate to many
//! qubits — and how many cannot.

use quape_isa::{Cycles, Instruction, Program, QuantumOp};
use serde::{Deserialize, Serialize};

/// Result of packing a program into VLIW bundles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VliwReport {
    /// Issue width of the hypothetical VLIW machine.
    pub width: usize,
    /// Bundles produced.
    pub bundles: usize,
    /// Real instructions packed.
    pub instructions: usize,
    /// QNOP filler slots inserted.
    pub qnops: usize,
    /// VLIW code size in 32-bit words (`bundles × width`).
    pub vliw_words: usize,
    /// Superscalar (fixed-length stream) code size in 32-bit words.
    pub scalar_words: usize,
}

impl VliwReport {
    /// Code-size expansion factor of the VLIW encoding.
    pub fn expansion(&self) -> f64 {
        self.vliw_words as f64 / self.scalar_words as f64
    }

    /// Fraction of VLIW slots wasted on QNOPs.
    pub fn qnop_fraction(&self) -> f64 {
        self.qnops as f64 / self.vliw_words as f64
    }
}

/// Packs `program` into `width`-slot VLIW bundles.
///
/// Packing rules mirror the timing semantics: a bundle may hold quantum
/// instructions of one simultaneous timing group (head label plus
/// zero-label continuations); groups larger than the width spill into
/// further bundles; classical instructions occupy one slot each and
/// cannot share a bundle with other instructions (in-order classical
/// semantics); unused slots become QNOPs.
///
/// ```
/// use quape_compiler::{vliw_report, somq_report};
/// use quape_isa::assemble;
///
/// let p = assemble("0 X q0\n0 X q1\n0 X q2\nSTOP\n")?;
/// let v = vliw_report(&p, 8);
/// assert_eq!(v.bundles, 2);              // one quantum bundle + STOP
/// assert_eq!(v.qnops, 5 + 7);            // 3 ops in 8 slots, STOP alone
/// let s = somq_report(&p);
/// assert_eq!(s.after_fusion, 1);         // X on a 3-qubit mask
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn vliw_report(program: &Program, width: usize) -> VliwReport {
    assert!(width > 0, "VLIW width must be positive");
    let mut bundles = 0usize;
    let mut qnops = 0usize;
    let mut i = 0usize;
    let instrs = program.instructions();
    while i < instrs.len() {
        match &instrs[i] {
            Instruction::Classical(_) => {
                bundles += 1;
                qnops += width - 1;
                i += 1;
            }
            Instruction::Quantum(_) => {
                // Collect the simultaneous group.
                let mut group = 1usize;
                while let Some(Instruction::Quantum(q)) = instrs.get(i + group) {
                    if q.timing != Cycles::ZERO {
                        break;
                    }
                    group += 1;
                }
                let full = group / width;
                let rem = group % width;
                bundles += full + usize::from(rem > 0);
                if rem > 0 {
                    qnops += width - rem;
                }
                i += group;
            }
        }
    }
    VliwReport {
        width,
        bundles,
        instructions: instrs.len(),
        qnops,
        vliw_words: bundles * width,
        scalar_words: instrs.len(),
    }
}

/// SOMQ fusion analysis of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SomqReport {
    /// Quantum instructions in the program.
    pub quantum_instructions: usize,
    /// Instructions that SOMQ could fuse away (same single-qubit gate on
    /// several qubits within one timing group collapses to one mask
    /// instruction).
    pub fusable: usize,
    /// Instruction count after ideal SOMQ fusion.
    pub after_fusion: usize,
}

impl SomqReport {
    /// Compression factor SOMQ would achieve (≥ 1).
    pub fn compression(&self) -> f64 {
        self.quantum_instructions as f64 / self.after_fusion as f64
    }
}

/// Computes the ideal SOMQ opportunity: within each simultaneous timing
/// group, identical single-qubit gates fuse into one instruction (the
/// mask register setup is not charged — this is the *upper bound* the
/// paper argues is hard to reach because "the QCP can always provide all
/// the target qubit list in time" is not guaranteed).
pub fn somq_report(program: &Program) -> SomqReport {
    let instrs = program.instructions();
    let mut quantum = 0usize;
    let mut after = 0usize;
    let mut i = 0usize;
    while i < instrs.len() {
        match &instrs[i] {
            Instruction::Classical(_) => {
                i += 1;
            }
            Instruction::Quantum(_) => {
                let mut group = vec![];
                let mut j = i;
                while let Some(Instruction::Quantum(q)) = instrs.get(j) {
                    if j > i && q.timing != Cycles::ZERO {
                        break;
                    }
                    group.push(q.op);
                    j += 1;
                }
                quantum += group.len();
                // Count distinct fusables: same Gate1 kind → one SOMQ
                // instruction; two-qubit gates and measures keep one slot
                // each (QuMA_v2's SOMQ also fuses measures; model that).
                let mut kinds: Vec<String> = Vec::new();
                for op in &group {
                    let key = match op {
                        QuantumOp::Gate1(g, _) => format!("g1:{g}"),
                        QuantumOp::Measure(_) => "meas".to_string(),
                        QuantumOp::Gate2(g, a, b) => format!("g2:{g}:{a}:{b}"),
                    };
                    if !kinds.contains(&key) {
                        kinds.push(key);
                    }
                }
                after += kinds.len();
                i = j;
            }
        }
    }
    SomqReport {
        quantum_instructions: quantum,
        fusable: quantum - after.min(quantum),
        after_fusion: after.max(usize::from(quantum > 0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_isa::assemble;

    fn wide_program(n: usize) -> Program {
        let mut src = String::new();
        for q in 0..n {
            src.push_str(&format!("0 H q{q}\n"));
        }
        src.push_str("STOP\n");
        assemble(&src).unwrap()
    }

    #[test]
    fn full_groups_need_no_qnops() {
        let p = wide_program(16);
        let v = vliw_report(&p, 8);
        // 16 H's fill 2 bundles exactly; STOP wastes 7 slots.
        assert_eq!(v.bundles, 3);
        assert_eq!(v.qnops, 7);
        assert_eq!(v.vliw_words, 24);
        assert_eq!(v.scalar_words, 17);
    }

    #[test]
    fn serial_code_pays_maximal_qnop_tax() {
        let p = assemble("0 X q0\n2 X q0\n2 X q0\nSTOP\n").unwrap();
        let v = vliw_report(&p, 8);
        assert_eq!(v.bundles, 4, "every serial op needs its own bundle");
        assert_eq!(v.qnops, 4 * 7);
        assert!((v.expansion() - 8.0).abs() < 1e-12);
        assert!((v.qnop_fraction() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn group_spill_is_packed_tightly() {
        let p = wide_program(9);
        let v = vliw_report(&p, 8);
        // 9 ops → bundle of 8 + bundle of 1 (7 QNOPs) + STOP bundle.
        assert_eq!(v.bundles, 3);
        assert_eq!(v.qnops, 7 + 7);
    }

    #[test]
    fn somq_fuses_identical_gates_only() {
        let p = assemble("0 H q0\n0 H q1\n0 X q2\n0 CNOT q3, q4\nSTOP\n").unwrap();
        let s = somq_report(&p);
        assert_eq!(s.quantum_instructions, 4);
        // H-mask + X + CNOT = 3 instructions after fusion.
        assert_eq!(s.after_fusion, 3);
        assert_eq!(s.fusable, 1);
        assert!((s.compression() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn somq_on_hadamard_layer_is_maximal() {
        let p = wide_program(16);
        let s = somq_report(&p);
        assert_eq!(s.after_fusion, 1);
        assert!((s.compression() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_quantum_program_is_safe() {
        let p = assemble("NOP\nSTOP\n").unwrap();
        let v = vliw_report(&p, 4);
        assert_eq!(v.bundles, 2);
        let s = somq_report(&p);
        assert_eq!(s.quantum_instructions, 0);
    }
}
