//! Program block division for the two-core evaluation (Fig. 12).
//!
//! §7: "we simply divide the part of the program with parallel operations
//! into two blocks, each corresponding to half of the qubits". This
//! module implements that division soundly: the step schedule is cut into
//! *sections* —
//!
//! * a **parallel section** is a run of steps in which no operation spans
//!   both qubit halves; it becomes two program blocks with the same
//!   priority, one per half;
//! * a **joint section** is a run of steps containing cross-half
//!   operations (e.g. a CNOT between the halves); it stays a single block
//!   at the next priority level.
//!
//! Priorities increase per section, so the block information table
//! serializes sections while letting the two halves of each parallel
//! section run concurrently.

use crate::lower::{CompileError, Compiler, TimedStepOps};
use quape_circuit::{Circuit, CircuitOp};
use quape_isa::{ClassicalOp, Dependency, Program, ProgramBuilder, StepId};
use serde::{Deserialize, Serialize};

/// Which half of the machine an operation touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Lower,
    Upper,
    Both,
}

/// Reclassifies parallel sections with fewer than `min_ops` operations as
/// joint, so they merge with their neighbours instead of becoming tiny
/// blocks.
fn coarsen(
    sched: &quape_circuit::ScheduledCircuit,
    joint: &[bool],
    half: u16,
    min_ops: usize,
) -> Vec<bool> {
    let mut out = joint.to_vec();
    let mut start = 0usize;
    while start < out.len() {
        let kind = out[start];
        let mut end = start + 1;
        while end < out.len() && out[end] == kind {
            end += 1;
        }
        if !kind {
            let ops: usize = sched.steps()[start..end].iter().map(|s| s.width()).sum();
            let lower: usize = sched.steps()[start..end]
                .iter()
                .flat_map(|s| s.ops())
                .filter(|o| side_of(o, half) == Side::Lower)
                .count();
            // Sections with too little work — or with everything on one
            // side — gain nothing from a parallel split.
            if ops < min_ops || lower == 0 || lower == ops {
                for slot in &mut out[start..end] {
                    *slot = true;
                }
            }
        }
        start = end;
    }
    out
}

/// Number of blocks a classification would produce (2 per parallel
/// section, 1 per joint section).
fn count_blocks(joint: &[bool]) -> usize {
    let mut blocks = 0;
    let mut start = 0usize;
    while start < joint.len() {
        let kind = joint[start];
        let mut end = start + 1;
        while end < joint.len() && joint[end] == kind {
            end += 1;
        }
        blocks += if kind { 1 } else { 2 };
        start = end;
    }
    blocks
}

fn side_of(op: &CircuitOp, half: u16) -> Side {
    let mut lower = false;
    let mut upper = false;
    for q in op.qubits() {
        if q.index() < half {
            lower = true;
        } else {
            upper = true;
        }
    }
    match (lower, upper) {
        (true, false) => Side::Lower,
        (false, true) => Side::Upper,
        _ => Side::Both,
    }
}

/// Summary of a two-block partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionReport {
    /// Qubit index splitting the halves (`q < half` is the lower half).
    pub half: u16,
    /// Total sections.
    pub sections: usize,
    /// Sections that produced two parallel blocks.
    pub parallel_sections: usize,
    /// Program blocks emitted.
    pub blocks: usize,
    /// Operations placed in parallel blocks (amenable to CLP).
    pub parallel_ops: usize,
    /// Operations in joint blocks.
    pub joint_ops: usize,
}

/// Partitions a circuit into half-qubit program blocks (Fig. 12 setup).
///
/// Parallel sections too small to be worth a block switch are folded into
/// their neighbouring joint sections — §7 observes that "dividing program
/// into fine-grained blocks can even have negative impact" — and the
/// granularity coarsens automatically until the partition fits the
/// 64-entry block information table.
///
/// # Errors
///
/// Returns [`CompileError::EmptyCircuit`] for empty circuits, and any
/// validation error from program assembly.
pub fn partition_two_blocks(
    compiler: &Compiler,
    circuit: &Circuit,
) -> Result<(Program, PartitionReport), CompileError> {
    partition_at(compiler, circuit, circuit.num_qubits().div_ceil(2))
}

/// Partitions a circuit like [`partition_two_blocks`], but searches every
/// cut position for the one that maximizes the operations placed in
/// parallel blocks — the "block division methods" exploration §9 lists as
/// future work. The paper's evaluation uses the fixed middle cut; this
/// variant shows how much a smarter compiler recovers on circuits whose
/// natural boundary is off-centre.
///
/// # Errors
///
/// Returns [`CompileError::EmptyCircuit`] for empty circuits, and any
/// validation error from program assembly.
pub fn partition_best_cut(
    compiler: &Compiler,
    circuit: &Circuit,
) -> Result<(Program, PartitionReport), CompileError> {
    let sched = circuit.schedule();
    if sched.depth() == 0 {
        return Err(CompileError::EmptyCircuit);
    }
    let n = circuit.num_qubits();
    let mut best: Option<(Program, PartitionReport)> = None;
    for cut in 1..n.max(2) {
        let candidate = partition_at(compiler, circuit, cut)?;
        let better = match &best {
            None => true,
            Some((_, report)) => {
                // Primary: more parallelizable ops; tie-break: a more
                // even split produces better load balance.
                candidate.1.parallel_ops > report.parallel_ops
                    || (candidate.1.parallel_ops == report.parallel_ops
                        && (i32::from(cut) - i32::from(n / 2)).abs()
                            < (i32::from(report.half) - i32::from(n / 2)).abs())
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    Ok(best.expect("at least one cut evaluated"))
}

/// Crosstalk-aware variant of [`partition_best_cut`] (§9 future work:
/// "trade-offs between parallelism and cross-talk").
///
/// Blocks of one parallel section drive their qubits simultaneously; when
/// operations land on the two qubits adjacent across the cut in the same
/// step, the always-on ZZ coupling between them turns into coherent
/// crosstalk error. This partitioner scores each cut as
/// `parallel_ops − penalty_weight × boundary_conflicts` (where a conflict
/// is a step of a parallel section driving both cut-adjacent qubits) and
/// picks the maximum.
///
/// # Errors
///
/// Returns [`CompileError::EmptyCircuit`] for empty circuits.
pub fn partition_crosstalk_aware(
    compiler: &Compiler,
    circuit: &Circuit,
    penalty_weight: f64,
) -> Result<(Program, PartitionReport, f64), CompileError> {
    let sched = circuit.schedule();
    if sched.depth() == 0 {
        return Err(CompileError::EmptyCircuit);
    }
    let n = circuit.num_qubits();
    let mut best: Option<(Program, PartitionReport, f64)> = None;
    for cut in 1..n.max(2) {
        let (program, report) = partition_at(compiler, circuit, cut)?;
        let conflicts = boundary_conflicts(&sched, cut);
        let score = report.parallel_ops as f64 - penalty_weight * conflicts as f64;
        if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
            best = Some((program, report, score));
        }
    }
    Ok(best.expect("at least one cut evaluated"))
}

/// Steps in which both cut-adjacent qubits (`cut − 1` and `cut`) are
/// driven simultaneously by *parallel-section* operations.
fn boundary_conflicts(sched: &quape_circuit::ScheduledCircuit, cut: u16) -> usize {
    if cut == 0 {
        return 0;
    }
    let (lo, hi) = (cut - 1, cut);
    sched
        .steps()
        .iter()
        .filter(|step| {
            // Only count steps that would actually split (no cross-cut op).
            let splits = !step.ops().iter().any(|o| side_of(o, cut) == Side::Both);
            if !splits {
                return false;
            }
            let drives = |q: u16| {
                step.ops()
                    .iter()
                    .any(|o| o.qubits().iter().any(|qb| qb.index() == q))
            };
            drives(lo) && drives(hi)
        })
        .count()
}

fn partition_at(
    compiler: &Compiler,
    circuit: &Circuit,
    half: u16,
) -> Result<(Program, PartitionReport), CompileError> {
    let sched = circuit.schedule();
    if sched.depth() == 0 {
        return Err(CompileError::EmptyCircuit);
    }

    // Classify steps, then group into sections of equal kind. A parallel
    // section only pays off when it holds enough operations; coarsen
    // until the resulting blocks fit the table.
    let base_joint: Vec<bool> = sched
        .steps()
        .iter()
        .map(|s| s.ops().iter().any(|o| side_of(o, half) == Side::Both))
        .collect();
    let mut min_section_ops = 6usize;
    let joint = loop {
        let coarse = coarsen(&sched, &base_joint, half, min_section_ops);
        let blocks = count_blocks(&coarse);
        if blocks <= quape_isa::BLOCK_TABLE_CAPACITY || min_section_ops > sched.op_count() {
            break coarse;
        }
        min_section_ops *= 2;
    };
    let durations: Vec<u32> = sched
        .steps()
        .iter()
        .map(|s| compiler.step_cycles(s))
        .collect();

    let mut b = ProgramBuilder::new();
    let mut report = PartitionReport {
        half,
        sections: 0,
        parallel_sections: 0,
        blocks: 0,
        parallel_ops: 0,
        joint_ops: 0,
    };

    let mut start = 0usize;
    let mut priority: u16 = 0;
    while start < joint.len() {
        let kind = joint[start];
        let mut end = start + 1;
        while end < joint.len() && joint[end] == kind {
            end += 1;
        }
        report.sections += 1;
        let steps = &sched.steps()[start..end];
        if kind {
            // Joint section: one block with everything.
            let stream: Vec<TimedStepOps> = steps
                .iter()
                .enumerate()
                .map(|(i, s)| TimedStepOps {
                    step: StepId((start + i) as u32),
                    ops: s
                        .ops()
                        .iter()
                        .filter_map(CircuitOp::to_quantum_op)
                        .collect(),
                    duration_cycles: durations[start + i],
                })
                .collect();
            report.joint_ops += stream.iter().map(|e| e.ops.len()).sum::<usize>();
            b.begin_block(format!("joint_{priority}"), Dependency::Priority(priority));
            compiler.emit_step_stream(&mut b, &stream);
            b.set_step(None);
            b.push(ClassicalOp::Stop);
            b.end_block();
            report.blocks += 1;
        } else {
            report.parallel_sections += 1;
            for (name, want) in [("lower", Side::Lower), ("upper", Side::Upper)] {
                let stream: Vec<TimedStepOps> = steps
                    .iter()
                    .enumerate()
                    .map(|(i, s)| TimedStepOps {
                        step: StepId((start + i) as u32),
                        ops: s
                            .ops()
                            .iter()
                            .filter(|o| side_of(o, half) == want)
                            .filter_map(CircuitOp::to_quantum_op)
                            .collect(),
                        duration_cycles: durations[start + i],
                    })
                    .collect();
                let ops: usize = stream.iter().map(|e| e.ops.len()).sum();
                if ops == 0 {
                    continue; // this half is idle for the whole section
                }
                report.parallel_ops += ops;
                b.begin_block(format!("{name}_{priority}"), Dependency::Priority(priority));
                compiler.emit_step_stream(&mut b, &stream);
                b.set_step(None);
                b.push(ClassicalOp::Stop);
                b.end_block();
                report.blocks += 1;
            }
        }
        priority += 1;
        start = end;
    }
    Ok((b.finish()?, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_isa::Instruction;

    /// H layer on all qubits, CNOT ladder inside each half, then a
    /// cross-half CNOT, then measures — with barriers separating the
    /// phases so each lands in its own section.
    fn mixed_circuit(n: u16) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q).unwrap();
        }
        let half = n / 2;
        for q in 0..half - 1 {
            c.cnot(q, q + 1).unwrap();
        }
        for q in half..n - 1 {
            c.cnot(q, q + 1).unwrap();
        }
        c.barrier_all();
        c.cnot(half - 1, half).unwrap(); // cross-half
        c.barrier_all();
        for q in 0..n {
            c.measure(q).unwrap();
        }
        c
    }

    #[test]
    fn sections_alternate_and_ops_are_preserved() {
        let circuit = mixed_circuit(8);
        let (p, report) = partition_two_blocks(&Compiler::new(), &circuit).unwrap();
        assert!(report.parallel_sections >= 2, "{report:?}");
        assert_eq!(report.parallel_ops + report.joint_ops, circuit.gate_count());
        assert_eq!(p.quantum_count(), circuit.gate_count());
        assert_eq!(p.blocks().len(), report.blocks);
        p.blocks().validate().unwrap();
    }

    #[test]
    fn parallel_blocks_stay_within_their_half() {
        let circuit = mixed_circuit(8);
        let (p, report) = partition_two_blocks(&Compiler::new(), &circuit).unwrap();
        for (_, info) in p.blocks().iter() {
            let is_lower = info.name.starts_with("lower");
            let is_upper = info.name.starts_with("upper");
            if !is_lower && !is_upper {
                continue;
            }
            for addr in info.range.clone() {
                if let Instruction::Quantum(q) = p.instruction(addr as usize) {
                    for qubit in q.op.qubits() {
                        if is_lower {
                            assert!(qubit.index() < report.half, "lower block uses {qubit}");
                        } else {
                            assert!(qubit.index() >= report.half, "upper block uses {qubit}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn priorities_serialize_sections() {
        let circuit = mixed_circuit(8);
        let (p, _) = partition_two_blocks(&Compiler::new(), &circuit).unwrap();
        // Joint blocks never share a priority with parallel blocks.
        let mut prio_kinds: std::collections::HashMap<u16, &str> = Default::default();
        for (_, info) in p.blocks().iter() {
            let kind = if info.name.starts_with("joint") {
                "joint"
            } else {
                "parallel"
            };
            if let Dependency::Priority(pr) = info.dependency {
                let existing = prio_kinds.insert(pr, kind);
                if let Some(e) = existing {
                    assert_eq!(e, kind, "priority {pr} mixes joint and parallel blocks");
                }
            }
        }
    }

    #[test]
    fn fully_parallel_circuit_yields_two_blocks() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q).unwrap();
            c.x(q).unwrap();
        }
        let (p, report) = partition_two_blocks(&Compiler::new(), &c).unwrap();
        assert_eq!(report.sections, 1);
        assert_eq!(report.blocks, 2);
        assert_eq!(report.joint_ops, 0);
        assert_eq!(p.blocks().len(), 2);
    }

    #[test]
    fn single_qubit_circuit_has_no_upper_block() {
        let mut c = Circuit::new(1);
        c.h(0).unwrap();
        let (p, report) = partition_two_blocks(&Compiler::new(), &c).unwrap();
        assert_eq!(report.blocks, 1);
        assert_eq!(p.blocks().len(), 1);
    }

    #[test]
    fn empty_circuit_rejected() {
        let c = Circuit::new(2);
        assert!(matches!(
            partition_two_blocks(&Compiler::new(), &c),
            Err(CompileError::EmptyCircuit)
        ));
        assert!(matches!(
            partition_best_cut(&Compiler::new(), &c),
            Err(CompileError::EmptyCircuit)
        ));
    }

    #[test]
    fn best_cut_finds_an_off_centre_boundary() {
        // 6 qubits where the natural boundary is after qubit 2: chains
        // 0–1–2 and 3–4–5 with the cross edge only at 2–3 would make the
        // middle cut fine; shift the structure so qubits 0..2 interact
        // heavily and 2..6 are one block — best cut is 2, not 3.
        let mut c = Circuit::new(6);
        for _ in 0..6 {
            c.cnot(0, 1).unwrap();
            c.cnot(2, 3).unwrap();
            c.cnot(4, 5).unwrap();
            c.cnot(2, 4).unwrap(); // 2,3,4,5 form one cluster
        }
        let (_, fixed) = partition_two_blocks(&Compiler::new(), &c).unwrap();
        let (_, best) = partition_best_cut(&Compiler::new(), &c).unwrap();
        assert_eq!(best.half, 2, "best cut separates {{0,1}} from {{2..6}}");
        assert!(
            best.parallel_ops >= fixed.parallel_ops,
            "best cut ({}) must not lose parallel ops vs fixed ({})",
            best.parallel_ops,
            fixed.parallel_ops
        );
    }

    #[test]
    fn best_cut_matches_fixed_on_symmetric_circuits() {
        let circuit = mixed_circuit(8);
        let (_, fixed) = partition_two_blocks(&Compiler::new(), &circuit).unwrap();
        let (_, best) = partition_best_cut(&Compiler::new(), &circuit).unwrap();
        assert!(best.parallel_ops >= fixed.parallel_ops);
    }

    #[test]
    fn crosstalk_penalty_moves_the_cut_off_a_hot_boundary() {
        // 6 qubits, two independent 3-qubit groups {0,1,2} and {3,4,5},
        // where qubits 2 and 3 are driven in the same steps throughout.
        // With no penalty any balanced cut works; with a strong penalty
        // the partitioner must still pick cut = 3 (the only cut with no
        // cross ops) — but compare scores across penalties.
        let mut c = Circuit::new(6);
        for _ in 0..8 {
            for q in 0..6 {
                c.x(q).unwrap();
            }
            c.barrier_all();
        }
        let (_, report0, score0) = partition_crosstalk_aware(&Compiler::new(), &c, 0.0).unwrap();
        let (_, _, score_hot) = partition_crosstalk_aware(&Compiler::new(), &c, 100.0).unwrap();
        assert!(report0.parallel_ops > 0);
        // With everything-simultaneous layers, every cut has conflicts, so
        // the penalized score is strictly lower.
        assert!(score_hot < score0);
    }

    #[test]
    fn crosstalk_aware_prefers_quiet_boundaries() {
        // Qubits 0..3 busy together; qubits 3..6 busy together, but qubit
        // 2 and 3 never active in the same step. The quiet boundary is at
        // cut = 3.
        let mut c = Circuit::new(6);
        for round in 0..6 {
            if round % 2 == 0 {
                for q in 0..3 {
                    c.x(q).unwrap();
                }
            } else {
                for q in 3..6 {
                    c.y(q).unwrap();
                }
            }
            c.barrier_all();
        }
        let (_, report, _) = partition_crosstalk_aware(&Compiler::new(), &c, 10.0).unwrap();
        assert_eq!(
            report.half, 3,
            "the quiet boundary separates the alternating groups"
        );
    }
}
