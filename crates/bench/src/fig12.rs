//! Fig. 12: execution time of the seven benchmarks on a two-core
//! implementation vs the uniprocessor.

use quape_compiler::{partition_two_blocks, Compiler};
use quape_core::{Machine, QuapeConfig, RunReport};
use quape_qpu::{BehavioralQpu, MeasurementModel};
use quape_workloads::benchmark_suite;
use serde::{Deserialize, Serialize};

/// One benchmark's two-core result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Uniprocessor execution time (ns).
    pub uniprocessor_ns: u64,
    /// Two-core execution time (ns).
    pub two_core_ns: u64,
    /// Speedup (uniprocessor / two-core).
    pub speedup: f64,
    /// Program blocks after partitioning.
    pub blocks: usize,
    /// Sections that could run in parallel.
    pub parallel_sections: usize,
}

fn run_once(cfg: QuapeConfig, program: quape_isa::Program) -> RunReport {
    let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 }, 11);
    let report = Machine::new(cfg, program, Box::new(qpu))
        .expect("valid machine")
        .run();
    assert!(
        matches!(report.stop, quape_core::StopReason::Completed),
        "benchmark did not complete: {:?}",
        report.stop
    );
    report
}

/// Runs the full Fig. 12 experiment.
pub fn run() -> Vec<Fig12Row> {
    let compiler = Compiler::new();
    benchmark_suite()
        .into_iter()
        .map(|b| {
            let (program, part) =
                partition_two_blocks(&compiler, &b.circuit).expect("benchmark partitions");
            let uni = run_once(QuapeConfig::uniprocessor(), program.clone());
            let dual = run_once(QuapeConfig::multiprocessor(2), program);
            let uni_ns = uni.execution_time_ns();
            let dual_ns = dual.execution_time_ns();
            Fig12Row {
                benchmark: b.name.to_string(),
                uniprocessor_ns: uni_ns,
                two_core_ns: dual_ns,
                speedup: uni_ns as f64 / dual_ns as f64,
                blocks: part.blocks,
                parallel_sections: part.parallel_sections,
            }
        })
        .collect()
}

/// Mean speedup across the suite (the paper's 1.30×).
pub fn average_speedup(rows: &[Fig12Row]) -> f64 {
    rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cores_never_slower_and_usually_faster() {
        let rows = run();
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(
                r.speedup > 0.95,
                "{}: two-core {}ns vs uni {}ns",
                r.benchmark,
                r.two_core_ns,
                r.uniprocessor_ns
            );
        }
        let avg = average_speedup(&rows);
        assert!(
            (1.1..=1.6).contains(&avg),
            "average two-core speedup {avg:.3} outside the paper's ≈1.30 regime"
        );
    }
}
