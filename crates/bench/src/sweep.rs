//! Machine-description scenario sweeps: one workload grid, many
//! machines, a deterministic comparison table.
//!
//! The sweep runs every machine in a set of [`MachineDescription`]s —
//! loaded from a `machines/*.json` directory or the builtin grid —
//! through a fixed workload grid (the Fig. 2 feedback chain, a wide
//! pulse train, a 10-qubit readout burst, and a slice of the
//! mixed-traffic request stream) and reports per-cell aggregates. Every cell is executed `repeats ≥ 2`
//! times and the run **fails** if any repeat's [`BatchAggregate`]
//! diverges: the sweep doubles as a determinism check across the whole
//! declarative config surface.

use quape_core::{
    BatchAggregate, CompiledJob, MachineDescription, QuapeConfig, ShotEngine, StepMode,
};
use quape_isa::content_hash_128;
use quape_qpu::{BehavioralQpuFactory, MeasurementModel};
use quape_workloads::feedback::feedback_chain;
use quape_workloads::pulse::pulse_train;
use quape_workloads::traffic::mixed_traffic;
use serde::Serialize;

/// A named machine in a sweep: the label (builtin name or file stem)
/// plus its description.
#[derive(Debug, Clone)]
pub struct SweepMachine {
    /// Display label: a builtin name or the description file's stem.
    pub name: String,
    /// The machine's declarative description.
    pub desc: MachineDescription,
}

/// The builtin machine grid used when no description directory is given:
/// the paper's baseline, its 8-way superscalar prototype, and a 4-unit
/// multiprocessor.
pub fn builtin_grid() -> Vec<SweepMachine> {
    ["baseline", "superscalar", "multiprocessor-4"]
        .iter()
        .map(|name| SweepMachine {
            name: (*name).to_string(),
            desc: MachineDescription::builtin(name).expect("grid names are builtin"),
        })
        .collect()
}

/// Loads every `*.json` machine description in `dir`, sorted by file
/// stem so the sweep order (and the comparison table) is stable.
///
/// # Errors
///
/// A human-readable message naming the offending file: unreadable
/// directory, unreadable file, or a description that fails to parse or
/// validate.
pub fn load_machines_dir(dir: &str) -> Result<Vec<SweepMachine>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read {dir}: {e}"))?;
    let mut machines = Vec::new();
    for entry in entries {
        let path = entry.map_err(|e| format!("cannot read {dir}: {e}"))?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("machine")
            .to_string();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let desc =
            MachineDescription::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        machines.push(SweepMachine { name, desc });
    }
    if machines.is_empty() {
        return Err(format!("no *.json machine descriptions in {dir}"));
    }
    machines.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(machines)
}

/// Resolves a `--machine` argument: a description file if `spec` names
/// one on disk, otherwise a builtin description name
/// ([`quape_core::BUILTIN_NAMES`], `superscalar-<w>`,
/// `multiprocessor-<n>`). The description is validated either way.
///
/// # Errors
///
/// A human-readable message: unreadable/unparseable file, or an unknown
/// builtin name.
pub fn resolve_machine(spec: &str) -> Result<MachineDescription, String> {
    if std::path::Path::new(spec).is_file() {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
        MachineDescription::from_json(&text).map_err(|e| format!("{spec}: {e}"))
    } else {
        MachineDescription::builtin(spec).map_err(|e| e.to_string())
    }
}

/// Checks that every `*.json` description in `dir` round-trips through
/// serde *byte-identically*: parsing the file and re-serializing it with
/// [`MachineDescription::to_json`] must reproduce the committed bytes
/// (modulo one trailing newline). Guards the committed examples against
/// hand-edits that drift from the canonical rendering.
///
/// # Errors
///
/// Names the first file that fails to parse or re-render identically.
pub fn check_roundtrip_dir(dir: &str) -> Result<usize, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read {dir}: {e}"))?;
    let mut checked = 0;
    for entry in entries {
        let path = entry.map_err(|e| format!("cannot read {dir}: {e}"))?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let desc =
            MachineDescription::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if text.trim_end_matches('\n') != desc.to_json() {
            return Err(format!(
                "{} does not round-trip byte-identically; regenerate it with \
                 MachineDescription::to_json",
                path.display()
            ));
        }
        checked += 1;
    }
    if checked == 0 {
        return Err(format!("no *.json machine descriptions in {dir}"));
    }
    Ok(checked)
}

/// One cell of the sweep: a machine × workload pair's deterministic
/// aggregate, summarized for the comparison table and the JSON baseline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepRow {
    /// Machine label.
    pub machine: String,
    /// Workload name.
    pub workload: String,
    /// Shots executed across the workload.
    pub shots: u64,
    /// Mean simulated cycles per shot.
    pub mean_cycles: f64,
    /// Largest per-shot cycle count.
    pub max_cycles: u64,
    /// Late quantum issues across all shots.
    pub late_issues: u64,
    /// DAQ demod-contended results across all shots.
    pub daq_contended: u64,
    /// Total simulated nanoseconds.
    pub simulated_ns: u64,
    /// Stable 128-bit fingerprint (hex) of the cell's aggregates —
    /// bit-identical across runs, machines differ.
    pub fingerprint: String,
}

/// A workload cell: every program it runs, with shots and a seed
/// stream offset.
struct Workload {
    name: &'static str,
    programs: Vec<(quape_isa::Program, u64)>,
}

/// Workload names in the fixed grid, in sweep order.
pub const WORKLOAD_NAMES: &[&str] = &["fig02_chain", "pulse_train", "readout_burst", "mixed_slice"];

/// The fixed workload grid: Fig. 2's feedback chain, a 4-qubit pulse
/// train, a 10-qubit readout burst (every qubit measured in the same
/// timing slot — the cell that separates demod-starved DAQs from
/// well-provisioned ones on multiplexed layouts), and the first 10
/// requests of the deterministic mixed-traffic stream (each assembled
/// from its wire text).
fn workload_grid(seed: u64) -> Vec<Workload> {
    let mut grid = vec![
        Workload {
            name: "fig02_chain",
            programs: vec![(feedback_chain(0, 40).expect("valid workload"), 24)],
        },
        Workload {
            name: "pulse_train",
            programs: vec![(pulse_train(4, 60).expect("valid workload"), 16)],
        },
        Workload {
            name: "readout_burst",
            programs: vec![(pulse_train(10, 4).expect("valid workload"), 16)],
        },
    ];
    let slice = mixed_traffic(seed, 10)
        .into_iter()
        .map(|req| {
            let program = quape_isa::assemble(&req.source).expect("traffic sources assemble");
            (program, req.shots)
        })
        .collect();
    grid.push(Workload {
        name: "mixed_slice",
        programs: slice,
    });
    grid
}

fn run_cell(
    cfg: &QuapeConfig,
    step_mode: StepMode,
    workload: &Workload,
    base_seed: u64,
) -> Result<Vec<BatchAggregate>, String> {
    workload
        .programs
        .iter()
        .enumerate()
        .map(|(i, (program, shots))| {
            let job = CompiledJob::compile(cfg.clone(), program.clone())
                .map_err(|e| format!("{}: {e}", workload.name))?;
            let factory =
                BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 });
            Ok(ShotEngine::new(job, factory)
                .base_seed(base_seed + i as u64)
                .step_mode(step_mode)
                .threads(1)
                .run(*shots)
                .aggregate)
        })
        .collect()
}

fn summarize(machine: &str, workload: &str, aggs: &[BatchAggregate]) -> SweepRow {
    let shots: u64 = aggs.iter().map(|a| a.shots).sum();
    let total_cycles: f64 = aggs.iter().map(|a| a.cycles.mean * a.shots as f64).sum();
    let json = serde_json::to_string(&aggs).expect("aggregates serialize");
    SweepRow {
        machine: machine.to_string(),
        workload: workload.to_string(),
        shots,
        mean_cycles: total_cycles / shots.max(1) as f64,
        max_cycles: aggs.iter().map(|a| a.cycles.max).max().unwrap_or(0),
        late_issues: aggs.iter().map(|a| a.late_issues_total).sum(),
        daq_contended: aggs.iter().map(|a| a.daq_contended_total).sum(),
        simulated_ns: aggs.iter().map(|a| a.simulated_ns_total).sum(),
        fingerprint: format!("{:032x}", content_hash_128(json.as_bytes())),
    }
}

/// Runs the workload grid across `machines`. Every cell executes
/// `repeats` times (min 2) and must produce bit-identical aggregates
/// each time — the sweep asserts the declarative surface changes *what*
/// runs, never *whether* a run is reproducible.
///
/// # Errors
///
/// An invalid description, a compile failure, or a determinism
/// violation, each naming the machine × workload cell.
pub fn run_sweep(
    machines: &[SweepMachine],
    seed: u64,
    repeats: usize,
) -> Result<Vec<SweepRow>, String> {
    let repeats = repeats.max(2);
    let grid = workload_grid(seed);
    let mut rows = Vec::with_capacity(machines.len() * grid.len());
    for m in machines {
        let cfg = m
            .desc
            .to_config()
            .map_err(|e| format!("machine {}: {e}", m.name))?;
        for workload in &grid {
            let first = run_cell(&cfg, m.desc.step_mode, workload, seed)
                .map_err(|e| format!("machine {}: {e}", m.name))?;
            for rerun in 1..repeats {
                let again = run_cell(&cfg, m.desc.step_mode, workload, seed)
                    .map_err(|e| format!("machine {}: {e}", m.name))?;
                if again != first {
                    return Err(format!(
                        "nondeterministic aggregate: machine {} workload {} diverged on \
                         repeat {rerun}",
                        m.name, workload.name
                    ));
                }
            }
            rows.push(summarize(&m.name, workload.name, &first));
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_grid_sweeps_deterministically() {
        let machines = builtin_grid();
        let rows = run_sweep(&machines, 7, 2).expect("sweep runs");
        assert_eq!(rows.len(), machines.len() * WORKLOAD_NAMES.len());
        // The workload grid must actually discriminate machines: the
        // wide pulse train exposes the superscalar front end, the
        // block-partitioned traffic slice exposes the multiprocessor.
        // (The serial feedback chain is invariant by design — feedback
        // latency is DAQ-bound, not fetch-bound.)
        let cell = |m: &str, w: &str| {
            rows.iter()
                .find(|r| r.machine == m && r.workload == w)
                .unwrap()
                .clone()
        };
        assert_ne!(
            cell("baseline", "pulse_train").fingerprint,
            cell("superscalar", "pulse_train").fingerprint,
        );
        assert_ne!(
            cell("baseline", "mixed_slice").fingerprint,
            cell("multiprocessor-4", "mixed_slice").fingerprint,
        );
        assert_eq!(
            cell("baseline", "fig02_chain").fingerprint,
            cell("superscalar", "fig02_chain").fingerprint,
            "the serial feedback chain must stay fetch-width invariant"
        );
        // And the same machine reproduces the same fingerprint.
        let rows2 = run_sweep(&machines, 7, 2).expect("sweep runs");
        assert_eq!(rows, rows2);
    }

    #[test]
    fn resolve_machine_accepts_files_and_builtin_names() {
        assert_eq!(
            resolve_machine("superscalar-8").unwrap(),
            MachineDescription::superscalar(8)
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../machines/baseline.json");
        assert_eq!(
            resolve_machine(path).unwrap(),
            MachineDescription::baseline()
        );
        let err = resolve_machine("no-such-machine").unwrap_err();
        assert!(
            err.contains("no-such-machine"),
            "error names the spec: {err}"
        );
    }

    #[test]
    fn readout_burst_separates_demod_starved_machines() {
        use quape_core::ChannelLayout;
        let mut multiplexed = MachineDescription::superscalar(8);
        multiplexed.channels = ChannelLayout::Multiplexed {
            qubits: Some(10),
            readout_lines: 8,
        };
        let mut starved = multiplexed.clone();
        starved.daq.demod_slots = 1;
        let machines = vec![
            SweepMachine {
                name: "multiplexed".into(),
                desc: multiplexed,
            },
            SweepMachine {
                name: "starved".into(),
                desc: starved,
            },
        ];
        let rows = run_sweep(&machines, 7, 2).expect("sweep runs");
        let cell = |m: &str| {
            rows.iter()
                .find(|r| r.machine == m && r.workload == "readout_burst")
                .unwrap()
        };
        // 10 qubits over 8 lines: q0/q8 and q1/q9 share a line, so a
        // single demod server per channel must serialize the burst.
        assert!(
            cell("starved").daq_contended > 0,
            "a single demod slot must contend on the shared lines"
        );
        assert_eq!(cell("multiplexed").daq_contended, 0);
        assert_ne!(cell("starved").fingerprint, cell("multiplexed").fingerprint);
    }

    #[test]
    fn invalid_machine_is_named_in_the_error() {
        let mut bad = MachineDescription::baseline();
        bad.daq.demod_slots = 0;
        let machines = vec![SweepMachine {
            name: "starved".into(),
            desc: bad,
        }];
        let err = run_sweep(&machines, 7, 2).unwrap_err();
        assert!(
            err.contains("starved"),
            "error must name the machine: {err}"
        );
    }
}
