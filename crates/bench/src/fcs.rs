//! §7 fast-context-switch verification: an active qubit reset runs
//! concurrently with an RB sequence, and the context switch costs three
//! clock cycles.

use quape_core::{Machine, QuapeConfig, RunReport};
use quape_qpu::{BehavioralQpu, CliffordGroup, MeasurementModel};
use quape_workloads::rb::active_reset_with_rb;
use serde::{Deserialize, Serialize};

/// Result of the verification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FcsResult {
    /// Execution time with the fast context switch, ns.
    pub with_fcs_ns: u64,
    /// Execution time with MRCE stalling like plain feedback, ns.
    pub without_fcs_ns: u64,
    /// RB pulses issued before the measurement result returned (with
    /// FCS; without it this is 0).
    pub pulses_during_wait: usize,
    /// Measured context-switch cost in cycles (configured: 3).
    pub context_switch_cycles: u64,
    /// Number of context switches performed.
    pub context_switches: u64,
}

fn run_once(fcs: bool, seed: u64) -> (RunReport, u64) {
    let group = CliffordGroup::new();
    let w = active_reset_with_rb(&group, 0, 1, 16, seed).expect("valid workload");
    let mut cfg = QuapeConfig::superscalar(8).with_seed(seed);
    cfg.fast_context_switch = fcs;
    cfg.daq_jitter_ns = 0;
    let result_arrival = cfg.timings.readout_pulse_ns + cfg.daq_base_ns;
    let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysOne, seed);
    let report = Machine::new(cfg, w.program, Box::new(qpu))
        .expect("valid machine")
        .run();
    (report, result_arrival)
}

/// Runs the verification experiment.
pub fn run() -> FcsResult {
    let (with, arrival) = run_once(true, 5);
    let (without, _) = run_once(false, 5);
    let meas_t = with.issued.first().expect("measurement issued").time_ns;
    let pulses_during_wait = with
        .issued
        .iter()
        .filter(|o| o.op.qubits().any(|q| q.index() == 1) && o.time_ns < meas_t + arrival)
        .count();
    // The conditional X on q0 issues one context switch after the result
    // arrives; its issue time minus the arrival time measures the switch.
    let conditional = with
        .issued
        .iter()
        .find(|o| {
            matches!(o.op, quape_isa::QuantumOp::Gate1(quape_isa::Gate1::X, q) if q.index() == 0)
        })
        .expect("conditional X issued");
    let clock = 10;
    let switch_cycles = (conditional.time_ns - (meas_t + arrival)) / clock;
    FcsResult {
        with_fcs_ns: with.execution_time_ns(),
        without_fcs_ns: without.execution_time_ns(),
        pulses_during_wait,
        // Subtract the 1-cycle dispatch-to-issue latency of the quantum
        // pipeline to isolate the switch itself.
        context_switch_cycles: switch_cycles.saturating_sub(1),
        context_switches: with.stats.processors[0].context_switches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_context_switch_takes_three_cycles() {
        let r = run();
        assert_eq!(r.context_switch_cycles, 3, "{r:?}");
        assert_eq!(r.context_switches, 1);
    }

    #[test]
    fn rb_proceeds_during_reset_wait_only_with_fcs() {
        let r = run();
        assert!(r.pulses_during_wait > 10, "{r:?}");
        assert!(r.with_fcs_ns < r.without_fcs_ns, "{r:?}");
    }
}
