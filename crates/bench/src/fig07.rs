//! Fig. 7: the scheduler status-register flow during prefetch and block
//! switching, reproduced as an event trace of the 4-block example circuit
//! of Fig. 6 / Table 1.

use quape_core::{BlockEvent, Machine, QuapeConfig};
use quape_isa::{ClassicalOp, Dependency, Gate1, Gate2, Program, ProgramBuilder, QuantumOp, Qubit};
use quape_qpu::{BehavioralQpu, MeasurementModel};

/// Builds the Fig. 6 example: W1 ∥ W2, then W3 (depends on both), then W4.
pub fn example_program() -> Program {
    let mut b = ProgramBuilder::new();
    let g = |q: u16| QuantumOp::Gate1(Gate1::H, Qubit::new(q));
    b.begin_block("W1", Dependency::none());
    for _ in 0..8 {
        b.quantum(2, g(0));
    }
    b.push(ClassicalOp::Stop);
    b.end_block();
    b.begin_block("W2", Dependency::none());
    for _ in 0..8 {
        b.quantum(2, g(1));
    }
    b.push(ClassicalOp::Stop);
    b.end_block();
    b.begin_block_named_deps("W3", &["W1", "W2"]);
    for _ in 0..4 {
        b.quantum(
            4,
            QuantumOp::Gate2(Gate2::Cnot, Qubit::new(0), Qubit::new(1)),
        );
    }
    b.push(ClassicalOp::Stop);
    b.end_block();
    b.begin_block_named_deps("W4", &["W3"]);
    for _ in 0..4 {
        b.quantum(2, g(0));
    }
    b.push(ClassicalOp::Stop);
    b.end_block();
    b.finish().expect("valid example program")
}

/// Runs the example on `n` processors and returns the status transitions.
pub fn run(processors: usize) -> Vec<BlockEvent> {
    let cfg = QuapeConfig::multiprocessor(processors);
    let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysZero, 1);
    let report = Machine::new(cfg, example_program(), Box::new(qpu))
        .expect("valid machine")
        .run();
    assert!(matches!(report.stop, quape_core::StopReason::Completed));
    report.block_events
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_isa::{BlockId, BlockStatus};

    #[test]
    fn w3_is_prefetched_before_it_executes() {
        let events = run(2);
        let w3: Vec<(u64, BlockStatus)> = events
            .iter()
            .filter(|e| e.block == BlockId(2))
            .map(|e| (e.cycle, e.status))
            .collect();
        let prefetch_at = w3.iter().find(|(_, s)| *s == BlockStatus::Prefetch);
        let exec_at = w3.iter().find(|(_, s)| *s == BlockStatus::InExecution);
        let (Some(p), Some(x)) = (prefetch_at, exec_at) else {
            panic!("W3 must pass through prefetch and execution: {w3:?}");
        };
        assert!(p.0 < x.0, "prefetch {} must precede execution {}", p.0, x.0);
    }

    #[test]
    fn all_blocks_finish_in_dependency_order() {
        let events = run(2);
        let done = |b: u16| {
            events
                .iter()
                .find(|e| e.block == BlockId(b) && e.status == BlockStatus::Done)
                .map(|e| e.cycle)
                .expect("block finished")
        };
        assert!(done(0) < done(2) && done(1) < done(2));
        assert!(done(2) < done(3));
    }
}
