//! Plain-text table rendering and JSON record dumping for the harness.

use serde::Serialize;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics when the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Serializes experiment rows as pretty JSON (for plotting scripts).
///
/// # Panics
///
/// Panics if serialization fails (plain data types never do).
pub fn to_json<T: Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).expect("experiment rows serialize")
}

/// Writes experiment rows to `path` as pretty JSON with a trailing
/// newline — the `--json-out` backend shared by the bench binaries.
///
/// Ordering is deterministic: struct fields serialize in declaration
/// order and row vectors in their given order, so refreshing a committed
/// baseline (e.g. `BENCH_engine.json`) produces a minimal diff where
/// only measured values change.
///
/// # Panics
///
/// Panics if serialization or the write fails (bench binaries treat an
/// unwritable baseline path as fatal).
pub fn write_json<T: Serialize>(path: &str, rows: &T) {
    let mut text = to_json(rows);
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// Extracts the *schema fingerprint* of a JSON document: the sorted,
/// deduplicated set of dotted key paths, with array levels rendered as
/// `[]`. `[{"a": 1, "b": {"c": 2}}]` fingerprints as
/// `["[].a", "[].b", "[].b.c"]`. Two documents with the same
/// fingerprint have the same shape regardless of their values — which
/// is exactly what a committed `BENCH_*.json` baseline must share with
/// the binary that refreshes it.
///
/// The parser is a minimal hand-rolled scanner (the vendored
/// `serde_json` shim is render-only): it understands objects, arrays,
/// strings with escapes, and skims every other scalar to its
/// terminating delimiter.
///
/// # Errors
///
/// Returns a message describing the first malformed construct (unclosed
/// string/brace, missing colon, truncated document).
pub fn schema_fingerprint(json: &str) -> Result<Vec<String>, String> {
    struct Scanner<'a> {
        bytes: &'a [u8],
        at: usize,
        paths: std::collections::BTreeSet<String>,
    }
    impl Scanner<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.at)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.at += 1;
            }
        }
        fn expect(&mut self, b: u8) -> Result<(), String> {
            self.skip_ws();
            if self.bytes.get(self.at) == Some(&b) {
                self.at += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", char::from(b), self.at))
            }
        }
        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let start = self.at;
            while let Some(&b) = self.bytes.get(self.at) {
                match b {
                    b'\\' => self.at += 2,
                    b'"' => {
                        let s = String::from_utf8_lossy(&self.bytes[start..self.at]).into_owned();
                        self.at += 1;
                        return Ok(s);
                    }
                    _ => self.at += 1,
                }
            }
            Err(format!("unterminated string at byte {start}"))
        }
        fn value(&mut self, path: &str) -> Result<(), String> {
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b'{') => {
                    self.at += 1;
                    self.skip_ws();
                    if self.bytes.get(self.at) == Some(&b'}') {
                        self.at += 1;
                        return Ok(());
                    }
                    loop {
                        let key = self.string()?;
                        self.expect(b':')?;
                        let child = if path.is_empty() {
                            key.clone()
                        } else {
                            format!("{path}.{key}")
                        };
                        self.paths.insert(child.clone());
                        self.value(&child)?;
                        self.skip_ws();
                        match self.bytes.get(self.at) {
                            Some(b',') => self.at += 1,
                            Some(b'}') => {
                                self.at += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected `,` or `}}` at byte {}", self.at)),
                        }
                    }
                }
                Some(b'[') => {
                    self.at += 1;
                    self.skip_ws();
                    if self.bytes.get(self.at) == Some(&b']') {
                        self.at += 1;
                        return Ok(());
                    }
                    let child = if path.is_empty() {
                        "[]".to_string()
                    } else {
                        format!("{path}.[]")
                    };
                    loop {
                        self.value(&child)?;
                        self.skip_ws();
                        match self.bytes.get(self.at) {
                            Some(b',') => self.at += 1,
                            Some(b']') => {
                                self.at += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected `,` or `]` at byte {}", self.at)),
                        }
                    }
                }
                Some(b'"') => self.string().map(|_| ()),
                Some(_) => {
                    // Number / true / false / null: skim to a delimiter.
                    while self.bytes.get(self.at).is_some_and(|b| {
                        !matches!(b, b',' | b'}' | b']') && !b.is_ascii_whitespace()
                    }) {
                        self.at += 1;
                    }
                    Ok(())
                }
                None => Err("truncated document".to_string()),
            }
        }
    }
    let mut s = Scanner {
        bytes: json.as_bytes(),
        at: 0,
        paths: std::collections::BTreeSet::new(),
    };
    s.value("")?;
    s.skip_ws();
    if s.at != s.bytes.len() {
        return Err(format!("trailing garbage at byte {}", s.at));
    }
    Ok(s.paths.into_iter().collect())
}

/// Compares a committed baseline's schema fingerprint against the
/// fingerprint of `current` (a freshly rendered sample of the same row
/// type) — the `--check-schema` backend shared by the bench binaries.
/// A mismatch means the row struct changed without refreshing the
/// committed JSON (or vice versa).
///
/// # Errors
///
/// Returns a diagnostic naming the paths only one side has.
pub fn check_schema(path: &str, current: &str) -> Result<(), String> {
    let committed =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let have = schema_fingerprint(&committed).map_err(|e| format!("{path}: {e}"))?;
    let want = schema_fingerprint(current).map_err(|e| format!("current rows: {e}"))?;
    if have == want {
        return Ok(());
    }
    let missing: Vec<_> = want.iter().filter(|p| !have.contains(p)).collect();
    let stale: Vec<_> = have.iter().filter(|p| !want.contains(p)).collect();
    Err(format!(
        "schema drift in {path}: committed baseline lacks {missing:?}, has stale {stale:?} — \
         refresh it with the binary's --json-out"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn json_dump_works() {
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        let s = to_json(&vec![R { x: 1 }]);
        assert!(s.contains("\"x\": 1"));
    }

    #[test]
    fn fingerprint_extracts_sorted_key_paths() {
        let fp = schema_fingerprint(r#"[{"b": {"c": [1, 2]}, "a": "x"}]"#).unwrap();
        assert_eq!(fp, vec!["[].a", "[].b", "[].b.c"]);
        // Values do not matter, only shape.
        let fp2 = schema_fingerprint(r#"[{"a": "other", "b": {"c": []}}]"#).unwrap();
        assert_eq!(fp, fp2);
        // A missing key is a different shape.
        let fp3 = schema_fingerprint(r#"[{"a": 1}]"#).unwrap();
        assert_ne!(fp, fp3);
    }

    #[test]
    fn fingerprint_survives_escapes_and_rejects_garbage() {
        let fp = schema_fingerprint(r#"{"we\"ird": true, "n": -1.5e3}"#).unwrap();
        assert_eq!(fp.len(), 2);
        assert!(schema_fingerprint("{\"open\": ").is_err());
        assert!(schema_fingerprint("[1, 2] trailing").is_err());
    }

    #[test]
    fn fingerprint_matches_rendered_rows() {
        #[derive(Serialize)]
        struct Row {
            name: String,
            nested: Vec<u64>,
        }
        let rendered = to_json(&vec![Row {
            name: "x".into(),
            nested: vec![1, 2],
        }]);
        let fp = schema_fingerprint(&rendered).unwrap();
        assert_eq!(fp, vec!["[].name", "[].nested"]);
    }
}
