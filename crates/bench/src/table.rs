//! Plain-text table rendering and JSON record dumping for the harness.

use serde::Serialize;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics when the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Serializes experiment rows as pretty JSON (for plotting scripts).
///
/// # Panics
///
/// Panics if serialization fails (plain data types never do).
pub fn to_json<T: Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).expect("experiment rows serialize")
}

/// Writes experiment rows to `path` as pretty JSON with a trailing
/// newline — the `--json-out` backend shared by the bench binaries.
///
/// Ordering is deterministic: struct fields serialize in declaration
/// order and row vectors in their given order, so refreshing a committed
/// baseline (e.g. `BENCH_engine.json`) produces a minimal diff where
/// only measured values change.
///
/// # Panics
///
/// Panics if serialization or the write fails (bench binaries treat an
/// unwritable baseline path as fatal).
pub fn write_json<T: Serialize>(path: &str, rows: &T) {
    let mut text = to_json(rows);
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn json_dump_works() {
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        let s = to_json(&vec![R { x: 1 }]);
        assert!(s.contains("\"x\": 1"));
    }
}
