//! # quape-bench — the experiment harness
//!
//! One runner per table/figure of the paper's evaluation. Each runner
//! returns typed rows; the binaries under `src/bin/` print them in the
//! layout of the corresponding figure and can dump JSON for plotting.
//!
//! | Paper artifact | Runner | Binary |
//! |---|---|---|
//! | Fig. 2 (feedback latency breakdown) | [`fig02`] | `fig02_feedback_latency` |
//! | Table 1 (block information table) | [`tables`] | `table1_block_info` |
//! | Fig. 7 (scheduler status flow) | [`fig07`] | `fig07_status_flow` |
//! | Fig. 11 (multiprocessor speedup) | [`fig11`] | `fig11_multiprocessor` |
//! | Fig. 12 (two-core benchmarks) | [`fig12`] | `fig12_two_core` |
//! | Fig. 13 (superscalar TR) | [`fig13`] | `fig13_superscalar` |
//! | Fig. 14 (RB / simRB) | [`fig14`] | `fig14_simrb` |
//! | Table 2 (QuAPE vs QuMA_v2) | [`tables`] | `table2_comparison` |
//! | §7 fast context switch | [`fcs`] | `fcs_context_switch` |
//!
//! Beyond the paper, [`mixed`] / `mixed_traffic` benchmark the
//! multi-tenant job service (`quape-server`) against a naive
//! per-request client on a heterogeneous traffic stream, and
//! [`sharded`] / `sharded_traffic` benchmark the HiMA-style front
//! router (`quape-router`): shard-count scaling and warm-cache sticky
//! placement against round-robin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fcs;
pub mod fig02;
pub mod fig07;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod mixed;
pub mod sharded;
mod support;
pub mod sweep;
pub mod table;
pub mod tables;
