//! Fig. 13: average Time Ratio of the 8-way superscalar vs the scalar
//! baseline on the seven suite benchmarks.

use quape_compiler::Compiler;
use quape_core::{ces_report_paper, Machine, QuapeConfig};
use quape_qpu::{BehavioralQpu, MeasurementModel};
use quape_workloads::benchmark_suite;
use serde::{Deserialize, Serialize};

/// One benchmark's TR results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Suite of origin.
    pub source: String,
    /// Average TR of the scalar baseline.
    pub baseline_avg_tr: f64,
    /// Maximum TR of the scalar baseline.
    pub baseline_max_tr: f64,
    /// Average TR of the 8-way superscalar.
    pub superscalar_avg_tr: f64,
    /// Maximum TR of the 8-way superscalar.
    pub superscalar_max_tr: f64,
    /// Improvement factor (baseline avg / superscalar avg).
    pub improvement: f64,
    /// True when the 8-way superscalar's *average* TR is ≤ 1 — the
    /// quantity Fig. 13 plots against its dotted TR = 1 line.
    pub superscalar_meets_deadline: bool,
}

/// Runs one benchmark through a configuration and returns its CES report.
fn tr_of(cfg: QuapeConfig, program: quape_isa::Program) -> quape_core::CesReport {
    let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 }, 7);
    let report = Machine::new(cfg, program, Box::new(qpu))
        .expect("valid machine")
        .run();
    assert!(
        matches!(report.stop, quape_core::StopReason::Completed),
        "benchmark did not complete: {:?}",
        report.stop
    );
    ces_report_paper(&report)
}

/// Runs the full Fig. 13 experiment.
pub fn run() -> Vec<Fig13Row> {
    let compiler = Compiler::new();
    benchmark_suite()
        .into_iter()
        .map(|b| {
            let program = compiler.compile(&b.circuit).expect("benchmark compiles");
            let baseline = tr_of(QuapeConfig::scalar_baseline(), program.clone());
            let wide = tr_of(QuapeConfig::superscalar(8), program);
            Fig13Row {
                benchmark: b.name.to_string(),
                source: b.source.to_string(),
                baseline_avg_tr: baseline.average_tr(),
                baseline_max_tr: baseline.max_tr(),
                superscalar_avg_tr: wide.average_tr(),
                superscalar_max_tr: wide.max_tr(),
                improvement: baseline.average_tr() / wide.average_tr(),
                superscalar_meets_deadline: wide.average_tr() <= 1.0 + 1e-9,
            }
        })
        .collect()
}

/// Geometric-free arithmetic mean improvement across the suite (the
/// paper's headline 4.04×).
pub fn average_improvement(rows: &[Fig13Row]) -> f64 {
    rows.iter().map(|r| r.improvement).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_meet_deadline_at_8_way() {
        let rows = run();
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(
                r.superscalar_meets_deadline,
                "{} exceeds TR 1: {r:?}",
                r.benchmark
            );
            assert!(r.improvement >= 1.0, "{} got slower", r.benchmark);
        }
    }

    #[test]
    fn hs16_saturates_the_superscalar() {
        let rows = run();
        let hs = rows
            .iter()
            .find(|r| r.benchmark == "hs16")
            .expect("hs16 present");
        assert!(
            (hs.improvement - 8.0).abs() < 0.15,
            "hs16 improvement {} should be ≈ 8.00",
            hs.improvement
        );
    }

    #[test]
    fn rd84_has_limited_parallelism() {
        let rows = run();
        let rd = rows
            .iter()
            .find(|r| r.benchmark == "rd84_143")
            .expect("rd84 present");
        assert!(
            (rd.improvement - 1.6).abs() < 0.25,
            "rd84_143 improvement {} should be ≈ 1.6",
            rd.improvement
        );
        assert!(rd.baseline_avg_tr < 1.0);
        assert!(
            (rd.baseline_max_tr - 4.5).abs() < 0.75,
            "max TR {}",
            rd.baseline_max_tr
        );
    }

    #[test]
    fn last_two_baselines_under_one_with_high_peaks() {
        let rows = run();
        let sym = rows
            .iter()
            .find(|r| r.benchmark == "sym9_146")
            .expect("sym9 present");
        assert!(
            sym.baseline_avg_tr < 1.0,
            "sym9 avg {}",
            sym.baseline_avg_tr
        );
        assert!(
            (sym.baseline_max_tr - 9.0).abs() < 1.0,
            "sym9 max {}",
            sym.baseline_max_tr
        );
    }
}
