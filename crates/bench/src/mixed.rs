//! Mixed-traffic serving benchmark: the `JobServer` versus a naive
//! per-request client on one heterogeneous request stream.
//!
//! Three scenarios over the *same* deterministic traffic
//! ([`quape_workloads::traffic::mixed_traffic`]):
//!
//! * **naive** — no service layer: each request assembles its source
//!   text, compiles a fresh job, and runs its shots sequentially;
//! * **server_cold** — a fresh [`JobServer`]: every distinct program
//!   compiles once (content-hash cache misses), repeats hit;
//! * **server_warm** — the same server again: the whole stream is served
//!   from the compiled-job cache.
//!
//! Every request's latency is measured from one common arrival epoch
//! (the queue is handed over at t=0 in all three scenarios), so p50/p95
//! compare the *tenant experience*, and the per-request aggregates are
//! asserted bit-identical across all scenarios — the benchmark doubles
//! as a differential test of the serving layer.

use crate::support::{factory, percentile, priority_of};
use quape_core::{CompiledJob, QuapeConfig, ShotEngine};
use quape_obs::{ObsScope, Recorder};
use quape_server::{
    CacheStats, JobRequest, JobServer, JobSource, PackerConfig, PackerStats, ServerConfig,
};
use quape_workloads::traffic::{mixed_traffic, small_job_traffic, TrafficRequest};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Host-side measurements of one serving scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// `naive`, `server_cold` or `server_warm`.
    pub scenario: String,
    /// Requests served.
    pub requests: u64,
    /// Total shots executed across all requests.
    pub total_shots: u64,
    /// Wall time for the whole stream, milliseconds.
    pub wall_ms: f64,
    /// Requests per second.
    pub jobs_per_sec: f64,
    /// Median request latency (arrival → completion), microseconds.
    pub p50_latency_us: u64,
    /// 95th-percentile request latency, microseconds.
    pub p95_latency_us: u64,
    /// Compile-cache hits in this scenario (0 for naive).
    pub cache_hits: u64,
    /// Compile-cache misses in this scenario (= requests for naive).
    pub cache_misses: u64,
    /// Compile-cache evictions in this scenario.
    pub cache_evictions: u64,
    /// Compilations actually performed.
    pub compiles: u64,
}

fn scenario_row(
    scenario: &str,
    traffic: &[TrafficRequest],
    mut latencies_us: Vec<u64>,
    wall_ms: f64,
    cache: (u64, u64, u64, u64),
) -> ScenarioResult {
    latencies_us.sort_unstable();
    ScenarioResult {
        scenario: scenario.to_string(),
        requests: traffic.len() as u64,
        total_shots: traffic.iter().map(|r| r.shots).sum(),
        wall_ms,
        jobs_per_sec: traffic.len() as f64 / (wall_ms / 1000.0),
        p50_latency_us: percentile(&latencies_us, 50),
        p95_latency_us: percentile(&latencies_us, 95),
        cache_hits: cache.0,
        cache_misses: cache.1,
        cache_evictions: cache.2,
        compiles: cache.3,
    }
}

/// Per-request latencies (µs), per-request aggregates, and total wall
/// time (ms) of one scenario pass.
type PassMeasurement = (Vec<u64>, Vec<quape_core::BatchAggregate>, f64);

/// Cache-counter delta over one pass: (hits, misses, evictions,
/// compiles).
type CacheDelta = (u64, u64, u64, u64);

/// A server pass: latencies, aggregates, wall ms, cache delta.
type ServerPass = (Vec<u64>, Vec<quape_core::BatchAggregate>, f64, CacheDelta);

/// The naive client: per request, parse + compile + run, sequentially on
/// one thread. Returns (latencies µs, per-request aggregates).
fn run_naive(cfg: &QuapeConfig, traffic: &[TrafficRequest], base_seed: u64) -> PassMeasurement {
    let epoch = Instant::now();
    let mut latencies = Vec::with_capacity(traffic.len());
    let mut aggregates = Vec::with_capacity(traffic.len());
    for (i, r) in traffic.iter().enumerate() {
        let program = quape_isa::assemble(&r.source).expect("traffic source assembles");
        let job = CompiledJob::compile(cfg.clone(), program).expect("traffic job compiles");
        let report = ShotEngine::new(job, factory(cfg))
            .base_seed(base_seed + i as u64)
            .threads(1)
            .run(r.shots);
        latencies.push(epoch.elapsed().as_micros() as u64);
        aggregates.push(report.aggregate);
    }
    let wall_ms = epoch.elapsed().as_secs_f64() * 1000.0;
    (latencies, aggregates, wall_ms)
}

/// One server pass over the traffic. Returns (latencies µs, aggregates,
/// wall ms, cache-stat delta).
fn run_server_pass(
    server: &JobServer,
    cfg: &QuapeConfig,
    traffic: &[TrafficRequest],
    base_seed: u64,
) -> ServerPass {
    let before = server.cache_stats();
    let epoch = Instant::now();
    // Per-request offset of its submission from the common arrival
    // epoch: added to the server-measured submit→completion latency so
    // all scenarios report arrival-epoch latencies (a request queued
    // behind earlier submissions' compiles pays that wait too, exactly
    // as the naive client's sequential queue does).
    let mut submit_offsets = Vec::with_capacity(traffic.len());
    for (i, r) in traffic.iter().enumerate() {
        submit_offsets.push(epoch.elapsed());
        let req = JobRequest::new(
            r.name.clone(),
            JobSource::Text(r.source.clone()),
            cfg.clone(),
            factory(cfg),
            r.shots,
        )
        .base_seed(base_seed + i as u64)
        .priority(priority_of(r.priority_class))
        .tenant(r.tenant.clone());
        let _ = server.submit(req).expect("traffic request submits");
    }
    let results = server.run();
    let wall_ms = epoch.elapsed().as_secs_f64() * 1000.0;
    let after = server.cache_stats();
    assert_eq!(results.len(), traffic.len());
    let latencies = results
        .iter()
        .zip(&submit_offsets)
        .map(|(r, off)| (*off + r.latency).as_micros() as u64)
        .collect();
    let aggregates = results.into_iter().map(|r| r.aggregate).collect();
    let delta = (
        after.hits - before.hits,
        after.misses - before.misses,
        after.evictions - before.evictions,
        after.compiles - before.compiles,
    );
    (latencies, aggregates, wall_ms, delta)
}

/// Runs the three scenarios on one deterministic traffic stream and
/// asserts every request's aggregate is bit-identical across them.
/// Returns the scenario rows plus the kept server's per-tenant cache
/// accounting.
///
/// `threads = 0` means `available_parallelism` for the server pool (the
/// naive client is always sequential — it models a tenant with no
/// service layer in front of the stack). Each scenario executes
/// `repeats` passes and reports its fastest pass: the simulated work is
/// deterministic, so repeat variance is pure host noise (scheduler,
/// frequency scaling) and the minimum is the honest estimate for every
/// scenario alike.
pub fn run_mixed_traffic(
    seed: u64,
    requests: usize,
    threads: usize,
    repeats: usize,
) -> (Vec<ScenarioResult>, Vec<(String, CacheStats)>) {
    run_mixed_traffic_on(None, seed, requests, threads, repeats)
}

/// [`run_mixed_traffic`] on a declarative machine description instead of
/// the baseline: every scenario (naive, cache-cold, cache-warm) runs the
/// stream on `machine`'s lowered config. `None` is the paper's
/// uniprocessor baseline.
///
/// # Panics
///
/// Panics if `machine` does not lower to a valid config — resolve and
/// validate it first (e.g. with [`crate::sweep::resolve_machine`]).
pub fn run_mixed_traffic_on(
    machine: Option<&quape_core::MachineDescription>,
    seed: u64,
    requests: usize,
    threads: usize,
    repeats: usize,
) -> (Vec<ScenarioResult>, Vec<(String, CacheStats)>) {
    run_mixed_traffic_observed(machine, seed, requests, threads, repeats, &Recorder::off())
}

/// [`run_mixed_traffic_on`] with lifecycle tracing: every server pass
/// records into `recorder`. Each server instance gets its own trace
/// scope (`server-0`, `server-1`, …) because server job ids restart per
/// instance and the lifecycle audit keys on (scope, job); the last
/// scope also carries the warm passes, which re-drive the kept server.
/// Telemetry observes the schedule without steering it, so the
/// naive/cold/warm bit-identity asserts run unchanged with tracing on.
pub fn run_mixed_traffic_observed(
    machine: Option<&quape_core::MachineDescription>,
    seed: u64,
    requests: usize,
    threads: usize,
    repeats: usize,
    recorder: &Recorder,
) -> (Vec<ScenarioResult>, Vec<(String, CacheStats)>) {
    let repeats = repeats.max(1);
    let traffic = mixed_traffic(seed, requests);
    let cfg = machine
        .map(|m| m.to_config().expect("machine description validates"))
        .unwrap_or_else(QuapeConfig::uniprocessor)
        .with_seed(seed);
    let base_seed = seed.wrapping_mul(1000);

    /// Runs `repeats` passes and keeps the one with the smallest wall
    /// time (as projected by `wall_of`) — one selection rule for all
    /// three scenarios.
    fn best_of<T>(repeats: usize, wall_of: impl Fn(&T) -> f64, mut run: impl FnMut() -> T) -> T {
        let mut best = run();
        for _ in 1..repeats {
            let pass = run();
            if wall_of(&pass) < wall_of(&best) {
                best = pass;
            }
        }
        best
    }

    let (naive_lat, naive_aggs, naive_wall) = best_of(
        repeats,
        |p: &PassMeasurement| p.2,
        || run_naive(&cfg, &traffic, base_seed),
    );

    // Cold passes each use a fresh server (an empty cache is the
    // scenario); the last server is kept and re-driven for the warm
    // passes, which all hit its populated cache.
    let mut instance = 0u32;
    let mut new_server = || {
        let scope = recorder.labeled_scope(instance, &format!("server-{instance}"));
        instance += 1;
        JobServer::new(ServerConfig {
            threads,
            shot_quantum: 8,
            cache_capacity: 16,
            machine: machine.cloned(),
            packer: None,
            obs: scope,
        })
    };
    let mut server = None;
    let (cold_lat, cold_aggs, cold_wall, cold_cache) = best_of(
        repeats,
        |p: &ServerPass| p.2,
        || {
            let s = server.insert(new_server());
            run_server_pass(s, &cfg, &traffic, base_seed)
        },
    );
    let server = server.expect("at least one cold pass ran");

    let (warm_lat, warm_aggs, warm_wall, warm_cache) = best_of(
        repeats,
        |p: &ServerPass| p.2,
        || run_server_pass(&server, &cfg, &traffic, base_seed),
    );
    assert_eq!(warm_cache.1, 0, "warm passes must not miss the cache");

    for (i, naive) in naive_aggs.iter().enumerate() {
        assert_eq!(
            naive, &cold_aggs[i],
            "request {i}: cold server diverged from the naive client"
        );
        assert_eq!(
            naive, &warm_aggs[i],
            "request {i}: warm server diverged from the naive client"
        );
    }

    let n = traffic.len() as u64;
    let rows = vec![
        scenario_row("naive", &traffic, naive_lat, naive_wall, (0, n, 0, n)),
        scenario_row("server_cold", &traffic, cold_lat, cold_wall, cold_cache),
        scenario_row("server_warm", &traffic, warm_lat, warm_wall, warm_cache),
    ];
    // Per-tenant attribution over the kept server's whole life (the
    // final cold pass plus every warm pass).
    (rows, server.tenant_stats())
}

/// The headline ratio: cache-warm server throughput over the naive
/// client's, on the matching rows of a [`run_mixed_traffic`] result.
pub fn warm_speedup(rows: &[ScenarioResult]) -> f64 {
    let rate = |name: &str| {
        rows.iter()
            .find(|r| r.scenario == name)
            .map(|r| r.jobs_per_sec)
            .unwrap_or(f64::NAN)
    };
    rate("server_warm") / rate("naive")
}

/// Outcome of the packed-vs-interleaved comparison
/// ([`run_packed_traffic`]).
#[derive(Debug, Clone)]
pub struct PackedOutcome {
    /// The `interleaved` and `packed` scenario rows.
    pub rows: Vec<ScenarioResult>,
    /// The packed server's packer counters over all measured passes.
    pub packer: PackerStats,
    /// Packed jobs/sec over interleaved jobs/sec (the CI gate ratio).
    pub pack_ratio: f64,
}

/// The §3.1.2 space-multiplexing comparison: one small-job-heavy stream
/// ([`small_job_traffic`] — uniform shots and priority, narrow
/// programs) served twice by the same `JobServer` machinery, once
/// interleaving jobs in time only and once with the multiprogramming
/// packer merging compatible jobs into combined shot streams.
///
/// Every request's aggregate is asserted **bit-identical** across the
/// two passes — the interleaved pass is the packed pass's oracle, so
/// the throughput ratio compares equal work. Each scenario keeps one
/// server across `repeats` measured passes (after one unmeasured
/// warm-up pass), so both run compile-cache-warm and the packed pass
/// re-uses its combined compilations; the measured passes alternate
/// between the two servers (adjacent pairs see the same host-speed
/// drift) and each side reports its fastest pass.
///
/// # Panics
///
/// Panics when any packed aggregate diverges from its interleaved
/// oracle, or when the packed passes never form a pack (the comparison
/// would be vacuous).
pub fn run_packed_traffic(
    seed: u64,
    requests: usize,
    threads: usize,
    repeats: usize,
) -> PackedOutcome {
    run_packed_traffic_observed(seed, requests, threads, repeats, &Recorder::off())
}

/// [`run_packed_traffic`] with lifecycle tracing: the interleaved
/// server records into scope 0 (`interleaved`) and the packed server
/// into scope 1 (`packed`), so an exported trace shows the same stream
/// served both ways side by side — packed quanta covering whole packs
/// ([`Packed`](quape_obs::TraceKind::Packed) events tie members to
/// their combined entry) against one-member-per-quantum interleaving.
pub fn run_packed_traffic_observed(
    seed: u64,
    requests: usize,
    threads: usize,
    repeats: usize,
    recorder: &Recorder,
) -> PackedOutcome {
    let repeats = repeats.max(1);
    let traffic = small_job_traffic(seed, requests);
    let cfg = QuapeConfig::uniprocessor().with_seed(seed);
    let base_seed = seed.wrapping_mul(1000);
    let server_cfg = |packer: Option<PackerConfig>, obs: ObsScope| ServerConfig {
        threads,
        // A fine preemption quantum — the latency-fairness setting a
        // multi-tenant server actually runs — is where packing pays:
        // every claimed quantum covers all co-resident members at once,
        // so the packed side takes one scheduler round-trip where the
        // interleaved side takes one *per member*.
        shot_quantum: 1,
        cache_capacity: 16,
        machine: None,
        packer,
        obs,
    };

    let warm = |packer: Option<PackerConfig>, obs: ObsScope| {
        let server = JobServer::new(server_cfg(packer, obs));
        // Warm-up pass: populate the compile cache (including the
        // packed pass's combined programs) so the measured passes
        // compare steady-state serving, not first-contact compiles.
        let _ = run_server_pass(&server, &cfg, &traffic, base_seed);
        server
    };
    let interleaved = warm(None, recorder.labeled_scope(0, "interleaved"));
    let packed = warm(
        Some(PackerConfig::default()),
        recorder.labeled_scope(1, "packed"),
    );

    // The measured passes alternate between the two servers. Host
    // throughput drifts on timescales comparable to a scenario's whole
    // repeat loop, so running one scenario's repeats back-to-back and
    // then the other's hands whichever ran during a slow window a
    // phantom loss; adjacent pairs expose both sides to the same drift
    // and best-of-K then compares like against like.
    let mut best_i: Option<ServerPass> = None;
    let mut best_p: Option<ServerPass> = None;
    let mut pair_ratios = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let pass_i = run_server_pass(&interleaved, &cfg, &traffic, base_seed);
        let pass_p = run_server_pass(&packed, &cfg, &traffic, base_seed);
        // Jobs/sec ratio of this adjacent pair (equal job counts, so
        // the wall ratio is the throughput ratio).
        pair_ratios.push(pass_i.2 / pass_p.2);
        if best_i.as_ref().is_none_or(|b| pass_i.2 < b.2) {
            best_i = Some(pass_i);
        }
        if best_p.as_ref().is_none_or(|b| pass_p.2 < b.2) {
            best_p = Some(pass_p);
        }
    }
    // The gate ratio is the *median pair ratio*, not the ratio of the
    // per-side minima: a noise spike lengthens whichever pass it lands
    // on, so per-pair ratios scatter symmetrically around the true
    // value and the median sheds both tails — while two independent
    // minima can sample different drift windows and compare a lucky
    // pass against an unlucky one.
    pair_ratios.sort_by(f64::total_cmp);
    let pack_ratio = pair_ratios[pair_ratios.len() / 2];
    let packer = packed.packer_stats();
    let (lat, oracle, wall, cache) = best_i.expect("at least one pass");
    let interleaved_row = scenario_row("interleaved", &traffic, lat, wall, cache);
    let (lat, packed_aggs, wall, cache) = best_p.expect("at least one pass");
    let packed_row = scenario_row("packed", &traffic, lat, wall, cache);

    for (i, oracle_agg) in oracle.iter().enumerate() {
        assert_eq!(
            oracle_agg, &packed_aggs[i],
            "request {i}: packed run diverged from its interleaved oracle"
        );
    }
    assert!(
        packer.packs_formed > 0,
        "the packed passes never formed a pack — the comparison is vacuous"
    );

    PackedOutcome {
        rows: vec![interleaved_row, packed_row],
        packer,
        pack_ratio,
    }
}

/// Outcome of the obs-overhead comparison ([`run_obs_overhead`]).
#[derive(Debug)]
pub struct ObsOverheadOutcome {
    /// The `obs_off` and `obs_on` scenario rows.
    pub rows: Vec<ScenarioResult>,
    /// Obs-on jobs/sec over obs-off jobs/sec (the CI gate ratio; 1.0
    /// means tracing is free, the gate requires ≥ the configured floor).
    pub obs_ratio: f64,
    /// Trace events the observed side recorded across all its passes.
    pub trace_events: usize,
    /// The observed side's recorder, for trace/metrics export.
    pub recorder: Recorder,
}

/// The zero-cost-when-on check: the same mixed stream served by two
/// cache-warm servers, one with telemetry off (the compile-time-inert
/// no-op recorder) and one recording full metrics + lifecycle traces.
/// Every request's aggregate is asserted **bit-identical** between the
/// two sides on every pass — telemetry observes, it never steers — and
/// the throughput ratio is the CI gate for its runtime cost.
///
/// Measured passes alternate between the two servers and the gate ratio
/// is the median per-pair ratio, the same noise discipline as
/// [`run_packed_traffic`]'s pack gate: adjacent pairs see the same
/// host-speed drift and the median sheds both noise tails.
///
/// # Panics
///
/// Panics when an observed aggregate diverges from its unobserved
/// oracle, or when the observed side recorded no events (the comparison
/// would be vacuous).
pub fn run_obs_overhead(
    seed: u64,
    requests: usize,
    threads: usize,
    repeats: usize,
) -> ObsOverheadOutcome {
    let repeats = repeats.max(1);
    let traffic = mixed_traffic(seed, requests);
    let cfg = QuapeConfig::uniprocessor().with_seed(seed);
    let base_seed = seed.wrapping_mul(1000);
    let recorder = Recorder::new();
    let warm = |obs: ObsScope| {
        let server = JobServer::new(ServerConfig {
            threads,
            shot_quantum: 8,
            cache_capacity: 16,
            machine: None,
            packer: None,
            obs,
        });
        // Warm-up pass: both sides measure steady-state cache-warm
        // serving, where per-quantum recording is the largest fraction
        // of the work — the most obs-hostile regime.
        let _ = run_server_pass(&server, &cfg, &traffic, base_seed);
        server
    };
    let off = warm(ObsScope::off());
    let on = warm(recorder.labeled_scope(0, "observed"));

    let mut best_off: Option<ServerPass> = None;
    let mut best_on: Option<ServerPass> = None;
    let mut pair_ratios = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let pass_off = run_server_pass(&off, &cfg, &traffic, base_seed);
        let pass_on = run_server_pass(&on, &cfg, &traffic, base_seed);
        for (i, agg) in pass_off.1.iter().enumerate() {
            assert_eq!(
                agg, &pass_on.1[i],
                "request {i}: tracing steered the schedule — aggregates diverged"
            );
        }
        pair_ratios.push(pass_off.2 / pass_on.2);
        if best_off.as_ref().is_none_or(|b| pass_off.2 < b.2) {
            best_off = Some(pass_off);
        }
        if best_on.as_ref().is_none_or(|b| pass_on.2 < b.2) {
            best_on = Some(pass_on);
        }
    }
    pair_ratios.sort_by(f64::total_cmp);
    let obs_ratio = pair_ratios[pair_ratios.len() / 2];
    let trace_events = recorder.events().len() + recorder.dropped_events() as usize;
    assert!(
        trace_events > 0,
        "the observed side recorded nothing — the comparison is vacuous"
    );
    let (lat, _, wall, cache) = best_off.expect("at least one pass");
    let off_row = scenario_row("obs_off", &traffic, lat, wall, cache);
    let (lat, _, wall, cache) = best_on.expect("at least one pass");
    let on_row = scenario_row("obs_on", &traffic, lat, wall, cache);
    ObsOverheadOutcome {
        rows: vec![off_row, on_row],
        obs_ratio,
        trace_events,
        recorder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_agree_and_cache_behaves() {
        // Small stream: the differential asserts inside run_mixed_traffic
        // are the test; here we also pin the cache-behavior shape.
        let (rows, tenants) = run_mixed_traffic(1, 8, 1, 1);
        assert_eq!(rows.len(), 3);
        // Every request named one of the four stream tenants, and the
        // per-tenant rows account for every lookup of both server passes.
        assert!(!tenants.is_empty());
        let attributed: u64 = tenants.iter().map(|(_, s)| s.hits + s.misses).sum();
        assert_eq!(attributed, 16);
        let by = |name: &str| rows.iter().find(|r| r.scenario == name).unwrap();
        let cold = by("server_cold");
        let warm = by("server_warm");
        assert_eq!(cold.cache_hits + cold.cache_misses, 8);
        let pool_len = quape_workloads::traffic::program_pool().len() as u64;
        assert!(
            cold.compiles <= pool_len,
            "at most one compile per distinct program"
        );
        assert_eq!(warm.cache_misses, 0, "second pass is fully cache-warm");
        assert_eq!(warm.compiles, 0);
        assert_eq!(warm.cache_hits, 8);
    }

    #[test]
    fn packed_scenario_packs_and_matches_its_oracle() {
        // The bit-identity asserts inside run_packed_traffic are the
        // differential test; here we pin the comparison's shape.
        let outcome = run_packed_traffic(3, 12, 1, 1);
        assert_eq!(outcome.rows.len(), 2);
        assert_eq!(outcome.rows[0].scenario, "interleaved");
        assert_eq!(outcome.rows[1].scenario, "packed");
        assert!(outcome.packer.packs_formed > 0);
        assert!(outcome.packer.jobs_packed >= 2);
        assert!(outcome.pack_ratio.is_finite() && outcome.pack_ratio > 0.0);
        // Same stream, equal work on both sides.
        assert_eq!(outcome.rows[0].total_shots, outcome.rows[1].total_shots);
    }

    #[test]
    fn packed_trace_covers_every_lifecycle() {
        let recorder = Recorder::new();
        let outcome = run_packed_traffic_observed(3, 12, 1, 1, &recorder);
        assert!(outcome.packer.packs_formed > 0);
        // Both servers ran a warm-up plus one measured pass: 12 jobs
        // each per pass, every one with a complete traced lifecycle.
        let audit = quape_obs::audit_complete(&recorder.events(), 48).unwrap_or_else(|e| {
            panic!(
                "packed trace failed its audit: {e}\n{}",
                quape_obs::flight_recorder(&recorder)
            )
        });
        assert!(audit.quanta > 0);
        // Scope 1 is the packed server; its trace must show packs.
        assert!(recorder
            .events()
            .iter()
            .any(|ev| ev.shard == 1 && ev.kind == quape_obs::TraceKind::Packed));
    }

    #[test]
    fn obs_overhead_is_bit_identical_and_measured() {
        // The off-vs-on bit-identity asserts run inside; pin the shape.
        let o = run_obs_overhead(5, 8, 1, 1);
        assert_eq!(o.rows.len(), 2);
        assert_eq!(o.rows[0].scenario, "obs_off");
        assert_eq!(o.rows[1].scenario, "obs_on");
        assert!(o.obs_ratio.is_finite() && o.obs_ratio > 0.0);
        assert!(o.trace_events > 0);
        // The observed server served 2 passes of 8 jobs, all complete.
        quape_obs::audit_complete(&o.recorder.events(), 16).unwrap();
    }
}
