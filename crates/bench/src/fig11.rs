//! Fig. 11: Shor syndrome measurement on 1/2/4/6 processors × 3 failure
//! rates — mean execution time over many runs, plus actual and ideal
//! speedup.

use quape_core::{Machine, QuapeConfig};
use quape_qpu::BehavioralQpu;
use quape_workloads::{ShorSyndrome, ShorSyndromeConfig};
use serde::{Deserialize, Serialize};

/// Failure rates swept in the experiment (probability that a cat-state
/// verification fails and the preparation repeats).
pub const FAILURE_RATES: [f64; 3] = [0.1, 0.25, 0.5];

/// Processor counts swept in the experiment.
pub const PROCESSOR_COUNTS: [usize; 4] = [1, 2, 4, 6];

/// One (processors, failure rate) cell of Fig. 11.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Number of processing units.
    pub processors: usize,
    /// Verification failure rate.
    pub failure_rate: f64,
    /// Mean execution time in microseconds.
    pub mean_time_us: f64,
    /// Speedup vs the uniprocessor at the same failure rate.
    pub speedup: f64,
    /// Speedup of the zero-cost-scheduler variant (the paper's
    /// "theoretical speedup").
    pub ideal_speedup: f64,
}

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Options {
    /// Runs averaged per cell (paper: 1000).
    pub runs: usize,
    /// Base PRNG seed.
    pub seed: u64,
}

impl Default for Fig11Options {
    fn default() -> Self {
        Fig11Options { runs: 200, seed: 1 }
    }
}

fn mean_time_us(
    program: &quape_isa::Program,
    cfg_base: &QuapeConfig,
    failure_rate: f64,
    opts: Fig11Options,
) -> f64 {
    let mut total_ns = 0u64;
    for i in 0..opts.runs {
        let seed = opts.seed + i as u64;
        let cfg = cfg_base.clone().with_seed(seed);
        let model = ShorSyndrome::measurement_model(failure_rate);
        let qpu = BehavioralQpu::new(cfg.timings, model, seed ^ 0x5a5a);
        let report = Machine::new(cfg, program.clone(), Box::new(qpu))
            .expect("valid machine")
            .run_with_limit(2_000_000);
        assert!(
            matches!(report.stop, quape_core::StopReason::Completed),
            "Shor run did not complete: {:?}",
            report.stop
        );
        total_ns += report.execution_time_ns();
    }
    total_ns as f64 / opts.runs as f64 / 1000.0
}

/// Runs the full Fig. 11 sweep.
pub fn run(opts: Fig11Options) -> Vec<Fig11Row> {
    let workload = ShorSyndrome::generate(ShorSyndromeConfig::default()).expect("valid workload");
    let mut rows = Vec::new();
    for &f in &FAILURE_RATES {
        let mut base_real = None;
        let mut base_ideal = None;
        for &n in &PROCESSOR_COUNTS {
            let real = mean_time_us(&workload.program, &QuapeConfig::multiprocessor(n), f, opts);
            let ideal = mean_time_us(
                &workload.program,
                &QuapeConfig::multiprocessor(n).ideal(),
                f,
                opts,
            );
            let base_r = *base_real.get_or_insert(real);
            let base_i = *base_ideal.get_or_insert(ideal);
            rows.push(Fig11Row {
                processors: n,
                failure_rate: f,
                mean_time_us: real,
                speedup: base_r / real,
                ideal_speedup: base_i / ideal,
            });
        }
    }
    rows
}

/// The workload's structural statistics (printed alongside Fig. 11, the
/// paper reports 288 quantum / 252 classical instructions, 50 blocks, 15
/// priorities).
pub fn workload_stats() -> (usize, usize, usize, usize) {
    let w = ShorSyndrome::generate(ShorSyndromeConfig::default()).expect("valid workload");
    (
        w.program.quantum_count(),
        w.program.classical_count(),
        w.blocks,
        w.priorities,
    )
}

/// Best speedup at 6 processors across failure rates (paper: 2.59×).
pub fn peak_speedup(rows: &[Fig11Row]) -> f64 {
    rows.iter()
        .filter(|r| r.processors == 6)
        .map(|r| r.speedup)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_processors() {
        let rows = run(Fig11Options { runs: 12, seed: 7 });
        assert_eq!(rows.len(), 12);
        for &f in &FAILURE_RATES {
            let series: Vec<&Fig11Row> = rows
                .iter()
                .filter(|r| (r.failure_rate - f).abs() < 1e-9)
                .collect();
            assert!(series[0].speedup == 1.0);
            assert!(
                series[3].speedup > 1.8,
                "6-core speedup {} too small at f={f}",
                series[3].speedup
            );
            // Ideal is at least as good as real.
            for r in &series {
                assert!(r.ideal_speedup >= r.speedup * 0.95, "{r:?}");
            }
        }
    }

    #[test]
    fn higher_failure_rate_means_longer_runs() {
        let rows = run(Fig11Options { runs: 12, seed: 3 });
        let t = |f: f64, n: usize| {
            rows.iter()
                .find(|r| (r.failure_rate - f).abs() < 1e-9 && r.processors == n)
                .expect("cell present")
                .mean_time_us
        };
        assert!(t(0.5, 1) > t(0.1, 1), "failures must prolong execution");
    }
}
