//! Sharded-router serving benchmark: shard-count scaling and placement
//! policy on one deterministic multi-program traffic stream.
//!
//! Every configuration (shard count × [`Placement`]) serves the *same*
//! stream ([`quape_workloads::traffic::sharded_traffic`]): a catalog of
//! more distinct programs than any one shard's compile cache holds, at
//! probe-sized shot counts — the calibration-dominated regime where
//! per-request compilation is the cost that placement policy decides:
//!
//! * **round-robin** spreads each program over every shard, so every
//!   shard's small LRU cache churns through the whole catalog;
//! * **sticky-by-digest** partitions the catalog — each program always
//!   lands on the shard that already holds it, so a *warm* fleet serves
//!   the stream without compiling at all.
//!
//! Each configuration runs one priming pass and then `repeats` measured
//! passes (fastest kept). Every request's aggregate is asserted
//! bit-identical across *all* configurations — the benchmark doubles as
//! the router's cross-shard differential test.
//!
//! Two fault/fairness scenarios ride along (CI runs both):
//! [`run_kill_shard`] re-serves the stream while a [`FaultPlan`] kills
//! a shard mid-submission (every job must complete bit-identically on a
//! survivor), and [`run_hot_tenant`] floods a [`FrontDoor`] from one
//! hog tenant and proves the mouse tenants' starvation bound in
//! dispatched shots.

use crate::support::{factory, percentile, priority_of};
use quape_core::{BatchAggregate, QuapeConfig};
use quape_obs::{audit_complete, flight_recorder, Recorder};
use quape_router::{
    AdmissionConfig, FaultPlan, FleetSnapshot, FrontDoor, Placement, RoutedJob, Router,
    RouterConfig,
};
use quape_server::{JobRequest, JobSource, ServerConfig};
use quape_workloads::traffic::{hot_tenant_traffic, sharded_traffic, TrafficRequest};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Host-side measurements of one router configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedScenarioResult {
    /// `<placement>_<n>shard`, e.g. `sticky_4shard`.
    pub scenario: String,
    /// Shards in the fleet.
    pub shards: u64,
    /// Placement policy name.
    pub placement: String,
    /// Requests served per measured pass.
    pub requests: u64,
    /// Total shots executed per measured pass.
    pub total_shots: u64,
    /// Wall time of the fastest measured (cache-steady) pass, ms.
    pub wall_ms: f64,
    /// Requests per second in that pass.
    pub jobs_per_sec: f64,
    /// Median request latency measured from the pass's common arrival
    /// epoch (submission starts at t=0; a request queued behind earlier
    /// submissions' compiles pays that wait too — same tenant-experience
    /// convention as the `mixed_traffic` rows), microseconds.
    pub p50_latency_us: u64,
    /// 95th-percentile arrival-epoch latency, microseconds.
    pub p95_latency_us: u64,
    /// Fleet-wide cache misses during the measured passes (0 = the
    /// placement kept every shard's cache warm).
    pub steady_misses: u64,
    /// Fleet-wide compilations during the measured passes.
    pub steady_compiles: u64,
}

/// The benchmark's knobs.
#[derive(Debug, Clone)]
pub struct ShardedTrafficConfig {
    /// Stream seed.
    pub seed: u64,
    /// Requests per pass.
    pub requests: usize,
    /// Distinct programs in the catalog.
    pub distinct_programs: usize,
    /// Worker threads per shard.
    pub threads_per_shard: usize,
    /// Per-shard compile-cache capacity — deliberately smaller than the
    /// catalog, so placement decides whether caches thrash.
    pub cache_capacity: usize,
    /// Measured passes per configuration (fastest kept).
    pub repeats: usize,
    /// Largest shard count (the scaling rows run 1, 2, .., this).
    pub max_shards: usize,
    /// Declarative machine description every shard serves (`None` = the
    /// paper's uniprocessor baseline). Must lower to a valid config —
    /// resolve and validate it first (e.g. with
    /// [`crate::sweep::resolve_machine`]).
    pub machine: Option<quape_core::MachineDescription>,
}

impl Default for ShardedTrafficConfig {
    fn default() -> Self {
        ShardedTrafficConfig {
            seed: 7,
            requests: 48,
            distinct_programs: 12,
            threads_per_shard: 1,
            cache_capacity: 4,
            repeats: 3,
            max_shards: 4,
            machine: None,
        }
    }
}

/// The benchmark's base config: the machine description's lowering when
/// one is set, the uniprocessor baseline otherwise.
fn base_config(bench: &ShardedTrafficConfig) -> QuapeConfig {
    bench
        .machine
        .as_ref()
        .map(|m| m.to_config().expect("machine description validates"))
        .unwrap_or_else(QuapeConfig::uniprocessor)
        .with_seed(bench.seed)
}

fn placement_name(p: Placement) -> &'static str {
    match p {
        Placement::RoundRobin => "round_robin",
        Placement::LeastLoadedShots => "least_loaded",
        Placement::StickyByDigest => "sticky",
    }
}

/// One pass: submit the whole stream, wait every handle, return
/// (arrival-epoch latencies µs, per-request aggregates, wall ms).
fn run_pass(
    router: &Router,
    cfg: &QuapeConfig,
    traffic: &[TrafficRequest],
    base_seed: u64,
) -> (Vec<u64>, Vec<BatchAggregate>, f64) {
    let epoch = Instant::now();
    let mut jobs: Vec<(std::time::Duration, RoutedJob)> = Vec::with_capacity(traffic.len());
    for (i, r) in traffic.iter().enumerate() {
        let offset = epoch.elapsed();
        let req = JobRequest::new(
            r.name.clone(),
            JobSource::Text(r.source.clone()),
            cfg.clone(),
            factory(cfg),
            r.shots,
        )
        .base_seed(base_seed + i as u64)
        .priority(priority_of(r.priority_class))
        .tenant(r.tenant.clone());
        let job = router.submit(req).expect("traffic request submits");
        jobs.push((offset, job));
    }
    let mut latencies = Vec::with_capacity(jobs.len());
    let mut aggregates = Vec::with_capacity(jobs.len());
    for (offset, job) in jobs {
        let result = job
            .handle
            .wait()
            .expect("no shard fails in a measured pass");
        latencies.push((offset + result.latency).as_micros() as u64);
        aggregates.push(result.aggregate);
    }
    let wall_ms = epoch.elapsed().as_secs_f64() * 1000.0;
    (latencies, aggregates, wall_ms)
}

/// Runs one configuration: a priming pass, then `repeats` measured
/// passes on the (now cache-steady) fleet; keeps the fastest pass.
fn run_scenario(
    bench: &ShardedTrafficConfig,
    shards: usize,
    placement: Placement,
    traffic: &[TrafficRequest],
    cfg: &QuapeConfig,
    base_seed: u64,
) -> (ShardedScenarioResult, Vec<BatchAggregate>) {
    let router = Router::new(RouterConfig {
        shards,
        placement,
        shard: ServerConfig {
            threads: bench.threads_per_shard,
            shot_quantum: 8,
            cache_capacity: bench.cache_capacity,
            machine: bench.machine.clone(),
            obs: Default::default(),
            packer: None,
        },
        ..RouterConfig::default()
    });
    // Priming pass: pays the cold compiles and warms whatever this
    // placement is able to keep warm.
    let (_, prime_aggs, _) = run_pass(&router, cfg, traffic, base_seed);
    let steady_before = router.cache_stats();
    let mut best: Option<(Vec<u64>, Vec<BatchAggregate>, f64)> = None;
    for _ in 0..bench.repeats.max(1) {
        let pass = run_pass(&router, cfg, traffic, base_seed);
        if best.as_ref().is_none_or(|b| pass.2 < b.2) {
            best = Some(pass);
        }
    }
    let steady_after = router.cache_stats();
    let (mut latencies, aggregates, wall_ms) = best.expect("at least one measured pass");
    // The same (program, seed, shots) set every pass: priming and
    // measured aggregates must agree request by request.
    assert_eq!(prime_aggs, aggregates, "passes diverged within a scenario");
    router.drain().expect("fleet drains cleanly");
    latencies.sort_unstable();
    let steady_misses: u64 = steady_after
        .iter()
        .zip(&steady_before)
        .map(|(a, b)| a.misses - b.misses)
        .sum();
    let steady_compiles: u64 = steady_after
        .iter()
        .zip(&steady_before)
        .map(|(a, b)| a.compiles - b.compiles)
        .sum();
    let row = ShardedScenarioResult {
        scenario: format!("{}_{}shard", placement_name(placement), shards),
        shards: shards as u64,
        placement: placement_name(placement).to_string(),
        requests: traffic.len() as u64,
        total_shots: traffic.iter().map(|r| r.shots).sum(),
        wall_ms,
        jobs_per_sec: traffic.len() as f64 / (wall_ms / 1000.0),
        p50_latency_us: percentile(&latencies, 50),
        p95_latency_us: percentile(&latencies, 95),
        steady_misses,
        steady_compiles,
    };
    (row, aggregates)
}

/// Runs the full grid: round-robin at doubling shard counts 1, 2, …
/// up to and always including `max_shards` (the scaling rows) plus
/// sticky and least-loaded at `max_shards`, all over one deterministic
/// stream, asserting every request's aggregate is bit-identical across
/// configurations.
pub fn run_sharded_traffic(bench: &ShardedTrafficConfig) -> Vec<ShardedScenarioResult> {
    let traffic = sharded_traffic(bench.seed, bench.requests, bench.distinct_programs);
    let cfg = base_config(bench);
    let base_seed = bench.seed.wrapping_mul(1000);
    let mut grid: Vec<(usize, Placement)> = Vec::new();
    let mut shards = 1;
    while shards < bench.max_shards {
        grid.push((shards, Placement::RoundRobin));
        shards *= 2;
    }
    // Round-robin at max_shards always runs — it is the denominator of
    // [`sticky_speedup`] — even when max_shards is not a power of two.
    grid.push((bench.max_shards, Placement::RoundRobin));
    grid.push((bench.max_shards, Placement::StickyByDigest));
    grid.push((bench.max_shards, Placement::LeastLoadedShots));

    let mut rows = Vec::new();
    let mut oracle: Option<Vec<BatchAggregate>> = None;
    for (shards, placement) in grid {
        let (row, aggregates) = run_scenario(bench, shards, placement, &traffic, &cfg, base_seed);
        match &oracle {
            None => oracle = Some(aggregates),
            Some(expected) => {
                assert_eq!(
                    expected, &aggregates,
                    "{}: aggregates diverged from the 1-shard oracle",
                    row.scenario
                );
            }
        }
        rows.push(row);
    }
    rows
}

/// Outcome of the kill-a-shard failover scenario: the same stream as
/// the grid, but one shard is killed mid-submission and every stranded
/// job must complete on a survivor with aggregates bit-identical to the
/// zero-failure run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailoverScenarioResult {
    /// Scenario tag (`kill_shard`).
    pub scenario: String,
    /// Shards in the fleet before the kill.
    pub shards: u64,
    /// Index of the killed shard.
    pub victim: u64,
    /// Accepted submissions before the kill fired.
    pub kill_after_submits: u64,
    /// Jobs submitted over the whole stream.
    pub submitted: u64,
    /// Jobs that completed with an `Ok` result.
    pub completed: u64,
    /// Jobs the router re-routed off the dead shard.
    pub rerouted_jobs: u64,
    /// Whether every aggregate matched the zero-failure oracle run.
    pub aggregates_match: bool,
    /// Wall time of the faulted pass, ms.
    pub wall_ms: f64,
}

/// Kill-a-shard failover scenario: runs the grid's stream once on a
/// healthy fleet (the oracle), then again with [`FaultPlan`] killing
/// shard 0 a third of the way through submission. Every job must still
/// complete — re-routed jobs recompile on a survivor and, because shot
/// streams restart from shot 0 under the same base seed, their
/// aggregates are bit-identical to the oracle's.
///
/// # Panics
///
/// Panics when a job is lost or an aggregate diverges — this scenario
/// *is* the failover differential test, run at bench scale.
pub fn run_kill_shard(bench: &ShardedTrafficConfig) -> FailoverScenarioResult {
    let mut traffic = sharded_traffic(bench.seed, bench.requests, bench.distinct_programs);
    // The grid's probe-sized requests finish faster than the submit
    // loop compiles, so a mid-stream kill would strand nothing; bulk
    // them up so the victim dies with a real backlog to re-route.
    for r in &mut traffic {
        r.shots = r.shots.max(32);
    }
    let cfg = base_config(bench);
    let base_seed = bench.seed.wrapping_mul(1000);
    let shards = bench.max_shards.max(2);
    let shard_cfg = ServerConfig {
        threads: bench.threads_per_shard,
        shot_quantum: 8,
        cache_capacity: bench.cache_capacity,
        machine: bench.machine.clone(),
        obs: Default::default(),
        packer: None,
    };
    // Oracle: the same stream on a healthy fleet.
    let healthy = Router::new(RouterConfig {
        shards,
        placement: Placement::RoundRobin,
        shard: shard_cfg.clone(),
        ..RouterConfig::default()
    });
    let (_, oracle, _) = run_pass(&healthy, &cfg, &traffic, base_seed);
    healthy.drain().expect("healthy fleet drains");

    // Faulted pass: kill shard 0 a third of the way through submission.
    let router = Router::new(RouterConfig {
        shards,
        placement: Placement::RoundRobin,
        shard: shard_cfg,
        ..RouterConfig::default()
    });
    let plan = FaultPlan {
        victim: 0,
        after_submits: (traffic.len() / 3).max(1),
    };
    let epoch = Instant::now();
    let mut jobs = Vec::with_capacity(traffic.len());
    for (i, r) in traffic.iter().enumerate() {
        let req = JobRequest::new(
            r.name.clone(),
            JobSource::Text(r.source.clone()),
            cfg.clone(),
            factory(&cfg),
            r.shots,
        )
        .base_seed(base_seed + i as u64)
        .priority(priority_of(r.priority_class))
        .tenant(r.tenant.clone());
        jobs.push(router.submit(req).expect("a capable shard survives"));
        plan.fire_if_due(i + 1, &router);
    }
    let mut aggregates = Vec::with_capacity(jobs.len());
    for job in jobs {
        let result = job
            .handle
            .wait()
            .expect("every job survives a single shard loss");
        aggregates.push(result.aggregate);
    }
    let wall_ms = epoch.elapsed().as_secs_f64() * 1000.0;
    let completed = aggregates.len() as u64;
    let aggregates_match = oracle == aggregates;
    assert!(
        aggregates_match,
        "kill-a-shard aggregates diverged from the zero-failure oracle"
    );
    let rerouted_jobs = router.recovered_jobs();
    router.drain().expect("survivors drain cleanly");
    FailoverScenarioResult {
        scenario: "kill_shard".to_string(),
        shards: shards as u64,
        victim: plan.victim as u64,
        kill_after_submits: plan.after_submits as u64,
        submitted: traffic.len() as u64,
        completed,
        rerouted_jobs,
        aggregates_match,
        wall_ms,
    }
}

/// Outcome of the hot-tenant admission scenario: a hog floods the
/// front door, interactive mice arrive behind the flood, and the DRR
/// front door must dispatch every mouse within the documented
/// starvation bound.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdmissionScenarioResult {
    /// Scenario tag (`hot_tenant`).
    pub scenario: String,
    /// Hog jobs admitted.
    pub hog_jobs: u64,
    /// Mouse probes admitted.
    pub mouse_jobs: u64,
    /// Submissions shed with `OverBudget`.
    pub shed_jobs: u64,
    /// Worst shots dispatched between any mouse's admission and its
    /// dispatch.
    pub max_mouse_wait_shots: u64,
    /// The gate: the documented per-tenant bound summed over the
    /// mouse's competitors.
    pub starvation_bound_shots: u64,
    /// `max_mouse_wait_shots <= starvation_bound_shots`.
    pub within_bound: bool,
    /// Wall time of the whole scenario, ms.
    pub wall_ms: f64,
}

/// Hot-tenant admission scenario: a hog submits `requests` bulk jobs
/// through a [`FrontDoor`], then three mouse tenants submit single-shot
/// probes. The fairness claim — a mouse's queue wait is bounded by the
/// competitors' quanta, **not** the hog's backlog — is measured in
/// dispatched shots off the dispatch log, deterministically.
///
/// # Panics
///
/// Panics when a mouse waits past the documented starvation bound.
pub fn run_hot_tenant(bench: &ShardedTrafficConfig) -> AdmissionScenarioResult {
    let hog_jobs = bench.requests.max(8);
    let mouse_jobs = 9;
    let traffic = hot_tenant_traffic(bench.seed, hog_jobs, mouse_jobs);
    let cfg = base_config(bench);
    let base_seed = bench.seed.wrapping_mul(2000);
    let admission = AdmissionConfig {
        tenant_budget_shots: 1 << 20,
        quantum_shots: 32,
        fleet_window_shots: 64,
        weights: Vec::new(),
    };
    let quantum = admission.quantum_shots;
    let door = FrontDoor::new(
        RouterConfig {
            shards: bench.max_shards.max(2),
            placement: Placement::RoundRobin,
            shard: ServerConfig {
                threads: bench.threads_per_shard,
                shot_quantum: 8,
                cache_capacity: bench.cache_capacity,
                machine: bench.machine.clone(),
                obs: Default::default(),
                packer: None,
            },
            ..RouterConfig::default()
        },
        admission,
    );
    let epoch = Instant::now();
    let mut admitted = Vec::with_capacity(traffic.len());
    let max_hog_shots = traffic.iter().map(|r| r.shots).max().unwrap_or(0);
    for (i, r) in traffic.iter().enumerate() {
        let req = JobRequest::new(
            r.name.clone(),
            JobSource::Text(r.source.clone()),
            cfg.clone(),
            factory(&cfg),
            r.shots,
        )
        .base_seed(base_seed + i as u64)
        .tenant(r.tenant.clone());
        admitted.push((r.tenant.clone(), door.submit(req).expect("budget is ample")));
    }
    let mut max_mouse_wait_shots = 0u64;
    for (tenant, job) in &admitted {
        let _ = job.wait().expect("admitted jobs complete");
        if tenant.starts_with("mouse") {
            let waited = job.dispatch_seq().expect("dispatched") - job.arrival_seq();
            max_mouse_wait_shots = max_mouse_wait_shots.max(waited);
        }
    }
    let shed_jobs = door.shed_count();
    let wall_ms = epoch.elapsed().as_secs_f64() * 1000.0;
    door.drain().expect("front door drains cleanly");
    // Documented bound, summed over a mouse's competitors: the hog and
    // the two other mouse tenants each dispatch at most
    // 2 × (quantum + their largest job) shots while the mouse waits.
    let starvation_bound_shots = 2 * (quantum + max_hog_shots) + 2 * 2 * (quantum + 1);
    let within_bound = max_mouse_wait_shots <= starvation_bound_shots;
    assert!(
        within_bound,
        "a mouse waited {max_mouse_wait_shots} dispatched shots \
         (> starvation bound {starvation_bound_shots})"
    );
    AdmissionScenarioResult {
        scenario: "hot_tenant".to_string(),
        hog_jobs: hog_jobs as u64,
        mouse_jobs: mouse_jobs as u64,
        shed_jobs,
        max_mouse_wait_shots,
        starvation_bound_shots,
        within_bound,
        wall_ms,
    }
}

/// Outcome of one fully observed fleet pass ([`run_observed_fleet`]).
#[derive(Debug)]
pub struct ObservedFleetOutcome {
    /// Per-shard and fleet-level metrics merged after the pass.
    pub snapshot: FleetSnapshot,
    /// Job lifecycles the trace audit verified complete.
    pub audited_jobs: usize,
    /// The fleet's recorder, for trace/metrics export.
    pub recorder: Recorder,
}

/// Serves the grid's stream once with full telemetry on: every request
/// goes through a [`FrontDoor`] (admission + DRR dispatch events) into
/// a traced fleet, optionally losing a shard a third of the way through
/// submission (`kill`, the re-route path in the trace). After every job
/// completes, the trace is audited — accepted-before-quantum, exactly
/// one terminal, re-routed jobs placed on both their shards — and the
/// fleet's counters are merged into one [`FleetSnapshot`].
///
/// # Panics
///
/// Panics when a job is lost or the trace violates a lifecycle
/// invariant — the audit failure message includes the flight-recorder
/// dump.
pub fn run_observed_fleet(bench: &ShardedTrafficConfig, kill: bool) -> ObservedFleetOutcome {
    let mut traffic = sharded_traffic(bench.seed, bench.requests, bench.distinct_programs);
    if kill {
        // Same bulking as run_kill_shard: the victim must die holding a
        // real backlog or the trace would show nothing re-routed.
        for r in &mut traffic {
            r.shots = r.shots.max(32);
        }
    }
    let cfg = base_config(bench);
    let base_seed = bench.seed.wrapping_mul(3000);
    let recorder = Recorder::new();
    let shards = bench.max_shards.max(2);
    let door = FrontDoor::new(
        RouterConfig {
            shards,
            placement: Placement::RoundRobin,
            obs: recorder.clone(),
            shard: ServerConfig {
                threads: bench.threads_per_shard,
                shot_quantum: 8,
                cache_capacity: bench.cache_capacity,
                machine: bench.machine.clone(),
                packer: None,
                obs: Default::default(),
            },
            ..RouterConfig::default()
        },
        AdmissionConfig {
            tenant_budget_shots: 1 << 30,
            quantum_shots: 32,
            fleet_window_shots: 64,
            weights: Vec::new(),
        },
    );
    let plan = FaultPlan {
        victim: 0,
        after_submits: (traffic.len() / 3).max(1),
    };
    let mut admitted = Vec::with_capacity(traffic.len());
    for (i, r) in traffic.iter().enumerate() {
        let req = JobRequest::new(
            r.name.clone(),
            JobSource::Text(r.source.clone()),
            cfg.clone(),
            factory(&cfg),
            r.shots,
        )
        .base_seed(base_seed + i as u64)
        .priority(priority_of(r.priority_class))
        .tenant(r.tenant.clone());
        admitted.push(door.submit(req).expect("budget is ample"));
        if kill {
            plan.fire_if_due(i + 1, door.router());
        }
    }
    for job in &admitted {
        let _ = job.wait().expect("every observed job completes");
    }
    let snapshot = door.router().fleet_snapshot();
    let audit = audit_complete(&recorder.events(), traffic.len()).unwrap_or_else(|e| {
        panic!(
            "lifecycle audit failed: {e}\n{}",
            flight_recorder(&recorder)
        )
    });
    door.drain().expect("observed fleet drains cleanly");
    ObservedFleetOutcome {
        snapshot,
        audited_jobs: audit.jobs,
        recorder,
    }
}

/// Everything the `sharded_traffic` binary can measure in one committed
/// baseline: the placement/scaling grid plus (when requested) the
/// failover and admission scenarios.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterBenchReport {
    /// Placement × shard-count grid rows.
    pub grid: Vec<ShardedScenarioResult>,
    /// Kill-a-shard failover scenario (with `--kill-shard`).
    pub failover: Option<FailoverScenarioResult>,
    /// Hot-tenant admission scenario (with `--hot-tenant`).
    pub admission: Option<AdmissionScenarioResult>,
}

/// The headline ratio: warm sticky-placement throughput over warm
/// round-robin at the same (maximum) shard count.
pub fn sticky_speedup(rows: &[ShardedScenarioResult]) -> f64 {
    let max_shards = rows.iter().map(|r| r.shards).max().unwrap_or(0);
    let rate = |placement: &str| {
        rows.iter()
            .find(|r| r.placement == placement && r.shards == max_shards)
            .map(|r| r.jobs_per_sec)
            .unwrap_or(f64::NAN)
    };
    rate("sticky") / rate("round_robin")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_agrees_and_sticky_stays_cache_steady() {
        let bench = ShardedTrafficConfig {
            requests: 10,
            distinct_programs: 6,
            cache_capacity: 2,
            repeats: 1,
            max_shards: 2,
            ..ShardedTrafficConfig::default()
        };
        // The cross-configuration differential assert lives inside
        // run_sharded_traffic; this exercises it on a small grid.
        let rows = run_sharded_traffic(&bench);
        assert_eq!(rows.len(), 4); // rr@1, rr@2, sticky@2, least_loaded@2
        let sticky = rows
            .iter()
            .find(|r| r.placement == "sticky")
            .expect("sticky row");
        // Sticky partitions 6 programs over 2 shards of capacity 2 —
        // not necessarily thrash-free, but strictly warmer than
        // round-robin, which cycles all 6 through both shards.
        let rr = rows
            .iter()
            .find(|r| r.placement == "round_robin" && r.shards == 2)
            .expect("round-robin row");
        assert!(sticky.steady_misses <= rr.steady_misses);
        let ratio = sticky_speedup(&rows);
        assert!(ratio.is_finite() && ratio > 0.0);
    }

    #[test]
    fn kill_shard_scenario_recovers_everything() {
        let bench = ShardedTrafficConfig {
            requests: 8,
            distinct_programs: 4,
            cache_capacity: 2,
            repeats: 1,
            max_shards: 2,
            ..ShardedTrafficConfig::default()
        };
        // The aggregate differential is asserted inside run_kill_shard.
        let r = run_kill_shard(&bench);
        assert_eq!(r.completed, r.submitted);
        assert!(r.aggregates_match);
        assert_eq!(r.shards, 2);
    }

    #[test]
    fn observed_fleet_audits_clean_under_a_kill() {
        let bench = ShardedTrafficConfig {
            requests: 8,
            distinct_programs: 4,
            cache_capacity: 2,
            repeats: 1,
            max_shards: 2,
            ..ShardedTrafficConfig::default()
        };
        // The lifecycle audit is asserted inside run_observed_fleet.
        let o = run_observed_fleet(&bench, true);
        assert!(o.audited_jobs >= 8);
        assert_eq!(o.snapshot.shards.len(), 2);
        assert!(o.snapshot.shards.iter().any(|s| s.status == "down"));
        assert!(!o.snapshot.tenants.is_empty());
        // The fleet scope registered its placement counters.
        assert!(o
            .snapshot
            .fleet_metrics
            .counters
            .iter()
            .any(|c| c.name == "router.jobs_placed" && c.value >= 8));
    }

    #[test]
    fn hot_tenant_scenario_meets_the_bound() {
        let bench = ShardedTrafficConfig {
            requests: 12,
            repeats: 1,
            max_shards: 2,
            ..ShardedTrafficConfig::default()
        };
        // The starvation bound is asserted inside run_hot_tenant.
        let r = run_hot_tenant(&bench);
        assert!(r.within_bound);
        assert_eq!(r.mouse_jobs, 9);
        assert_eq!(r.shed_jobs, 0);
    }
}
