//! Sharded-router serving benchmark: shard-count scaling and placement
//! policy on one deterministic multi-program traffic stream.
//!
//! Every configuration (shard count × [`Placement`]) serves the *same*
//! stream ([`quape_workloads::traffic::sharded_traffic`]): a catalog of
//! more distinct programs than any one shard's compile cache holds, at
//! probe-sized shot counts — the calibration-dominated regime where
//! per-request compilation is the cost that placement policy decides:
//!
//! * **round-robin** spreads each program over every shard, so every
//!   shard's small LRU cache churns through the whole catalog;
//! * **sticky-by-digest** partitions the catalog — each program always
//!   lands on the shard that already holds it, so a *warm* fleet serves
//!   the stream without compiling at all.
//!
//! Each configuration runs one priming pass and then `repeats` measured
//! passes (fastest kept). Every request's aggregate is asserted
//! bit-identical across *all* configurations — the benchmark doubles as
//! the router's cross-shard differential test.

use crate::support::{factory, percentile, priority_of};
use quape_core::{BatchAggregate, QuapeConfig};
use quape_router::{Placement, RoutedJob, Router, RouterConfig};
use quape_server::{JobRequest, JobSource, ServerConfig};
use quape_workloads::traffic::{sharded_traffic, TrafficRequest};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Host-side measurements of one router configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedScenarioResult {
    /// `<placement>_<n>shard`, e.g. `sticky_4shard`.
    pub scenario: String,
    /// Shards in the fleet.
    pub shards: u64,
    /// Placement policy name.
    pub placement: String,
    /// Requests served per measured pass.
    pub requests: u64,
    /// Total shots executed per measured pass.
    pub total_shots: u64,
    /// Wall time of the fastest measured (cache-steady) pass, ms.
    pub wall_ms: f64,
    /// Requests per second in that pass.
    pub jobs_per_sec: f64,
    /// Median request latency measured from the pass's common arrival
    /// epoch (submission starts at t=0; a request queued behind earlier
    /// submissions' compiles pays that wait too — same tenant-experience
    /// convention as the `mixed_traffic` rows), microseconds.
    pub p50_latency_us: u64,
    /// 95th-percentile arrival-epoch latency, microseconds.
    pub p95_latency_us: u64,
    /// Fleet-wide cache misses during the measured passes (0 = the
    /// placement kept every shard's cache warm).
    pub steady_misses: u64,
    /// Fleet-wide compilations during the measured passes.
    pub steady_compiles: u64,
}

/// The benchmark's knobs.
#[derive(Debug, Clone)]
pub struct ShardedTrafficConfig {
    /// Stream seed.
    pub seed: u64,
    /// Requests per pass.
    pub requests: usize,
    /// Distinct programs in the catalog.
    pub distinct_programs: usize,
    /// Worker threads per shard.
    pub threads_per_shard: usize,
    /// Per-shard compile-cache capacity — deliberately smaller than the
    /// catalog, so placement decides whether caches thrash.
    pub cache_capacity: usize,
    /// Measured passes per configuration (fastest kept).
    pub repeats: usize,
    /// Largest shard count (the scaling rows run 1, 2, .., this).
    pub max_shards: usize,
}

impl Default for ShardedTrafficConfig {
    fn default() -> Self {
        ShardedTrafficConfig {
            seed: 7,
            requests: 48,
            distinct_programs: 12,
            threads_per_shard: 1,
            cache_capacity: 4,
            repeats: 3,
            max_shards: 4,
        }
    }
}

fn placement_name(p: Placement) -> &'static str {
    match p {
        Placement::RoundRobin => "round_robin",
        Placement::LeastLoadedShots => "least_loaded",
        Placement::StickyByDigest => "sticky",
    }
}

/// One pass: submit the whole stream, wait every handle, return
/// (arrival-epoch latencies µs, per-request aggregates, wall ms).
fn run_pass(
    router: &Router,
    cfg: &QuapeConfig,
    traffic: &[TrafficRequest],
    base_seed: u64,
) -> (Vec<u64>, Vec<BatchAggregate>, f64) {
    let epoch = Instant::now();
    let mut jobs: Vec<(std::time::Duration, RoutedJob)> = Vec::with_capacity(traffic.len());
    for (i, r) in traffic.iter().enumerate() {
        let offset = epoch.elapsed();
        let req = JobRequest::new(
            r.name.clone(),
            JobSource::Text(r.source.clone()),
            cfg.clone(),
            factory(cfg),
            r.shots,
        )
        .base_seed(base_seed + i as u64)
        .priority(priority_of(r.priority_class))
        .tenant(r.tenant.clone());
        let job = router.submit(req).expect("traffic request submits");
        jobs.push((offset, job));
    }
    let mut latencies = Vec::with_capacity(jobs.len());
    let mut aggregates = Vec::with_capacity(jobs.len());
    for (offset, job) in jobs {
        let result = job.handle.wait();
        latencies.push((offset + result.latency).as_micros() as u64);
        aggregates.push(result.aggregate);
    }
    let wall_ms = epoch.elapsed().as_secs_f64() * 1000.0;
    (latencies, aggregates, wall_ms)
}

/// Runs one configuration: a priming pass, then `repeats` measured
/// passes on the (now cache-steady) fleet; keeps the fastest pass.
fn run_scenario(
    bench: &ShardedTrafficConfig,
    shards: usize,
    placement: Placement,
    traffic: &[TrafficRequest],
    cfg: &QuapeConfig,
    base_seed: u64,
) -> (ShardedScenarioResult, Vec<BatchAggregate>) {
    let router = Router::new(RouterConfig {
        shards,
        placement,
        shard: ServerConfig {
            threads: bench.threads_per_shard,
            shot_quantum: 8,
            cache_capacity: bench.cache_capacity,
        },
    });
    // Priming pass: pays the cold compiles and warms whatever this
    // placement is able to keep warm.
    let (_, prime_aggs, _) = run_pass(&router, cfg, traffic, base_seed);
    let steady_before = router.cache_stats();
    let mut best: Option<(Vec<u64>, Vec<BatchAggregate>, f64)> = None;
    for _ in 0..bench.repeats.max(1) {
        let pass = run_pass(&router, cfg, traffic, base_seed);
        if best.as_ref().is_none_or(|b| pass.2 < b.2) {
            best = Some(pass);
        }
    }
    let steady_after = router.cache_stats();
    let (mut latencies, aggregates, wall_ms) = best.expect("at least one measured pass");
    // The same (program, seed, shots) set every pass: priming and
    // measured aggregates must agree request by request.
    assert_eq!(prime_aggs, aggregates, "passes diverged within a scenario");
    router.drain();
    latencies.sort_unstable();
    let steady_misses: u64 = steady_after
        .iter()
        .zip(&steady_before)
        .map(|(a, b)| a.misses - b.misses)
        .sum();
    let steady_compiles: u64 = steady_after
        .iter()
        .zip(&steady_before)
        .map(|(a, b)| a.compiles - b.compiles)
        .sum();
    let row = ShardedScenarioResult {
        scenario: format!("{}_{}shard", placement_name(placement), shards),
        shards: shards as u64,
        placement: placement_name(placement).to_string(),
        requests: traffic.len() as u64,
        total_shots: traffic.iter().map(|r| r.shots).sum(),
        wall_ms,
        jobs_per_sec: traffic.len() as f64 / (wall_ms / 1000.0),
        p50_latency_us: percentile(&latencies, 50),
        p95_latency_us: percentile(&latencies, 95),
        steady_misses,
        steady_compiles,
    };
    (row, aggregates)
}

/// Runs the full grid: round-robin at doubling shard counts 1, 2, …
/// up to and always including `max_shards` (the scaling rows) plus
/// sticky and least-loaded at `max_shards`, all over one deterministic
/// stream, asserting every request's aggregate is bit-identical across
/// configurations.
pub fn run_sharded_traffic(bench: &ShardedTrafficConfig) -> Vec<ShardedScenarioResult> {
    let traffic = sharded_traffic(bench.seed, bench.requests, bench.distinct_programs);
    let cfg = QuapeConfig::uniprocessor().with_seed(bench.seed);
    let base_seed = bench.seed.wrapping_mul(1000);
    let mut grid: Vec<(usize, Placement)> = Vec::new();
    let mut shards = 1;
    while shards < bench.max_shards {
        grid.push((shards, Placement::RoundRobin));
        shards *= 2;
    }
    // Round-robin at max_shards always runs — it is the denominator of
    // [`sticky_speedup`] — even when max_shards is not a power of two.
    grid.push((bench.max_shards, Placement::RoundRobin));
    grid.push((bench.max_shards, Placement::StickyByDigest));
    grid.push((bench.max_shards, Placement::LeastLoadedShots));

    let mut rows = Vec::new();
    let mut oracle: Option<Vec<BatchAggregate>> = None;
    for (shards, placement) in grid {
        let (row, aggregates) = run_scenario(bench, shards, placement, &traffic, &cfg, base_seed);
        match &oracle {
            None => oracle = Some(aggregates),
            Some(expected) => {
                assert_eq!(
                    expected, &aggregates,
                    "{}: aggregates diverged from the 1-shard oracle",
                    row.scenario
                );
            }
        }
        rows.push(row);
    }
    rows
}

/// The headline ratio: warm sticky-placement throughput over warm
/// round-robin at the same (maximum) shard count.
pub fn sticky_speedup(rows: &[ShardedScenarioResult]) -> f64 {
    let max_shards = rows.iter().map(|r| r.shards).max().unwrap_or(0);
    let rate = |placement: &str| {
        rows.iter()
            .find(|r| r.placement == placement && r.shards == max_shards)
            .map(|r| r.jobs_per_sec)
            .unwrap_or(f64::NAN)
    };
    rate("sticky") / rate("round_robin")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_agrees_and_sticky_stays_cache_steady() {
        let bench = ShardedTrafficConfig {
            requests: 10,
            distinct_programs: 6,
            cache_capacity: 2,
            repeats: 1,
            max_shards: 2,
            ..ShardedTrafficConfig::default()
        };
        // The cross-configuration differential assert lives inside
        // run_sharded_traffic; this exercises it on a small grid.
        let rows = run_sharded_traffic(&bench);
        assert_eq!(rows.len(), 4); // rr@1, rr@2, sticky@2, least_loaded@2
        let sticky = rows
            .iter()
            .find(|r| r.placement == "sticky")
            .expect("sticky row");
        // Sticky partitions 6 programs over 2 shards of capacity 2 —
        // not necessarily thrash-free, but strictly warmer than
        // round-robin, which cycles all 6 through both shards.
        let rr = rows
            .iter()
            .find(|r| r.placement == "round_robin" && r.shards == 2)
            .expect("round-robin row");
        assert!(sticky.steady_misses <= rr.steady_misses);
        let ratio = sticky_speedup(&rows);
        assert!(ratio.is_finite() && ratio > 0.0);
    }
}
