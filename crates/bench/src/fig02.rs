//! Fig. 2: the latency breakdown of one feedback-control round trip,
//! plus the step-mode host-performance comparison on DAQ-wait-bound
//! feedback workloads.

use quape_core::{CompiledJob, Machine, QuapeConfig, ShotEngine, StepMode};
use quape_qpu::{BehavioralQpu, BehavioralQpuFactory, MeasurementModel};
use quape_workloads::feedback::{conditional_x, feedback_chain, mrce_feedback_chain};
use quape_workloads::pulse::pulse_train;
use serde::{Deserialize, Serialize};

/// Measured stage latencies of a feedback-control process.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FeedbackBreakdown {
    /// Stage I: readout (measurement) pulse, ns.
    pub stage1_readout_ns: u64,
    /// Stage II: digital acquisition (DAQ demod/integrate/threshold), ns.
    pub stage2_acquisition_ns: u64,
    /// Stage III: QCP conditional logic and branching, ns.
    pub stage3_conditional_ns: u64,
    /// Stage IV marker: time of the determined operation's issue relative
    /// to the measurement issue = total feedback latency, ns.
    pub total_ns: u64,
}

/// Measures the breakdown with a deterministic (jitter-free) DAQ so each
/// stage separates exactly; the paper's measured total is ≈ 450 ns.
pub fn run(cfg_base: &QuapeConfig) -> FeedbackBreakdown {
    let mut cfg = cfg_base.clone();
    cfg.daq_jitter_ns = 0;
    let program = conditional_x(0).expect("valid workload");
    let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysOne, 1);
    let readout = cfg.timings.readout_pulse_ns;
    let acquisition = cfg.daq_base_ns;
    let report = Machine::new(cfg, program, Box::new(qpu))
        .expect("valid machine")
        .run();
    assert_eq!(report.issued.len(), 2, "measure + conditional X expected");
    let total = report.issued[1].time_ns - report.issued[0].time_ns;
    FeedbackBreakdown {
        stage1_readout_ns: readout,
        stage2_acquisition_ns: acquisition,
        stage3_conditional_ns: total - readout - acquisition,
        total_ns: total,
    }
}

/// Mean total latency with DAQ jitter enabled (what an experiment sees).
pub fn mean_total_with_jitter(cfg: &QuapeConfig, runs: usize) -> f64 {
    let program = conditional_x(0).expect("valid workload");
    let mut total = 0u64;
    for i in 0..runs {
        let cfg = cfg.clone().with_seed(i as u64);
        let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysOne, i as u64);
        let report = Machine::new(cfg, program.clone(), Box::new(qpu))
            .expect("valid machine")
            .run();
        total += report.issued[1].time_ns - report.issued[0].time_ns;
    }
    total as f64 / runs as f64
}

/// Host-side wall-time comparison of the three step modes on one
/// workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepModeComparison {
    /// Workload name.
    pub workload: String,
    /// Feedback rounds per shot.
    pub rounds: usize,
    /// Shots executed per mode.
    pub shots: u64,
    /// Median simulated cycles per shot.
    pub p50_cycles: u64,
    /// Cycle-stepped host throughput.
    pub cycle_shots_per_sec: f64,
    /// Event-driven host throughput.
    pub event_shots_per_sec: f64,
    /// Lowered (micro-op fast path) host throughput.
    pub lowered_shots_per_sec: f64,
    /// Event-driven over cycle-stepped speedup.
    pub speedup: f64,
    /// Lowered over event-driven speedup (the pre-decode win).
    pub lowered_speedup: f64,
    /// Per-workload floor the CI gate scales its `--min-speedup` by:
    /// 1.0 for the wait-dominated workloads the event-driven claim is
    /// about, 0.9 for the device-saturated pulse train where the two
    /// modes are near parity *by design* (almost nothing to skip) and a
    /// strict ≥ 1.0 gate would flake on sub-percent host noise.
    pub gate_floor: f64,
}

/// Runs `shots` single-thread shots of a feedback workload under both
/// step modes and reports throughput, keeping each mode's fastest of
/// `repeats` passes (the simulated work is deterministic, so repeat
/// variance is pure host noise — best-of makes the speedup a property
/// of the execution core, not of the machine's scheduler). Panics if
/// the two modes ever disagree on the deterministic aggregate — the
/// comparison doubles as an end-to-end equivalence assertion.
fn compare_one(
    workload: &str,
    cfg: &QuapeConfig,
    program: quape_isa::Program,
    rounds: usize,
    shots: u64,
    repeats: u64,
    gate_floor: f64,
) -> StepModeComparison {
    let job = CompiledJob::compile(cfg.clone(), program).expect("valid workload");
    let factory =
        || BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 });
    let run = |mode: StepMode| {
        ShotEngine::new(job.clone(), factory())
            .step_mode(mode)
            .threads(1)
            .run(shots)
    };
    let mut cycle = run(StepMode::Cycle);
    let mut event = run(StepMode::EventDriven);
    let mut lowered = run(StepMode::Lowered);
    assert_eq!(
        cycle.aggregate, event.aggregate,
        "step modes must agree on {workload}"
    );
    assert_eq!(
        cycle.aggregate, lowered.aggregate,
        "lowered mode must agree on {workload}"
    );
    for _ in 1..repeats.max(1) {
        let c = run(StepMode::Cycle);
        let e = run(StepMode::EventDriven);
        let l = run(StepMode::Lowered);
        assert_eq!(
            c.aggregate, e.aggregate,
            "step modes must agree on {workload}"
        );
        assert_eq!(
            c.aggregate, l.aggregate,
            "lowered mode must agree on {workload}"
        );
        if c.wall_time < cycle.wall_time {
            cycle = c;
        }
        if e.wall_time < event.wall_time {
            event = e;
        }
        if l.wall_time < lowered.wall_time {
            lowered = l;
        }
    }
    StepModeComparison {
        workload: workload.to_string(),
        rounds,
        shots,
        p50_cycles: event.aggregate.cycles.p50,
        cycle_shots_per_sec: cycle.shots_per_sec(),
        event_shots_per_sec: event.shots_per_sec(),
        lowered_shots_per_sec: lowered.shots_per_sec(),
        speedup: event.shots_per_sec() / cycle.shots_per_sec(),
        lowered_speedup: lowered.shots_per_sec() / event.shots_per_sec(),
        gate_floor,
    }
}

/// The `--compare-step-modes` suite: cycle-stepped vs event-driven wall
/// time on the Fig. 2 round trip and on deep FMR/MRCE feedback chains
/// (where per-shot cost is simulation-dominated). `scale` multiplies the
/// shot counts (1 = the committed-baseline workload sizes); see
/// [`compare_step_modes_best_of`] for the noise-robust variant CI gates
/// on.
pub fn compare_step_modes(cfg_base: &QuapeConfig, scale: u64) -> Vec<StepModeComparison> {
    compare_step_modes_best_of(cfg_base, scale, 1)
}

/// [`compare_step_modes`] with each mode reporting its fastest of
/// `repeats` passes per workload — the form the CI `bench-smoke` gate
/// runs, so a single noisy pass on a shared runner cannot push a real
/// ≥ 1× speedup below the threshold.
pub fn compare_step_modes_best_of(
    cfg_base: &QuapeConfig,
    scale: u64,
    repeats: u64,
) -> Vec<StepModeComparison> {
    let cfg = cfg_base.clone().with_seed(7);
    let chain_rounds = 1000;
    vec![
        compare_one(
            "fig02_conditional_x",
            &cfg,
            conditional_x(0).expect("valid workload"),
            1,
            4000 * scale,
            repeats,
            1.0,
        ),
        compare_one(
            "fmr_feedback_chain",
            &cfg,
            feedback_chain(0, chain_rounds).expect("valid workload"),
            chain_rounds,
            200 * scale,
            repeats,
            1.0,
        ),
        compare_one(
            "mrce_feedback_chain",
            &cfg,
            mrce_feedback_chain(0, chain_rounds).expect("valid workload"),
            chain_rounds,
            200 * scale,
            repeats,
            1.0,
        ),
        // Device-model hot path: dense parallel pulse trains on a
        // multiplexed readout, where the AWG playback timeline and the
        // DAQ demod servers carry the load instead of idle skipping.
        compare_one(
            "awg_playback_pulse_train",
            &QuapeConfig::superscalar(8)
                .with_seed(7)
                .with_readout_lines(2),
            pulse_train(4, 256).expect("valid workload"),
            256,
            1000 * scale,
            repeats,
            0.9,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_and_lands_near_450ns() {
        let b = run(&QuapeConfig::uniprocessor());
        assert_eq!(
            b.stage1_readout_ns + b.stage2_acquisition_ns + b.stage3_conditional_ns,
            b.total_ns
        );
        assert!((400..=500).contains(&b.total_ns), "total {} ns", b.total_ns);
        assert!(
            b.stage3_conditional_ns < 100,
            "stage III {} ns",
            b.stage3_conditional_ns
        );
    }

    #[test]
    fn jittered_mean_is_at_least_the_deterministic_total() {
        let cfg = QuapeConfig::uniprocessor();
        let det = run(&cfg).total_ns as f64;
        let mean = mean_total_with_jitter(&cfg, 20);
        assert!(mean >= det - 1.0, "mean {mean} < deterministic {det}");
        assert!(mean <= det + cfg.daq_jitter_ns as f64 + 10.0);
    }
}
