//! Fig. 2: the latency breakdown of one feedback-control round trip.

use quape_core::{Machine, QuapeConfig};
use quape_qpu::{BehavioralQpu, MeasurementModel};
use quape_workloads::feedback::conditional_x;
use serde::{Deserialize, Serialize};

/// Measured stage latencies of a feedback-control process.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FeedbackBreakdown {
    /// Stage I: readout (measurement) pulse, ns.
    pub stage1_readout_ns: u64,
    /// Stage II: digital acquisition (DAQ demod/integrate/threshold), ns.
    pub stage2_acquisition_ns: u64,
    /// Stage III: QCP conditional logic and branching, ns.
    pub stage3_conditional_ns: u64,
    /// Stage IV marker: time of the determined operation's issue relative
    /// to the measurement issue = total feedback latency, ns.
    pub total_ns: u64,
}

/// Measures the breakdown with a deterministic (jitter-free) DAQ so each
/// stage separates exactly; the paper's measured total is ≈ 450 ns.
pub fn run(cfg_base: &QuapeConfig) -> FeedbackBreakdown {
    let mut cfg = cfg_base.clone();
    cfg.daq_jitter_ns = 0;
    let program = conditional_x(0).expect("valid workload");
    let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysOne, 1);
    let readout = cfg.timings.readout_pulse_ns;
    let acquisition = cfg.daq_base_ns;
    let report = Machine::new(cfg, program, Box::new(qpu))
        .expect("valid machine")
        .run();
    assert_eq!(report.issued.len(), 2, "measure + conditional X expected");
    let total = report.issued[1].time_ns - report.issued[0].time_ns;
    FeedbackBreakdown {
        stage1_readout_ns: readout,
        stage2_acquisition_ns: acquisition,
        stage3_conditional_ns: total - readout - acquisition,
        total_ns: total,
    }
}

/// Mean total latency with DAQ jitter enabled (what an experiment sees).
pub fn mean_total_with_jitter(cfg: &QuapeConfig, runs: usize) -> f64 {
    let program = conditional_x(0).expect("valid workload");
    let mut total = 0u64;
    for i in 0..runs {
        let cfg = cfg.clone().with_seed(i as u64);
        let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysOne, i as u64);
        let report = Machine::new(cfg, program.clone(), Box::new(qpu))
            .expect("valid machine")
            .run();
        total += report.issued[1].time_ns - report.issued[0].time_ns;
    }
    total as f64 / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_and_lands_near_450ns() {
        let b = run(&QuapeConfig::uniprocessor());
        assert_eq!(
            b.stage1_readout_ns + b.stage2_acquisition_ns + b.stage3_conditional_ns,
            b.total_ns
        );
        assert!((400..=500).contains(&b.total_ns), "total {} ns", b.total_ns);
        assert!(
            b.stage3_conditional_ns < 100,
            "stage III {} ns",
            b.stage3_conditional_ns
        );
    }

    #[test]
    fn jittered_mean_is_at_least_the_deterministic_total() {
        let cfg = QuapeConfig::uniprocessor();
        let det = run(&cfg).total_ns as f64;
        let mean = mean_total_with_jitter(&cfg, 20);
        assert!(mean >= det - 1.0, "mean {mean} < deterministic {det}");
        assert!(mean <= det + cfg.daq_jitter_ns as f64 + 10.0);
    }
}
