//! Regenerates the Fig. 2 feedback-control latency breakdown (§7 measures
//! the total at ≈ 450 ns on the prototype).
//!
//! Usage: `fig02_feedback_latency [--json] [--compare-step-modes]`.
//!
//! `--compare-step-modes` instead benchmarks the execution core: it runs
//! the DAQ-wait-bound feedback workloads under both `StepMode::Cycle` and
//! `StepMode::EventDriven`, asserts their aggregates agree, and prints
//! wall time and shots/sec per mode (the numbers committed as
//! `BENCH_engine.json`).

use quape_bench::fig02;
use quape_bench::table::{to_json, TextTable};
use quape_core::QuapeConfig;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cfg = QuapeConfig::uniprocessor();
    if std::env::args().any(|a| a == "--compare-step-modes") {
        let results = fig02::compare_step_modes(&cfg, 1);
        if json {
            println!("{}", to_json(&results));
            return;
        }
        println!("Execution-core step-mode comparison (single worker thread):");
        let mut t = TextTable::new([
            "workload",
            "rounds",
            "shots",
            "p50 cycles",
            "cycle shots/s",
            "event shots/s",
            "speedup",
        ]);
        for r in &results {
            t.row([
                r.workload.clone(),
                r.rounds.to_string(),
                r.shots.to_string(),
                r.p50_cycles.to_string(),
                format!("{:.0}", r.cycle_shots_per_sec),
                format!("{:.0}", r.event_shots_per_sec),
                format!("{:.2}x", r.speedup),
            ]);
        }
        println!("{}", t.render());
        return;
    }
    let b = fig02::run(&cfg);
    if json {
        println!("{}", to_json(&b));
        return;
    }
    println!("Fig. 2 — feedback-control latency breakdown (deterministic DAQ):");
    let mut t = TextTable::new(["stage", "latency (ns)"]);
    t.row([
        "I   readout pulse".to_string(),
        b.stage1_readout_ns.to_string(),
    ]);
    t.row([
        "II  digital acquisition".to_string(),
        b.stage2_acquisition_ns.to_string(),
    ]);
    t.row([
        "III conditional logic+branch".to_string(),
        b.stage3_conditional_ns.to_string(),
    ]);
    t.row([
        "IV  determined operation at".to_string(),
        b.total_ns.to_string(),
    ]);
    println!("{}", t.render());
    let mean = fig02::mean_total_with_jitter(&cfg, 200);
    println!("mean total with DAQ jitter over 200 runs: {mean:.1} ns   (paper: ~450 ns)");
}
