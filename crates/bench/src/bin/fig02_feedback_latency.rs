//! Regenerates the Fig. 2 feedback-control latency breakdown (§7 measures
//! the total at ≈ 450 ns on the prototype).
//!
//! Usage: `fig02_feedback_latency [--json] [--json-out <path>]
//! [--compare-step-modes] [--repeats <k>] [--min-speedup <x>]
//! [--min-lowered-speedup <x>]`.
//!
//! `--compare-step-modes` instead benchmarks the execution core: it runs
//! the DAQ-wait-bound feedback workloads under `StepMode::Cycle`,
//! `StepMode::EventDriven` and `StepMode::Lowered`, asserts their
//! aggregates agree, and prints wall time and shots/sec per mode.
//! `--json-out BENCH_engine.json` is the one-command refresh of the
//! committed baseline, and `--min-speedup 1.0` turns the run into a CI
//! gate that fails when any event-vs-cycle speedup drops below the
//! threshold (a correctness-of-claim check: event-driven must never be
//! slower than the cycle oracle). `--min-lowered-speedup 1.0` gates the
//! lowered-vs-event-driven speedup the same way on the feedback-chain
//! rows (pre-decoding must never cost throughput); pair either gate with
//! `--repeats 3` so each mode reports its fastest pass and one noisy
//! scheduling slice on a shared runner cannot flake the gate.

use quape_bench::fig02;
use quape_bench::table::{to_json, write_json, TextTable};
use quape_core::QuapeConfig;

struct Args {
    json: bool,
    json_out: Option<String>,
    compare: bool,
    repeats: u64,
    min_speedup: Option<f64>,
    min_lowered_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        json: false,
        json_out: None,
        compare: false,
        repeats: 1,
        min_speedup: None,
        min_lowered_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--json-out" => {
                args.json_out = Some(it.next().expect("--json-out needs a path"));
            }
            "--compare-step-modes" => args.compare = true,
            "--repeats" => {
                let v = it.next().expect("--repeats needs a number");
                args.repeats = v.parse().expect("--repeats needs a number");
            }
            "--min-speedup" => {
                let v = it.next().expect("--min-speedup needs a number");
                args.min_speedup = Some(v.parse().expect("--min-speedup needs a number"));
            }
            "--min-lowered-speedup" => {
                let v = it.next().expect("--min-lowered-speedup needs a number");
                args.min_lowered_speedup =
                    Some(v.parse().expect("--min-lowered-speedup needs a number"));
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = QuapeConfig::uniprocessor();
    if args.compare {
        let results = fig02::compare_step_modes_best_of(&cfg, 1, args.repeats);
        if let Some(path) = &args.json_out {
            write_json(path, &results);
        }
        if args.json {
            println!("{}", to_json(&results));
        } else {
            println!("Execution-core step-mode comparison (single worker thread):");
            let mut t = TextTable::new([
                "workload",
                "rounds",
                "shots",
                "p50 cycles",
                "cycle shots/s",
                "event shots/s",
                "lowered shots/s",
                "speedup",
                "lowered speedup",
            ]);
            for r in &results {
                t.row([
                    r.workload.clone(),
                    r.rounds.to_string(),
                    r.shots.to_string(),
                    r.p50_cycles.to_string(),
                    format!("{:.0}", r.cycle_shots_per_sec),
                    format!("{:.0}", r.event_shots_per_sec),
                    format!("{:.0}", r.lowered_shots_per_sec),
                    format!("{:.2}x", r.speedup),
                    format!("{:.2}x", r.lowered_speedup),
                ]);
            }
            println!("{}", t.render());
        }
        if let Some(min) = args.min_speedup {
            // Each workload's threshold is `--min-speedup` scaled by its
            // gate_floor (1.0 for the wait-dominated workloads, 0.9 for
            // the by-design near-parity pulse train).
            let failing: Vec<&fig02::StepModeComparison> = results
                .iter()
                .filter(|r| r.speedup < min * r.gate_floor)
                .collect();
            if !failing.is_empty() {
                for r in &failing {
                    eprintln!(
                        "FAIL: {} event-vs-cycle speedup {:.3} < required {:.3}",
                        r.workload,
                        r.speedup,
                        min * r.gate_floor
                    );
                }
                std::process::exit(1);
            }
            eprintln!(
                "all {} workloads at speedup >= {min:.2} x their gate floor",
                results.len()
            );
        }
        if let Some(min) = args.min_lowered_speedup {
            // The lowered gate applies to the feedback-chain rows (gate
            // floor 1.0) — the pre-decode claim is about dispatch-heavy
            // workloads; the near-parity pulse train keeps its 0.9 floor.
            let failing: Vec<&fig02::StepModeComparison> = results
                .iter()
                .filter(|r| r.lowered_speedup < min * r.gate_floor)
                .collect();
            if !failing.is_empty() {
                for r in &failing {
                    eprintln!(
                        "FAIL: {} lowered-vs-event speedup {:.3} < required {:.3}",
                        r.workload,
                        r.lowered_speedup,
                        min * r.gate_floor
                    );
                }
                std::process::exit(1);
            }
            eprintln!(
                "all {} workloads at lowered speedup >= {min:.2} x their gate floor",
                results.len()
            );
        }
        return;
    }
    let b = fig02::run(&cfg);
    if let Some(path) = &args.json_out {
        write_json(path, &b);
    }
    if args.json {
        println!("{}", to_json(&b));
        return;
    }
    println!("Fig. 2 — feedback-control latency breakdown (deterministic DAQ):");
    let mut t = TextTable::new(["stage", "latency (ns)"]);
    t.row([
        "I   readout pulse".to_string(),
        b.stage1_readout_ns.to_string(),
    ]);
    t.row([
        "II  digital acquisition".to_string(),
        b.stage2_acquisition_ns.to_string(),
    ]);
    t.row([
        "III conditional logic+branch".to_string(),
        b.stage3_conditional_ns.to_string(),
    ]);
    t.row([
        "IV  determined operation at".to_string(),
        b.total_ns.to_string(),
    ]);
    println!("{}", t.render());
    let mean = fig02::mean_total_with_jitter(&cfg, 200);
    println!("mean total with DAQ jitter over 200 runs: {mean:.1} ns   (paper: ~450 ns)");
}
