//! Regenerates Table 2: the qualitative QuAPE vs QuMA_v2 comparison,
//! plus a quantitative analysis of the §9 rationale — the QNOP code-size
//! tax an 8-way VLIW encoding would pay on each suite benchmark, and the
//! ideal SOMQ fusion opportunity.

use quape_bench::table::TextTable;
use quape_compiler::{somq_report, vliw_report, Compiler};
use quape_workloads::benchmark_suite;

fn main() {
    println!("Table 2 — comparison with QuMA_v2:\n");
    print!("{}", quape_bench::tables::table2());

    println!("\n§9 rationale, quantified — 8-way VLIW encoding overhead vs the");
    println!("fixed-length superscalar stream, and the ideal SOMQ upper bound:\n");
    let compiler = Compiler::new();
    let mut t = TextTable::new([
        "benchmark",
        "scalar words",
        "VLIW words",
        "QNOPs",
        "expansion",
        "SOMQ compression (ideal)",
    ]);
    for b in benchmark_suite() {
        let program = compiler.compile(&b.circuit).expect("compiles");
        let v = vliw_report(&program, 8);
        let s = somq_report(&program);
        t.row([
            b.name.to_string(),
            v.scalar_words.to_string(),
            v.vliw_words.to_string(),
            v.qnops.to_string(),
            format!("{:.2}x", v.expansion()),
            format!("{:.2}x", s.compression()),
        ]);
    }
    println!("{}", t.render());
    println!("(the VLIW expansion is the \"additional program size\" cost of inserted");
    println!("QNOPs; the SOMQ column assumes the QCP can always provide the full");
    println!("target-qubit list in time, which §9 argues is not generally possible)");
}
