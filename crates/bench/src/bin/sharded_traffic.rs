//! Sharded-router serving benchmark: shard-count scaling (round-robin
//! at 1..N shards) and placement policy (sticky-by-digest and
//! least-loaded vs round-robin at N shards) on one deterministic
//! multi-program traffic stream, plus the fleet's fault-tolerance
//! scenarios.
//!
//! Usage: `sharded_traffic [--requests N] [--seed S] [--shards N]
//! [--threads-per-shard T] [--programs P] [--cache-capacity C]
//! [--repeats K] [--machine <file-or-name>] [--kill-shard]
//! [--hot-tenant] [--json] [--json-out <path>]
//! [--min-sticky-ratio <x>] [--check-schema <path>]
//! [--metrics-out <path>] [--trace-out <path>]
//! [--check-fleet-schema <path>] [--fleet-schema-out <path>]`.
//!
//! `--check-schema <path>` verifies a committed baseline's JSON schema
//! fingerprint against this binary's current report type and exits (0
//! match / 1 drift) without running the benchmark.
//!
//! `--metrics-out <path>` / `--trace-out <path>` additionally serve the
//! stream once through the admission front door with full telemetry on
//! (losing a shard mid-stream when `--kill-shard` is also set), audit
//! every job's traced lifecycle, print the merged fleet snapshot table,
//! and write the snapshot JSON / Perfetto-loadable Chrome trace.
//! `--check-fleet-schema <path>` verifies the committed snapshot
//! baseline's fingerprint (refresh it with `--fleet-schema-out`).
//!
//! `--machine` serves the whole fleet on a declarative machine
//! description instead of the uniprocessor baseline: a `machines/*.json`
//! path or a builtin name (`baseline`, `superscalar-8`, ...).
//!
//! Every request's aggregate is asserted bit-identical across all
//! configurations (the run is a differential test of the router), so
//! the throughput numbers compare *equal work*. `--kill-shard` re-runs
//! the stream while a shard is killed mid-submission and exits nonzero
//! unless every job completes bit-identically on a survivor;
//! `--hot-tenant` floods the admission front door from one tenant and
//! exits nonzero unless every interactive probe dispatches within the
//! documented starvation bound. `--json-out BENCH_router.json`
//! refreshes the committed baseline (grid + scenarios) in one command;
//! `--min-sticky-ratio` exits nonzero when warm sticky placement fails
//! to reach the given multiple of warm round-robin jobs/sec at the
//! maximum shard count.

use quape_bench::sharded::{
    run_hot_tenant, run_kill_shard, run_observed_fleet, run_sharded_traffic, sticky_speedup,
    AdmissionScenarioResult, FailoverScenarioResult, RouterBenchReport, ShardedScenarioResult,
    ShardedTrafficConfig,
};
use quape_bench::sweep::resolve_machine;
use quape_bench::table::{check_schema, schema_fingerprint, to_json, write_json, TextTable};
use quape_obs::{chrome_trace, CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
use quape_router::{FleetSnapshot, ShardSnapshot, TenantStatsRow};
use quape_server::{CacheStats, PackerStats};

struct Args {
    bench: ShardedTrafficConfig,
    kill_shard: bool,
    hot_tenant: bool,
    json: bool,
    json_out: Option<String>,
    min_sticky_ratio: Option<f64>,
    check_schema: Option<String>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    check_fleet_schema: Option<String>,
    fleet_schema_out: Option<String>,
}

/// A value-free fleet snapshot with every collection populated once:
/// its rendered JSON carries the full schema — per-shard rows with
/// cache/packer/metrics, tenant attribution, fleet-level metrics — so
/// the committed `BENCH_fleet.json` must fingerprint identically and
/// every real `--metrics-out` export must stay within its key paths.
fn sample_fleet_snapshot() -> FleetSnapshot {
    let metrics = MetricsSnapshot {
        counters: vec![CounterSample {
            name: String::new(),
            value: 0,
        }],
        gauges: vec![GaugeSample {
            name: String::new(),
            value: 0,
        }],
        histograms: vec![HistogramSample {
            name: String::new(),
            count: 0,
            p50: 0,
            p95: 0,
            max: 0,
        }],
    };
    FleetSnapshot {
        shards: vec![ShardSnapshot {
            shard: 0,
            status: String::new(),
            backlog_shots: 0,
            pending_jobs: 0,
            cache: CacheStats::default(),
            packer: PackerStats::default(),
            metrics: metrics.clone(),
        }],
        tenants: vec![TenantStatsRow {
            tenant: String::new(),
            cache: CacheStats::default(),
        }],
        recovered_jobs: 0,
        stolen_jobs: 0,
        fleet_metrics: metrics,
        trace_events_dropped: 0,
    }
}

/// A value-free sample report: its rendered JSON carries this binary's
/// current schema (grid rows plus both optional scenarios populated,
/// matching how the committed baseline is refreshed), so the committed
/// `BENCH_router.json` must fingerprint identically.
fn sample_report() -> RouterBenchReport {
    RouterBenchReport {
        grid: vec![ShardedScenarioResult {
            scenario: String::new(),
            shards: 0,
            placement: String::new(),
            requests: 0,
            total_shots: 0,
            wall_ms: 0.0,
            jobs_per_sec: 0.0,
            p50_latency_us: 0,
            p95_latency_us: 0,
            steady_misses: 0,
            steady_compiles: 0,
        }],
        failover: Some(FailoverScenarioResult {
            scenario: String::new(),
            shards: 0,
            victim: 0,
            kill_after_submits: 0,
            submitted: 0,
            completed: 0,
            rerouted_jobs: 0,
            aggregates_match: false,
            wall_ms: 0.0,
        }),
        admission: Some(AdmissionScenarioResult {
            scenario: String::new(),
            hog_jobs: 0,
            mouse_jobs: 0,
            shed_jobs: 0,
            max_mouse_wait_shots: 0,
            starvation_bound_shots: 0,
            within_bound: false,
            wall_ms: 0.0,
        }),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        bench: ShardedTrafficConfig::default(),
        kill_shard: false,
        hot_tenant: false,
        json: false,
        json_out: None,
        min_sticky_ratio: None,
        check_schema: None,
        metrics_out: None,
        trace_out: None,
        check_fleet_schema: None,
        fleet_schema_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("{name} needs a number"))
        };
        match arg.as_str() {
            "--requests" => args.bench.requests = num("--requests") as usize,
            "--seed" => args.bench.seed = num("--seed") as u64,
            "--shards" => args.bench.max_shards = (num("--shards") as usize).max(1),
            "--threads-per-shard" => {
                args.bench.threads_per_shard = num("--threads-per-shard") as usize
            }
            "--programs" => args.bench.distinct_programs = (num("--programs") as usize).max(1),
            "--cache-capacity" => {
                args.bench.cache_capacity = (num("--cache-capacity") as usize).max(1)
            }
            "--repeats" => args.bench.repeats = (num("--repeats") as usize).max(1),
            "--min-sticky-ratio" => args.min_sticky_ratio = Some(num("--min-sticky-ratio")),
            "--machine" => {
                let spec = it.next().expect("--machine needs a file or builtin name");
                let machine = resolve_machine(&spec)
                    .and_then(|m| m.to_config().map_err(|e| e.to_string()).map(|_| m))
                    .unwrap_or_else(|e| {
                        eprintln!("FAIL: {e}");
                        std::process::exit(1);
                    });
                eprintln!("machine: {spec}");
                args.bench.machine = Some(machine);
            }
            "--kill-shard" => args.kill_shard = true,
            "--hot-tenant" => args.hot_tenant = true,
            "--json" => args.json = true,
            "--json-out" => {
                args.json_out = Some(it.next().expect("--json-out needs a path"));
            }
            "--check-schema" => {
                args.check_schema = Some(it.next().expect("--check-schema needs a path"));
            }
            "--metrics-out" => {
                args.metrics_out = Some(it.next().expect("--metrics-out needs a path"));
            }
            "--trace-out" => {
                args.trace_out = Some(it.next().expect("--trace-out needs a path"));
            }
            "--check-fleet-schema" => {
                args.check_fleet_schema =
                    Some(it.next().expect("--check-fleet-schema needs a path"));
            }
            "--fleet-schema-out" => {
                args.fleet_schema_out = Some(it.next().expect("--fleet-schema-out needs a path"));
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    args
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|c| c.name == name)
        .map_or(0, |c| c.value)
}

/// The one table every per-shard stat now rolls up into: cache and
/// packer counters, backlog, and the serving metrics, one row per
/// shard, plus per-tenant attribution and the fleet/front counters.
fn render_fleet_snapshot(snap: &FleetSnapshot) -> String {
    let mut out = String::new();
    let mut t = TextTable::new([
        "shard", "status", "backlog", "pending", "accepted", "quanta", "hits", "misses",
        "compiles", "packs", "p50 job", "p95 job",
    ]);
    for s in &snap.shards {
        let job_us = s
            .metrics
            .histograms
            .iter()
            .find(|h| h.name == "server.job_latency_us");
        let ms = |v: u64| format!("{:.1} ms", v as f64 / 1000.0);
        t.row([
            s.shard.to_string(),
            s.status.clone(),
            s.backlog_shots.to_string(),
            s.pending_jobs.to_string(),
            counter(&s.metrics, "server.jobs_accepted").to_string(),
            counter(&s.metrics, "server.quanta").to_string(),
            s.cache.hits.to_string(),
            s.cache.misses.to_string(),
            s.cache.compiles.to_string(),
            s.packer.packs_formed.to_string(),
            job_us.map_or("-".into(), |h| ms(h.p50)),
            job_us.map_or("-".into(), |h| ms(h.p95)),
        ]);
    }
    out.push_str(&t.render());
    let mut tt = TextTable::new(["tenant", "hits", "misses", "evict", "compiles"]);
    for row in &snap.tenants {
        tt.row([
            row.tenant.clone(),
            row.cache.hits.to_string(),
            row.cache.misses.to_string(),
            row.cache.evictions.to_string(),
            row.cache.compiles.to_string(),
        ]);
    }
    out.push_str(&tt.render());
    out.push_str(&format!(
        "fleet: {} placed, {} re-routed, {} stolen; front door: {} admitted, {} dispatched \
         over {} DRR rounds, {} shed; {} trace events dropped\n",
        counter(&snap.fleet_metrics, "router.jobs_placed"),
        snap.recovered_jobs,
        snap.stolen_jobs,
        counter(&snap.fleet_metrics, "front.jobs_admitted"),
        counter(&snap.fleet_metrics, "front.jobs_dispatched"),
        counter(&snap.fleet_metrics, "front.drr_rounds"),
        counter(&snap.fleet_metrics, "front.jobs_shed"),
        snap.trace_events_dropped,
    ));
    out
}

/// The observed-fleet pass behind `--metrics-out` / `--trace-out`: one
/// fully traced serve of the stream, audited, snapshotted, exported.
fn run_observed(args: &Args) {
    let o = run_observed_fleet(&args.bench, args.kill_shard);
    eprintln!(
        "trace audit OK: {} lifecycles, {} events ({} dropped)",
        o.audited_jobs,
        o.recorder.events().len(),
        o.recorder.dropped_events()
    );
    println!("Fleet snapshot (observed pass{}):", {
        if args.kill_shard {
            ", one shard killed mid-stream"
        } else {
            ""
        }
    });
    println!("{}", render_fleet_snapshot(&o.snapshot));
    if let Some(path) = &args.metrics_out {
        let json = to_json(&o.snapshot);
        // The export must stay within the committed baseline's shapes.
        let want = schema_fingerprint(&to_json(&sample_fleet_snapshot()))
            .expect("sample snapshot renders valid JSON");
        let have =
            schema_fingerprint(&json).unwrap_or_else(|e| panic!("snapshot is malformed: {e}"));
        let rogue: Vec<_> = have.iter().filter(|p| !want.contains(p)).collect();
        if !rogue.is_empty() {
            eprintln!("FAIL: fleet snapshot has unbaselined key paths: {rogue:?}");
            std::process::exit(1);
        }
        write_json(path, &o.snapshot);
        eprintln!("fleet snapshot written: {path}");
    }
    if let Some(path) = &args.trace_out {
        std::fs::write(path, chrome_trace(&o.recorder))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("chrome trace written: {path}");
    }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.fleet_schema_out {
        write_json(path, &sample_fleet_snapshot());
        eprintln!("fleet schema baseline written: {path}");
        return;
    }
    if let Some(path) = &args.check_fleet_schema {
        match check_schema(path, &to_json(&sample_fleet_snapshot())) {
            Ok(()) => {
                eprintln!("fleet schema OK: {path}");
                return;
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &args.check_schema {
        match check_schema(path, &to_json(&sample_report())) {
            Ok(()) => {
                eprintln!("schema OK: {path}");
                return;
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            }
        }
    }
    let rows = run_sharded_traffic(&args.bench);
    // Both scenarios assert their own gate internally (lost job,
    // aggregate divergence, starvation-bound violation all panic), so
    // reaching the report below *is* the CI gate passing.
    let failover = args.kill_shard.then(|| run_kill_shard(&args.bench));
    let admission = args.hot_tenant.then(|| run_hot_tenant(&args.bench));
    let report = RouterBenchReport {
        grid: rows,
        failover,
        admission,
    };
    if let Some(path) = &args.json_out {
        write_json(path, &report);
    }
    if args.json {
        println!("{}", to_json(&report));
    } else {
        println!(
            "Sharded-router serving: {} requests over {} distinct programs, \
             per-shard cache {} (aggregates verified identical):",
            args.bench.requests, args.bench.distinct_programs, args.bench.cache_capacity
        );
        let mut t = TextTable::new([
            "scenario",
            "shards",
            "jobs/s",
            "p50 latency",
            "p95 latency",
            "steady misses",
            "steady compiles",
        ]);
        for r in &report.grid {
            t.row([
                r.scenario.clone(),
                r.shards.to_string(),
                format!("{:.1}", r.jobs_per_sec),
                format!("{:.1} ms", r.p50_latency_us as f64 / 1000.0),
                format!("{:.1} ms", r.p95_latency_us as f64 / 1000.0),
                r.steady_misses.to_string(),
                r.steady_compiles.to_string(),
            ]);
        }
        println!("{}", t.render());
    }
    if let Some(f) = &report.failover {
        eprintln!(
            "kill-shard: {}/{} jobs completed after losing shard {} \
             ({} re-routed), aggregates match: {}",
            f.completed, f.submitted, f.victim, f.rerouted_jobs, f.aggregates_match
        );
    }
    if let Some(a) = &report.admission {
        eprintln!(
            "hot-tenant: worst mouse wait {} dispatched shots \
             (bound {}), {} submissions shed",
            a.max_mouse_wait_shots, a.starvation_bound_shots, a.shed_jobs
        );
    }
    if args.metrics_out.is_some() || args.trace_out.is_some() {
        run_observed(&args);
    }
    let ratio = sticky_speedup(&report.grid);
    eprintln!("warm sticky over warm round-robin at max shards: {ratio:.2}x jobs/sec");
    if let Some(min) = args.min_sticky_ratio {
        if ratio.is_nan() || ratio < min {
            eprintln!("FAIL: sticky ratio {ratio:.3} < required {min:.3}");
            std::process::exit(1);
        }
    }
}
