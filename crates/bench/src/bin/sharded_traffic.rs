//! Sharded-router serving benchmark: shard-count scaling (round-robin
//! at 1..N shards) and placement policy (sticky-by-digest and
//! least-loaded vs round-robin at N shards) on one deterministic
//! multi-program traffic stream, plus the fleet's fault-tolerance
//! scenarios.
//!
//! Usage: `sharded_traffic [--requests N] [--seed S] [--shards N]
//! [--threads-per-shard T] [--programs P] [--cache-capacity C]
//! [--repeats K] [--machine <file-or-name>] [--kill-shard]
//! [--hot-tenant] [--json] [--json-out <path>]
//! [--min-sticky-ratio <x>] [--check-schema <path>]`.
//!
//! `--check-schema <path>` verifies a committed baseline's JSON schema
//! fingerprint against this binary's current report type and exits (0
//! match / 1 drift) without running the benchmark.
//!
//! `--machine` serves the whole fleet on a declarative machine
//! description instead of the uniprocessor baseline: a `machines/*.json`
//! path or a builtin name (`baseline`, `superscalar-8`, ...).
//!
//! Every request's aggregate is asserted bit-identical across all
//! configurations (the run is a differential test of the router), so
//! the throughput numbers compare *equal work*. `--kill-shard` re-runs
//! the stream while a shard is killed mid-submission and exits nonzero
//! unless every job completes bit-identically on a survivor;
//! `--hot-tenant` floods the admission front door from one tenant and
//! exits nonzero unless every interactive probe dispatches within the
//! documented starvation bound. `--json-out BENCH_router.json`
//! refreshes the committed baseline (grid + scenarios) in one command;
//! `--min-sticky-ratio` exits nonzero when warm sticky placement fails
//! to reach the given multiple of warm round-robin jobs/sec at the
//! maximum shard count.

use quape_bench::sharded::{
    run_hot_tenant, run_kill_shard, run_sharded_traffic, sticky_speedup, AdmissionScenarioResult,
    FailoverScenarioResult, RouterBenchReport, ShardedScenarioResult, ShardedTrafficConfig,
};
use quape_bench::sweep::resolve_machine;
use quape_bench::table::{check_schema, to_json, write_json, TextTable};

struct Args {
    bench: ShardedTrafficConfig,
    kill_shard: bool,
    hot_tenant: bool,
    json: bool,
    json_out: Option<String>,
    min_sticky_ratio: Option<f64>,
    check_schema: Option<String>,
}

/// A value-free sample report: its rendered JSON carries this binary's
/// current schema (grid rows plus both optional scenarios populated,
/// matching how the committed baseline is refreshed), so the committed
/// `BENCH_router.json` must fingerprint identically.
fn sample_report() -> RouterBenchReport {
    RouterBenchReport {
        grid: vec![ShardedScenarioResult {
            scenario: String::new(),
            shards: 0,
            placement: String::new(),
            requests: 0,
            total_shots: 0,
            wall_ms: 0.0,
            jobs_per_sec: 0.0,
            p50_latency_us: 0,
            p95_latency_us: 0,
            steady_misses: 0,
            steady_compiles: 0,
        }],
        failover: Some(FailoverScenarioResult {
            scenario: String::new(),
            shards: 0,
            victim: 0,
            kill_after_submits: 0,
            submitted: 0,
            completed: 0,
            rerouted_jobs: 0,
            aggregates_match: false,
            wall_ms: 0.0,
        }),
        admission: Some(AdmissionScenarioResult {
            scenario: String::new(),
            hog_jobs: 0,
            mouse_jobs: 0,
            shed_jobs: 0,
            max_mouse_wait_shots: 0,
            starvation_bound_shots: 0,
            within_bound: false,
            wall_ms: 0.0,
        }),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        bench: ShardedTrafficConfig::default(),
        kill_shard: false,
        hot_tenant: false,
        json: false,
        json_out: None,
        min_sticky_ratio: None,
        check_schema: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("{name} needs a number"))
        };
        match arg.as_str() {
            "--requests" => args.bench.requests = num("--requests") as usize,
            "--seed" => args.bench.seed = num("--seed") as u64,
            "--shards" => args.bench.max_shards = (num("--shards") as usize).max(1),
            "--threads-per-shard" => {
                args.bench.threads_per_shard = num("--threads-per-shard") as usize
            }
            "--programs" => args.bench.distinct_programs = (num("--programs") as usize).max(1),
            "--cache-capacity" => {
                args.bench.cache_capacity = (num("--cache-capacity") as usize).max(1)
            }
            "--repeats" => args.bench.repeats = (num("--repeats") as usize).max(1),
            "--min-sticky-ratio" => args.min_sticky_ratio = Some(num("--min-sticky-ratio")),
            "--machine" => {
                let spec = it.next().expect("--machine needs a file or builtin name");
                let machine = resolve_machine(&spec)
                    .and_then(|m| m.to_config().map_err(|e| e.to_string()).map(|_| m))
                    .unwrap_or_else(|e| {
                        eprintln!("FAIL: {e}");
                        std::process::exit(1);
                    });
                eprintln!("machine: {spec}");
                args.bench.machine = Some(machine);
            }
            "--kill-shard" => args.kill_shard = true,
            "--hot-tenant" => args.hot_tenant = true,
            "--json" => args.json = true,
            "--json-out" => {
                args.json_out = Some(it.next().expect("--json-out needs a path"));
            }
            "--check-schema" => {
                args.check_schema = Some(it.next().expect("--check-schema needs a path"));
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.check_schema {
        match check_schema(path, &to_json(&sample_report())) {
            Ok(()) => {
                eprintln!("schema OK: {path}");
                return;
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            }
        }
    }
    let rows = run_sharded_traffic(&args.bench);
    // Both scenarios assert their own gate internally (lost job,
    // aggregate divergence, starvation-bound violation all panic), so
    // reaching the report below *is* the CI gate passing.
    let failover = args.kill_shard.then(|| run_kill_shard(&args.bench));
    let admission = args.hot_tenant.then(|| run_hot_tenant(&args.bench));
    let report = RouterBenchReport {
        grid: rows,
        failover,
        admission,
    };
    if let Some(path) = &args.json_out {
        write_json(path, &report);
    }
    if args.json {
        println!("{}", to_json(&report));
    } else {
        println!(
            "Sharded-router serving: {} requests over {} distinct programs, \
             per-shard cache {} (aggregates verified identical):",
            args.bench.requests, args.bench.distinct_programs, args.bench.cache_capacity
        );
        let mut t = TextTable::new([
            "scenario",
            "shards",
            "jobs/s",
            "p50 latency",
            "p95 latency",
            "steady misses",
            "steady compiles",
        ]);
        for r in &report.grid {
            t.row([
                r.scenario.clone(),
                r.shards.to_string(),
                format!("{:.1}", r.jobs_per_sec),
                format!("{:.1} ms", r.p50_latency_us as f64 / 1000.0),
                format!("{:.1} ms", r.p95_latency_us as f64 / 1000.0),
                r.steady_misses.to_string(),
                r.steady_compiles.to_string(),
            ]);
        }
        println!("{}", t.render());
    }
    if let Some(f) = &report.failover {
        eprintln!(
            "kill-shard: {}/{} jobs completed after losing shard {} \
             ({} re-routed), aggregates match: {}",
            f.completed, f.submitted, f.victim, f.rerouted_jobs, f.aggregates_match
        );
    }
    if let Some(a) = &report.admission {
        eprintln!(
            "hot-tenant: worst mouse wait {} dispatched shots \
             (bound {}), {} submissions shed",
            a.max_mouse_wait_shots, a.starvation_bound_shots, a.shed_jobs
        );
    }
    let ratio = sticky_speedup(&report.grid);
    eprintln!("warm sticky over warm round-robin at max shards: {ratio:.2}x jobs/sec");
    if let Some(min) = args.min_sticky_ratio {
        if ratio.is_nan() || ratio < min {
            eprintln!("FAIL: sticky ratio {ratio:.3} < required {min:.3}");
            std::process::exit(1);
        }
    }
}
