//! Regenerates Fig. 11: Shor syndrome measurement execution time and
//! speedup for 1/2/4/6 processors at three verification failure rates.
//!
//! Usage: `fig11_multiprocessor [--runs N] [--json]` (paper: 1000 runs).

use quape_bench::fig11::{self, Fig11Options};
use quape_bench::table::{to_json, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let json = args.iter().any(|a| a == "--json");

    let (q, c, blocks, priorities) = fig11::workload_stats();
    println!("Shor syndrome measurement, Steane [[7,1,3]], 37 qubits");
    println!(
        "program: {q} quantum + {c} classical instructions, {blocks} blocks, {priorities} priorities"
    );
    println!("(paper: 288 quantum + 252 classical, 50 blocks, 15 priorities)\n");

    let rows = fig11::run(Fig11Options { runs, seed: 1 });
    if json {
        println!("{}", to_json(&rows));
        return;
    }

    println!("Fig. 11a — mean execution time over {runs} runs (µs):");
    let mut a = TextTable::new(["failure rate", "1 proc", "2 procs", "4 procs", "6 procs"]);
    for &f in &fig11::FAILURE_RATES {
        let cell = |n: usize| {
            rows.iter()
                .find(|r| r.processors == n && (r.failure_rate - f).abs() < 1e-9)
                .map(|r| format!("{:.2}", r.mean_time_us))
                .expect("cell present")
        };
        a.row([format!("{f:.2}"), cell(1), cell(2), cell(4), cell(6)]);
    }
    println!("{}", a.render());

    println!("Fig. 11b — actual and ideal speedup:");
    let mut b = TextTable::new(["processors", "actual", "ideal"]);
    for &n in &fig11::PROCESSOR_COUNTS {
        let series: Vec<_> = rows.iter().filter(|r| r.processors == n).collect();
        let actual = series.iter().map(|r| r.speedup).sum::<f64>() / series.len() as f64;
        let ideal = series.iter().map(|r| r.ideal_speedup).sum::<f64>() / series.len() as f64;
        b.row([n.to_string(), format!("{actual:.2}"), format!("{ideal:.2}")]);
    }
    println!("{}", b.render());
    println!(
        "peak 6-core speedup: {:.2}x   (paper: up to 2.59x)",
        fig11::peak_speedup(&rows)
    );
}
