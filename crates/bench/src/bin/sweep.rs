//! Machine-description scenario sweep: run the fixed workload grid
//! (Fig. 2 feedback chain, pulse train, readout burst, mixed-traffic
//! slice) across a set of declarative machine descriptions and print a
//! comparison table.
//!
//! Usage: `sweep [--machines <dir>] [--seed S] [--repeats K] [--json]
//! [--json-out <path>] [--check-roundtrip] [--dry-run]`.
//!
//! Without `--machines` the builtin grid (baseline, superscalar,
//! multiprocessor-4) runs; with it, every `machines/*.json` description
//! is swept in file-stem order. Every machine × workload cell executes
//! `--repeats` times (min 2) and the run exits nonzero if any repeat's
//! aggregate diverges — the sweep is also the determinism gate for the
//! whole declarative config surface. `--check-roundtrip` additionally
//! verifies each committed description file re-serializes
//! byte-identically. `--dry-run` stops after those static checks
//! (loading, validation, round-trip) without executing the sweep —
//! the fast path for a CI baselines job. `--json-out
//! BENCH_machines.json` refreshes the committed baseline in one
//! command.

use quape_bench::sweep::{
    builtin_grid, check_roundtrip_dir, load_machines_dir, run_sweep, WORKLOAD_NAMES,
};
use quape_bench::table::{to_json, write_json, TextTable};

struct Args {
    machines: Option<String>,
    seed: u64,
    repeats: usize,
    json: bool,
    json_out: Option<String>,
    check_roundtrip: bool,
    dry_run: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        machines: None,
        seed: 7,
        repeats: 2,
        json: false,
        json_out: None,
        check_roundtrip: false,
        dry_run: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{name} needs a number"))
        };
        match arg.as_str() {
            "--machines" => args.machines = Some(it.next().expect("--machines needs a directory")),
            "--seed" => args.seed = num("--seed"),
            "--repeats" => args.repeats = num("--repeats") as usize,
            "--json" => args.json = true,
            "--json-out" => args.json_out = Some(it.next().expect("--json-out needs a path")),
            "--check-roundtrip" => args.check_roundtrip = true,
            "--dry-run" => args.dry_run = true,
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let machines = match &args.machines {
        Some(dir) => {
            if args.check_roundtrip {
                match check_roundtrip_dir(dir) {
                    Ok(n) => eprintln!("{n} description files round-trip byte-identically"),
                    Err(e) => {
                        eprintln!("FAIL: {e}");
                        std::process::exit(1);
                    }
                }
            }
            match load_machines_dir(dir) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("FAIL: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => builtin_grid(),
    };
    if args.dry_run {
        eprintln!(
            "dry run: {} machine descriptions load and validate",
            machines.len()
        );
        return;
    }
    let rows = match run_sweep(&machines, args.seed, args.repeats) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &args.json_out {
        write_json(path, &rows);
    }
    if args.json {
        println!("{}", to_json(&rows));
    } else {
        println!(
            "Machine sweep: {} machines x {} workloads, seed {}, {} repeats \
             (aggregates verified identical across repeats):",
            machines.len(),
            WORKLOAD_NAMES.len(),
            args.seed,
            args.repeats.max(2)
        );
        let mut t = TextTable::new([
            "machine",
            "workload",
            "shots",
            "mean cycles",
            "max cycles",
            "late",
            "daq contended",
            "simulated",
            "fingerprint",
        ]);
        for r in &rows {
            t.row([
                r.machine.clone(),
                r.workload.clone(),
                r.shots.to_string(),
                format!("{:.1}", r.mean_cycles),
                r.max_cycles.to_string(),
                r.late_issues.to_string(),
                r.daq_contended.to_string(),
                format!("{:.2} ms", r.simulated_ns as f64 / 1e6),
                r.fingerprint[..16].to_string(),
            ]);
        }
        println!("{}", t.render());
    }
}
