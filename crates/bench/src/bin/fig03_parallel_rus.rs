//! Reproduces Fig. 3: the execution of two parallel repeat-until-success
//! sub-circuits — parallel on the multiprocessor (Fig. 3a), forcibly
//! serialized on the uniprocessor (Fig. 3b) — rendered as per-qubit
//! operation timelines.

use quape_core::{render_timeline, Machine, QuapeConfig, TimelineOptions};
use quape_qpu::{BehavioralQpu, MeasurementModel};
use quape_workloads::feedback::parallel_rus;

fn run(processors: usize, seed: u64) -> quape_core::RunReport {
    let program = parallel_rus(0, 1).expect("valid workload");
    let cfg = QuapeConfig::multiprocessor(processors).with_seed(seed);
    let qpu = BehavioralQpu::new(
        cfg.timings,
        MeasurementModel::Bernoulli { p_one: 0.5 },
        seed,
    );
    Machine::new(cfg, program, Box::new(qpu))
        .expect("valid machine")
        .run()
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(11);
    let opts = TimelineOptions {
        ns_per_column: 20,
        max_columns: 100,
        ..Default::default()
    };

    println!("Fig. 3(a) — parallel execution (two processors):\n");
    let parallel = run(2, seed);
    print!("{}", render_timeline(&parallel, &opts));
    println!("total: {} ns\n", parallel.execution_time_ns());

    println!("Fig. 3(b) — serial execution (uniprocessor):\n");
    let serial = run(1, seed);
    print!("{}", render_timeline(&serial, &opts));
    println!("total: {} ns", serial.execution_time_ns());
    println!(
        "\nThe uniprocessor adds W1's entire feedback latency to W2's qubit — the\n\
         situation §3.1.3 calls unacceptable; the multiprocessor removes it."
    );
}
