//! Regenerates Fig. 13: average Time Ratio of the 8-way superscalar vs the
//! scalar baseline (clock 10 ns, gate 20 ns; the dotted line is TR = 1).
//!
//! Usage: `fig13_superscalar [--json]`.

use quape_bench::fig13;
use quape_bench::table::{to_json, TextTable};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let rows = fig13::run();
    if json {
        println!("{}", to_json(&rows));
        return;
    }
    println!("Fig. 13 — average TR, 8-way superscalar vs scalar baseline:");
    let mut t = TextTable::new([
        "benchmark",
        "source",
        "baseline avg TR",
        "baseline max TR",
        "8-way avg TR",
        "improvement",
        "TR<=1",
    ]);
    for r in &rows {
        t.row([
            r.benchmark.clone(),
            r.source.clone(),
            format!("{:.2}", r.baseline_avg_tr),
            format!("{:.1}", r.baseline_max_tr),
            format!("{:.2}", r.superscalar_avg_tr),
            format!("{:.2}x", r.improvement),
            if r.superscalar_meets_deadline { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "average improvement: {:.2}x   (paper: 4.04x; hs16 8.00x; rd84_143 1.60x)",
        fig13::average_improvement(&rows)
    );
}
