//! Regenerates Fig. 13: average Time Ratio of the 8-way superscalar vs the
//! scalar baseline (clock 10 ns, gate 20 ns; the dotted line is TR = 1).
//!
//! Usage: `fig13_superscalar [--json] [--shots N]`.
//!
//! `--shots N` additionally measures host throughput: N shots of the
//! hs16 benchmark per configuration through the batched `ShotEngine`
//! (compile once, per-shot RNG streams), printed as shots/sec.

use quape_bench::fig13;
use quape_bench::table::{to_json, TextTable};
use quape_compiler::Compiler;
use quape_core::{CompiledJob, QuapeConfig, ShotEngine};
use quape_qpu::{BehavioralQpuFactory, MeasurementModel};
use quape_workloads::benchmarks::hs16;

fn batch_throughput(shots: u64) {
    println!("\nbatch throughput (hs16, {shots} engine shots per configuration):");
    let program = Compiler::new()
        .compile(&hs16())
        .expect("benchmark compiles");
    let mut t = TextTable::new(["configuration", "shots/sec", "p50 cycles", "p95 cycles"]);
    for (name, cfg) in [
        ("scalar", QuapeConfig::scalar_baseline()),
        ("superscalar 8-way", QuapeConfig::superscalar(8)),
    ] {
        let factory =
            BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 });
        let job = CompiledJob::compile(cfg, program.clone()).expect("valid job");
        let report = ShotEngine::new(job, factory).base_seed(7).run(shots);
        t.row([
            name.to_string(),
            format!("{:.0}", report.shots_per_sec()),
            report.aggregate.cycles.p50.to_string(),
            report.aggregate.cycles.p95.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let shots = std::env::args()
        .position(|a| a == "--shots")
        .and_then(|pos| std::env::args().nth(pos + 1))
        .and_then(|s| s.parse().ok());
    let rows = fig13::run();
    if json {
        println!("{}", to_json(&rows));
        return;
    }
    println!("Fig. 13 — average TR, 8-way superscalar vs scalar baseline:");
    let mut t = TextTable::new([
        "benchmark",
        "source",
        "baseline avg TR",
        "baseline max TR",
        "8-way avg TR",
        "improvement",
        "TR<=1",
    ]);
    for r in &rows {
        t.row([
            r.benchmark.clone(),
            r.source.clone(),
            format!("{:.2}", r.baseline_avg_tr),
            format!("{:.1}", r.baseline_max_tr),
            format!("{:.2}", r.superscalar_avg_tr),
            format!("{:.2}x", r.improvement),
            if r.superscalar_meets_deadline {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "average improvement: {:.2}x   (paper: 4.04x; hs16 8.00x; rd84_143 1.60x)",
        fig13::average_improvement(&rows)
    );
    if let Some(shots) = shots {
        batch_throughput(shots);
    }
}
