//! Regenerates the Fig. 7 scheduler status-register flow on the Fig. 6
//! example circuit (W1 ∥ W2 → W3 → W4).
//!
//! Usage: `fig07_status_flow [processors]` (default 2, as in the paper's
//! illustration).

use quape_bench::fig07;
use quape_bench::table::TextTable;

fn main() {
    let processors: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    println!("Fig. 7 — block status flow on {processors} processor(s):");
    let events = fig07::run(processors);
    let mut t = TextTable::new(["cycle", "block", "status", "processor"]);
    let program = fig07::example_program();
    for e in &events {
        let name = program
            .blocks()
            .get(e.block)
            .map(|b| b.name.clone())
            .unwrap_or_else(|| e.block.to_string());
        t.row([
            e.cycle.to_string(),
            name,
            e.status.to_string(),
            e.processor.map_or("-".to_string(), |p| p.to_string()),
        ]);
    }
    println!("{}", t.render());
}
