//! Mixed-traffic serving benchmark: `JobServer` (cache-cold and
//! cache-warm) versus a naive per-request compile+run client on one
//! deterministic heterogeneous request stream.
//!
//! Usage: `mixed_traffic [--requests N] [--seed S] [--threads T]
//! [--repeats K] [--machine <file-or-name>] [--json] [--json-out <path>]
//! [--min-warm-speedup <x>] [--pack] [--min-pack-ratio <x>]
//! [--check-schema <path>]`.
//!
//! `--machine` runs every scenario on a declarative machine description
//! instead of the uniprocessor baseline: a `machines/*.json` path or a
//! builtin name (`baseline`, `superscalar-8`, `multiprocessor-4`, ...).
//!
//! `--pack` switches to the §3.1.2 space-multiplexing comparison: one
//! small-job-heavy stream served twice — time-interleaved only versus
//! with the multiprogramming packer — with every packed aggregate
//! asserted bit-identical to its interleaved oracle.
//! `--min-pack-ratio` exits nonzero when packed jobs/sec fails to reach
//! the given multiple of interleaved jobs/sec.
//!
//! `--check-schema <path>` verifies a committed baseline's JSON schema
//! fingerprint against this binary's current row type and exits (0
//! match / 1 drift) without running the benchmark.
//!
//! Each scenario reports its fastest of `--repeats` passes (default 3),
//! shedding host scheduler noise — the simulated work is deterministic,
//! so the minimum is the honest per-scenario estimate.
//!
//! Every request's aggregate is asserted bit-identical across the
//! scenarios (the run is a differential test of the serving layer), so
//! the throughput numbers compare *equal work*. `--json-out
//! BENCH_traffic.json` refreshes the committed baseline in one command;
//! `--min-warm-speedup` exits nonzero when the cache-warm server fails
//! to beat the naive client by the given factor.

use quape_bench::mixed::{run_mixed_traffic_on, run_packed_traffic, warm_speedup, ScenarioResult};
use quape_bench::sweep::resolve_machine;
use quape_bench::table::{check_schema, to_json, write_json, TextTable};

struct Args {
    requests: usize,
    seed: u64,
    threads: usize,
    repeats: usize,
    machine: Option<String>,
    json: bool,
    json_out: Option<String>,
    min_warm_speedup: Option<f64>,
    pack: bool,
    min_pack_ratio: Option<f64>,
    check_schema: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 48,
        seed: 7,
        threads: 0,
        repeats: 3,
        machine: None,
        json: false,
        json_out: None,
        min_warm_speedup: None,
        pack: false,
        min_pack_ratio: None,
        check_schema: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("{name} needs a number"))
        };
        match arg.as_str() {
            "--requests" => args.requests = num("--requests") as usize,
            "--seed" => args.seed = num("--seed") as u64,
            "--threads" => args.threads = num("--threads") as usize,
            "--repeats" => args.repeats = num("--repeats") as usize,
            "--min-warm-speedup" => args.min_warm_speedup = Some(num("--min-warm-speedup")),
            "--pack" => args.pack = true,
            "--min-pack-ratio" => args.min_pack_ratio = Some(num("--min-pack-ratio")),
            "--machine" => {
                args.machine = Some(it.next().expect("--machine needs a file or builtin name"))
            }
            "--json" => args.json = true,
            "--json-out" => {
                args.json_out = Some(it.next().expect("--json-out needs a path"));
            }
            "--check-schema" => {
                args.check_schema = Some(it.next().expect("--check-schema needs a path"));
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    args
}

/// A value-free sample row: its rendered JSON carries this binary's
/// current schema, the committed baseline must fingerprint identically.
fn sample_rows() -> Vec<ScenarioResult> {
    vec![ScenarioResult {
        scenario: String::new(),
        requests: 0,
        total_shots: 0,
        wall_ms: 0.0,
        jobs_per_sec: 0.0,
        p50_latency_us: 0,
        p95_latency_us: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        compiles: 0,
    }]
}

fn render_rows(rows: &[ScenarioResult]) -> String {
    let mut t = TextTable::new([
        "scenario",
        "jobs/s",
        "p50 latency",
        "p95 latency",
        "hits",
        "misses",
        "evict",
        "compiles",
    ]);
    for r in rows {
        t.row([
            r.scenario.clone(),
            format!("{:.1}", r.jobs_per_sec),
            format!("{:.1} ms", r.p50_latency_us as f64 / 1000.0),
            format!("{:.1} ms", r.p95_latency_us as f64 / 1000.0),
            r.cache_hits.to_string(),
            r.cache_misses.to_string(),
            r.cache_evictions.to_string(),
            r.compiles.to_string(),
        ]);
    }
    t.render()
}

fn run_packed(args: &Args) {
    let outcome = run_packed_traffic(args.seed, args.requests, args.threads, args.repeats);
    if let Some(path) = &args.json_out {
        write_json(path, &outcome.rows);
    }
    if args.json {
        println!("{}", to_json(&outcome.rows));
    } else {
        println!(
            "Multiprogramming packing: {} small jobs, seed {} (packed aggregates verified \
             bit-identical to interleaved):",
            args.requests, args.seed
        );
        println!("{}", render_rows(&outcome.rows));
        let p = &outcome.packer;
        println!(
            "packs formed: {} ({} jobs, {} shots packed; {} combined-compile cache hits; \
             {} declined)",
            p.packs_formed, p.jobs_packed, p.packed_shots, p.combine_cache_hits, p.declined
        );
    }
    eprintln!(
        "packed over interleaved: {:.2}x jobs/sec",
        outcome.pack_ratio
    );
    if let Some(min) = args.min_pack_ratio {
        if outcome.pack_ratio.is_nan() || outcome.pack_ratio < min {
            eprintln!(
                "FAIL: pack ratio {:.3} < required {min:.3}",
                outcome.pack_ratio
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.check_schema {
        match check_schema(path, &to_json(&sample_rows())) {
            Ok(()) => {
                eprintln!("schema OK: {path}");
                return;
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.pack {
        run_packed(&args);
        return;
    }
    let machine = args.machine.as_deref().map(|spec| {
        resolve_machine(spec)
            .and_then(|m| m.to_config().map_err(|e| e.to_string()).map(|_| m))
            .unwrap_or_else(|e| {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            })
    });
    if let Some(spec) = &args.machine {
        eprintln!("machine: {spec}");
    }
    let (rows, tenants) = run_mixed_traffic_on(
        machine.as_ref(),
        args.seed,
        args.requests,
        args.threads,
        args.repeats,
    );
    if let Some(path) = &args.json_out {
        write_json(path, &rows);
    }
    if args.json {
        println!("{}", to_json(&rows));
    } else {
        println!(
            "Mixed-traffic serving: {} requests, seed {} (aggregates verified identical):",
            args.requests, args.seed
        );
        println!("{}", render_rows(&rows));
        println!("Per-tenant compile-cache accounting (server passes):");
        let mut tt = TextTable::new(["tenant", "hits", "misses", "evict", "compiles", "hit rate"]);
        for (tenant, s) in &tenants {
            let lookups = s.hits + s.misses;
            let rate = if lookups == 0 {
                0.0
            } else {
                s.hits as f64 / lookups as f64
            };
            tt.row([
                tenant.clone(),
                s.hits.to_string(),
                s.misses.to_string(),
                s.evictions.to_string(),
                s.compiles.to_string(),
                format!("{:.0}%", rate * 100.0),
            ]);
        }
        println!("{}", tt.render());
    }
    let speedup = warm_speedup(&rows);
    eprintln!("cache-warm server over naive client: {speedup:.2}x jobs/sec");
    if let Some(min) = args.min_warm_speedup {
        if speedup.is_nan() || speedup < min {
            eprintln!("FAIL: warm speedup {speedup:.3} < required {min:.3}");
            std::process::exit(1);
        }
    }
}
