//! Mixed-traffic serving benchmark: `JobServer` (cache-cold and
//! cache-warm) versus a naive per-request compile+run client on one
//! deterministic heterogeneous request stream.
//!
//! Usage: `mixed_traffic [--requests N] [--seed S] [--threads T]
//! [--repeats K] [--machine <file-or-name>] [--json] [--json-out <path>]
//! [--min-warm-speedup <x>] [--pack] [--min-pack-ratio <x>]
//! [--check-schema <path>] [--trace-out <path>] [--metrics-out <path>]
//! [--min-obs-ratio <x>] [--check-trace-schema <path>]
//! [--trace-schema-out <path>]`.
//!
//! `--machine` runs every scenario on a declarative machine description
//! instead of the uniprocessor baseline: a `machines/*.json` path or a
//! builtin name (`baseline`, `superscalar-8`, `multiprocessor-4`, ...).
//!
//! `--pack` switches to the §3.1.2 space-multiplexing comparison: one
//! small-job-heavy stream served twice — time-interleaved only versus
//! with the multiprogramming packer — with every packed aggregate
//! asserted bit-identical to its interleaved oracle.
//! `--min-pack-ratio` exits nonzero when packed jobs/sec fails to reach
//! the given multiple of interleaved jobs/sec.
//!
//! `--check-schema <path>` verifies a committed baseline's JSON schema
//! fingerprint against this binary's current row type and exits (0
//! match / 1 drift) without running the benchmark.
//!
//! `--trace-out <path>` records every job's lifecycle (works with and
//! without `--pack`), audits the trace — first event accepted, exactly
//! one terminal, no quantum outside the span — and writes Chrome
//! trace-event JSON loadable in Perfetto (`ui.perfetto.dev`);
//! `--metrics-out <path>` writes the recorder's per-scope counter and
//! latency-histogram snapshot as JSON. `--min-obs-ratio <x>` runs the
//! obs-overhead comparison instead (the same stream served obs-off and
//! obs-on, aggregates asserted bit-identical) and exits nonzero when
//! obs-on throughput falls below `x` times obs-off.
//! `--check-trace-schema <path>` verifies the committed trace baseline's
//! fingerprint (refresh it with `--trace-schema-out`).
//!
//! Each scenario reports its fastest of `--repeats` passes (default 3),
//! shedding host scheduler noise — the simulated work is deterministic,
//! so the minimum is the honest per-scenario estimate.
//!
//! Every request's aggregate is asserted bit-identical across the
//! scenarios (the run is a differential test of the serving layer), so
//! the throughput numbers compare *equal work*. `--json-out
//! BENCH_traffic.json` refreshes the committed baseline in one command;
//! `--min-warm-speedup` exits nonzero when the cache-warm server fails
//! to beat the naive client by the given factor.

use quape_bench::mixed::{
    run_mixed_traffic_observed, run_obs_overhead, run_packed_traffic_observed, warm_speedup,
    ScenarioResult,
};
use quape_bench::sweep::resolve_machine;
use quape_bench::table::{check_schema, to_json, write_json, TextTable};
use quape_obs::{audit_complete, chrome_trace, Recorder, TraceKind};

struct Args {
    requests: usize,
    seed: u64,
    threads: usize,
    repeats: usize,
    machine: Option<String>,
    json: bool,
    json_out: Option<String>,
    min_warm_speedup: Option<f64>,
    pack: bool,
    min_pack_ratio: Option<f64>,
    check_schema: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    min_obs_ratio: Option<f64>,
    check_trace_schema: Option<String>,
    trace_schema_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 48,
        seed: 7,
        threads: 0,
        repeats: 3,
        machine: None,
        json: false,
        json_out: None,
        min_warm_speedup: None,
        pack: false,
        min_pack_ratio: None,
        check_schema: None,
        trace_out: None,
        metrics_out: None,
        min_obs_ratio: None,
        check_trace_schema: None,
        trace_schema_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("{name} needs a number"))
        };
        match arg.as_str() {
            "--requests" => args.requests = num("--requests") as usize,
            "--seed" => args.seed = num("--seed") as u64,
            "--threads" => args.threads = num("--threads") as usize,
            "--repeats" => args.repeats = num("--repeats") as usize,
            "--min-warm-speedup" => args.min_warm_speedup = Some(num("--min-warm-speedup")),
            "--pack" => args.pack = true,
            "--min-pack-ratio" => args.min_pack_ratio = Some(num("--min-pack-ratio")),
            "--machine" => {
                args.machine = Some(it.next().expect("--machine needs a file or builtin name"))
            }
            "--json" => args.json = true,
            "--json-out" => {
                args.json_out = Some(it.next().expect("--json-out needs a path"));
            }
            "--check-schema" => {
                args.check_schema = Some(it.next().expect("--check-schema needs a path"));
            }
            "--trace-out" => {
                args.trace_out = Some(it.next().expect("--trace-out needs a path"));
            }
            "--metrics-out" => {
                args.metrics_out = Some(it.next().expect("--metrics-out needs a path"));
            }
            "--min-obs-ratio" => args.min_obs_ratio = Some(num("--min-obs-ratio")),
            "--check-trace-schema" => {
                args.check_trace_schema =
                    Some(it.next().expect("--check-trace-schema needs a path"));
            }
            "--trace-schema-out" => {
                args.trace_schema_out = Some(it.next().expect("--trace-schema-out needs a path"));
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    args
}

/// A value-free sample row: its rendered JSON carries this binary's
/// current schema, the committed baseline must fingerprint identically.
fn sample_rows() -> Vec<ScenarioResult> {
    vec![ScenarioResult {
        scenario: String::new(),
        requests: 0,
        total_shots: 0,
        wall_ms: 0.0,
        jobs_per_sec: 0.0,
        p50_latency_us: 0,
        p95_latency_us: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        compiles: 0,
    }]
}

/// A synthetic trace covering every [`TraceKind`] once: its rendered
/// Chrome JSON carries every event shape and argument key this binary
/// can emit, so the committed `BENCH_trace.json` baseline must
/// fingerprint identically. Values are placeholders — the fingerprint
/// compares key paths only.
fn sample_trace_json() -> String {
    let rec = Recorder::new();
    let fleet = rec.fleet_scope();
    let shard = rec.scope(0);
    let kinds = [
        TraceKind::Accepted,
        TraceKind::Admitted,
        TraceKind::Shed,
        TraceKind::Dispatched,
        TraceKind::DrrRound,
        TraceKind::Placed,
        TraceKind::Compiled,
        TraceKind::CacheHit,
        TraceKind::Packed,
        TraceKind::Quantum,
        TraceKind::Finalized,
        TraceKind::Cancelled,
        TraceKind::ReRouted,
        TraceKind::Stolen,
        TraceKind::ShardDown,
        TraceKind::ShardRetiring,
    ];
    for kind in kinds {
        shard.event(kind, 0, 1, 0, 0);
        fleet.event_tenant(kind, 0, 1, 0, 0, "tenant");
    }
    shard.span(TraceKind::Quantum, 1, 1, 0, 8, std::time::Instant::now());
    chrome_trace(&rec)
}

/// Audits the recorded lifecycles and writes the requested trace /
/// metrics artifacts. Exits nonzero when the trace is malformed — the
/// export paths double as the trace-correctness gate at bench scale.
fn export_obs(recorder: &Recorder, args: &Args, min_jobs: usize) {
    let events = recorder.events();
    if events.is_empty() {
        return;
    }
    match audit_complete(&events, min_jobs) {
        Ok(a) => eprintln!(
            "trace audit OK: {} lifecycles, {} quanta, {} events ({} dropped)",
            a.jobs,
            a.quanta,
            events.len(),
            recorder.dropped_events()
        ),
        Err(e) => {
            eprintln!("FAIL: trace audit: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &args.trace_out {
        let json = chrome_trace(recorder);
        // Every real export must stay within the shapes the committed
        // baseline fingerprints (values differ, key paths must not).
        let want = quape_bench::table::schema_fingerprint(&sample_trace_json())
            .expect("sample trace renders valid JSON");
        let have = quape_bench::table::schema_fingerprint(&json)
            .unwrap_or_else(|e| panic!("exported trace is malformed JSON: {e}"));
        let rogue: Vec<_> = have.iter().filter(|p| !want.contains(p)).collect();
        if !rogue.is_empty() {
            eprintln!("FAIL: exported trace has unbaselined key paths: {rogue:?}");
            std::process::exit(1);
        }
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("chrome trace written: {path}");
    }
    if let Some(path) = &args.metrics_out {
        write_json(path, &recorder.metrics());
        eprintln!("metrics snapshot written: {path}");
    }
}

fn render_rows(rows: &[ScenarioResult]) -> String {
    let mut t = TextTable::new([
        "scenario",
        "jobs/s",
        "p50 latency",
        "p95 latency",
        "hits",
        "misses",
        "evict",
        "compiles",
    ]);
    for r in rows {
        t.row([
            r.scenario.clone(),
            format!("{:.1}", r.jobs_per_sec),
            format!("{:.1} ms", r.p50_latency_us as f64 / 1000.0),
            format!("{:.1} ms", r.p95_latency_us as f64 / 1000.0),
            r.cache_hits.to_string(),
            r.cache_misses.to_string(),
            r.cache_evictions.to_string(),
            r.compiles.to_string(),
        ]);
    }
    t.render()
}

fn run_packed(args: &Args, recorder: &Recorder) {
    let outcome = run_packed_traffic_observed(
        args.seed,
        args.requests,
        args.threads,
        args.repeats,
        recorder,
    );
    // Both servers trace a warm-up pass plus every measured pass.
    export_obs(recorder, args, 2 * args.requests);
    if let Some(path) = &args.json_out {
        write_json(path, &outcome.rows);
    }
    if args.json {
        println!("{}", to_json(&outcome.rows));
    } else {
        println!(
            "Multiprogramming packing: {} small jobs, seed {} (packed aggregates verified \
             bit-identical to interleaved):",
            args.requests, args.seed
        );
        println!("{}", render_rows(&outcome.rows));
        let p = &outcome.packer;
        println!(
            "packs formed: {} ({} jobs, {} shots packed; {} combined-compile cache hits; \
             {} declined)",
            p.packs_formed, p.jobs_packed, p.packed_shots, p.combine_cache_hits, p.declined
        );
    }
    eprintln!(
        "packed over interleaved: {:.2}x jobs/sec",
        outcome.pack_ratio
    );
    if let Some(min) = args.min_pack_ratio {
        if outcome.pack_ratio.is_nan() || outcome.pack_ratio < min {
            eprintln!(
                "FAIL: pack ratio {:.3} < required {min:.3}",
                outcome.pack_ratio
            );
            std::process::exit(1);
        }
    }
}

/// The obs-overhead gate: serve the stream obs-off and obs-on
/// (bit-identity asserted inside) and require the throughput ratio to
/// stay above the floor.
fn run_obs_gate(args: &Args, min_ratio: f64) {
    let o = run_obs_overhead(args.seed, args.requests, args.threads, args.repeats);
    export_obs(&o.recorder, args, args.requests);
    if args.json {
        println!("{}", to_json(&o.rows));
    } else {
        println!(
            "Observability overhead: {} requests, seed {} (obs-on aggregates verified \
             bit-identical to obs-off):",
            args.requests, args.seed
        );
        println!("{}", render_rows(&o.rows));
    }
    eprintln!(
        "obs-on over obs-off: {:.3}x jobs/sec ({} trace events recorded)",
        o.obs_ratio, o.trace_events
    );
    if o.obs_ratio.is_nan() || o.obs_ratio < min_ratio {
        eprintln!(
            "FAIL: obs-on throughput ratio {:.3} < required {min_ratio:.3}",
            o.obs_ratio
        );
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.check_schema {
        match check_schema(path, &to_json(&sample_rows())) {
            Ok(()) => {
                eprintln!("schema OK: {path}");
                return;
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &args.trace_schema_out {
        std::fs::write(path, sample_trace_json())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("trace schema baseline written: {path}");
        return;
    }
    if let Some(path) = &args.check_trace_schema {
        match check_schema(path, &sample_trace_json()) {
            Ok(()) => {
                eprintln!("trace schema OK: {path}");
                return;
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(min) = args.min_obs_ratio {
        run_obs_gate(&args, min);
        return;
    }
    // Recording stays off unless an export asked for it — the default
    // run measures the exact pre-obs code path.
    let recorder = if args.trace_out.is_some() || args.metrics_out.is_some() {
        Recorder::new()
    } else {
        Recorder::off()
    };
    if args.pack {
        run_packed(&args, &recorder);
        return;
    }
    let machine = args.machine.as_deref().map(|spec| {
        resolve_machine(spec)
            .and_then(|m| m.to_config().map_err(|e| e.to_string()).map(|_| m))
            .unwrap_or_else(|e| {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            })
    });
    if let Some(spec) = &args.machine {
        eprintln!("machine: {spec}");
    }
    let (rows, tenants) = run_mixed_traffic_observed(
        machine.as_ref(),
        args.seed,
        args.requests,
        args.threads,
        args.repeats,
        &recorder,
    );
    // Every cold server instance plus the warm re-drives traced a full
    // pass each; the weakest floor is one pass of lifecycles.
    export_obs(&recorder, &args, args.requests);
    if let Some(path) = &args.json_out {
        write_json(path, &rows);
    }
    if args.json {
        println!("{}", to_json(&rows));
    } else {
        println!(
            "Mixed-traffic serving: {} requests, seed {} (aggregates verified identical):",
            args.requests, args.seed
        );
        println!("{}", render_rows(&rows));
        println!("Per-tenant compile-cache accounting (server passes):");
        let mut tt = TextTable::new(["tenant", "hits", "misses", "evict", "compiles", "hit rate"]);
        for (tenant, s) in &tenants {
            let lookups = s.hits + s.misses;
            let rate = if lookups == 0 {
                0.0
            } else {
                s.hits as f64 / lookups as f64
            };
            tt.row([
                tenant.clone(),
                s.hits.to_string(),
                s.misses.to_string(),
                s.evictions.to_string(),
                s.compiles.to_string(),
                format!("{:.0}%", rate * 100.0),
            ]);
        }
        println!("{}", tt.render());
    }
    let speedup = warm_speedup(&rows);
    eprintln!("cache-warm server over naive client: {speedup:.2}x jobs/sec");
    if let Some(min) = args.min_warm_speedup {
        if speedup.is_nan() || speedup < min {
            eprintln!("FAIL: warm speedup {speedup:.3} < required {min:.3}");
            std::process::exit(1);
        }
    }
}
