//! Regenerates Fig. 12: execution time of the seven suite benchmarks on a
//! two-core implementation vs the uniprocessor.
//!
//! Usage: `fig12_two_core [--json]`.

use quape_bench::fig12;
use quape_bench::table::{to_json, TextTable};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let rows = fig12::run();
    if json {
        println!("{}", to_json(&rows));
        return;
    }
    println!("Fig. 12 — two-core vs uniprocessor execution time:");
    let mut t = TextTable::new(["benchmark", "uni (ns)", "2-core (ns)", "speedup", "blocks"]);
    for r in &rows {
        t.row([
            r.benchmark.clone(),
            r.uniprocessor_ns.to_string(),
            r.two_core_ns.to_string(),
            format!("{:.2}x", r.speedup),
            r.blocks.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "average speedup: {:.2}x   (paper: 1.30x)",
        fig12::average_speedup(&rows)
    );
}
