//! Regenerates Fig. 14: individual RB and simRB decay curves with fitted
//! fidelities, plus a through-the-control-stack validation run.
//!
//! Usage: `fig14_simrb [--json] [--stack] [--batch [SHOTS]]`.
//!
//! `--batch` runs the shot-engine acceptance comparison *instead of*
//! the figure (it composes with `--json` but not `--stack`): N noise
//! realizations (default 256) of one RB sequence through the complete
//! stack, once as the old sequential per-shot `Machine::new` loop and
//! once through the batched `ShotEngine`, reporting shots/sec for both.

use quape_bench::fig14;
use quape_bench::table::{to_json, TextTable};

fn batch_comparison(shots: u64, json: bool) {
    let c = fig14::shot_engine_comparison(48, shots, 0);
    if json {
        println!("{}", to_json(&c));
        return;
    }
    println!(
        "shot engine vs sequential loop — {} shots of one m={} RB sequence through the stack:\n",
        c.shots, c.m
    );
    let mut t = TextTable::new(["method", "wall time", "shots/sec", "survival"]);
    t.row([
        "sequential Machine::new loop".to_string(),
        format!("{:.3} s", c.sequential_secs),
        format!("{:.1}", c.sequential_shots_per_sec),
        format!("{:.3}", c.survival_sequential),
    ]);
    t.row([
        format!("ShotEngine ({} threads)", c.batch_threads),
        format!("{:.3} s", c.batch_secs),
        format!("{:.1}", c.batch_shots_per_sec),
        format!("{:.3}", c.survival_batch),
    ]);
    println!("{}", t.render());
    println!("speedup: {:.2}x", c.speedup);
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let stack = std::env::args().any(|a| a == "--stack");
    if let Some(pos) = std::env::args().position(|a| a == "--batch") {
        if stack {
            eprintln!("fig14_simrb: --batch replaces the figure run; ignoring --stack");
        }
        let shots = std::env::args()
            .nth(pos + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        batch_comparison(shots, json);
        return;
    }

    let report = fig14::run_direct();
    if json {
        println!("{}", to_json(&report));
        return;
    }

    println!("Fig. 14 — RB and simRB on q0/q1 (state-vector QPU):\n");
    let mut t = TextTable::new(["curve", "fidelity", "paper", "decay p"]);
    let rows = [
        ("RB q0 (individual)", &report.individual_a, 0.995),
        ("RB q1 (individual)", &report.individual_b, 0.994),
        ("simRB q0", &report.simultaneous_a, 0.987),
        ("simRB q1", &report.simultaneous_b, 0.991),
    ];
    for (name, curve, paper) in rows {
        t.row([
            name.to_string(),
            format!("{:.2}%", curve.fidelity() * 100.0),
            format!("{:.1}%", paper * 100.0),
            format!("{:.5}", curve.fit.decay),
        ]);
    }
    println!("{}", t.render());

    println!("survival curves (sequence length -> survival):");
    let mut c = TextTable::new(["m", "RB q0", "RB q1", "simRB q0", "simRB q1"]);
    for (i, p) in report.individual_a.points.iter().enumerate() {
        c.row([
            p.length.to_string(),
            format!("{:.4}", p.survival),
            format!("{:.4}", report.individual_b.points[i].survival),
            format!("{:.4}", report.simultaneous_a.points[i].survival),
            format!("{:.4}", report.simultaneous_b.points[i].survival),
        ]);
    }
    println!("{}", c.render());

    if stack {
        println!("through-stack validation (assembler -> QuAPE machine -> QPU):");
        let lengths = [1, 4, 12, 24, 48, 96];
        let (samples, shots_per_sample) = (40, 4);
        let started = std::time::Instant::now();
        let r = fig14::run_through_stack_batch(&lengths, samples, shots_per_sample, 0);
        let secs = started.elapsed().as_secs_f64();
        let total_shots = (lengths.len() as u64) * 2 * samples as u64 * shots_per_sample;
        println!(
            "({samples} sequences x {shots_per_sample} shots per length and mode: {total_shots} shots in {secs:.2} s, {:.1} shots/sec)",
            total_shots as f64 / secs.max(f64::MIN_POSITIVE)
        );
        let mut s = TextTable::new(["m", "individual", "simultaneous"]);
        for (i, &m) in r.lengths.iter().enumerate() {
            s.row([
                m.to_string(),
                format!("{:.3}", r.survival_individual[i]),
                format!("{:.3}", r.survival_simultaneous[i]),
            ]);
        }
        println!("{}", s.render());
        println!(
            "fits: individual p={:.5}, simultaneous p={:.5}",
            r.fit_individual.decay, r.fit_simultaneous.decay
        );
    }
}
