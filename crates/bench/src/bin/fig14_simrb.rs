//! Regenerates Fig. 14: individual RB and simRB decay curves with fitted
//! fidelities, plus a through-the-control-stack validation run.
//!
//! Usage: `fig14_simrb [--json] [--stack]`.

use quape_bench::fig14;
use quape_bench::table::{to_json, TextTable};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let stack = std::env::args().any(|a| a == "--stack");

    let report = fig14::run_direct();
    if json {
        println!("{}", to_json(&report));
        return;
    }

    println!("Fig. 14 — RB and simRB on q0/q1 (state-vector QPU):\n");
    let mut t = TextTable::new(["curve", "fidelity", "paper", "decay p"]);
    let rows = [
        ("RB q0 (individual)", &report.individual_a, 0.995),
        ("RB q1 (individual)", &report.individual_b, 0.994),
        ("simRB q0", &report.simultaneous_a, 0.987),
        ("simRB q1", &report.simultaneous_b, 0.991),
    ];
    for (name, curve, paper) in rows {
        t.row([
            name.to_string(),
            format!("{:.2}%", curve.fidelity() * 100.0),
            format!("{:.1}%", paper * 100.0),
            format!("{:.5}", curve.fit.decay),
        ]);
    }
    println!("{}", t.render());

    println!("survival curves (sequence length -> survival):");
    let mut c = TextTable::new(["m", "RB q0", "RB q1", "simRB q0", "simRB q1"]);
    for (i, p) in report.individual_a.points.iter().enumerate() {
        c.row([
            p.length.to_string(),
            format!("{:.4}", p.survival),
            format!("{:.4}", report.individual_b.points[i].survival),
            format!("{:.4}", report.simultaneous_a.points[i].survival),
            format!("{:.4}", report.simultaneous_b.points[i].survival),
        ]);
    }
    println!("{}", c.render());

    if stack {
        println!("through-stack validation (assembler -> QuAPE machine -> QPU):");
        let r = fig14::run_through_stack(&[1, 4, 12, 24, 48, 96], 40);
        let mut s = TextTable::new(["m", "individual", "simultaneous"]);
        for (i, &m) in r.lengths.iter().enumerate() {
            s.row([
                m.to_string(),
                format!("{:.3}", r.survival_individual[i]),
                format!("{:.3}", r.survival_simultaneous[i]),
            ]);
        }
        println!("{}", s.render());
        println!(
            "fits: individual p={:.5}, simultaneous p={:.5}",
            r.fit_individual.decay, r.fit_simultaneous.decay
        );
    }
}
