//! Regenerates Table 1: the block information table of the Fig. 6 example
//! circuit, in both the direct-dependency and priority representations.

use quape_bench::tables;

fn main() {
    println!("Table 1 — block information table (direct dependencies):\n");
    print!("{}", tables::table1());
    tables::table1_checks().expect("table structure matches the paper");
    println!("\npriority representation (§5.2.2):");
    for (name, prio) in tables::table1_priorities() {
        println!("  {name}: priority {prio}");
    }
}
