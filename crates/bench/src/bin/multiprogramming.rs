//! The §3.1.2 CLP scenario: multiprogramming. Several independent tasks
//! (repeat-until-success loops — worst-case feedback-heavy tenants) are
//! combined into one workload; the multiprocessor interleaves them,
//! improving QPU utilization exactly as the paper motivates for quantum
//! cloud services.
//!
//! The combined workload is compiled once per configuration and the
//! seeded repetitions run as one batch through the `ShotEngine` (each
//! shot gets its own deterministic RNG stream), so the sweep reports
//! host-side shots/sec alongside the simulated times.

use quape_bench::table::TextTable;
use quape_core::{BatchReport, CompiledJob, QuapeConfig, ShotEngine};
use quape_qpu::{BehavioralQpuFactory, MeasurementModel};
use quape_workloads::feedback::rus_block;
use quape_workloads::multiprogramming::combine;

fn run_batch(tasks: usize, processors: usize, shots: u64) -> BatchReport {
    let programs: Vec<_> = (0..tasks)
        .map(|_| rus_block(0).expect("valid task"))
        .collect();
    let combined = combine(&programs).expect("tasks combine");
    let cfg = QuapeConfig::multiprocessor(processors);
    let factory =
        BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 });
    let job = CompiledJob::compile(cfg, combined).expect("valid job");
    ShotEngine::new(job, factory)
        .base_seed(0)
        .cycle_limit(1_000_000)
        .run(shots)
}

fn main() {
    let shots = 200u64;
    println!("Multiprogramming: N independent RUS tasks on one control stack");
    println!("(mean over {shots} engine shots, p(fail) = 0.5 per round)\n");
    let mut t = TextTable::new([
        "tasks",
        "1 proc (ns)",
        "2 procs (ns)",
        "4 procs (ns)",
        "speedup 4v1",
        "host shots/sec",
    ]);
    for tasks in [2usize, 4, 6] {
        let reports: Vec<BatchReport> = [1usize, 2, 4]
            .iter()
            .map(|&p| run_batch(tasks, p, shots))
            .collect();
        let mean = |r: &BatchReport| r.aggregate.execution_time_ns.mean;
        let throughput: f64 =
            reports.iter().map(BatchReport::shots_per_sec).sum::<f64>() / reports.len() as f64;
        t.row([
            tasks.to_string(),
            format!("{:.0}", mean(&reports[0])),
            format!("{:.0}", mean(&reports[1])),
            format!("{:.0}", mean(&reports[2])),
            format!("{:.2}x", mean(&reports[0]) / mean(&reports[2])),
            format!("{throughput:.0}"),
        ]);
    }
    println!("{}", t.render());
    println!("Independent tenants' feedback stalls overlap on the multiprocessor,");
    println!("which is the utilization argument of §3.1.2.");
}
