//! The §3.1.2 CLP scenario: multiprogramming. Several independent tasks
//! (repeat-until-success loops — worst-case feedback-heavy tenants) are
//! combined into one workload; the multiprocessor interleaves them,
//! improving QPU utilization exactly as the paper motivates for quantum
//! cloud services.

use quape_bench::table::TextTable;
use quape_core::{Machine, QuapeConfig};
use quape_qpu::{BehavioralQpu, MeasurementModel};
use quape_workloads::feedback::rus_block;
use quape_workloads::multiprogramming::combine;

fn mean_ns(tasks: usize, processors: usize, runs: u64) -> f64 {
    let programs: Vec<_> = (0..tasks).map(|_| rus_block(0).expect("valid task")).collect();
    let combined = combine(&programs).expect("tasks combine");
    let mut total = 0u64;
    for seed in 0..runs {
        let cfg = QuapeConfig::multiprocessor(processors).with_seed(seed);
        let qpu =
            BehavioralQpu::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 }, seed);
        total += Machine::new(cfg, combined.clone(), Box::new(qpu))
            .expect("valid machine")
            .run_with_limit(1_000_000)
            .execution_time_ns();
    }
    total as f64 / runs as f64
}

fn main() {
    let runs = 200;
    println!("Multiprogramming: N independent RUS tasks on one control stack");
    println!("(mean over {runs} seeded runs, p(fail) = 0.5 per round)\n");
    let mut t = TextTable::new(["tasks", "1 proc (ns)", "2 procs (ns)", "4 procs (ns)", "speedup 4v1"]);
    for tasks in [2usize, 4, 6] {
        let p1 = mean_ns(tasks, 1, runs);
        let p2 = mean_ns(tasks, 2, runs);
        let p4 = mean_ns(tasks, 4, runs);
        t.row([
            tasks.to_string(),
            format!("{p1:.0}"),
            format!("{p2:.0}"),
            format!("{p4:.0}"),
            format!("{:.2}x", p1 / p4),
        ]);
    }
    println!("{}", t.render());
    println!("Independent tenants' feedback stalls overlap on the multiprocessor,");
    println!("which is the utilization argument of §3.1.2.");
}
