//! Ablation studies over the design choices DESIGN.md calls out,
//! reporting *simulated* metrics:
//!
//! * prefetching on/off for the multiprocessor (block-switch latency);
//! * fast context switch on/off (active reset + RB);
//! * superscalar width sweep on hs16 (saturation at the step width);
//! * scheduler sensitivity to block granularity (the §7 observation that
//!   overly fine-grained blocks hurt).

use quape_bench::table::TextTable;
use quape_compiler::Compiler;
use quape_core::{ces_report_paper, Machine, QuapeConfig};
use quape_isa::{ClassicalOp, Dependency, Gate1, ProgramBuilder, QuantumOp, Qubit};
use quape_qpu::{BehavioralQpu, CliffordGroup, MeasurementModel};
use quape_workloads::benchmarks::hs16;
use quape_workloads::rb::active_reset_with_rb;
use quape_workloads::{ShorSyndrome, ShorSyndromeConfig};

fn mean_shor_ns(cfg_base: &QuapeConfig, runs: usize) -> f64 {
    let w = ShorSyndrome::generate(ShorSyndromeConfig::default()).expect("valid workload");
    let mut total = 0u64;
    for i in 0..runs {
        let cfg = cfg_base.clone().with_seed(i as u64);
        let qpu = BehavioralQpu::new(cfg.timings, ShorSyndrome::measurement_model(0.25), i as u64);
        total += Machine::new(cfg, w.program.clone(), Box::new(qpu))
            .expect("valid machine")
            .run_with_limit(2_000_000)
            .execution_time_ns();
    }
    total as f64 / runs as f64
}

fn ablate_prefetch(runs: usize) {
    println!("— Prefetch ablation (Shor syndrome, 6 processors, f = 0.25) —");
    let mut t = TextTable::new(["prefetch", "mean time (ns)"]);
    for prefetch in [true, false] {
        let mut cfg = QuapeConfig::multiprocessor(6);
        cfg.prefetch = prefetch;
        t.row([
            prefetch.to_string(),
            format!("{:.0}", mean_shor_ns(&cfg, runs)),
        ]);
    }
    println!("{}", t.render());
}

fn ablate_fcs() {
    println!("— Fast-context-switch ablation (active reset + RB) —");
    let group = CliffordGroup::new();
    let program = active_reset_with_rb(&group, 0, 1, 16, 3)
        .expect("valid workload")
        .program;
    let mut t = TextTable::new(["fast context switch", "execution time (ns)"]);
    for fcs in [true, false] {
        let mut cfg = QuapeConfig::superscalar(8).with_seed(5);
        cfg.fast_context_switch = fcs;
        cfg.daq_jitter_ns = 0;
        let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysOne, 5);
        let ns = Machine::new(cfg, program.clone(), Box::new(qpu))
            .expect("valid machine")
            .run()
            .execution_time_ns();
        t.row([fcs.to_string(), ns.to_string()]);
    }
    println!("{}", t.render());
}

fn ablate_width() {
    println!("— Superscalar width sweep (hs16 average TR) —");
    let program = Compiler::new().compile(&hs16()).expect("compiles");
    let mut t = TextTable::new(["width", "avg TR", "improvement vs scalar"]);
    let mut scalar_tr = None;
    for width in [1usize, 2, 4, 8, 16] {
        let cfg = QuapeConfig::superscalar(width).with_seed(5);
        let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 }, 5);
        let report = Machine::new(cfg, program.clone(), Box::new(qpu))
            .expect("valid machine")
            .run();
        let tr = ces_report_paper(&report).average_tr();
        let base = *scalar_tr.get_or_insert(tr);
        t.row([
            width.to_string(),
            format!("{tr:.2}"),
            format!("{:.2}x", base / tr),
        ]);
    }
    println!("{}", t.render());
}

/// 64 two-instruction blocks vs 8 sixteen-instruction blocks: same work,
/// very different scheduling pressure.
fn ablate_granularity() {
    println!("— Block-granularity ablation (same 128 gates, 4 processors) —");
    let build = |blocks: usize| {
        let per_block = 128 / blocks;
        let mut b = ProgramBuilder::new();
        for i in 0..blocks {
            b.begin_block(format!("g{i}"), Dependency::Priority(0));
            for j in 0..per_block {
                let q = ((i * per_block + j) % 32) as u16;
                b.quantum(2, QuantumOp::Gate1(Gate1::X, Qubit::new(q)));
            }
            b.push(ClassicalOp::Stop);
            b.end_block();
        }
        b.finish().expect("valid program")
    };
    let mut t = TextTable::new(["blocks", "instructions each", "execution time (ns)"]);
    for blocks in [4usize, 8, 16, 32, 64] {
        let program = build(blocks);
        let cfg = QuapeConfig::multiprocessor(4).with_seed(5);
        let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysZero, 5);
        let ns = Machine::new(cfg, program, Box::new(qpu))
            .expect("valid machine")
            .run()
            .execution_time_ns();
        t.row([
            blocks.to_string(),
            (128 / blocks + 1).to_string(),
            ns.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(fine-grained blocks overwhelm the one-action-per-cycle scheduler, §7)");
}

fn main() {
    let runs = std::env::args()
        .position(|a| a == "--runs")
        .and_then(|i| std::env::args().nth(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    ablate_prefetch(runs);
    ablate_fcs();
    ablate_width();
    ablate_granularity();
}
