//! Verifies the fast context switch (§7): RB instructions execute while
//! an active qubit reset waits for its measurement result, and the
//! context switch takes three clock cycles.

use quape_bench::fcs;
use quape_bench::table::to_json;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let r = fcs::run();
    if json {
        println!("{}", to_json(&r));
        return;
    }
    println!("Fast context switch verification (active reset + RB):");
    println!("  execution time with FCS:    {} ns", r.with_fcs_ns);
    println!("  execution time without FCS: {} ns", r.without_fcs_ns);
    println!(
        "  RB pulses issued during the measurement wait: {}",
        r.pulses_during_wait
    );
    println!("  context switches performed: {}", r.context_switches);
    println!(
        "  measured context-switch cost: {} cycles   (paper: 3 cycles)",
        r.context_switch_cycles
    );
}
