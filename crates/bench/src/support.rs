//! Helpers shared by the serving benchmarks ([`crate::mixed`],
//! [`crate::sharded`]).

use quape_core::QuapeConfig;
use quape_qpu::{BehavioralQpuFactory, MeasurementModel};
use quape_server::Priority;

/// The serving benchmarks' common QPU backend: a fair coin per
/// measurement, timed by the configuration in force.
pub(crate) fn factory(cfg: &QuapeConfig) -> BehavioralQpuFactory {
    BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 })
}

/// Maps a [`quape_workloads::traffic::TrafficRequest`] priority class
/// to the server's type.
pub(crate) fn priority_of(class: u8) -> Priority {
    match class {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 when
/// empty).
pub(crate) fn percentile(sorted_us: &[u64], p: usize) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    sorted_us[(sorted_us.len() - 1) * p / 100]
}
