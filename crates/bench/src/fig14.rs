//! Fig. 14: RB and simRB on the qubit pair (q0, q1).
//!
//! Two modes:
//!
//! * [`run_direct`] — the full experiment on the state-vector QPU with
//!   the calibrated noise/crosstalk model (fast; this regenerates the
//!   figure's four decay curves and fitted fidelities);
//! * [`run_through_stack`] — drives RB sequences *through the complete
//!   control stack* (assembler → machine → emitter → state-vector QPU),
//!   validating, as the paper's §8 does, that QuAPE issues simultaneous
//!   operations correctly. Survival comes from the measurement records
//!   the machine collected.

use quape_core::{shot_seed, Machine, QuapeConfig, StateVectorQpu};
use quape_qpu::{
    fit_decay, run_simrb_experiment, CliffordGroup, DecayFit, DepolarizingNoise, RbConfig,
    ReadoutError, SimRbReport,
};
use quape_workloads::rb::{rb_program, RbBatch};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Runs the calibrated Fig. 14 experiment directly on the QPU substrate.
pub fn run_direct() -> SimRbReport {
    run_simrb_experiment(&RbConfig::paper()).expect("RB experiment fits")
}

/// Through-stack RB decay measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StackRbResult {
    /// Sequence lengths.
    pub lengths: Vec<u32>,
    /// Survival of qubit 0 (individual RB).
    pub survival_individual: Vec<f64>,
    /// Survival of qubit 0 (simRB).
    pub survival_simultaneous: Vec<f64>,
    /// Fit of the individual curve.
    pub fit_individual: DecayFit,
    /// Fit of the simultaneous curve.
    pub fit_simultaneous: DecayFit,
}

/// Drives RB programs through the full control stack.
///
/// `samples` random sequences are averaged per length, each executed as a
/// one-shot batch on a superscalar QuAPE machine in front of a noisy
/// two-qubit state-vector QPU.
pub fn run_through_stack(lengths: &[u32], samples: usize) -> StackRbResult {
    run_through_stack_batch(lengths, samples, 1, 0)
}

/// Batched through-stack RB: `samples` random sequences per length, each
/// compiled once and executed for `shots_per_sample` independent noise
/// realizations by the shot engine on `threads` workers (0 = automatic).
///
/// Survival estimates average over sequences *and* shots, which tightens
/// them at the same number of compiled programs — the multi-shot batching
/// the §8 experiment implies.
pub fn run_through_stack_batch(
    lengths: &[u32],
    samples: usize,
    shots_per_sample: u64,
    threads: usize,
) -> StackRbResult {
    let group = CliffordGroup::new();
    let batch = RbBatch::new(DepolarizingNoise::for_fidelity(0.995))
        .with_shots(shots_per_sample.max(1))
        .with_threads(threads);
    let survive = |simultaneous: bool, m: u32, seed: u64| -> f64 {
        let job = if simultaneous {
            batch
                .simrb_job(&group, 0, 1, m, seed)
                .expect("valid program")
        } else {
            batch.rb_job(&group, 0, m, seed).expect("valid program")
        };
        batch.survival(&job, seed, 0)
    };
    let mean = |simultaneous: bool, m: u32| -> f64 {
        (0..samples)
            .map(|i| survive(simultaneous, m, 1000 + i as u64))
            .sum::<f64>()
            / samples as f64
    };
    let survival_individual: Vec<f64> = lengths.iter().map(|&m| mean(false, m)).collect();
    let survival_simultaneous: Vec<f64> = lengths.iter().map(|&m| mean(true, m)).collect();
    let fit_individual = fit_decay(lengths, &survival_individual).expect("individual fit");
    let fit_simultaneous = fit_decay(lengths, &survival_simultaneous).expect("simRB fit");
    StackRbResult {
        lengths: lengths.to_vec(),
        survival_individual,
        survival_simultaneous,
        fit_individual,
        fit_simultaneous,
    }
}

/// Host-side comparison of one multi-shot RB job run two ways: the old
/// sequential per-shot `Machine::new` loop (revalidating config and
/// re-wrapping the program on every shot) versus the shot engine
/// (compile once, fan shots across threads).
#[derive(Debug, Clone, Serialize)]
pub struct BatchComparison {
    /// RB sequence length.
    pub m: u32,
    /// Shots run by each method.
    pub shots: u64,
    /// Wall time of the sequential per-shot loop, seconds.
    pub sequential_secs: f64,
    /// Wall time of the batch engine, seconds.
    pub batch_secs: f64,
    /// Worker threads the engine used.
    pub batch_threads: usize,
    /// Sequential throughput, shots/s.
    pub sequential_shots_per_sec: f64,
    /// Engine throughput, shots/s.
    pub batch_shots_per_sec: f64,
    /// `sequential_secs / batch_secs`.
    pub speedup: f64,
    /// Survival measured by the sequential loop.
    pub survival_sequential: f64,
    /// Survival measured by the batch.
    pub survival_batch: f64,
}

/// Runs the acceptance comparison: `shots` noise realizations of one
/// length-`m` RB sequence, sequentially (per-shot `Machine::new`) and
/// through the [`quape_core::ShotEngine`] on `threads` workers
/// (0 = automatic).
pub fn shot_engine_comparison(m: u32, shots: u64, threads: usize) -> BatchComparison {
    let group = CliffordGroup::new();
    let noise = DepolarizingNoise::for_fidelity(0.995);
    let base_seed = 77u64;

    // Old path: regenerate the program and rebuild (revalidate) the
    // machine for every shot — what every call site did before the
    // job/shot split.
    let seq_start = Instant::now();
    let mut survived = 0u64;
    for i in 0..shots {
        let seed = shot_seed(base_seed, i);
        let program = rb_program(&group, 0, m, base_seed)
            .expect("valid program")
            .program;
        let cfg = QuapeConfig::superscalar(8).with_seed(seed);
        let qpu = StateVectorQpu::new(1, cfg.timings, noise, ReadoutError::default(), seed);
        let report = Machine::new(cfg, program, Box::new(qpu))
            .expect("valid machine")
            .run();
        let outcome = report
            .measurements
            .iter()
            .find(|r| r.qubit.index() == 0)
            .expect("qubit 0 measured");
        if !outcome.value {
            survived += 1;
        }
    }
    let sequential_secs = seq_start.elapsed().as_secs_f64();
    let survival_sequential = survived as f64 / shots as f64;

    // New path: compile once, batch the shots.
    let batch = RbBatch::new(noise).with_shots(shots).with_threads(threads);
    let job = batch.rb_job(&group, 0, m, base_seed).expect("valid job");
    let report = batch.run(&job, base_seed);
    let batch_secs = report.wall_time.as_secs_f64();
    let survival_batch = report.aggregate.survival(0).unwrap_or(0.0);

    BatchComparison {
        m,
        shots,
        sequential_secs,
        batch_secs,
        batch_threads: report.threads,
        sequential_shots_per_sec: shots as f64 / sequential_secs.max(f64::MIN_POSITIVE),
        batch_shots_per_sec: report.shots_per_sec(),
        speedup: sequential_secs / batch_secs.max(f64::MIN_POSITIVE),
        survival_sequential,
        survival_batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_experiment_matches_paper_fidelities() {
        let r = run_direct();
        // Paper: individual 99.5% / 99.4%, simRB 98.7% / 99.1%. The
        // tolerances cover RB sampling noise at the default sample count.
        assert!(
            (r.individual_a.fidelity() - 0.995).abs() < 0.004,
            "{}",
            r.individual_a.fidelity()
        );
        assert!(
            (r.individual_b.fidelity() - 0.994).abs() < 0.004,
            "{}",
            r.individual_b.fidelity()
        );
        assert!(
            (r.simultaneous_a.fidelity() - 0.987).abs() < 0.005,
            "{}",
            r.simultaneous_a.fidelity()
        );
        assert!(
            (r.simultaneous_b.fidelity() - 0.991).abs() < 0.005,
            "{}",
            r.simultaneous_b.fidelity()
        );
        // The qualitative claim: simRB is strictly worse than individual.
        assert!(r.simultaneous_a.fidelity() < r.individual_a.fidelity());
        assert!(r.simultaneous_b.fidelity() < r.individual_b.fidelity());
    }

    #[test]
    fn stack_rb_decays_and_issues_cleanly() {
        let r = run_through_stack(&[1, 8, 24, 48], 12);
        // Short sequences survive more often than long ones.
        assert!(
            r.survival_individual[0] >= r.survival_individual[3],
            "{:?}",
            r.survival_individual
        );
        assert!(r.fit_individual.decay <= 1.0);
    }
}
