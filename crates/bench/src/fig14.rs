//! Fig. 14: RB and simRB on the qubit pair (q0, q1).
//!
//! Two modes:
//!
//! * [`run_direct`] — the full experiment on the state-vector QPU with
//!   the calibrated noise/crosstalk model (fast; this regenerates the
//!   figure's four decay curves and fitted fidelities);
//! * [`run_through_stack`] — drives RB sequences *through the complete
//!   control stack* (assembler → machine → emitter → state-vector QPU),
//!   validating, as the paper's §8 does, that QuAPE issues simultaneous
//!   operations correctly. Survival comes from the measurement records
//!   the machine collected.

use quape_core::{Machine, QuapeConfig, StateVectorQpu};
use quape_qpu::{
    fit_decay, run_simrb_experiment, CliffordGroup, DecayFit, DepolarizingNoise, RbConfig,
    ReadoutError, SimRbReport,
};
use quape_workloads::rb::{rb_program, simrb_program};
use serde::{Deserialize, Serialize};

/// Runs the calibrated Fig. 14 experiment directly on the QPU substrate.
pub fn run_direct() -> SimRbReport {
    run_simrb_experiment(&RbConfig::paper()).expect("RB experiment fits")
}

/// Through-stack RB decay measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StackRbResult {
    /// Sequence lengths.
    pub lengths: Vec<u32>,
    /// Survival of qubit 0 (individual RB).
    pub survival_individual: Vec<f64>,
    /// Survival of qubit 0 (simRB).
    pub survival_simultaneous: Vec<f64>,
    /// Fit of the individual curve.
    pub fit_individual: DecayFit,
    /// Fit of the simultaneous curve.
    pub fit_simultaneous: DecayFit,
}

/// Drives RB programs through the full control stack.
///
/// `samples` random sequences are averaged per length; each run assembles
/// a program, executes it on a superscalar QuAPE machine in front of a
/// noisy two-qubit state-vector QPU, and reads the measurement record.
pub fn run_through_stack(lengths: &[u32], samples: usize) -> StackRbResult {
    let group = CliffordGroup::new();
    let noise = DepolarizingNoise::for_fidelity(0.995);
    let survive = |simultaneous: bool, m: u32, seed: u64| -> f64 {
        let program = if simultaneous {
            simrb_program(&group, 0, 1, m, seed).expect("valid program")
        } else {
            rb_program(&group, 0, m, seed).expect("valid program").program
        };
        let cfg = QuapeConfig::superscalar(8).with_seed(seed);
        let qpu =
            StateVectorQpu::new(2, cfg.timings, noise, ReadoutError::default(), seed ^ 0xbeef);
        let report = Machine::new(cfg, program, Box::new(qpu)).expect("valid machine").run();
        let outcome = report
            .measurements
            .iter()
            .find(|m| m.qubit.index() == 0)
            .expect("qubit 0 measured");
        if outcome.value {
            0.0
        } else {
            1.0
        }
    };
    let mean = |simultaneous: bool, m: u32| -> f64 {
        (0..samples).map(|i| survive(simultaneous, m, 1000 + i as u64)).sum::<f64>()
            / samples as f64
    };
    let survival_individual: Vec<f64> = lengths.iter().map(|&m| mean(false, m)).collect();
    let survival_simultaneous: Vec<f64> = lengths.iter().map(|&m| mean(true, m)).collect();
    let fit_individual = fit_decay(lengths, &survival_individual).expect("individual fit");
    let fit_simultaneous = fit_decay(lengths, &survival_simultaneous).expect("simRB fit");
    StackRbResult {
        lengths: lengths.to_vec(),
        survival_individual,
        survival_simultaneous,
        fit_individual,
        fit_simultaneous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_experiment_matches_paper_fidelities() {
        let r = run_direct();
        // Paper: individual 99.5% / 99.4%, simRB 98.7% / 99.1%. The
        // tolerances cover RB sampling noise at the default sample count.
        assert!((r.individual_a.fidelity() - 0.995).abs() < 0.004, "{}", r.individual_a.fidelity());
        assert!((r.individual_b.fidelity() - 0.994).abs() < 0.004, "{}", r.individual_b.fidelity());
        assert!((r.simultaneous_a.fidelity() - 0.987).abs() < 0.005, "{}", r.simultaneous_a.fidelity());
        assert!((r.simultaneous_b.fidelity() - 0.991).abs() < 0.005, "{}", r.simultaneous_b.fidelity());
        // The qualitative claim: simRB is strictly worse than individual.
        assert!(r.simultaneous_a.fidelity() < r.individual_a.fidelity());
        assert!(r.simultaneous_b.fidelity() < r.individual_b.fidelity());
    }

    #[test]
    fn stack_rb_decays_and_issues_cleanly() {
        let r = run_through_stack(&[1, 8, 24, 48], 12);
        // Short sequences survive more often than long ones.
        assert!(
            r.survival_individual[0] >= r.survival_individual[3],
            "{:?}",
            r.survival_individual
        );
        assert!(r.fit_individual.decay <= 1.0);
    }
}
