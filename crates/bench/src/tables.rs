//! Table 1 (block information table example) and Table 2 (QuAPE vs
//! QuMA_v2 characteristics).

use crate::table::TextTable;
use quape_isa::{BlockId, BlockInfoTable};

/// Builds Table 1 exactly as printed in the paper: the block information
/// table of the Fig. 6 example circuit.
pub fn table1() -> BlockInfoTable {
    crate::fig07::example_program().blocks().clone()
}

/// The priority-based alternative representation shown in §5.2.2.
pub fn table1_priorities() -> Vec<(String, u16)> {
    let table = table1();
    // W1/W2 → priority 0, W3 → 1, W4 → 2 (derived from the direct DAG).
    let mut depth = vec![0u16; table.len()];
    for (id, info) in table.iter() {
        if let quape_isa::Dependency::Direct(deps) = &info.dependency {
            depth[id.index()] = deps.iter().map(|d| depth[d.index()] + 1).max().unwrap_or(0);
        }
    }
    table
        .iter()
        .map(|(id, info)| (info.name.clone(), depth[id.index()]))
        .collect()
}

/// Renders Table 2: the qualitative comparison with QuMA_v2 (HPCA 2019).
pub fn table2() -> String {
    let mut t = TextTable::new(["", "QuAPE", "QuMA_v2, HPCA 2019"]);
    t.row(["Target technology", "Superconducting", "Superconducting"]);
    t.row(["Memory architecture", "Centralized", "Centralized"]);
    t.row(["CLP", "Multiprocessor", "N/A"]);
    t.row(["QOLP", "Superscalar", "VLIW, SOMQ"]);
    t.row(["Feedback control", "Supported", "Supported"]);
    t.render()
}

/// Confirms the structural claims behind Table 1 (used by tests and the
/// binary).
pub fn table1_checks() -> Result<(), String> {
    let t = table1();
    if t.len() != 4 {
        return Err(format!("expected 4 blocks, got {}", t.len()));
    }
    t.validate().map_err(|e| e.to_string())?;
    let w3 = t.get(BlockId(2)).ok_or("missing W3")?;
    match &w3.dependency {
        quape_isa::Dependency::Direct(deps) if deps.len() == 2 => Ok(()),
        other => Err(format!("W3 should depend on two blocks, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_structure() {
        table1_checks().unwrap();
        let rendered = table1().to_string();
        assert!(rendered.contains("W1,W2"), "{rendered}");
    }

    #[test]
    fn priority_representation_matches_section_5_2_2() {
        let prios = table1_priorities();
        assert_eq!(
            prios,
            vec![
                ("W1".to_string(), 0),
                ("W2".to_string(), 0),
                ("W3".to_string(), 1),
                ("W4".to_string(), 2)
            ]
        );
    }

    #[test]
    fn table2_lists_all_rows() {
        let s = table2();
        for needle in ["Multiprocessor", "VLIW, SOMQ", "N/A", "Centralized"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
