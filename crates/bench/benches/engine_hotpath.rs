//! Criterion bench: the execution core's hot path — one shot of a
//! DAQ-wait-bound feedback workload, cycle-stepped vs event-driven vs
//! lowered.
//!
//! The `*_event` variants must come out far ahead of their `*_cycle`
//! twins (≥ 5x on the MRCE chain): the workload spends most of every
//! round stalled on the acquisition chain, and the event core jumps
//! those spans instead of ticking them. The `*_lowered` variants run the
//! same workloads on the pre-resolved micro-op array and should beat
//! `*_event`; `*_lowered_arena` adds per-worker scratch reuse on top
//! (no per-shot machine construction), and the `lowering` rows price the
//! one-time compile-side lowering cost those savings amortise.

use criterion::{criterion_group, criterion_main, Criterion};
use quape_core::{CompiledJob, LoweredShotRunner, QuapeConfig, ReportMode, StepMode};
use quape_isa::LoweredProgram;
use quape_qpu::{BehavioralQpu, MeasurementModel};
use quape_workloads::feedback::{conditional_x, feedback_chain, mrce_feedback_chain};
use quape_workloads::pulse::pulse_train;

fn shot_bench_with(
    c: &mut Criterion,
    name: &str,
    job: &CompiledJob,
    mode: StepMode,
    report: ReportMode,
) {
    let cfg = job.cfg().clone();
    c.bench_function(name, |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let qpu = BehavioralQpu::new(
                cfg.timings,
                MeasurementModel::Bernoulli { p_one: 0.5 },
                seed,
            );
            job.shot(Box::new(qpu), seed)
                .report_mode(report)
                .run_with_mode(mode, 10_000_000)
                .cycles
        })
    });
}

fn shot_bench(c: &mut Criterion, name: &str, job: &CompiledJob, mode: StepMode) {
    shot_bench_with(c, name, job, mode, ReportMode::Full);
}

/// The engine's steady-state serving path: one reused
/// [`LoweredShotRunner`] arena, reset in place per shot.
fn arena_bench(c: &mut Criterion, name: &str, job: &CompiledJob) {
    let cfg = job.cfg().clone();
    c.bench_function(name, |b| {
        let mut runner = LoweredShotRunner::new(job.clone());
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let qpu = BehavioralQpu::new(
                cfg.timings,
                MeasurementModel::Bernoulli { p_one: 0.5 },
                seed,
            );
            runner.run_shot(Box::new(qpu), seed, 10_000_000).cycles
        })
    });
}

/// One-time compile-side lowering cost (amortised over every shot of a
/// batch by the `Arc`-shared artifact).
fn lowering_bench(c: &mut Criterion, name: &str, job: &CompiledJob) {
    let program = job.program().clone();
    let timings = job.cfg().timings;
    c.bench_function(name, |b| {
        b.iter(|| LoweredProgram::lower(&program, &timings).len())
    });
}

fn bench(c: &mut Criterion) {
    let cfg = QuapeConfig::uniprocessor().with_seed(7);

    let fig02 = CompiledJob::compile(cfg.clone(), conditional_x(0).expect("valid workload"))
        .expect("job compiles");
    shot_bench(c, "fig02_shot_cycle", &fig02, StepMode::Cycle);
    shot_bench(c, "fig02_shot_event", &fig02, StepMode::EventDriven);
    shot_bench(c, "fig02_shot_lowered", &fig02, StepMode::Lowered);

    let fmr = CompiledJob::compile(
        cfg.clone(),
        feedback_chain(0, 1000).expect("valid workload"),
    )
    .expect("job compiles");
    shot_bench(c, "fmr_chain1k_cycle", &fmr, StepMode::Cycle);
    shot_bench(c, "fmr_chain1k_event", &fmr, StepMode::EventDriven);
    // Lean (summary-only) reports: the batch/serving default. The chain
    // workload's dominant report cost is the measure-wait trace, which
    // lean mode never materialises.
    shot_bench_with(
        c,
        "fmr_chain1k_event_lean",
        &fmr,
        StepMode::EventDriven,
        ReportMode::Lean,
    );
    shot_bench(c, "fmr_chain1k_lowered", &fmr, StepMode::Lowered);
    shot_bench_with(
        c,
        "fmr_chain1k_lowered_lean",
        &fmr,
        StepMode::Lowered,
        ReportMode::Lean,
    );
    arena_bench(c, "fmr_chain1k_lowered_arena", &fmr);
    lowering_bench(c, "lowering_fmr_chain1k", &fmr);

    let mrce = CompiledJob::compile(
        cfg.clone(),
        mrce_feedback_chain(0, 1000).expect("valid workload"),
    )
    .expect("job compiles");
    shot_bench(c, "mrce_chain1k_cycle", &mrce, StepMode::Cycle);
    shot_bench(c, "mrce_chain1k_event", &mrce, StepMode::EventDriven);
    shot_bench(c, "mrce_chain1k_lowered", &mrce, StepMode::Lowered);
    arena_bench(c, "mrce_chain1k_lowered_arena", &mrce);

    // AWG-playback-bound: dense parallel pulse trains on a multiplexed
    // readout keep the device timeline, occupancy checks and DAQ demod
    // servers hot — the emit/retire path dominates instead of idle skips.
    let awg = CompiledJob::compile(
        QuapeConfig::superscalar(8)
            .with_seed(7)
            .with_readout_lines(2),
        pulse_train(4, 256).expect("valid workload"),
    )
    .expect("job compiles");
    shot_bench(c, "awg_playback_cycle", &awg, StepMode::Cycle);
    shot_bench(c, "awg_playback_event", &awg, StepMode::EventDriven);
    // Lean mode on the playback-bound workload: the issued-op log and
    // the AWG playback timeline are its big report vectors.
    shot_bench_with(
        c,
        "awg_playback_event_lean",
        &awg,
        StepMode::EventDriven,
        ReportMode::Lean,
    );
    shot_bench_with(
        c,
        "awg_playback_lowered_lean",
        &awg,
        StepMode::Lowered,
        ReportMode::Lean,
    );
    lowering_bench(c, "lowering_pulse_train", &awg);
}

criterion_group!(benches, bench);
criterion_main!(benches);
