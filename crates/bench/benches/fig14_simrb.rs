//! Criterion bench: host throughput of the Fig. 14 pieces — one RB
//! sequence on the noisy state-vector QPU, and the decay fit.

use criterion::{criterion_group, criterion_main, Criterion};
use quape_isa::Qubit;
use quape_qpu::{fit_decay, CliffordGroup, CliffordId, DepolarizingNoise, StateVector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let group = CliffordGroup::new();
    c.bench_function("fig14_rb_sequence_m50", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        let noise = DepolarizingNoise::for_fidelity(0.995);
        b.iter(|| {
            let mut state = StateVector::new(2);
            let mut seq = Vec::with_capacity(50);
            for _ in 0..50 {
                let cid = CliffordId(rng.gen_range(0..24));
                seq.push(cid);
                for &p in group.pulses(cid) {
                    state.apply_gate1(p, Qubit::new(0));
                }
                noise.apply(&mut state, Qubit::new(0), &mut rng);
            }
            let rec = group.recovery(seq.iter().copied());
            for &p in group.pulses(rec) {
                state.apply_gate1(p, Qubit::new(0));
            }
            state.prob_all_zero()
        })
    });
    c.bench_function("fig14_decay_fit", |b| {
        let ms: Vec<u32> = (0..24).map(|i| 1 + 12 * i).collect();
        let ys: Vec<f64> = ms
            .iter()
            .map(|&m| 0.5 * 0.99f64.powi(m as i32) + 0.5)
            .collect();
        b.iter(|| fit_decay(&ms, &ys).expect("fits"))
    });
    c.bench_function("fig14_clifford_group_construction", |b| {
        b.iter(CliffordGroup::new)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
