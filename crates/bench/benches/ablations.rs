//! Criterion bench over the ablation configurations DESIGN.md calls out:
//! prefetch on/off, fast context switch on/off, and superscalar width.
//! (Simulated-metric ablations are printed by the `ablations` binary;
//! these benches track the host cost of each configuration.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use quape_compiler::Compiler;
use quape_core::{Machine, QuapeConfig};
use quape_qpu::{BehavioralQpu, CliffordGroup, MeasurementModel};
use quape_workloads::benchmarks::hs16;
use quape_workloads::rb::active_reset_with_rb;
use quape_workloads::{ShorSyndrome, ShorSyndromeConfig};

fn run(cfg: QuapeConfig, program: quape_isa::Program, model: MeasurementModel) -> u64 {
    let seed = cfg.seed;
    let qpu = BehavioralQpu::new(cfg.timings, model, seed);
    Machine::new(cfg, program, Box::new(qpu))
        .expect("valid machine")
        .run_with_limit(2_000_000)
        .execution_time_ns()
}

fn bench(c: &mut Criterion) {
    let shor = ShorSyndrome::generate(ShorSyndromeConfig::default()).expect("valid workload");
    let mut group = c.benchmark_group("ablations");

    for prefetch in [true, false] {
        group.bench_function(format!("shor_6core_prefetch_{prefetch}"), |b| {
            b.iter_batched(
                || {
                    let mut cfg = QuapeConfig::multiprocessor(6).with_seed(5);
                    cfg.prefetch = prefetch;
                    cfg
                },
                |cfg| {
                    run(
                        cfg,
                        shor.program.clone(),
                        ShorSyndrome::measurement_model(0.25),
                    )
                },
                BatchSize::SmallInput,
            )
        });
    }

    let clifford = CliffordGroup::new();
    let fcs_prog = active_reset_with_rb(&clifford, 0, 1, 16, 3)
        .expect("valid workload")
        .program;
    for fcs in [true, false] {
        group.bench_function(format!("active_reset_rb_fcs_{fcs}"), |b| {
            b.iter_batched(
                || {
                    let mut cfg = QuapeConfig::superscalar(8).with_seed(5);
                    cfg.fast_context_switch = fcs;
                    cfg
                },
                |cfg| run(cfg, fcs_prog.clone(), MeasurementModel::AlwaysOne),
                BatchSize::SmallInput,
            )
        });
    }

    let hs = Compiler::new().compile(&hs16()).expect("compiles");
    for width in [1usize, 2, 4, 8, 16] {
        group.bench_function(format!("hs16_width_{width}"), |b| {
            b.iter_batched(
                || QuapeConfig::superscalar(width).with_seed(5),
                |cfg| run(cfg, hs.clone(), MeasurementModel::Bernoulli { p_one: 0.5 }),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
