//! Criterion bench: host throughput of the Fig. 11 workload (one full
//! Shor-syndrome run) on 1 and 6 processors.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use quape_core::{Machine, QuapeConfig};
use quape_qpu::BehavioralQpu;
use quape_workloads::{ShorSyndrome, ShorSyndromeConfig};

fn bench(c: &mut Criterion) {
    let workload = ShorSyndrome::generate(ShorSyndromeConfig::default()).expect("valid workload");
    let mut group = c.benchmark_group("fig11_shor_syndrome");
    for n in [1usize, 6] {
        group.bench_function(format!("{n}_processors"), |b| {
            b.iter_batched(
                || {
                    let cfg = QuapeConfig::multiprocessor(n).with_seed(7);
                    let qpu =
                        BehavioralQpu::new(cfg.timings, ShorSyndrome::measurement_model(0.25), 7);
                    Machine::new(cfg, workload.program.clone(), Box::new(qpu))
                        .expect("valid machine")
                },
                |m| m.run_with_limit(2_000_000),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
