//! Criterion bench: host throughput of the Fig. 13 runs — scalar vs 8-way
//! superscalar executing hs16, plus CES/TR metric extraction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use quape_compiler::Compiler;
use quape_core::{ces_report_paper, Machine, QuapeConfig};
use quape_qpu::{BehavioralQpu, MeasurementModel};
use quape_workloads::benchmarks::hs16;

fn bench(c: &mut Criterion) {
    let program = Compiler::new().compile(&hs16()).expect("compiles");
    let mut group = c.benchmark_group("fig13_superscalar");
    for (name, cfg) in [
        ("scalar_hs16", QuapeConfig::scalar_baseline()),
        ("superscalar8_hs16", QuapeConfig::superscalar(8)),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let qpu = BehavioralQpu::new(
                        cfg.timings,
                        MeasurementModel::Bernoulli { p_one: 0.5 },
                        5,
                    );
                    Machine::new(cfg.clone(), program.clone(), Box::new(qpu))
                        .expect("valid machine")
                },
                |m| {
                    let report = m.run();
                    ces_report_paper(&report).average_tr()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
