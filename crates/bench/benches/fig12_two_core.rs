//! Criterion bench: host throughput of the Fig. 12 two-core runs
//! (partition + execution of one suite benchmark).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use quape_compiler::{partition_two_blocks, Compiler};
use quape_core::{Machine, QuapeConfig};
use quape_qpu::{BehavioralQpu, MeasurementModel};
use quape_workloads::benchmarks::ising;

fn bench(c: &mut Criterion) {
    let compiler = Compiler::new();
    let circuit = ising(16, 3);
    let (program, _) = partition_two_blocks(&compiler, &circuit).expect("partitions");
    let mut group = c.benchmark_group("fig12_two_core");
    group.bench_function("partition_ising_16", |b| {
        b.iter(|| partition_two_blocks(&compiler, &circuit).expect("partitions"))
    });
    group.bench_function("run_ising_16_two_core", |b| {
        b.iter_batched(
            || {
                let cfg = QuapeConfig::multiprocessor(2).with_seed(3);
                let qpu =
                    BehavioralQpu::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 }, 3);
                Machine::new(cfg, program.clone(), Box::new(qpu)).expect("valid machine")
            },
            |m| m.run(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
