//! Property tests for the state-vector simulator and the Clifford group.

use proptest::prelude::*;
use quape_isa::{Gate1, Gate2, Qubit};
use quape_qpu::{CliffordGroup, CliffordId, StateVector, CLIFFORD_COUNT};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[derive(Debug, Clone, Copy)]
enum Op {
    G1(u8, u8),
    G2(u8, u8, u8),
    Zz(u8, u8, f64),
}

fn arb_ops(n: u8) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        4 => (0u8..13, 0..n).prop_map(|(g, q)| Op::G1(g, q)),
        2 => (0u8..3, 0..n, 0..n).prop_map(|(g, a, b)| Op::G2(g, a, b)),
        1 => (0..n, 0..n, -3.0f64..3.0).prop_map(|(a, b, t)| Op::Zz(a, b, t)),
    ];
    proptest::collection::vec(op, 0..60)
}

fn apply(state: &mut StateVector, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::G1(g, q) => {
                // Skip Reset (non-unitary).
                let gate = Gate1::FIXED[g as usize % 13];
                state.apply_gate1(gate, Qubit::new(u16::from(q)));
            }
            Op::G2(g, a, b) if a != b => {
                let gate = Gate2::ALL[g as usize % 3];
                state.apply_gate2(gate, Qubit::new(u16::from(a)), Qubit::new(u16::from(b)));
            }
            Op::G2(..) => {}
            Op::Zz(a, b, t) if a != b => {
                state.apply_zz(Qubit::new(u16::from(a)), Qubit::new(u16::from(b)), t);
            }
            Op::Zz(..) => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Unitary circuits preserve the norm.
    #[test]
    fn norm_is_preserved(ops in arb_ops(4)) {
        let mut s = StateVector::new(4);
        apply(&mut s, &ops);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-7);
    }

    /// Applying a circuit then its inverse returns to the start state.
    #[test]
    fn inverse_circuit_undoes(ops in arb_ops(3)) {
        // Restrict to self-inverse-friendly gates: run U then U† by
        // reversing with explicit inverses.
        let mut s = StateVector::new(3);
        apply(&mut s, &ops);
        for op in ops.iter().rev() {
            match *op {
                Op::G1(g, q) => {
                    let gate = Gate1::FIXED[g as usize % 13];
                    let inv = match gate {
                        Gate1::S => Gate1::Sdg,
                        Gate1::Sdg => Gate1::S,
                        Gate1::T => Gate1::Tdg,
                        Gate1::Tdg => Gate1::T,
                        Gate1::X90 => Gate1::Xm90,
                        Gate1::Xm90 => Gate1::X90,
                        Gate1::Y90 => Gate1::Ym90,
                        Gate1::Ym90 => Gate1::Y90,
                        other => other, // I, X, Y, Z, H are involutions
                    };
                    s.apply_gate1(inv, Qubit::new(u16::from(q)));
                }
                Op::G2(g, a, b) if a != b => {
                    // CNOT, CZ, SWAP are involutions.
                    let gate = Gate2::ALL[g as usize % 3];
                    s.apply_gate2(gate, Qubit::new(u16::from(a)), Qubit::new(u16::from(b)));
                }
                Op::G2(..) => {}
                Op::Zz(a, b, t) if a != b => {
                    s.apply_zz(Qubit::new(u16::from(a)), Qubit::new(u16::from(b)), -t);
                }
                Op::Zz(..) => {}
            }
        }
        let fresh = StateVector::new(3);
        prop_assert!((s.fidelity(&fresh) - 1.0).abs() < 1e-6);
    }

    /// Measurement probabilities stay in [0, 1] and P(0) + P(1) = 1.
    #[test]
    fn probabilities_are_well_formed(ops in arb_ops(4), q in 0u16..4) {
        let mut s = StateVector::new(4);
        apply(&mut s, &ops);
        let p1 = s.prob_one(Qubit::new(q));
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&p1));
    }

    /// Collapse is consistent: after measuring q, measuring q again gives
    /// the same outcome with certainty.
    #[test]
    fn repeated_measurement_is_stable(ops in arb_ops(3), q in 0u16..3, seed in 0u64..1000) {
        let mut s = StateVector::new(3);
        apply(&mut s, &ops);
        let mut rng = SmallRng::seed_from_u64(seed);
        let first = s.measure(Qubit::new(q), &mut rng);
        let p1 = s.prob_one(Qubit::new(q));
        prop_assert!((p1 - f64::from(u8::from(first))).abs() < 1e-9);
        let second = s.measure(Qubit::new(q), &mut rng);
        prop_assert_eq!(first, second);
    }

    /// The Clifford composition table agrees with matrix multiplication
    /// acting on states.
    #[test]
    fn clifford_compose_matches_sequential_application(
        a in 0u8..CLIFFORD_COUNT as u8,
        b in 0u8..CLIFFORD_COUNT as u8,
    ) {
        let group = CliffordGroup::new();
        let (ca, cb) = (CliffordId(a), CliffordId(b));
        let mut sequential = StateVector::new(1);
        for &p in group.pulses(ca) {
            sequential.apply_gate1(p, Qubit::new(0));
        }
        for &p in group.pulses(cb) {
            sequential.apply_gate1(p, Qubit::new(0));
        }
        let mut fused = StateVector::new(1);
        for &p in group.pulses(group.compose(ca, cb)) {
            fused.apply_gate1(p, Qubit::new(0));
        }
        prop_assert!((sequential.fidelity(&fused) - 1.0).abs() < 1e-9);
    }

    /// Amplitude damping keeps the state normalized and never increases
    /// the excited-state population on a single qubit.
    #[test]
    fn amplitude_damping_is_contractive(gamma in 0.0f64..1.0, seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = StateVector::new(1);
        s.apply_gate1(Gate1::H, Qubit::new(0));
        let before = s.prob_one(Qubit::new(0));
        s.apply_amplitude_damping(Qubit::new(0), gamma, &mut rng);
        let after = s.prob_one(Qubit::new(0));
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
        // Either the no-jump branch damped it, or the jump sent it to 0.
        prop_assert!(after <= before + 1e-9, "{before} -> {after} at γ={gamma}");
    }
}
