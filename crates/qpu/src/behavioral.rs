//! Behavioural/timing QPU backend.
//!
//! This is the QPU stand-in the paper itself used for the §7 QCP-only
//! benchmarks: measurement outcomes come from a seeded PRNG ("a pseudo
//! random number generator is implemented in the FPGA to generate
//! measurement results for testing"). On top of that we track per-qubit
//! occupancy so that any operation issued while its qubit is still busy is
//! recorded as a timing violation — the physical failure mode the TR ≤ 1
//! requirement guards against. The AWG bank in `quape-core` keeps a
//! device-side shadow of the same occupancy model (same update rule, same
//! durations); the step-mode differential suites assert the two views
//! report identical violations.

use quape_isa::{OpTimings, QuantumOp, Qubit};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A quantum operation as received by the QPU, stamped with its issue time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IssuedOp {
    /// Absolute issue time in nanoseconds.
    pub time_ns: u64,
    /// The operation.
    pub op: QuantumOp,
}

/// An operation arrived while one of its qubits was still executing the
/// previous operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingViolation {
    /// The late/overlapping operation.
    pub op: IssuedOp,
    /// The qubit that was still busy.
    pub qubit: Qubit,
    /// When the qubit would have been free.
    pub busy_until_ns: u64,
}

impl fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} issued at {} ns but {} busy until {} ns",
            self.op.op, self.op.time_ns, self.qubit, self.busy_until_ns
        )
    }
}

/// How the behavioural QPU draws measurement outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MeasurementModel {
    /// Every measurement reads 0.
    AlwaysZero,
    /// Every measurement reads 1.
    AlwaysOne,
    /// Every measurement reads 1 with probability `p_one`.
    Bernoulli {
        /// P(outcome = 1).
        p_one: f64,
    },
    /// Per-qubit P(outcome = 1); unlisted qubits use `default_p_one`.
    ///
    /// This is how the Shor syndrome benchmark expresses its
    /// *failure rate*: verification ancillas read 1 (= verification
    /// failed) with the configured probability.
    PerQubit {
        /// (qubit index, P(1)) pairs.
        probabilities: Vec<(u16, f64)>,
        /// P(1) for qubits not listed.
        default_p_one: f64,
    },
}

impl MeasurementModel {
    fn p_one(&self, qubit: Qubit) -> f64 {
        match self {
            MeasurementModel::AlwaysZero => 0.0,
            MeasurementModel::AlwaysOne => 1.0,
            MeasurementModel::Bernoulli { p_one } => *p_one,
            MeasurementModel::PerQubit {
                probabilities,
                default_p_one,
            } => probabilities
                .iter()
                .find(|(q, _)| *q == qubit.index())
                .map_or(*default_p_one, |(_, p)| *p),
        }
    }
}

/// The behavioural QPU: occupancy tracking + PRNG measurement outcomes.
///
/// ```
/// use quape_qpu::{BehavioralQpu, MeasurementModel};
/// use quape_isa::{OpTimings, QuantumOp, Gate1, Qubit};
///
/// let mut qpu = BehavioralQpu::new(OpTimings::paper(), MeasurementModel::AlwaysZero, 1);
/// qpu.apply(0, QuantumOp::Gate1(Gate1::H, Qubit::new(0)));
/// let outcome = qpu.apply(20, QuantumOp::Measure(Qubit::new(0)));
/// assert_eq!(outcome, Some(false));
/// assert!(qpu.violations().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct BehavioralQpu {
    timings: OpTimings,
    model: MeasurementModel,
    rng: SmallRng,
    busy_until: Vec<u64>,
    log: Vec<IssuedOp>,
    violations: Vec<TimingViolation>,
    record_log: bool,
    issued_ops: u64,
}

impl BehavioralQpu {
    /// Creates a QPU with the given op timings, measurement model and
    /// PRNG seed.
    pub fn new(timings: OpTimings, model: MeasurementModel, seed: u64) -> Self {
        BehavioralQpu {
            timings,
            model,
            rng: SmallRng::seed_from_u64(seed),
            busy_until: Vec::new(),
            log: Vec::new(),
            violations: Vec::new(),
            record_log: true,
            issued_ops: 0,
        }
    }

    /// Enables or disables recording of the per-operation [`log`]
    /// (lean/summary-only mode for batch paths). The occupancy model,
    /// violation detection, measurement sampling and the
    /// [`issued_count`](BehavioralQpu::issued_count) counter are
    /// unaffected, so outcomes stay bit-identical either way.
    ///
    /// [`log`]: BehavioralQpu::log
    pub fn set_record_log(&mut self, record: bool) {
        self.record_log = record;
    }

    /// Operations received so far (counted even when the log itself is
    /// not recorded).
    pub fn issued_count(&self) -> u64 {
        self.issued_ops
    }

    /// Applies an operation at `time_ns`. For measurements, returns the
    /// sampled outcome (its *delivery* latency is the DAQ's concern, not
    /// the QPU's).
    pub fn apply(&mut self, time_ns: u64, op: QuantumOp) -> Option<bool> {
        let issued = IssuedOp { time_ns, op };
        let duration = self.timings.duration_of(&op);
        for qubit in op.qubits() {
            let i = qubit.index() as usize;
            if i >= self.busy_until.len() {
                self.busy_until.resize(i + 1, 0);
            }
            let busy = self.busy_until[i];
            if time_ns < busy {
                self.violations.push(TimingViolation {
                    op: issued,
                    qubit,
                    busy_until_ns: busy,
                });
            }
            self.busy_until[i] = time_ns.max(busy) + duration;
        }
        self.issued_ops += 1;
        if self.record_log {
            self.log.push(issued);
        }
        match op {
            QuantumOp::Measure(q) => {
                let p = self.model.p_one(q).clamp(0.0, 1.0);
                Some(self.rng.gen_bool(p))
            }
            _ => None,
        }
    }

    /// Every operation received, in arrival order.
    pub fn log(&self) -> &[IssuedOp] {
        &self.log
    }

    /// All timing violations observed so far.
    pub fn violations(&self) -> &[TimingViolation] {
        &self.violations
    }

    /// Takes the accumulated log and violations, leaving empty buffers —
    /// the end-of-shot handover that lets reports own the vectors without
    /// a copy.
    pub fn take_results(&mut self) -> (Vec<IssuedOp>, Vec<TimingViolation>) {
        (
            std::mem::take(&mut self.log),
            std::mem::take(&mut self.violations),
        )
    }

    /// When `qubit` becomes free (0 if never used).
    pub fn busy_until(&self, qubit: Qubit) -> u64 {
        self.busy_until
            .get(qubit.index() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// The operation timings in force.
    pub fn timings(&self) -> &OpTimings {
        &self.timings
    }

    /// Time at which the whole QPU becomes idle.
    pub fn makespan_ns(&self) -> u64 {
        self.busy_until.iter().copied().max().unwrap_or(0)
    }

    /// Replaces the measurement model (e.g. between benchmark phases).
    pub fn set_model(&mut self, model: MeasurementModel) {
        self.model = model;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_isa::{Gate1, Gate2};

    fn q(i: u16) -> Qubit {
        Qubit::new(i)
    }

    fn qpu(model: MeasurementModel) -> BehavioralQpu {
        BehavioralQpu::new(OpTimings::paper(), model, 42)
    }

    #[test]
    fn sequential_ops_do_not_violate() {
        let mut qpu = qpu(MeasurementModel::AlwaysZero);
        qpu.apply(0, QuantumOp::Gate1(Gate1::X, q(0)));
        qpu.apply(20, QuantumOp::Gate1(Gate1::Y, q(0)));
        qpu.apply(40, QuantumOp::Gate2(Gate2::Cnot, q(0), q(1)));
        assert!(qpu.violations().is_empty());
        assert_eq!(qpu.busy_until(q(0)), 80);
        assert_eq!(qpu.busy_until(q(1)), 80);
        assert_eq!(qpu.makespan_ns(), 80);
    }

    #[test]
    fn overlapping_op_is_flagged() {
        let mut qpu = qpu(MeasurementModel::AlwaysZero);
        qpu.apply(0, QuantumOp::Gate1(Gate1::X, q(0)));
        qpu.apply(10, QuantumOp::Gate1(Gate1::Y, q(0))); // 10 < 20: late
        assert_eq!(qpu.violations().len(), 1);
        assert_eq!(qpu.violations()[0].busy_until_ns, 20);
    }

    #[test]
    fn parallel_ops_on_distinct_qubits_ok() {
        let mut qpu = qpu(MeasurementModel::AlwaysZero);
        qpu.apply(0, QuantumOp::Gate1(Gate1::X, q(0)));
        qpu.apply(0, QuantumOp::Gate1(Gate1::X, q(1)));
        qpu.apply(0, QuantumOp::Gate1(Gate1::X, q(2)));
        assert!(qpu.violations().is_empty());
        assert_eq!(qpu.log().len(), 3);
    }

    #[test]
    fn fixed_models_are_deterministic() {
        let mut zero = qpu(MeasurementModel::AlwaysZero);
        assert_eq!(zero.apply(0, QuantumOp::Measure(q(0))), Some(false));
        let mut one = qpu(MeasurementModel::AlwaysOne);
        assert_eq!(one.apply(0, QuantumOp::Measure(q(0))), Some(true));
    }

    #[test]
    fn bernoulli_statistics() {
        let mut qpu = qpu(MeasurementModel::Bernoulli { p_one: 0.25 });
        let mut ones = 0;
        for i in 0..4000 {
            if qpu.apply(i * 1000, QuantumOp::Measure(q(0))).unwrap() {
                ones += 1;
            }
        }
        let f = ones as f64 / 4000.0;
        assert!((f - 0.25).abs() < 0.03, "empirical {f}");
    }

    #[test]
    fn per_qubit_model_distinguishes_qubits() {
        let model = MeasurementModel::PerQubit {
            probabilities: vec![(0, 1.0), (1, 0.0)],
            default_p_one: 0.5,
        };
        let mut qpu = qpu(model);
        assert_eq!(qpu.apply(0, QuantumOp::Measure(q(0))), Some(true));
        assert_eq!(qpu.apply(1000, QuantumOp::Measure(q(1))), Some(false));
        // Default applies to unlisted qubits — just ensure it returns.
        assert!(qpu.apply(2000, QuantumOp::Measure(q(7))).is_some());
    }

    #[test]
    fn same_seed_same_outcomes() {
        let run = || {
            let mut qpu = BehavioralQpu::new(
                OpTimings::paper(),
                MeasurementModel::Bernoulli { p_one: 0.5 },
                9,
            );
            (0..64)
                .map(|i| qpu.apply(i * 700, QuantumOp::Measure(q(0))).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
