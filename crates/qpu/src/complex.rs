//! Minimal complex-number arithmetic for the state-vector simulator.
//!
//! Implemented in-crate (rather than pulling `num-complex`) to keep the
//! dependency set to the approved list; the simulator needs only a handful
//! of operations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// 0 + 1i.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// True when both components are within `eps` of `other`'s.
    pub fn approx_eq(self, other: Complex, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!((z * Complex::I).re, 4.0);
        assert_eq!((z * Complex::I).im, 3.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj().im, 4.0);
    }

    #[test]
    fn cis_unit_circle() {
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(Complex::I, 1e-12));
        assert!((Complex::cis(1.234).abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        let p = a * b;
        assert!((p.re - (1.0 * -3.0 - 2.0 * 0.5)).abs() < 1e-12);
        assert!((p.im - (1.0 * 0.5 + 2.0 * -3.0)).abs() < 1e-12);
    }
}
