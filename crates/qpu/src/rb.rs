//! Randomized benchmarking (RB) and simultaneous RB (simRB).
//!
//! Reproduces the §8 validation experiment: individual RB on each of two
//! qubits as a reference, then simRB with both qubits driven at once. The
//! simRB fidelities drop relative to the references because of the
//! "inevitable ZZ interaction between the qubits" plus microwave drive
//! crosstalk — both modeled by [`CrosstalkModel`].
//!
//! Individual RB is run with the static ZZ shift *calibrated away* (the
//! constant frequency pull from a spectator parked in |0⟩ is absorbed into
//! the qubit frequency calibration, standard experimental practice), so
//! the reference fidelity reflects only the intrinsic gate error.

use crate::clifford::{CliffordGroup, CliffordId, CLIFFORD_COUNT};
use crate::fit::{fit_decay, DecayFit, FitError};
use crate::noise::{CrosstalkModel, DepolarizingNoise, ReadoutError};
use crate::statevector::StateVector;
use quape_isa::{Gate1, Qubit};
// Interleaved RB (run_interleaved_rb) extends the §8 tooling with the
// standard per-gate fidelity extraction.
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of an RB experiment on a two-qubit pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbConfig {
    /// Sequence lengths (number of Cliffords before the recovery).
    pub lengths: Vec<u32>,
    /// Random sequences averaged per length.
    pub samples_per_length: usize,
    /// Per-Clifford depolarizing noise for qubit A.
    pub noise_a: DepolarizingNoise,
    /// Per-Clifford depolarizing noise for qubit B.
    pub noise_b: DepolarizingNoise,
    /// Crosstalk applied only while both qubits are driven (simRB).
    pub crosstalk: CrosstalkModel,
    /// Readout assignment error (applied to survival estimates
    /// analytically as a linear map).
    pub readout: ReadoutError,
    /// PRNG seed.
    pub seed: u64,
}

impl RbConfig {
    /// The configuration calibrated to reproduce Fig. 14 of the paper:
    /// individual RB ≈ 99.5% / 99.4%, simRB ≈ 98.7% / 99.1%.
    pub fn paper() -> Self {
        RbConfig {
            lengths: vec![1, 5, 10, 20, 35, 50, 75, 100, 150, 200, 300],
            samples_per_length: 150,
            noise_a: DepolarizingNoise::for_fidelity(0.995),
            noise_b: DepolarizingNoise::for_fidelity(0.994),
            // Asymmetric drive leakage makes q0 degrade more than q1, as
            // in the paper's measurement (−0.8% vs −0.3%). ZZ contributes
            // ≈ θ²/6 infidelity per Clifford to each qubit; leakage L adds
            // ≈ 1.9·(L·π/2)²/6 to its victim.
            crosstalk: CrosstalkModel {
                zz_theta_per_layer: 0.13,
                drive_leakage_a_to_b: 0.02,
                drive_leakage_b_to_a: 0.07,
            },
            readout: ReadoutError::default(),
            seed: 1,
        }
    }
}

/// One averaged survival-probability point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RbPoint {
    /// Sequence length m.
    pub length: u32,
    /// Mean survival probability over the sampled sequences.
    pub survival: f64,
}

/// Decay curve plus its fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbCurve {
    /// The averaged data points.
    pub points: Vec<RbPoint>,
    /// The fitted decay.
    pub fit: DecayFit,
}

impl RbCurve {
    /// Average Clifford fidelity extracted from the decay (single qubit).
    pub fn fidelity(&self) -> f64 {
        self.fit.average_fidelity(2)
    }
}

/// Full RB + simRB result for the qubit pair, as plotted in Fig. 14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimRbReport {
    /// Individual (reference) RB for qubit A.
    pub individual_a: RbCurve,
    /// Individual (reference) RB for qubit B.
    pub individual_b: RbCurve,
    /// Simultaneous RB, qubit A.
    pub simultaneous_a: RbCurve,
    /// Simultaneous RB, qubit B.
    pub simultaneous_b: RbCurve,
}

/// Result of an interleaved-RB experiment on one qubit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterleavedRbReport {
    /// The reference (plain RB) curve.
    pub reference: RbCurve,
    /// The interleaved curve (target gate inserted after every random
    /// Clifford).
    pub interleaved: RbCurve,
    /// The interleaved gate.
    pub gate: Gate1,
}

impl InterleavedRbReport {
    /// The interleaved gate's fidelity estimate:
    /// `1 − (1 − p_int/p_ref)·(d−1)/d` (Magesan et al. 2012).
    pub fn gate_fidelity(&self) -> f64 {
        let ratio = self.interleaved.fit.decay / self.reference.fit.decay;
        1.0 - (1.0 - ratio) / 2.0
    }
}

/// Runs interleaved randomized benchmarking of a single-qubit `gate` on
/// qubit A: a reference RB decay, then a decay with `gate` inserted after
/// every random Clifford. The ratio of the two decays isolates the
/// interleaved gate's own fidelity — the standard follow-up to the §8
/// experiment when one gate is suspected of underperforming.
///
/// # Errors
///
/// Propagates [`FitError`] when the configured lengths are too few to fit.
///
/// # Panics
///
/// Panics if `gate` is not a Clifford under the group's phase-invariant
/// matching (e.g. `T`), since the recovery element would not exist.
pub fn run_interleaved_rb(cfg: &RbConfig, gate: Gate1) -> Result<InterleavedRbReport, FitError> {
    let group = CliffordGroup::new();
    let gate_id = clifford_id_of(&group, gate)
        .unwrap_or_else(|| panic!("{gate} is not a single-qubit Clifford"));
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let mut curve = |interleave: Option<CliffordId>| -> Result<RbCurve, FitError> {
        let mut points = Vec::with_capacity(cfg.lengths.len());
        for &m in &cfg.lengths {
            let mut sum = 0.0;
            for _ in 0..cfg.samples_per_length {
                let mut state = StateVector::new(1);
                let mut seq = Vec::with_capacity(2 * m as usize);
                for _ in 0..m {
                    let c = CliffordId(rng.gen_range(0..CLIFFORD_COUNT as u8));
                    seq.push(c);
                    apply_single(&group, &mut state, c);
                    cfg.noise_a.apply(&mut state, Qubit::new(0), &mut rng);
                    if let Some(g) = interleave {
                        seq.push(g);
                        apply_single(&group, &mut state, g);
                        cfg.noise_a.apply(&mut state, Qubit::new(0), &mut rng);
                    }
                }
                let rec = group.recovery(seq.iter().copied());
                apply_single(&group, &mut state, rec);
                cfg.noise_a.apply(&mut state, Qubit::new(0), &mut rng);
                sum += 1.0 - state.prob_one(Qubit::new(0));
            }
            points.push(RbPoint {
                length: m,
                survival: sum / cfg.samples_per_length as f64,
            });
        }
        let ms: Vec<u32> = points.iter().map(|p| p.length).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.survival).collect();
        Ok(RbCurve {
            points,
            fit: fit_decay(&ms, &ys)?,
        })
    };

    let reference = curve(None)?;
    let interleaved = curve(Some(gate_id))?;
    Ok(InterleavedRbReport {
        reference,
        interleaved,
        gate,
    })
}

fn apply_single(group: &CliffordGroup, state: &mut StateVector, c: CliffordId) {
    for &p in group.pulses(c) {
        state.apply_gate1(p, Qubit::new(0));
    }
}

/// Finds the Clifford element equal to a fixed gate (up to global
/// phase), if the gate is a Clifford.
fn clifford_id_of(group: &CliffordGroup, gate: Gate1) -> Option<CliffordId> {
    use quape_isa::Qubit as Q;
    // Compare action on two fiducial states (|0⟩ and |+⟩) — sufficient
    // to identify a single-qubit unitary up to global phase.
    let target = |init_h: bool| {
        let mut s = StateVector::new(1);
        if init_h {
            s.apply_gate1(Gate1::H, Q::new(0));
        }
        s.apply_gate1(gate, Q::new(0));
        s
    };
    let (t0, tp) = (target(false), target(true));
    (0..CLIFFORD_COUNT as u8).map(CliffordId).find(|&c| {
        let probe = |init_h: bool| {
            let mut s = StateVector::new(1);
            if init_h {
                s.apply_gate1(Gate1::H, Q::new(0));
            }
            apply_single(group, &mut s, c);
            s
        };
        (probe(false).fidelity(&t0) - 1.0).abs() < 1e-9
            && (probe(true).fidelity(&tp) - 1.0).abs() < 1e-9
    })
}

/// Runs individual RB and simRB on a two-qubit pair.
///
/// # Errors
///
/// Propagates [`FitError`] when the configured lengths are too few to fit.
pub fn run_simrb_experiment(cfg: &RbConfig) -> Result<SimRbReport, FitError> {
    let group = CliffordGroup::new();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let individual_a = run_rb(&group, cfg, Driven::OnlyA, &mut rng)?.0;
    let individual_b = run_rb(&group, cfg, Driven::OnlyB, &mut rng)?.1;
    let (simultaneous_a, simultaneous_b) = run_rb(&group, cfg, Driven::Both, &mut rng)?;
    Ok(SimRbReport {
        individual_a,
        individual_b,
        simultaneous_a,
        simultaneous_b,
    })
}

/// Which qubits of the pair are being driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Driven {
    OnlyA,
    OnlyB,
    Both,
}

const QA: Qubit = Qubit::new(0);
const QB: Qubit = Qubit::new(1);

fn run_rb(
    group: &CliffordGroup,
    cfg: &RbConfig,
    driven: Driven,
    rng: &mut SmallRng,
) -> Result<(RbCurve, RbCurve), FitError> {
    let mut points_a = Vec::with_capacity(cfg.lengths.len());
    let mut points_b = Vec::with_capacity(cfg.lengths.len());
    for &m in &cfg.lengths {
        let mut sum_a = 0.0;
        let mut sum_b = 0.0;
        for _ in 0..cfg.samples_per_length {
            let (sa, sb) = run_sequence(group, cfg, driven, m, rng);
            sum_a += sa;
            sum_b += sb;
        }
        let n = cfg.samples_per_length as f64;
        points_a.push(RbPoint {
            length: m,
            survival: sum_a / n,
        });
        points_b.push(RbPoint {
            length: m,
            survival: sum_b / n,
        });
    }
    let fit_curve = |points: &[RbPoint]| -> Result<RbCurve, FitError> {
        let ms: Vec<u32> = points.iter().map(|p| p.length).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.survival).collect();
        Ok(RbCurve {
            points: points.to_vec(),
            fit: fit_decay(&ms, &ys)?,
        })
    };
    Ok((fit_curve(&points_a)?, fit_curve(&points_b)?))
}

/// Runs one random sequence and returns the survival probabilities
/// (probability of reading the initial |0⟩ back) for both qubits.
fn run_sequence(
    group: &CliffordGroup,
    cfg: &RbConfig,
    driven: Driven,
    m: u32,
    rng: &mut SmallRng,
) -> (f64, f64) {
    let mut state = StateVector::new(2);
    let mut seq_a: Vec<CliffordId> = Vec::new();
    let mut seq_b: Vec<CliffordId> = Vec::new();
    let drive_a = driven != Driven::OnlyB;
    let drive_b = driven != Driven::OnlyA;
    let both = driven == Driven::Both;

    for _ in 0..m {
        let ca = CliffordId(rng.gen_range(0..CLIFFORD_COUNT as u8));
        let cb = CliffordId(rng.gen_range(0..CLIFFORD_COUNT as u8));
        if drive_a {
            apply_clifford(
                group,
                &mut state,
                QA,
                ca,
                both,
                cfg.crosstalk.drive_leakage_a_to_b,
            );
            seq_a.push(ca);
            cfg.noise_a.apply(&mut state, QA, rng);
        }
        if drive_b {
            apply_clifford(
                group,
                &mut state,
                QB,
                cb,
                both,
                cfg.crosstalk.drive_leakage_b_to_a,
            );
            seq_b.push(cb);
            cfg.noise_b.apply(&mut state, QB, rng);
        }
        if both {
            state.apply_zz(QA, QB, cfg.crosstalk.zz_theta_per_layer);
        }
    }
    if drive_a {
        let rec = group.recovery(seq_a.iter().copied());
        apply_clifford(
            group,
            &mut state,
            QA,
            rec,
            both,
            cfg.crosstalk.drive_leakage_a_to_b,
        );
        cfg.noise_a.apply(&mut state, QA, rng);
    }
    if drive_b {
        let rec = group.recovery(seq_b.iter().copied());
        apply_clifford(
            group,
            &mut state,
            QB,
            rec,
            both,
            cfg.crosstalk.drive_leakage_b_to_a,
        );
        cfg.noise_b.apply(&mut state, QB, rng);
    }

    // Analytic survival (P(qubit reads 0)), with readout error folded in
    // as a linear map: P(read 0) = (1−p01)(1−p1) + p10·p1.
    let survival = |p1: f64| (1.0 - cfg.readout.p01) * (1.0 - p1) + cfg.readout.p10 * p1;
    (survival(state.prob_one(QA)), survival(state.prob_one(QB)))
}

/// Applies a Clifford's pulse decomposition to `q`, leaking a fraction of
/// each pulse onto the partner qubit when both are driven.
fn apply_clifford(
    group: &CliffordGroup,
    state: &mut StateVector,
    q: Qubit,
    c: CliffordId,
    leak_active: bool,
    leakage: f64,
) {
    let other = if q == QA { QB } else { QA };
    for &pulse in group.pulses(c) {
        state.apply_gate1(pulse, q);
        if leak_active && leakage > 0.0 {
            // A fraction of the drive power reaches the neighbour: model
            // as a small rotation about the same axis.
            let theta = leakage * std::f64::consts::FRAC_PI_2;
            match pulse {
                Gate1::X90 | Gate1::Xm90 => {
                    let m = crate::statevector::rotation_matrix_x(if pulse == Gate1::X90 {
                        theta
                    } else {
                        -theta
                    });
                    state.apply_matrix1(&m, other);
                }
                Gate1::Y90 | Gate1::Ym90 => {
                    let m = crate::statevector::rotation_matrix_y(if pulse == Gate1::Y90 {
                        theta
                    } else {
                        -theta
                    });
                    state.apply_matrix1(&m, other);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RbConfig {
        RbConfig {
            lengths: vec![1, 10, 30, 60, 100, 160],
            samples_per_length: 12,
            ..RbConfig::paper()
        }
    }

    #[test]
    fn noiseless_rb_never_decays() {
        let cfg = RbConfig {
            lengths: vec![1, 20, 80],
            samples_per_length: 4,
            noise_a: DepolarizingNoise {
                pauli_error_prob: 0.0,
            },
            noise_b: DepolarizingNoise {
                pauli_error_prob: 0.0,
            },
            crosstalk: CrosstalkModel::NONE,
            readout: ReadoutError::default(),
            seed: 5,
        };
        let group = CliffordGroup::new();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let (a, b) = run_rb(&group, &cfg, Driven::Both, &mut rng).unwrap();
        for p in a.points.iter().chain(&b.points) {
            assert!(
                (p.survival - 1.0).abs() < 1e-9,
                "survival {} at m={}",
                p.survival,
                p.length
            );
        }
    }

    #[test]
    fn survival_decays_with_length() {
        let cfg = quick_cfg();
        let group = CliffordGroup::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let (a, _) = run_rb(&group, &cfg, Driven::OnlyA, &mut rng).unwrap();
        assert!(a.points.first().unwrap().survival > a.points.last().unwrap().survival);
    }

    #[test]
    fn fitted_fidelity_tracks_injected_noise() {
        // Inject F = 0.99 and recover it within half a percent.
        let cfg = RbConfig {
            lengths: vec![1, 5, 10, 20, 40, 70, 110, 160],
            samples_per_length: 60,
            noise_a: DepolarizingNoise::for_fidelity(0.99),
            noise_b: DepolarizingNoise::for_fidelity(0.99),
            crosstalk: CrosstalkModel::NONE,
            readout: ReadoutError::default(),
            seed: 77,
        };
        let group = CliffordGroup::new();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let (a, _) = run_rb(&group, &cfg, Driven::OnlyA, &mut rng).unwrap();
        assert!(
            (a.fidelity() - 0.99).abs() < 5e-3,
            "fitted {}",
            a.fidelity()
        );
    }

    #[test]
    fn simrb_is_worse_than_individual() {
        let report = run_simrb_experiment(&quick_cfg()).unwrap();
        assert!(report.simultaneous_a.fidelity() < report.individual_a.fidelity());
        assert!(report.simultaneous_b.fidelity() < report.individual_b.fidelity());
    }

    #[test]
    fn interleaved_rb_recovers_clifford_gate_fidelity() {
        // All gates share the same depolarizing noise, so the interleaved
        // estimate should land near the per-Clifford fidelity.
        // Short sequences: the interleaved curve decays twice as fast, so
        // long lengths would sit on the 0.5 floor and only add fit noise.
        let cfg = RbConfig {
            lengths: vec![1, 3, 6, 10, 16, 24, 34],
            samples_per_length: 400,
            noise_a: DepolarizingNoise::for_fidelity(0.99),
            noise_b: DepolarizingNoise::for_fidelity(0.99),
            crosstalk: CrosstalkModel::NONE,
            readout: ReadoutError::default(),
            seed: 9,
        };
        let r = run_interleaved_rb(&cfg, Gate1::X).unwrap();
        let f = r.gate_fidelity();
        assert!((f - 0.99).abs() < 0.01, "interleaved X fidelity {f}");
        // The interleaved curve decays at least as fast as the reference.
        assert!(r.interleaved.fit.decay <= r.reference.fit.decay + 1e-3);
    }

    #[test]
    fn clifford_id_lookup_identifies_standard_gates() {
        let group = CliffordGroup::new();
        for g in [
            Gate1::I,
            Gate1::X,
            Gate1::Y,
            Gate1::Z,
            Gate1::H,
            Gate1::S,
            Gate1::X90,
        ] {
            assert!(
                clifford_id_of(&group, g).is_some(),
                "{g} should be a Clifford"
            );
        }
        assert!(
            clifford_id_of(&group, Gate1::T).is_none(),
            "T is not a Clifford"
        );
        assert_eq!(clifford_id_of(&group, Gate1::I), Some(CliffordId(0)));
    }

    #[test]
    #[should_panic(expected = "not a single-qubit Clifford")]
    fn interleaving_a_non_clifford_panics() {
        let _ = run_interleaved_rb(&RbConfig::paper(), Gate1::T);
    }

    #[test]
    fn spectator_stays_put_during_individual_rb() {
        let cfg = quick_cfg();
        let group = CliffordGroup::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let (_, b) = run_rb(&group, &cfg, Driven::OnlyA, &mut rng).unwrap();
        // Undriven qubit B keeps survival 1 (no crosstalk when not simRB).
        for p in &b.points {
            assert!((p.survival - 1.0).abs() < 1e-9);
        }
    }
}
