//! Exponential-decay fitting for randomized benchmarking.
//!
//! RB survival probabilities follow `y(m) = A·pᵐ + B`; the decay `p` gives
//! the average Clifford fidelity `1 − (1−p)(d−1)/d`. Fitting is separable
//! least squares: for any candidate `p` the optimal `(A, B)` have a closed
//! form, so we scan `p` on a grid and polish with ternary search.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of fitting `y = A·pᵐ + B`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayFit {
    /// Amplitude `A`.
    pub amplitude: f64,
    /// Decay parameter `p` per Clifford.
    pub decay: f64,
    /// Offset `B` (ideally `1/2ᵈ` for depolarized d-qubit RB).
    pub offset: f64,
    /// Residual sum of squares at the optimum.
    pub rss: f64,
}

impl DecayFit {
    /// Average Clifford fidelity for a `d`-dimensional system:
    /// `1 − (1−p)(d−1)/d` (single qubit: `1 − (1−p)/2`).
    pub fn average_fidelity(&self, dim: usize) -> f64 {
        1.0 - (1.0 - self.decay) * (dim as f64 - 1.0) / dim as f64
    }

    /// Predicted survival at sequence length `m`.
    pub fn predict(&self, m: f64) -> f64 {
        self.amplitude * self.decay.powf(m) + self.offset
    }
}

impl fmt::Display for DecayFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "y = {:.4}·{:.6}^m + {:.4} (rss {:.3e})",
            self.amplitude, self.decay, self.offset, self.rss
        )
    }
}

/// Errors from [`fit_decay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than three points (the model has three parameters).
    TooFewPoints,
    /// Input slices have different lengths.
    LengthMismatch,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewPoints => write!(f, "need at least three (m, y) points"),
            FitError::LengthMismatch => write!(f, "lengths and survivals differ in length"),
        }
    }
}

impl std::error::Error for FitError {}

fn rss_for(p: f64, ms: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    // Linear least squares of y on x = p^m with intercept.
    let n = ms.len() as f64;
    let xs: Vec<f64> = ms.iter().map(|&m| p.powf(m)).collect();
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    let (a, b) = if denom.abs() < 1e-15 {
        (0.0, sy / n)
    } else {
        let a = (n * sxy - sx * sy) / denom;
        let b = (sy - a * sx) / n;
        (a, b)
    };
    let rss: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (a * x + b)).powi(2))
        .sum();
    (rss, a, b)
}

/// Fits `y(m) = A·pᵐ + B` to survival data.
///
/// # Errors
///
/// Returns [`FitError::TooFewPoints`] for fewer than three samples and
/// [`FitError::LengthMismatch`] for unequal input lengths.
///
/// ```
/// use quape_qpu::fit_decay;
/// let ms = [1u32, 5, 20, 60, 120];
/// let ys: Vec<f64> = ms.iter().map(|&m| 0.5 * 0.99f64.powi(m as i32) + 0.5).collect();
/// let fit = fit_decay(&ms, &ys)?;
/// assert!((fit.decay - 0.99).abs() < 1e-3);
/// # Ok::<(), quape_qpu::FitError>(())
/// ```
pub fn fit_decay(lengths: &[u32], survivals: &[f64]) -> Result<DecayFit, FitError> {
    if lengths.len() != survivals.len() {
        return Err(FitError::LengthMismatch);
    }
    if lengths.len() < 3 {
        return Err(FitError::TooFewPoints);
    }
    let ms: Vec<f64> = lengths.iter().map(|&m| m as f64).collect();

    // Grid scan.
    let mut best = (f64::INFINITY, 0.5);
    const GRID: usize = 2000;
    for i in 0..GRID {
        let p = i as f64 / GRID as f64;
        let (rss, _, _) = rss_for(p, &ms, survivals);
        if rss < best.0 {
            best = (rss, p);
        }
    }
    // Ternary-search polish around the grid optimum.
    let mut lo = (best.1 - 1.5 / GRID as f64).max(0.0);
    let mut hi = (best.1 + 1.5 / GRID as f64).min(1.0);
    for _ in 0..80 {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if rss_for(m1, &ms, survivals).0 < rss_for(m2, &ms, survivals).0 {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let p = (lo + hi) / 2.0;
    let (rss, a, b) = rss_for(p, &ms, survivals);
    Ok(DecayFit {
        amplitude: a,
        decay: p,
        offset: b,
        rss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_noiseless_parameters() {
        let ms: Vec<u32> = vec![1, 2, 4, 8, 16, 32, 64, 128];
        let ys: Vec<f64> = ms
            .iter()
            .map(|&m| 0.47 * 0.983f64.powi(m as i32) + 0.51)
            .collect();
        let fit = fit_decay(&ms, &ys).unwrap();
        assert!((fit.decay - 0.983).abs() < 5e-4, "p = {}", fit.decay);
        assert!((fit.amplitude - 0.47).abs() < 5e-3);
        assert!((fit.offset - 0.51).abs() < 5e-3);
        assert!(fit.rss < 1e-6);
    }

    #[test]
    fn recovers_parameters_under_noise() {
        let mut rng = SmallRng::seed_from_u64(11);
        let ms: Vec<u32> = (0..20).map(|i| 1 + i * 12).collect();
        let ys: Vec<f64> = ms
            .iter()
            .map(|&m| 0.5 * 0.99f64.powi(m as i32) + 0.5 + rng.gen_range(-0.004..0.004))
            .collect();
        let fit = fit_decay(&ms, &ys).unwrap();
        assert!((fit.decay - 0.99).abs() < 3e-3, "p = {}", fit.decay);
    }

    #[test]
    fn fidelity_formula_matches_paper_convention() {
        let fit = DecayFit {
            amplitude: 0.5,
            decay: 0.99,
            offset: 0.5,
            rss: 0.0,
        };
        // Single qubit: r = (1−p)/2 = 0.005 ⇒ F = 99.5%.
        assert!((fit.average_fidelity(2) - 0.995).abs() < 1e-12);
        assert!((fit.predict(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn input_validation() {
        assert_eq!(fit_decay(&[1, 2], &[0.9, 0.8]), Err(FitError::TooFewPoints));
        assert_eq!(
            fit_decay(&[1, 2, 3], &[0.9, 0.8]),
            Err(FitError::LengthMismatch)
        );
    }

    #[test]
    fn flat_data_fits_offset_only() {
        let ms = [1u32, 10, 50, 100];
        let ys = [0.5, 0.5, 0.5, 0.5];
        let fit = fit_decay(&ms, &ys).unwrap();
        assert!(fit.rss < 1e-9);
        assert!((fit.predict(25.0) - 0.5).abs() < 1e-6);
    }
}
