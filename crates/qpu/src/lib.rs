//! # quape-qpu — quantum processing unit substrates
//!
//! The QuAPE paper evaluates its control microarchitecture against two
//! different "QPUs", and this crate provides both:
//!
//! * a **behavioural QPU** ([`BehavioralQpu`]) that tracks per-qubit
//!   occupancy, flags timing violations, and draws measurement outcomes
//!   from a seeded PRNG — exactly the setup the paper used for its §7
//!   QCP-only benchmarks;
//! * a **state-vector QPU** ([`StateVector`]) with depolarizing noise,
//!   readout error, ZZ coupling and microwave drive crosstalk — enough
//!   physics to reproduce the §8 randomized-benchmarking validation,
//!   including the simRB fidelity reduction.
//!
//! On top of the state-vector backend sit the single-qubit
//! [`CliffordGroup`] (24 elements, composition/inverse tables, X90/Y90
//! pulse decompositions), the RB/simRB experiment runner
//! ([`run_simrb_experiment`]), and the `A·pᵐ + B` decay fitter
//! ([`fit_decay`]).
//!
//! ```
//! use quape_qpu::StateVector;
//! use quape_isa::{Gate1, Gate2, Qubit};
//!
//! let mut s = StateVector::new(2);
//! s.apply_gate1(Gate1::H, Qubit::new(0));
//! s.apply_gate2(Gate2::Cnot, Qubit::new(0), Qubit::new(1));
//! assert!((s.prob_one(Qubit::new(1)) - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavioral;
mod clifford;
mod complex;
mod factory;
mod fit;
mod noise;
mod rb;
mod statevector;

pub use behavioral::{BehavioralQpu, IssuedOp, MeasurementModel, TimingViolation};
pub use clifford::{CliffordGroup, CliffordId, CLIFFORD_COUNT};
pub use complex::Complex;
pub use factory::BehavioralQpuFactory;
pub use fit::{fit_decay, DecayFit, FitError};
pub use noise::{CrosstalkModel, DepolarizingNoise, ReadoutError, RelaxationNoise};
pub use rb::{
    run_interleaved_rb, run_simrb_experiment, InterleavedRbReport, RbConfig, RbCurve, RbPoint,
    SimRbReport,
};
pub use statevector::{
    gate1_matrix, matmul2, rotation_matrix_x, rotation_matrix_y, rotation_matrix_z, Matrix2,
    StateVector,
};
