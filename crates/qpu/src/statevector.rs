//! Dense state-vector simulator.
//!
//! Sized for the paper's validation experiment (§8): the RB / simRB runs
//! use 2 of the 10 chip qubits, far below the ~20-qubit practical limit of
//! a dense simulator. Qubit `q` corresponds to bit `q` of the basis-state
//! index (little-endian).

use crate::complex::Complex;
use quape_isa::{Gate1, Gate2, Qubit};
use rand::Rng;
use std::fmt;

/// A 2×2 complex matrix (row major).
pub type Matrix2 = [[Complex; 2]; 2];

/// Returns the unitary matrix of a single-qubit gate.
pub fn gate1_matrix(gate: Gate1) -> Matrix2 {
    use std::f64::consts::FRAC_1_SQRT_2 as R;
    let z = Complex::ZERO;
    let one = Complex::ONE;
    let i = Complex::I;
    match gate {
        Gate1::I | Gate1::Reset => [[one, z], [z, one]],
        Gate1::X => [[z, one], [one, z]],
        Gate1::Y => [[z, -i], [i, z]],
        Gate1::Z => [[one, z], [z, -one]],
        Gate1::H => [
            [Complex::new(R, 0.0), Complex::new(R, 0.0)],
            [Complex::new(R, 0.0), Complex::new(-R, 0.0)],
        ],
        Gate1::S => [[one, z], [z, i]],
        Gate1::Sdg => [[one, z], [z, -i]],
        Gate1::T => [[one, z], [z, Complex::cis(std::f64::consts::FRAC_PI_4)]],
        Gate1::Tdg => [[one, z], [z, Complex::cis(-std::f64::consts::FRAC_PI_4)]],
        Gate1::X90 => rotation_matrix_x(std::f64::consts::FRAC_PI_2),
        Gate1::Xm90 => rotation_matrix_x(-std::f64::consts::FRAC_PI_2),
        Gate1::Y90 => rotation_matrix_y(std::f64::consts::FRAC_PI_2),
        Gate1::Ym90 => rotation_matrix_y(-std::f64::consts::FRAC_PI_2),
        Gate1::Rx(a) => rotation_matrix_x(a.radians()),
        Gate1::Ry(a) => rotation_matrix_y(a.radians()),
        Gate1::Rz(a) => rotation_matrix_z(a.radians()),
    }
}

/// `exp(-iθX/2)`.
pub fn rotation_matrix_x(theta: f64) -> Matrix2 {
    let c = Complex::new((theta / 2.0).cos(), 0.0);
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    [[c, s], [s, c]]
}

/// `exp(-iθY/2)`.
pub fn rotation_matrix_y(theta: f64) -> Matrix2 {
    let c = Complex::new((theta / 2.0).cos(), 0.0);
    let s = Complex::new((theta / 2.0).sin(), 0.0);
    [[c, -s], [s, c]]
}

/// `exp(-iθZ/2)`.
pub fn rotation_matrix_z(theta: f64) -> Matrix2 {
    [
        [Complex::cis(-theta / 2.0), Complex::ZERO],
        [Complex::ZERO, Complex::cis(theta / 2.0)],
    ]
}

/// Multiplies two 2×2 matrices.
pub fn matmul2(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    let mut out = [[Complex::ZERO; 2]; 2];
    for (r, out_row) in out.iter_mut().enumerate() {
        for (c, out_cell) in out_row.iter_mut().enumerate() {
            *out_cell = a[r][0] * b[0][c] + a[r][1] * b[1][c];
        }
    }
    out
}

/// A pure quantum state over `n` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: u8,
    amps: Vec<Complex>,
}

impl StateVector {
    /// Creates |0…0⟩ over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n > 24` (the dense representation would not fit memory).
    pub fn new(n: u8) -> Self {
        assert!(n <= 24, "dense state vector limited to 24 qubits");
        let mut amps = vec![Complex::ZERO; 1 << n];
        amps[0] = Complex::ONE;
        StateVector { n, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u8 {
        self.n
    }

    /// The amplitude of basis state `idx`.
    pub fn amplitude(&self, idx: usize) -> Complex {
        self.amps[idx]
    }

    /// Σ|amp|² — should always be 1 within rounding error.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    fn check_qubit(&self, q: Qubit) -> usize {
        let idx = q.index() as usize;
        assert!(
            idx < self.n as usize,
            "qubit {q} out of range for {}-qubit state",
            self.n
        );
        idx
    }

    /// Applies a single-qubit unitary to `q`.
    pub fn apply_matrix1(&mut self, m: &Matrix2, q: Qubit) {
        let t = self.check_qubit(q);
        let bit = 1usize << t;
        for base in 0..self.amps.len() {
            if base & bit == 0 {
                let a0 = self.amps[base];
                let a1 = self.amps[base | bit];
                self.amps[base] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[base | bit] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Applies a single-qubit gate to `q`.
    ///
    /// `Gate1::Reset` is *not* unitary; use [`StateVector::reset`] for it.
    /// Passing it here applies the identity.
    pub fn apply_gate1(&mut self, gate: Gate1, q: Qubit) {
        if gate == Gate1::Reset {
            return; // handled by `reset`, which needs an RNG
        }
        self.apply_matrix1(&gate1_matrix(gate), q);
    }

    /// Applies a two-qubit gate.
    pub fn apply_gate2(&mut self, gate: Gate2, a: Qubit, b: Qubit) {
        let qa = self.check_qubit(a);
        let qb = self.check_qubit(b);
        assert_ne!(qa, qb, "two-qubit gate needs distinct qubits");
        let (ba, bb) = (1usize << qa, 1usize << qb);
        match gate {
            Gate2::Cnot => {
                // Flip target bit where control bit set.
                for idx in 0..self.amps.len() {
                    if idx & ba != 0 && idx & bb == 0 {
                        self.amps.swap(idx, idx | bb);
                    }
                }
            }
            Gate2::Cz => {
                for (idx, amp) in self.amps.iter_mut().enumerate() {
                    if idx & ba != 0 && idx & bb != 0 {
                        *amp = -*amp;
                    }
                }
            }
            Gate2::Swap => {
                for idx in 0..self.amps.len() {
                    // Swap amplitudes of |..a=1,b=0..⟩ and |..a=0,b=1..⟩.
                    if idx & ba != 0 && idx & bb == 0 {
                        let other = (idx & !ba) | bb;
                        self.amps.swap(idx, other);
                    }
                }
            }
        }
    }

    /// Applies the always-on ZZ coupling `exp(-i θ/2 · Z⊗Z)` between two
    /// qubits — the interaction the paper blames for the simRB fidelity
    /// reduction (§8).
    pub fn apply_zz(&mut self, a: Qubit, b: Qubit, theta: f64) {
        let qa = self.check_qubit(a);
        let qb = self.check_qubit(b);
        let (ba, bb) = (1usize << qa, 1usize << qb);
        let plus = Complex::cis(-theta / 2.0); // eigenvalue for equal bits
        let minus = Complex::cis(theta / 2.0); // eigenvalue for opposite bits
        for (idx, amp) in self.amps.iter_mut().enumerate() {
            let parity = ((idx & ba != 0) as u8) ^ ((idx & bb != 0) as u8);
            *amp = *amp * if parity == 0 { plus } else { minus };
        }
    }

    /// Probability of measuring `q` as 1.
    pub fn prob_one(&self, q: Qubit) -> f64 {
        let bit = 1usize << self.check_qubit(q);
        self.amps
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projectively measures `q`, collapsing the state. Returns the
    /// outcome.
    pub fn measure(&mut self, q: Qubit, rng: &mut impl Rng) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.project(q, outcome);
        outcome
    }

    /// Projects `q` onto `outcome` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has zero probability (the projection would be
    /// undefined).
    pub fn project(&mut self, q: Qubit, outcome: bool) {
        let bit = 1usize << self.check_qubit(q);
        let p = if outcome {
            self.prob_one(q)
        } else {
            1.0 - self.prob_one(q)
        };
        assert!(p > 1e-12, "projection onto zero-probability outcome");
        let norm = 1.0 / p.sqrt();
        for (idx, amp) in self.amps.iter_mut().enumerate() {
            if (idx & bit != 0) == outcome {
                *amp = amp.scale(norm);
            } else {
                *amp = Complex::ZERO;
            }
        }
    }

    /// Resets `q` to |0⟩ (projective measurement followed by conditional X,
    /// which is how the hardware's unconditional reset pulse behaves).
    pub fn reset(&mut self, q: Qubit, rng: &mut impl Rng) {
        if self.measure(q, rng) {
            self.apply_gate1(Gate1::X, q);
        }
    }

    /// Applies one quantum-trajectory step of amplitude damping with
    /// parameter `gamma` to `q`: with probability `γ·P(1)` the qubit
    /// jumps into |0⟩ (absorbing the excited amplitude); otherwise the
    /// no-jump Kraus operator `diag(1, √(1−γ))` damps it, followed by
    /// renormalization.
    pub fn apply_amplitude_damping(&mut self, q: Qubit, gamma: f64, rng: &mut impl Rng) {
        let gamma = gamma.clamp(0.0, 1.0);
        let p_jump = gamma * self.prob_one(q);
        let bit = 1usize << self.check_qubit(q);
        if p_jump > 0.0 && rng.gen_bool(p_jump.clamp(0.0, 1.0)) {
            // Jump: |…1…⟩ amplitudes transfer to |…0…⟩.
            for idx in 0..self.amps.len() {
                if idx & bit != 0 {
                    self.amps[idx & !bit] = self.amps[idx];
                    self.amps[idx] = Complex::ZERO;
                }
            }
        } else {
            // No-jump back-action.
            let k = (1.0 - gamma).sqrt();
            for (idx, amp) in self.amps.iter_mut().enumerate() {
                if idx & bit != 0 {
                    *amp = amp.scale(k);
                }
            }
        }
        self.renormalize();
    }

    /// Rescales the state to unit norm (needed after non-unitary Kraus
    /// applications).
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 1e-300 {
            let inv = 1.0 / n;
            for amp in &mut self.amps {
                *amp = amp.scale(inv);
            }
        }
    }

    /// Fidelity |⟨self|other⟩|² between two pure states.
    ///
    /// # Panics
    ///
    /// Panics if the states have different sizes.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n, "state size mismatch");
        let mut inner = Complex::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            inner += a.conj() * *b;
        }
        inner.norm_sqr()
    }

    /// Probability that every qubit measures 0 (RB survival probability).
    pub fn prob_all_zero(&self) -> f64 {
        self.amps[0].norm_sqr()
    }
}

impl fmt::Display for StateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}-qubit state", self.n)?;
        for (idx, a) in self.amps.iter().enumerate() {
            if a.norm_sqr() > 1e-12 {
                writeln!(f, "  |{idx:0width$b}⟩ {a}", width = self.n as usize)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn q(i: u16) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn starts_in_ground_state() {
        let s = StateVector::new(3);
        assert_eq!(s.amplitude(0), Complex::ONE);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(s.prob_all_zero(), 1.0);
    }

    #[test]
    fn x_flips() {
        let mut s = StateVector::new(2);
        s.apply_gate1(Gate1::X, q(1));
        assert!((s.prob_one(q(1)) - 1.0).abs() < 1e-12);
        assert!(s.prob_one(q(0)) < 1e-12);
    }

    #[test]
    fn h_twice_is_identity() {
        let mut s = StateVector::new(1);
        s.apply_gate1(Gate1::H, q(0));
        assert!((s.prob_one(q(0)) - 0.5).abs() < 1e-12);
        s.apply_gate1(Gate1::H, q(0));
        assert!(s.prob_one(q(0)) < 1e-12);
    }

    #[test]
    fn bell_state_correlations() {
        let mut s = StateVector::new(2);
        s.apply_gate1(Gate1::H, q(0));
        s.apply_gate2(Gate2::Cnot, q(0), q(1));
        // |00⟩+|11⟩: both marginals 1/2.
        assert!((s.prob_one(q(0)) - 0.5).abs() < 1e-12);
        assert!((s.prob_one(q(1)) - 0.5).abs() < 1e-12);
        // Measuring one collapses the other.
        let mut rng = SmallRng::seed_from_u64(7);
        let a = s.measure(q(0), &mut rng);
        assert_eq!(s.prob_one(q(1)) > 0.5, a);
    }

    #[test]
    fn cz_phases_only_11() {
        let mut s = StateVector::new(2);
        s.apply_gate1(Gate1::X, q(0));
        s.apply_gate1(Gate1::X, q(1));
        s.apply_gate2(Gate2::Cz, q(0), q(1));
        assert!(s.amplitude(3).approx_eq(-Complex::ONE, 1e-12));
    }

    #[test]
    fn swap_exchanges() {
        let mut s = StateVector::new(2);
        s.apply_gate1(Gate1::X, q(0));
        s.apply_gate2(Gate2::Swap, q(0), q(1));
        assert!(s.prob_one(q(0)) < 1e-12);
        assert!((s.prob_one(q(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x90_squared_is_x() {
        let mut a = StateVector::new(1);
        a.apply_gate1(Gate1::X90, q(0));
        a.apply_gate1(Gate1::X90, q(0));
        let mut b = StateVector::new(1);
        b.apply_gate1(Gate1::X, q(0));
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn all_gates_preserve_norm() {
        let mut s = StateVector::new(3);
        s.apply_gate1(Gate1::H, q(0));
        s.apply_gate2(Gate2::Cnot, q(0), q(1));
        for g in Gate1::FIXED {
            s.apply_gate1(g, q(2));
        }
        for g in Gate2::ALL {
            s.apply_gate2(g, q(1), q(2));
        }
        s.apply_zz(q(0), q(2), 0.37);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zz_is_identity_at_zero_angle() {
        let mut s = StateVector::new(2);
        s.apply_gate1(Gate1::H, q(0));
        let before = s.clone();
        s.apply_zz(q(0), q(1), 0.0);
        assert!((s.fidelity(&before) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zz_with_spectator_zero_is_local_z() {
        // exp(-iθ/2 Z⊗Z) on |ψ⟩⊗|0⟩ equals exp(-iθ/2 Z)|ψ⟩⊗|0⟩.
        let mut a = StateVector::new(2);
        a.apply_gate1(Gate1::H, q(0));
        a.apply_zz(q(0), q(1), 0.7);
        let mut b = StateVector::new(2);
        b.apply_gate1(Gate1::H, q(0));
        b.apply_matrix1(&rotation_matrix_z(0.7), q(0));
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn measurement_statistics_converge() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut ones = 0;
        const N: usize = 4000;
        for _ in 0..N {
            let mut s = StateVector::new(1);
            s.apply_gate1(Gate1::H, q(0));
            if s.measure(q(0), &mut rng) {
                ones += 1;
            }
        }
        let f = ones as f64 / N as f64;
        assert!((f - 0.5).abs() < 0.03, "empirical P(1)={f}");
    }

    #[test]
    fn reset_returns_to_ground() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut s = StateVector::new(2);
        s.apply_gate1(Gate1::H, q(0));
        s.apply_gate2(Gate2::Cnot, q(0), q(1));
        s.reset(q(0), &mut rng);
        s.reset(q(1), &mut rng);
        assert!((s.prob_all_zero() - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qubit_bounds_enforced() {
        let mut s = StateVector::new(2);
        s.apply_gate1(Gate1::X, q(2));
    }

    #[test]
    fn amplitude_damping_jump_resets_to_ground() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut s = StateVector::new(2);
        s.apply_gate1(Gate1::X, q(0));
        s.apply_gate1(Gate1::H, q(1));
        s.apply_amplitude_damping(q(0), 1.0, &mut rng); // γ = 1 always jumps
        assert!(s.prob_one(q(0)) < 1e-12);
        // Spectator untouched.
        assert!((s.prob_one(q(1)) - 0.5).abs() < 1e-12);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn amplitude_damping_no_jump_damps_superposition() {
        // On |+⟩ with γ and no jump, P(1) = (1−γ)/( (1−γ)+1 )·…: just
        // check it strictly decreases while the norm stays 1.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut s = StateVector::new(1);
        s.apply_gate1(Gate1::H, q(0));
        let before = s.prob_one(q(0));
        // Use a seed/γ pair where the jump branch does not fire.
        s.apply_amplitude_damping(q(0), 0.1, &mut rng);
        let after = s.prob_one(q(0));
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
        assert!(
            after < before || (after - 1.0).abs() < 1e-9,
            "{before} -> {after}"
        );
    }

    #[test]
    fn renormalize_restores_unit_norm() {
        let mut s = StateVector::new(1);
        s.apply_gate1(Gate1::H, q(0));
        // Manually damp via the public no-jump path with γ=0 (no-op) and
        // then scale through a non-unitary matrix.
        let half = [
            [Complex::new(0.5, 0.0), Complex::ZERO],
            [Complex::ZERO, Complex::new(0.5, 0.0)],
        ];
        s.apply_matrix1(&half, q(0));
        assert!((s.norm_sqr() - 0.25).abs() < 1e-12);
        s.renormalize();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }
}
