//! The single-qubit Clifford group, as used by randomized benchmarking.
//!
//! The 24 elements are generated from {X90, Y90} by breadth-first search
//! over unitaries (compared up to global phase), which also yields a
//! shortest pulse decomposition for each element — the physical-pulse view
//! an AWG actually plays. Composition and inversion are table lookups.

use crate::statevector::{gate1_matrix, matmul2, Matrix2};
use quape_isa::Gate1;
use std::fmt;

/// Index of a Clifford element (0 is the identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CliffordId(pub u8);

impl fmt::Display for CliffordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Number of single-qubit Clifford elements.
pub const CLIFFORD_COUNT: usize = 24;

/// The single-qubit Clifford group with composition/inverse tables and
/// pulse decompositions.
///
/// ```
/// use quape_qpu::CliffordGroup;
/// let g = CliffordGroup::new();
/// assert_eq!(g.len(), 24);
/// let c = g.compose(quape_qpu::CliffordId(5), quape_qpu::CliffordId(9));
/// let inv = g.inverse(c);
/// assert_eq!(g.compose(c, inv), quape_qpu::CliffordId(0));
/// ```
#[derive(Debug, Clone)]
pub struct CliffordGroup {
    matrices: Vec<Matrix2>,
    pulses: Vec<Vec<Gate1>>,
    compose: Vec<[CliffordId; CLIFFORD_COUNT]>,
    inverse: Vec<CliffordId>,
}

fn phase_invariant_eq(a: &Matrix2, b: &Matrix2, eps: f64) -> bool {
    // Find the largest entry of `a` to fix the relative phase.
    let mut best = (0usize, 0usize);
    let mut best_mag = 0.0;
    for (r, row) in a.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            let m = cell.norm_sqr();
            if m > best_mag {
                best_mag = m;
                best = (r, c);
            }
        }
    }
    if best_mag < eps {
        return false;
    }
    let (r0, c0) = best;
    if b[r0][c0].norm_sqr() < eps {
        return false;
    }
    // phase = a/b at the anchor entry; check a == phase·b elsewhere.
    let denom = b[r0][c0].norm_sqr();
    let phase = a[r0][c0] * b[r0][c0].conj().scale(1.0 / denom);
    if (phase.norm_sqr() - 1.0).abs() > 1e-6 {
        return false;
    }
    for r in 0..2 {
        for c in 0..2 {
            if !(b[r][c] * phase).approx_eq(a[r][c], eps) {
                return false;
            }
        }
    }
    true
}

impl CliffordGroup {
    /// Generates the group (a few microseconds; cache the instance).
    pub fn new() -> Self {
        const EPS: f64 = 1e-9;
        let generators = [Gate1::X90, Gate1::Xm90, Gate1::Y90, Gate1::Ym90];
        let mut matrices: Vec<Matrix2> = vec![gate1_matrix(Gate1::I)];
        let mut pulses: Vec<Vec<Gate1>> = vec![Vec::new()];
        // BFS over left-multiplication by generators, so each element gets
        // a shortest pulse sequence.
        let mut frontier = std::collections::VecDeque::from([0usize]);
        while let Some(idx) = frontier.pop_front() {
            for &g in &generators {
                let m = matmul2(&gate1_matrix(g), &matrices[idx]);
                if !matrices
                    .iter()
                    .any(|known| phase_invariant_eq(known, &m, EPS))
                {
                    let mut seq = pulses[idx].clone();
                    seq.push(g); // pulses applied left→right in time order
                    matrices.push(m);
                    pulses.push(seq);
                    frontier.push_back(matrices.len() - 1);
                }
            }
        }
        assert_eq!(matrices.len(), CLIFFORD_COUNT, "C1 must have 24 elements");

        let find = |m: &Matrix2| -> CliffordId {
            let idx = matrices
                .iter()
                .position(|known| phase_invariant_eq(known, m, EPS))
                .expect("product of Cliffords is a Clifford");
            CliffordId(idx as u8)
        };

        let mut compose = Vec::with_capacity(CLIFFORD_COUNT);
        for a in 0..CLIFFORD_COUNT {
            let mut row = [CliffordId(0); CLIFFORD_COUNT];
            for (b, slot) in row.iter_mut().enumerate() {
                // compose(a, b) = "apply a, then b" = matrix b · a.
                *slot = find(&matmul2(&matrices[b], &matrices[a]));
            }
            compose.push(row);
        }
        let mut inverse = vec![CliffordId(0); CLIFFORD_COUNT];
        for a in 0..CLIFFORD_COUNT {
            let inv = (0..CLIFFORD_COUNT)
                .find(|&b| compose[a][b] == CliffordId(0))
                .expect("group element has an inverse");
            inverse[a] = CliffordId(inv as u8);
        }
        CliffordGroup {
            matrices,
            pulses,
            compose,
            inverse,
        }
    }

    /// Number of elements (always 24).
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// True if the group is empty (never; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }

    /// The identity element.
    pub fn identity(&self) -> CliffordId {
        CliffordId(0)
    }

    /// The unitary matrix of an element.
    pub fn matrix(&self, id: CliffordId) -> &Matrix2 {
        &self.matrices[id.0 as usize]
    }

    /// The X90/Y90 pulse decomposition of an element, in time order.
    /// The identity decomposes to an empty sequence (an idle slot).
    pub fn pulses(&self, id: CliffordId) -> &[Gate1] {
        &self.pulses[id.0 as usize]
    }

    /// `compose(a, b)`: the element equivalent to applying `a` first, then
    /// `b`.
    pub fn compose(&self, a: CliffordId, b: CliffordId) -> CliffordId {
        self.compose[a.0 as usize][b.0 as usize]
    }

    /// The inverse element.
    pub fn inverse(&self, id: CliffordId) -> CliffordId {
        self.inverse[id.0 as usize]
    }

    /// Folds a sequence into a single element (identity for empty input).
    pub fn compose_all(&self, seq: impl IntoIterator<Item = CliffordId>) -> CliffordId {
        seq.into_iter()
            .fold(self.identity(), |acc, c| self.compose(acc, c))
    }

    /// The recovery element that returns a sequence to the identity:
    /// `compose_all(seq + [recovery]) == identity`.
    pub fn recovery(&self, seq: impl IntoIterator<Item = CliffordId>) -> CliffordId {
        self.inverse(self.compose_all(seq))
    }

    /// Average number of physical pulses per Clifford (< 2 for the ±X90 /
    /// ±Y90 generating set, matching standard RB practice).
    pub fn mean_pulses(&self) -> f64 {
        self.pulses.iter().map(Vec::len).sum::<usize>() as f64 / self.len() as f64
    }
}

impl Default for CliffordGroup {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;
    use quape_isa::Qubit;

    #[test]
    fn group_has_24_elements() {
        let g = CliffordGroup::new();
        assert_eq!(g.len(), CLIFFORD_COUNT);
    }

    #[test]
    fn composition_is_closed_and_has_identity() {
        let g = CliffordGroup::new();
        let e = g.identity();
        for a in 0..CLIFFORD_COUNT as u8 {
            let a = CliffordId(a);
            assert_eq!(g.compose(a, e), a);
            assert_eq!(g.compose(e, a), a);
        }
    }

    #[test]
    fn every_element_has_two_sided_inverse() {
        let g = CliffordGroup::new();
        for a in 0..CLIFFORD_COUNT as u8 {
            let a = CliffordId(a);
            let inv = g.inverse(a);
            assert_eq!(g.compose(a, inv), g.identity());
            assert_eq!(g.compose(inv, a), g.identity());
        }
    }

    #[test]
    fn composition_is_associative_on_samples() {
        let g = CliffordGroup::new();
        for (a, b, c) in [(1u8, 2u8, 3u8), (5, 17, 9), (23, 11, 4)] {
            let (a, b, c) = (CliffordId(a), CliffordId(b), CliffordId(c));
            assert_eq!(g.compose(g.compose(a, b), c), g.compose(a, g.compose(b, c)));
        }
    }

    #[test]
    fn pulse_decompositions_reproduce_matrices() {
        let g = CliffordGroup::new();
        for id in 0..CLIFFORD_COUNT as u8 {
            let id = CliffordId(id);
            // Apply the pulse sequence to |0⟩ and compare with the matrix
            // acting on |0⟩ (up to global phase ⇒ compare probabilities
            // via fidelity with the matrix-built state).
            let mut via_pulses = StateVector::new(1);
            for &p in g.pulses(id) {
                via_pulses.apply_gate1(p, Qubit::new(0));
            }
            let mut via_matrix = StateVector::new(1);
            via_matrix.apply_matrix1(g.matrix(id), Qubit::new(0));
            assert!(
                (via_pulses.fidelity(&via_matrix) - 1.0).abs() < 1e-9,
                "pulse decomposition of {id} diverges"
            );
        }
    }

    #[test]
    fn pulse_counts_match_standard_rb() {
        let g = CliffordGroup::new();
        // ±X90/±Y90 BFS: lengths 0..=4 (histogram [1,4,10,8,1]), mean ≈ 2.17.
        assert!(g.pulses.iter().all(|p| p.len() <= 4));
        let mean = g.mean_pulses();
        assert!(mean > 1.0 && mean < 2.5, "mean pulses {mean}");
    }

    #[test]
    fn recovery_closes_random_sequences() {
        let g = CliffordGroup::new();
        let seq = [CliffordId(3), CliffordId(17), CliffordId(8), CliffordId(21)];
        let rec = g.recovery(seq);
        let total = g.compose(g.compose_all(seq), rec);
        assert_eq!(total, g.identity());
    }
}
