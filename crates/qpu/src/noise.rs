//! Noise channels applied by the state-vector QPU backend.
//!
//! The model covers what the paper's §8 experiment exercises: stochastic
//! Pauli (depolarizing) error per Clifford, readout assignment error, the
//! always-on ZZ interaction between neighbouring transmons, and microwave
//! drive crosstalk — the last two being the mechanisms that separate simRB
//! from individual RB fidelities.

use crate::statevector::StateVector;
use quape_isa::{Gate1, Qubit};
use rand::Rng;
use serde::{Deserialize, Serialize};

// (RelaxationNoise below complements DepolarizingNoise: the former models
// idle-time decay, the latter gate-induced error.)

/// Stochastic-Pauli noise intensity per applied Clifford/gate.
///
/// With probability `pauli_error_prob` a uniformly random Pauli (X, Y or Z)
/// follows the ideal gate. For a single qubit this produces an average
/// gate infidelity of `2/3 · pauli_error_prob`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepolarizingNoise {
    /// Probability that a random Pauli error follows a gate.
    pub pauli_error_prob: f64,
}

impl DepolarizingNoise {
    /// Noise level that yields a target average gate fidelity `f`
    /// (`pauli_error_prob = 3/2 · (1 − f)`).
    pub fn for_fidelity(f: f64) -> Self {
        DepolarizingNoise {
            pauli_error_prob: 1.5 * (1.0 - f),
        }
    }

    /// The average gate fidelity this noise level produces.
    pub fn fidelity(&self) -> f64 {
        1.0 - 2.0 / 3.0 * self.pauli_error_prob
    }

    /// Possibly applies a random Pauli to `q`.
    pub fn apply(&self, state: &mut StateVector, q: Qubit, rng: &mut impl Rng) {
        if self.pauli_error_prob > 0.0 && rng.gen_bool(self.pauli_error_prob.clamp(0.0, 1.0)) {
            let pauli = match rng.gen_range(0..3u8) {
                0 => Gate1::X,
                1 => Gate1::Y,
                _ => Gate1::Z,
            };
            state.apply_gate1(pauli, q);
        }
    }
}

/// Crosstalk between a driven pair of qubits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrosstalkModel {
    /// ZZ phase accumulated per Clifford layer, in radians
    /// (`exp(-iθ/2·Z⊗Z)` per layer).
    pub zz_theta_per_layer: f64,
    /// Fraction of a pulse on qubit A that leaks onto qubit B.
    pub drive_leakage_a_to_b: f64,
    /// Fraction of a pulse on qubit B that leaks onto qubit A.
    pub drive_leakage_b_to_a: f64,
}

impl CrosstalkModel {
    /// No crosstalk at all.
    pub const NONE: CrosstalkModel = CrosstalkModel {
        zz_theta_per_layer: 0.0,
        drive_leakage_a_to_b: 0.0,
        drive_leakage_b_to_a: 0.0,
    };
}

/// Energy relaxation (T1) and pure dephasing (T2) as a quantum-trajectory
/// channel, applied per idle interval.
///
/// Amplitude damping is unravelled with the Kraus pair
/// `K0 = diag(1, √(1−γ))`, `K1 = |0⟩⟨1|·√γ`: a jump occurs with
/// probability `γ·P(|1⟩)` and resets the qubit amplitude into |0⟩;
/// otherwise the no-jump back-action damps the excited amplitude. Pure
/// dephasing applies Z with probability `λ/2`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelaxationNoise {
    /// T1 time in nanoseconds.
    pub t1_ns: f64,
    /// Pure-dephasing time Tφ in nanoseconds
    /// (`1/T2 = 1/(2·T1) + 1/Tφ`).
    pub tphi_ns: f64,
}

impl RelaxationNoise {
    /// §2.3's nominal coherence regime (T1 = 80 µs, Tφ = 120 µs).
    pub const fn paper() -> Self {
        RelaxationNoise {
            t1_ns: 80_000.0,
            tphi_ns: 120_000.0,
        }
    }

    /// Damping probability accumulated over `dt_ns` of idling.
    pub fn gamma(&self, dt_ns: f64) -> f64 {
        1.0 - (-dt_ns / self.t1_ns).exp()
    }

    /// Dephasing probability accumulated over `dt_ns` of idling.
    pub fn lambda(&self, dt_ns: f64) -> f64 {
        1.0 - (-dt_ns / self.tphi_ns).exp()
    }

    /// Applies the channel to `q` for an idle interval of `dt_ns`.
    pub fn apply(&self, state: &mut StateVector, q: Qubit, dt_ns: f64, rng: &mut impl Rng) {
        let gamma = self.gamma(dt_ns);
        if gamma > 0.0 {
            state.apply_amplitude_damping(q, gamma, rng);
        }
        let lambda = self.lambda(dt_ns);
        if lambda > 0.0 && rng.gen_bool((lambda / 2.0).clamp(0.0, 1.0)) {
            state.apply_gate1(Gate1::Z, q);
        }
    }
}

/// Readout assignment error: the classical bit is flipped with the given
/// probabilities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReadoutError {
    /// P(read 1 | state 0).
    pub p01: f64,
    /// P(read 0 | state 1).
    pub p10: f64,
}

impl ReadoutError {
    /// Applies the assignment error to an ideal outcome.
    pub fn apply(&self, ideal: bool, rng: &mut impl Rng) -> bool {
        let flip = if ideal { self.p10 } else { self.p01 };
        if flip > 0.0 && rng.gen_bool(flip.clamp(0.0, 1.0)) {
            !ideal
        } else {
            ideal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fidelity_noise_roundtrip() {
        let n = DepolarizingNoise::for_fidelity(0.995);
        assert!((n.fidelity() - 0.995).abs() < 1e-12);
        assert!((n.pauli_error_prob - 0.0075).abs() < 1e-12);
    }

    #[test]
    fn zero_noise_never_fires() {
        let n = DepolarizingNoise {
            pauli_error_prob: 0.0,
        };
        let mut s = StateVector::new(1);
        let before = s.clone();
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            n.apply(&mut s, Qubit::new(0), &mut rng);
        }
        assert_eq!(s, before);
    }

    #[test]
    fn full_noise_always_fires() {
        let n = DepolarizingNoise {
            pauli_error_prob: 1.0,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        // After one guaranteed random Pauli on |0⟩, P(1) is 0 (Z) or 1 (X/Y).
        let mut hits = 0;
        for _ in 0..300 {
            let mut s = StateVector::new(1);
            n.apply(&mut s, Qubit::new(0), &mut rng);
            if s.prob_one(Qubit::new(0)) > 0.5 {
                hits += 1;
            }
        }
        // X or Y ⇒ flip: expect ≈ 2/3.
        assert!((hits as f64 / 300.0 - 2.0 / 3.0).abs() < 0.1);
    }

    #[test]
    fn relaxation_decays_excited_state() {
        let noise = RelaxationNoise {
            t1_ns: 1000.0,
            tphi_ns: 1e12,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        // P(survive 1000 ns in |1⟩) = e^{-1} ≈ 0.368.
        let mut survived = 0;
        const N: usize = 3000;
        for _ in 0..N {
            let mut s = StateVector::new(1);
            s.apply_gate1(Gate1::X, Qubit::new(0));
            noise.apply(&mut s, Qubit::new(0), 1000.0, &mut rng);
            if s.prob_one(Qubit::new(0)) > 0.5 {
                survived += 1;
            }
        }
        let f = survived as f64 / N as f64;
        assert!((f - (-1.0f64).exp()).abs() < 0.04, "survival {f}");
    }

    #[test]
    fn relaxation_leaves_ground_state_alone() {
        let noise = RelaxationNoise::paper();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut s = StateVector::new(1);
        for _ in 0..100 {
            noise.apply(&mut s, Qubit::new(0), 500.0, &mut rng);
        }
        assert!(s.prob_one(Qubit::new(0)) < 1e-12);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dephasing_kills_coherence_not_population() {
        // Strong pure dephasing on |+⟩: P(1) stays 1/2, but after many
        // random Z kicks the averaged X expectation vanishes. Check one
        // trajectory stays normalized with P(1) = 1/2.
        let noise = RelaxationNoise {
            t1_ns: 1e12,
            tphi_ns: 10.0,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut s = StateVector::new(1);
        s.apply_gate1(Gate1::H, Qubit::new(0));
        for _ in 0..50 {
            noise.apply(&mut s, Qubit::new(0), 100.0, &mut rng);
        }
        // Tolerance covers the residual 1/T1 = 1e-12 damping back-action.
        assert!((s.prob_one(Qubit::new(0)) - 0.5).abs() < 1e-6);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_lambda_limits() {
        let n = RelaxationNoise {
            t1_ns: 100.0,
            tphi_ns: 200.0,
        };
        assert_eq!(n.gamma(0.0), 0.0);
        assert!((n.gamma(100.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(n.gamma(1e9) > 0.999999);
        assert!(n.lambda(200.0) > n.lambda(100.0));
    }

    #[test]
    fn readout_error_statistics() {
        let e = ReadoutError { p01: 0.1, p10: 0.0 };
        let mut rng = SmallRng::seed_from_u64(2);
        let flips = (0..5000).filter(|_| e.apply(false, &mut rng)).count();
        assert!((flips as f64 / 5000.0 - 0.1).abs() < 0.02);
        assert!(e.apply(true, &mut rng)); // p10 = 0 never flips ones
    }
}
