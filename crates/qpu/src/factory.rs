//! Per-shot backend construction.
//!
//! Multi-shot experiments need a *fresh* QPU per shot — occupancy
//! tracking, the issue log, and the outcome PRNG are all per-execution
//! state. A factory captures the shot-invariant parameters once and
//! stamps out seeded backends; `quape-core`'s `ShotEngine` drives one
//! through its `QpuFactory` trait on every worker thread.

use crate::behavioral::{BehavioralQpu, MeasurementModel};
use quape_isa::OpTimings;

/// Stamps out seeded [`BehavioralQpu`] instances sharing one timing and
/// measurement model.
#[derive(Debug, Clone, PartialEq)]
pub struct BehavioralQpuFactory {
    /// Nominal operation durations.
    pub timings: OpTimings,
    /// Measurement-outcome model shared by every shot.
    pub model: MeasurementModel,
}

impl BehavioralQpuFactory {
    /// Captures the shot-invariant backend parameters.
    pub fn new(timings: OpTimings, model: MeasurementModel) -> Self {
        BehavioralQpuFactory { timings, model }
    }

    /// Builds the backend for one shot.
    pub fn create(&self, seed: u64) -> BehavioralQpu {
        BehavioralQpu::new(self.timings, self.model.clone(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_isa::{Gate1, QuantumOp, Qubit};

    #[test]
    fn each_shot_gets_independent_state() {
        let factory = BehavioralQpuFactory::new(
            OpTimings::paper(),
            MeasurementModel::Bernoulli { p_one: 0.5 },
        );
        let mut a = factory.create(1);
        let mut b = factory.create(1);
        a.apply(0, QuantumOp::Gate1(Gate1::X, Qubit::new(0)));
        assert_eq!(a.log().len(), 1);
        assert!(b.log().is_empty(), "shots must not share a log");
        b.apply(0, QuantumOp::Measure(Qubit::new(0)));
        let c = factory.create(1);
        assert!(c.log().is_empty());
    }

    #[test]
    fn same_seed_same_outcomes() {
        let factory = BehavioralQpuFactory::new(
            OpTimings::paper(),
            MeasurementModel::Bernoulli { p_one: 0.5 },
        );
        let outcomes = |seed: u64| -> Vec<bool> {
            let mut qpu = factory.create(seed);
            (0..32)
                .map(|i| {
                    qpu.apply(i * 1000, QuantumOp::Measure(Qubit::new(0)))
                        .expect("outcome")
                })
                .collect()
        };
        assert_eq!(outcomes(5), outcomes(5));
        assert_ne!(outcomes(5), outcomes(6));
    }
}
