//! The fault-tolerant fleet: capability-aware placement, shard failure
//! injection with re-routing, planned retirement, and work stealing.
//!
//! The router keeps a **fleet-level job registry** above the per-shard
//! servers: every accepted submission gets a fleet id, a cloned
//! [`JobRequest`] snapshot, and a [`FleetHandle`] that survives
//! re-routing. When a shard dies ([`Router::kill_shard`], driven by a
//! test-facing [`FaultPlan`]) or retires ([`Router::retire_shard`]),
//! non-terminal jobs are re-submitted from their snapshots to a
//! surviving capable shard — re-running from shot 0, which by the
//! engine's determinism yields an aggregate **bit-identical** to the
//! zero-failure run. Re-routing retries are bounded
//! ([`RetryPolicy`], exponential backoff); a job only turns terminal
//! [`JobError::ShardLost`] when no capable shard remains.
//!
//! Lock order: `fleet` (shard table) → `jobs` (registry); per-shard
//! server locks are strictly below both and are never held while either
//! is taken. Shard finish hooks call back into the registry with no
//! server locks held (see [`quape_server::JobServer::set_finish_hook`]).

use crate::profile::{JobRequirements, ShardProfile};
use crate::snapshot::{FleetSnapshot, ShardSnapshot, TenantStatsRow};
use quape_core::{BatchAggregate, MachineDescription};
use quape_obs::{ObsScope, Recorder, TraceKind};
use quape_server::{
    CacheStats, JobError, JobHandle, JobProgress, JobRequest, JobResult, JobServer, ServerConfig,
    ServingServer,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread;
use std::time::Duration;

/// How the router picks a shard for an incoming job, **after** the
/// capability filter has reduced the fleet to the capable candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Cyclic assignment over the capable candidates, ignoring load and
    /// content. The fairest baseline — and the cache-worst-case: every
    /// shard eventually compiles every program.
    #[default]
    RoundRobin,
    /// The capable shard with the smallest backlog of unexecuted shots
    /// ([`JobServer::backlog_shots`]); ties go to the lowest index.
    LeastLoadedShots,
    /// The capable shard determined by the request's compile-cache key
    /// ([`quape_server::JobSource::cache_key`]): resubmissions of the
    /// same program/config always land on the shard whose cache is
    /// already warm, partitioning the program set across the fleet.
    StickyByDigest,
}

/// Bounded re-routing policy for jobs displaced by a dead or draining
/// shard (and for submissions that race a shard's phase flip).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per job before giving up with [`JobError::ShardLost`].
    pub max_attempts: u32,
    /// Base backoff between attempts; doubles per attempt.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff: Duration::from_millis(1),
        }
    }
}

/// Background work-stealing configuration (see [`Router::steal_once`]).
#[derive(Debug, Clone, Copy)]
pub struct StealConfig {
    /// How often the stealer thread scans the fleet.
    pub interval: Duration,
    /// Minimum victim backlog (in shots) before stealing kicks in.
    pub min_backlog_shots: u64,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig {
            interval: Duration::from_millis(1),
            min_backlog_shots: 1,
        }
    }
}

/// Fleet sizing, placement policy and fault-tolerance knobs of a
/// [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of shards (min 1), each a full [`JobServer`] with its own
    /// compile cache and worker pool.
    pub shards: usize,
    /// The placement policy.
    pub placement: Placement,
    /// Per-shard worker-pool and cache sizing.
    pub shard: ServerConfig,
    /// Per-shard capability profiles, by shard index. Missing entries
    /// fall back to the shard's machine description
    /// ([`machines`](RouterConfig::machines), then the shared
    /// [`ServerConfig::machine`]), and finally to
    /// [`ShardProfile::unconstrained`].
    pub profiles: Vec<ShardProfile>,
    /// Per-shard machine descriptions, by shard index — the declarative
    /// way to stand up a heterogeneous fleet (one description per
    /// fridge, e.g. loaded from `machines/*.json` files). Each shard
    /// without an explicit profile derives one via
    /// [`ShardProfile::from_machine`]; missing entries fall back to the
    /// shared [`ServerConfig::machine`], then to unconstrained.
    pub machines: Vec<MachineDescription>,
    /// Re-routing retry policy for displaced jobs.
    pub retry: RetryPolicy,
    /// When set, a background thread steals whole queued jobs from the
    /// hottest backlog onto idle shards.
    pub steal: Option<StealConfig>,
    /// Trace/metrics recorder. The inert default ([`Recorder::off`])
    /// hands every shard a no-op scope; an enabled recorder collects
    /// per-shard scopes plus a fleet scope for placement, re-route,
    /// steal and admission events. Observation only — it never steers
    /// placement or scheduling.
    pub obs: Recorder,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: 2,
            placement: Placement::default(),
            shard: ServerConfig::default(),
            profiles: Vec::new(),
            machines: Vec::new(),
            retry: RetryPolicy::default(),
            steal: None,
            obs: Recorder::off(),
        }
    }
}

impl RouterConfig {
    /// A heterogeneous fleet declared entirely by machine descriptions:
    /// one shard per description, each shard's capability profile
    /// derived from its description.
    pub fn heterogeneous(machines: Vec<MachineDescription>) -> Self {
        RouterConfig {
            shards: machines.len(),
            machines,
            ..RouterConfig::default()
        }
    }
}

/// A submitted job plus the shard it was first placed on.
#[must_use = "dropping the routed job loses the only way to wait on or cancel it"]
#[derive(Debug)]
pub struct RoutedJob {
    /// Index of the shard the job was initially placed on (re-routing
    /// may move it; [`FleetHandle::shard`] tracks the current owner).
    pub shard: usize,
    /// The fleet-level job handle (progress, partials, wait, cancel) —
    /// valid across re-routing.
    pub handle: FleetHandle,
}

/// A finished job plus its outcome: the shard that finally executed it
/// and either its result or the terminal error that ended it.
#[derive(Debug, Clone)]
pub struct RoutedResult {
    /// Index of the shard that last owned the job.
    pub shard: usize,
    /// The job's outcome. `Err(JobError::ShardLost)` marks a job whose
    /// shard died with no capable survivor to take it over.
    pub result: Result<JobResult, JobError>,
}

/// One shard's availability, as seen by placement and stealing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// Serving and placeable.
    Up,
    /// Draining after [`Router::retire_shard`]: finishes what it has,
    /// accepts nothing new, never a placement candidate.
    Retiring,
    /// Killed by [`Router::kill_shard`]: workers joined, jobs swept.
    Down,
}

impl ShardStatus {
    /// Lowercase name used in snapshots and tables.
    pub fn name(self) -> &'static str {
        match self {
            ShardStatus::Up => "up",
            ShardStatus::Retiring => "retiring",
            ShardStatus::Down => "down",
        }
    }
}

/// A test-facing failure schedule: kill shard `victim` once
/// `after_submits` jobs have been accepted. Drive it from the submit
/// loop with [`fire_if_due`](FaultPlan::fire_if_due).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// The shard to kill.
    pub victim: usize,
    /// Fire after this many accepted submissions.
    pub after_submits: usize,
}

impl FaultPlan {
    /// Kills the victim iff `submitted` just reached the trigger point.
    /// Returns true when it fired.
    pub fn fire_if_due(&self, submitted: usize, router: &Router) -> bool {
        if submitted == self.after_submits {
            router.kill_shard(self.victim);
            true
        } else {
            false
        }
    }
}

/// Callback fired once per job when it turns terminal — with its fleet
/// id and final outcome, and with **no router or server locks held**
/// (an admission layer uses it to free budget and pump its queues).
pub type RouterFinishHook = Arc<dyn Fn(u64, &Result<JobResult, JobError>) + Send + Sync>;

struct Shard {
    serving: Option<ServingServer>,
    profile: ShardProfile,
    status: ShardStatus,
}

struct FleetState {
    shards: Vec<Shard>,
    /// Set by drain/shutdown before any shard is signalled: late
    /// cancelled partials then finalize as-is instead of re-routing.
    stopping: bool,
}

struct JobState {
    snapshot: JobRequest,
    requirements: JobRequirements,
    shard: usize,
    server_id: u64,
    handle: Option<JobHandle>,
    attempts: u32,
    user_cancelled: bool,
    /// True while a recovery/steal path owns the job's resubmission —
    /// at most one mover at a time.
    in_recovery: bool,
    terminal: Option<Result<JobResult, JobError>>,
}

#[derive(Default)]
struct JobTable {
    next_id: u64,
    jobs: HashMap<u64, JobState>,
    /// `(shard index, per-shard server id)` → fleet id, for routing a
    /// shard's finish-hook results back to the registry.
    by_server: HashMap<(usize, u64), u64>,
}

/// Fleet-scope telemetry handles, pre-registered at construction so the
/// placement/recovery paths never touch the registry mutex.
pub(crate) struct FleetObs {
    pub(crate) recorder: Recorder,
    pub(crate) scope: ObsScope,
    placed: quape_obs::Counter,
    rerouted: quape_obs::Counter,
    stolen: quape_obs::Counter,
}

impl FleetObs {
    fn new(recorder: Recorder) -> Self {
        let scope = recorder.fleet_scope();
        FleetObs {
            placed: scope.counter("router.jobs_placed"),
            rerouted: scope.counter("router.jobs_rerouted"),
            stolen: scope.counter("router.jobs_stolen"),
            scope,
            recorder,
        }
    }
}

pub(crate) struct RouterInner {
    placement: Placement,
    retry: RetryPolicy,
    rr: AtomicUsize,
    pub(crate) obs: FleetObs,
    /// Per-shard servers, immutable after construction (cheap `Arc`
    /// clones of each serving pool's server — valid even after the
    /// [`ServingServer`] itself is consumed by a kill or drain).
    servers: Vec<JobServer>,
    fleet: Mutex<FleetState>,
    jobs: Mutex<JobTable>,
    jobs_cond: Condvar,
    finish_hook: Mutex<Option<RouterFinishHook>>,
    steal_stop: Mutex<bool>,
    steal_cond: Condvar,
    recovered: AtomicU64,
    stolen: AtomicU64,
}

/// The fault-tolerant sharded front router. See the
/// [crate docs](crate).
pub struct Router {
    inner: Arc<RouterInner>,
    stealer: Option<thread::JoinHandle<()>>,
}

impl Router {
    /// Starts `cfg.shards` serving shards (their worker pools go live
    /// immediately). Each shard's profile resolves in precedence order:
    /// explicit `cfg.profiles[i]`, else derived from the machine
    /// description `cfg.machines[i]`, else from the shared
    /// `cfg.shard.machine`, else
    /// [`unconstrained`](ShardProfile::unconstrained). When `cfg.steal`
    /// is set, a background stealer thread starts too.
    pub fn new(cfg: RouterConfig) -> Self {
        let n = cfg.shards.max(1);
        let mut shards = Vec::with_capacity(n);
        let mut servers = Vec::with_capacity(n);
        for i in 0..n {
            let profile = cfg.profiles.get(i).copied().unwrap_or_else(|| {
                cfg.machines
                    .get(i)
                    .or(cfg.shard.machine.as_ref())
                    .map(ShardProfile::from_machine)
                    .unwrap_or_default()
            });
            let mut shard_cfg = cfg.shard.clone();
            // Packed-span feasibility: a shard's packer must never form
            // a combined program wider than the shard's own fridge, so
            // its cap is clipped to the profile's packable span.
            if let Some(packer) = shard_cfg.packer.as_mut() {
                packer.max_pack_qubits = packer.max_pack_qubits.min(profile.pack_span_limit());
            }
            // Every shard records into its own scope of the shared
            // recorder (off scopes when observability is off).
            shard_cfg.obs = cfg.obs.scope(i as u32);
            let serving = JobServer::serve(shard_cfg);
            servers.push(serving.server().clone());
            shards.push(Shard {
                serving: Some(serving),
                profile,
                status: ShardStatus::Up,
            });
        }
        let inner = Arc::new(RouterInner {
            placement: cfg.placement,
            retry: cfg.retry,
            rr: AtomicUsize::new(0),
            obs: FleetObs::new(cfg.obs),
            servers,
            fleet: Mutex::new(FleetState {
                shards,
                stopping: false,
            }),
            jobs: Mutex::new(JobTable::default()),
            jobs_cond: Condvar::new(),
            finish_hook: Mutex::new(None),
            steal_stop: Mutex::new(false),
            steal_cond: Condvar::new(),
            recovered: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        });
        // Each shard reports completions straight into the registry.
        // The hook holds a Weak so a leaked handle cannot keep the
        // whole fleet alive.
        for (i, server) in inner.servers.iter().enumerate() {
            let weak: Weak<RouterInner> = Arc::downgrade(&inner);
            server.set_finish_hook(Arc::new(move |result: &JobResult| {
                if let Some(inner) = weak.upgrade() {
                    inner.on_shard_result(i, result);
                }
            }));
        }
        let stealer = cfg.steal.map(|steal| {
            let inner = Arc::clone(&inner);
            thread::spawn(move || loop {
                {
                    let stop = inner.steal_stop.lock().expect("steal lock poisoned");
                    let (stop, _) = inner
                        .steal_cond
                        .wait_timeout_while(stop, steal.interval, |s| !*s)
                        .expect("steal lock poisoned");
                    if *stop {
                        return;
                    }
                }
                inner.steal_once(steal.min_backlog_shots);
            })
        });
        Router { inner, stealer }
    }

    /// Number of shards (including retired and dead ones — indices are
    /// stable for the router's lifetime).
    pub fn shard_count(&self) -> usize {
        self.inner.servers.len()
    }

    /// The placement policy in force.
    pub fn placement(&self) -> Placement {
        self.inner.placement
    }

    /// One shard's underlying server (stats, backlog) — readable even
    /// after the shard was killed or retired.
    pub fn shard(&self, index: usize) -> &JobServer {
        &self.inner.servers[index]
    }

    /// One shard's capability profile.
    pub fn shard_profile(&self, index: usize) -> ShardProfile {
        self.inner.lock_fleet().shards[index].profile
    }

    /// One shard's availability.
    pub fn shard_status(&self, index: usize) -> ShardStatus {
        self.inner.lock_fleet().shards[index].status
    }

    /// Jobs re-routed off a dead or retiring shard so far.
    pub fn recovered_jobs(&self) -> u64 {
        self.inner.recovered.load(Ordering::Relaxed)
    }

    /// Jobs moved by work stealing so far.
    pub fn stolen_jobs(&self) -> u64 {
        self.inner.stolen.load(Ordering::Relaxed)
    }

    /// The trace recorder the fleet records into
    /// ([`Recorder::off`] unless [`RouterConfig::obs`] enabled one).
    pub fn recorder(&self) -> &Recorder {
        &self.inner.obs.recorder
    }

    /// A merged point-in-time snapshot of the whole fleet: per-shard
    /// scheduler/cache/packer counters and metric scopes, folded tenant
    /// stats (sorted by tenant id), recovery/steal totals, and the
    /// fleet-scope metrics — one serde-renderable value with stable
    /// field and row order.
    pub fn fleet_snapshot(&self) -> FleetSnapshot {
        let statuses: Vec<ShardStatus> = {
            let fleet = self.inner.lock_fleet();
            fleet.shards.iter().map(|s| s.status).collect()
        };
        let shards = self
            .inner
            .servers
            .iter()
            .enumerate()
            .map(|(i, s)| ShardSnapshot {
                shard: i,
                status: statuses[i].name().to_string(),
                backlog_shots: s.backlog_shots(),
                pending_jobs: s.pending_jobs() as u64,
                cache: s.cache_stats(),
                packer: s.packer_stats(),
                metrics: self.inner.obs.recorder.scope(i as u32).metrics(),
            })
            .collect();
        let tenants = self
            .tenant_stats()
            .into_iter()
            .map(|(tenant, cache)| TenantStatsRow { tenant, cache })
            .collect();
        FleetSnapshot {
            shards,
            tenants,
            recovered_jobs: self.recovered_jobs(),
            stolen_jobs: self.stolen_jobs(),
            fleet_metrics: self.inner.obs.scope.metrics(),
            trace_events_dropped: self.inner.obs.recorder.dropped_events(),
        }
    }

    /// Installs (or replaces) the fleet-level job-completion callback.
    /// Install it before submitting anything the hook must observe.
    pub fn set_finish_hook(&self, hook: RouterFinishHook) {
        *self.inner.finish_hook.lock().expect("hook lock poisoned") = Some(hook);
    }

    /// Per-shard compile-cache counters, indexed by shard.
    pub fn cache_stats(&self) -> Vec<CacheStats> {
        self.inner.servers.iter().map(|s| s.cache_stats()).collect()
    }

    /// Per-tenant cache counters folded across all shards, sorted by
    /// tenant id.
    pub fn tenant_stats(&self) -> Vec<(String, CacheStats)> {
        let mut merged: Vec<(String, CacheStats)> = Vec::new();
        for server in &self.inner.servers {
            for (tenant, stats) in server.tenant_stats() {
                match merged.binary_search_by(|(t, _)| t.as_str().cmp(&tenant)) {
                    Ok(i) => merged[i].1.merge(&stats),
                    Err(i) => merged.insert(i, (tenant, stats)),
                }
            }
        }
        merged
    }

    /// Per-shard backlog of unexecuted shots, indexed by shard.
    pub fn backlog_shots(&self) -> Vec<u64> {
        self.inner
            .servers
            .iter()
            .map(|s| s.backlog_shots())
            .collect()
    }

    /// Places and submits a job; it starts executing on its shard
    /// immediately. The capability filter runs first: shards that
    /// cannot satisfy the job's [`JobRequirements`] are never
    /// candidates, whatever the placement policy says.
    ///
    /// # Errors
    ///
    /// [`JobError::NoCapableShard`] when no live shard satisfies the
    /// requirements; otherwise as [`JobServer::submit`] — parse/compile
    /// failures, zero shots, or a router that is draining.
    pub fn submit(&self, req: JobRequest) -> Result<RoutedJob, JobError> {
        self.inner.submit_routed(req)
    }

    /// Shared internals, for the in-crate admission layer (whose
    /// completion hook must be able to dispatch without owning the
    /// router).
    pub(crate) fn inner(&self) -> &Arc<RouterInner> {
        &self.inner
    }

    /// Kills shard `victim` as a fault injection: its workers stop
    /// claiming, join, and every non-terminal job it owned is re-routed
    /// to a surviving capable shard (re-run from shot 0 — aggregates
    /// stay bit-identical by determinism) or turns terminal
    /// [`JobError::ShardLost`]. Idempotent; killing the last capable
    /// shard strands its jobs as `ShardLost`.
    pub fn kill_shard(&self, victim: usize) {
        self.inner.kill_shard(victim);
    }

    /// Retires shard `index` as a planned drain: it stops being a
    /// placement candidate, its *unstarted* jobs are re-routed to
    /// capable peers immediately (when any exist), and whatever already
    /// started finishes in place — the final [`drain`](Router::drain)
    /// joins it like any other shard.
    pub fn retire_shard(&self, index: usize) {
        self.inner.retire_shard(index);
    }

    /// One work-stealing scan: if some idle shard and some hot shard
    /// (backlog ≥ `min_backlog_shots`) coexist, moves one whole queued,
    /// unstarted job from the hot one to the idle one — never splitting
    /// a job, so aggregates are untouched. Returns true when a job
    /// moved. (The background stealer calls this on its interval; tests
    /// call it directly for determinism.)
    pub fn steal_once(&self, min_backlog_shots: u64) -> bool {
        self.inner.steal_once(min_backlog_shots)
    }

    /// Stops accepting new jobs (fleet-wide, before any shard blocks),
    /// runs everything accepted so far to completion on every live
    /// shard, and returns every job's outcome ordered by fleet
    /// submission id.
    ///
    /// # Errors
    ///
    /// [`JobError::WorkerPanicked`] when any shard's worker panicked;
    /// per-job failures (e.g. [`JobError::ShardLost`]) are reported
    /// inside the vector, not here.
    pub fn drain(mut self) -> Result<Vec<RoutedResult>, JobError> {
        self.stop(false)
    }

    /// Stops accepting new jobs *and* claiming new shot quanta on every
    /// shard — the stop signal reaches the whole fleet before any shard
    /// is joined, so no shard keeps claiming while another winds down.
    /// Unfinished jobs finalize as cancelled prefix partials. Returns
    /// every job's outcome ordered by fleet submission id.
    ///
    /// # Errors
    ///
    /// As [`drain`](Router::drain).
    pub fn shutdown(mut self) -> Result<Vec<RoutedResult>, JobError> {
        self.stop(true)
    }

    fn stop(&mut self, hard: bool) -> Result<Vec<RoutedResult>, JobError> {
        self.stop_stealer();
        let servings: Vec<(usize, ServingServer)> = {
            let mut fleet = self.inner.lock_fleet();
            fleet.stopping = true;
            let servings: Vec<(usize, ServingServer)> = fleet
                .shards
                .iter_mut()
                .enumerate()
                .filter_map(|(i, s)| s.serving.take().map(|serving| (i, serving)))
                .collect();
            // Phase flips are non-blocking: every shard stops accepting
            // (and, on shutdown, claiming) before the first worker join.
            for (_, serving) in &servings {
                if hard {
                    serving.begin_shutdown();
                } else {
                    serving.begin_drain();
                }
            }
            servings
        };
        let mut panicked = false;
        for (_, serving) in servings {
            let joined = if hard {
                serving.shutdown()
            } else {
                serving.drain()
            };
            if joined.is_err() {
                panicked = true;
            }
        }
        if panicked {
            return Err(JobError::WorkerPanicked);
        }
        // Every shard is joined and every finish hook has fired; any
        // job still non-terminal was stranded mid-recovery by the stop.
        let results = {
            let mut table = self.inner.lock_jobs();
            let mut ids: Vec<u64> = table.jobs.keys().copied().collect();
            ids.sort_unstable();
            ids.iter()
                .map(|id| {
                    let job = table.jobs.get_mut(id).expect("job id just listed");
                    let result = job.terminal.get_or_insert(Err(JobError::ShardLost)).clone();
                    RoutedResult {
                        shard: job.shard,
                        result,
                    }
                })
                .collect()
        };
        self.inner.jobs_cond.notify_all();
        Ok(results)
    }

    fn stop_stealer(&mut self) {
        if let Some(handle) = self.stealer.take() {
            *self.inner.steal_stop.lock().expect("steal lock poisoned") = true;
            self.inner.steal_cond.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        // drain/shutdown consume self and already joined the stealer;
        // this only matters when a router is dropped without either.
        self.stop_stealer();
    }
}

/// A live fleet-level handle on one routed job. Clone freely; all
/// methods are safe from any thread and remain valid while the job is
/// re-routed across shards.
#[must_use = "dropping the handle loses the only way to wait on or cancel the job"]
#[derive(Clone)]
pub struct FleetHandle {
    inner: Arc<RouterInner>,
    id: u64,
}

impl std::fmt::Debug for FleetHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetHandle").field("id", &self.id).finish()
    }
}

impl FleetHandle {
    /// The job's fleet-assigned id (global submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The request's name.
    pub fn name(&self) -> String {
        self.inner.lock_jobs().jobs[&self.id].snapshot.name.clone()
    }

    /// The shard currently owning the job (its first placement until a
    /// re-route or steal moves it).
    pub fn shard(&self) -> usize {
        self.inner.lock_jobs().jobs[&self.id].shard
    }

    /// A point-in-time progress snapshot. Progress restarts from zero
    /// when a shard death re-routes the job (it re-runs from shot 0).
    pub fn progress(&self) -> JobProgress {
        let table = self.inner.lock_jobs();
        let job = &table.jobs[&self.id];
        match (&job.terminal, &job.handle) {
            (Some(Ok(r)), _) => JobProgress {
                shots_done: r.shots,
                shots_total: r.shots_requested,
                cancelled: r.cancelled,
                finished: true,
            },
            (Some(Err(_)), _) => JobProgress {
                shots_done: 0,
                shots_total: job.snapshot.shots,
                cancelled: true,
                finished: true,
            },
            (None, Some(handle)) => {
                let handle = handle.clone();
                drop(table);
                handle.progress()
            }
            (None, None) => JobProgress {
                shots_done: 0,
                shots_total: job.snapshot.shots,
                cancelled: job.user_cancelled,
                finished: false,
            },
        }
    }

    /// The partial aggregate over the job's contiguous completed shot
    /// prefix **on its current shard** (empty mid-re-route — the re-run
    /// starts over from shot 0). The final aggregate once terminal.
    pub fn partial_aggregate(&self) -> BatchAggregate {
        let table = self.inner.lock_jobs();
        let job = &table.jobs[&self.id];
        match (&job.terminal, &job.handle) {
            (Some(Ok(r)), _) => r.aggregate.clone(),
            (Some(Err(_)), _) | (None, None) => {
                BatchAggregate::from_summaries(job.snapshot.base_seed, &[])
            }
            (None, Some(handle)) => {
                let handle = handle.clone();
                drop(table);
                handle.partial_aggregate()
            }
        }
    }

    /// True once the job's outcome is available.
    pub fn is_finished(&self) -> bool {
        self.inner.lock_jobs().jobs[&self.id].terminal.is_some()
    }

    /// Cooperatively cancels the job wherever it currently runs — or
    /// wherever it lands next, if a re-route is in flight.
    pub fn cancel(&self) {
        let handle = {
            let mut table = self.inner.lock_jobs();
            let job = table.jobs.get_mut(&self.id).expect("registered job");
            job.user_cancelled = true;
            job.handle.clone()
        };
        if let Some(handle) = handle {
            handle.cancel();
        }
    }

    /// Blocks until the job's outcome is available.
    ///
    /// # Errors
    ///
    /// [`JobError::ShardLost`] when the job's shard died and no capable
    /// shard could take it over.
    pub fn wait(&self) -> Result<JobResult, JobError> {
        let table = self.inner.lock_jobs();
        let table = self
            .inner
            .jobs_cond
            .wait_while(table, |t| t.jobs[&self.id].terminal.is_none())
            .expect("jobs lock poisoned");
        table.jobs[&self.id]
            .terminal
            .clone()
            .expect("wait_while guarantees a terminal")
    }

    /// Blocks until the job's outcome is available or `timeout`
    /// elapses (`None` on timeout).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<JobResult, JobError>> {
        let table = self.inner.lock_jobs();
        let (table, _) = self
            .inner
            .jobs_cond
            .wait_timeout_while(table, timeout, |t| t.jobs[&self.id].terminal.is_none())
            .expect("jobs lock poisoned");
        table.jobs[&self.id].terminal.clone()
    }
}

impl RouterInner {
    /// Places, registers and submits a brand-new job, returning the
    /// fleet-level routed handle. `Router::submit` and the admission
    /// layer's dispatcher both land here.
    pub(crate) fn submit_routed(self: &Arc<Self>, req: JobRequest) -> Result<RoutedJob, JobError> {
        let (id, shard) = self.submit_new(req)?;
        Ok(RoutedJob {
            shard,
            handle: FleetHandle {
                inner: Arc::clone(self),
                id,
            },
        })
    }

    fn lock_fleet(&self) -> std::sync::MutexGuard<'_, FleetState> {
        self.fleet.lock().expect("fleet lock poisoned")
    }

    fn lock_jobs(&self) -> std::sync::MutexGuard<'_, JobTable> {
        self.jobs.lock().expect("jobs lock poisoned")
    }

    /// Picks a capable shard. `candidates` are `(shard index, backlog)`
    /// pairs, non-empty.
    fn place(&self, candidates: &[(usize, u64)], req: &mut JobRequest) -> usize {
        match self.placement {
            Placement::RoundRobin => {
                candidates[self.rr.fetch_add(1, Ordering::Relaxed) % candidates.len()].0
            }
            Placement::LeastLoadedShots => {
                candidates
                    .iter()
                    .min_by_key(|(_, backlog)| *backlog)
                    .expect("non-empty candidates")
                    .0
            }
            Placement::StickyByDigest => {
                let key = req
                    .precomputed_key
                    .unwrap_or_else(|| req.source.cache_key(&req.cfg));
                req.precomputed_key = Some(key);
                candidates[((key >> 64) as u64 % candidates.len() as u64) as usize].0
            }
        }
    }

    /// The capable live candidates, or the submit-time error when there
    /// are none.
    fn candidates(&self, req: &JobRequirements) -> Result<Vec<(usize, u64)>, JobError> {
        let fleet = self.lock_fleet();
        if fleet.stopping {
            return Err(JobError::NotAccepting);
        }
        let capable: Vec<(usize, u64)> = fleet
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.status == ShardStatus::Up && s.profile.can_run(req))
            .map(|(i, _)| (i, self.servers[i].backlog_shots()))
            .collect();
        if capable.is_empty() {
            return Err(JobError::NoCapableShard);
        }
        Ok(capable)
    }

    /// Places, registers and submits a brand-new job. Returns
    /// `(fleet id, shard)`.
    fn submit_new(&self, mut req: JobRequest) -> Result<(u64, usize), JobError> {
        let requirements = JobRequirements::of(&req);
        let mut attempt = 0u32;
        loop {
            let candidates = self.candidates(&requirements)?;
            let shard = self.place(&candidates, &mut req);
            // Snapshot before the shard mutates the request (it does
            // not today, but the snapshot is the re-route source of
            // truth and must stay submit-equivalent).
            let snapshot = req.clone();
            match self.servers[shard].submit(req) {
                Ok(handle) => {
                    let fleet_id = {
                        let mut table = self.lock_jobs();
                        let fleet_id = table.next_id;
                        table.next_id += 1;
                        table.by_server.insert((shard, handle.id()), fleet_id);
                        table.jobs.insert(
                            fleet_id,
                            JobState {
                                snapshot,
                                requirements,
                                shard,
                                server_id: handle.id(),
                                handle: Some(handle.clone()),
                                attempts: 0,
                                user_cancelled: false,
                                in_recovery: false,
                                terminal: None,
                            },
                        );
                        fleet_id
                    };
                    self.obs.placed.inc();
                    self.obs
                        .scope
                        .event(TraceKind::Placed, 0, fleet_id, shard as u64, handle.id());
                    // Close the hook-before-mapping race: a job so fast
                    // it finished before the mapping landed is folded in
                    // here (idempotent — the terminal check wins ties).
                    if handle.is_finished() {
                        self.on_shard_result(shard, &handle.wait());
                    }
                    // Close the submit-vs-kill race: a kill sweep that
                    // ran between our submit and the registration above
                    // never saw this job.
                    if self.lock_fleet().shards[shard].status == ShardStatus::Down {
                        self.resubmit_elsewhere(fleet_id);
                    }
                    return Ok((fleet_id, shard));
                }
                // The shard flipped to draining between the candidate
                // scan and the submit (a concurrent retire/kill):
                // bounded retry against the refreshed candidate set.
                Err(JobError::NotAccepting) => {
                    attempt += 1;
                    if attempt >= self.retry.max_attempts {
                        return Err(JobError::NotAccepting);
                    }
                    thread::sleep(self.retry.backoff * (1 << attempt.min(8)));
                    req = snapshot;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Routes one shard's finished result back to the fleet registry.
    /// Called by shard finish hooks with no server locks held.
    fn on_shard_result(&self, shard: usize, result: &JobResult) {
        // Fleet facts first (lock order: fleet → jobs).
        let (status, stopping) = {
            let fleet = self.lock_fleet();
            (fleet.shards[shard].status, fleet.stopping)
        };
        let mut table = self.lock_jobs();
        let Some(&fleet_id) = table.by_server.get(&(shard, result.id)) else {
            return; // Revoked (stolen/re-routed) or not yet mapped.
        };
        let job = table.jobs.get_mut(&fleet_id).expect("mapped job");
        if job.terminal.is_some() {
            return;
        }
        // A cancelled partial on a dead shard is not this job's fate —
        // the kill sweep re-runs it from scratch elsewhere. Everything
        // else (full completion anywhere, a user's cancel, a fleet
        // stop's finalization, a quantum panic on a live shard) is
        // terminal as-is.
        let rerouting =
            result.cancelled && status == ShardStatus::Down && !job.user_cancelled && !stopping;
        if rerouting {
            return;
        }
        job.terminal = Some(Ok(result.clone()));
        drop(table);
        self.notify_terminal(fleet_id, &Ok(result.clone()));
    }

    /// Wakes waiters and fires the router-level finish hook. Call with
    /// no router locks held.
    fn notify_terminal(&self, fleet_id: u64, outcome: &Result<JobResult, JobError>) {
        self.jobs_cond.notify_all();
        let hook = self.finish_hook.lock().expect("hook lock poisoned").clone();
        if let Some(hook) = hook {
            hook(fleet_id, outcome);
        }
    }

    /// Marks a job terminal (if it is not already) and notifies.
    fn set_terminal(&self, fleet_id: u64, outcome: Result<JobResult, JobError>) {
        {
            let mut table = self.lock_jobs();
            let job = table.jobs.get_mut(&fleet_id).expect("registered job");
            if job.terminal.is_some() {
                return;
            }
            job.terminal = Some(outcome.clone());
        }
        self.notify_terminal(fleet_id, &outcome);
    }

    fn kill_shard(&self, victim: usize) {
        let serving = {
            let mut fleet = self.lock_fleet();
            fleet.shards[victim].status = ShardStatus::Down;
            fleet.shards[victim].serving.take()
        };
        let Some(serving) = serving else {
            return; // Already killed, retired-and-drained, or stopping.
        };
        self.obs
            .scope
            .event(TraceKind::ShardDown, 0, 0, victim as u64, 0);
        // Join outside the fleet lock: the shard's workers stop
        // claiming, in-flight quanta finish, unfinished jobs finalize
        // as cancelled partials (whose hooks land in on_shard_result,
        // which leaves them non-terminal for the sweep below).
        serving.begin_shutdown();
        let _ = serving.shutdown();
        let stranded: Vec<u64> = {
            let table = self.lock_jobs();
            let mut ids: Vec<u64> = table
                .jobs
                .iter()
                .filter(|(_, j)| j.shard == victim && j.terminal.is_none() && !j.in_recovery)
                .map(|(id, _)| *id)
                .collect();
            ids.sort_unstable();
            ids
        };
        for fleet_id in stranded {
            self.resubmit_elsewhere(fleet_id);
        }
    }

    fn retire_shard(&self, index: usize) {
        let movable: Vec<u64> = {
            let mut fleet = self.lock_fleet();
            if fleet.shards[index].status != ShardStatus::Up {
                return;
            }
            fleet.shards[index].status = ShardStatus::Retiring;
            // Signal the drain while still non-placeable-atomically:
            // nothing new can land between the flip and the signal.
            if let Some(serving) = &fleet.shards[index].serving {
                serving.begin_drain();
            }
            drop(fleet);
            self.obs
                .scope
                .event(TraceKind::ShardRetiring, 0, 0, index as u64, 0);
            // Unstarted jobs need not wait for the drain — move them to
            // capable peers now. (Started jobs keep their progress and
            // finish in place.)
            let unstarted = self.servers[index].unstarted_jobs();
            let table = self.lock_jobs();
            unstarted
                .iter()
                .filter_map(|(sid, _)| table.by_server.get(&(index, *sid)).copied())
                .collect()
        };
        for fleet_id in movable {
            let revoked = {
                let table = self.lock_jobs();
                let job = &table.jobs[&fleet_id];
                if job.terminal.is_some() || job.in_recovery {
                    false
                } else {
                    let server_id = job.server_id;
                    drop(table);
                    self.servers[index].revoke_unstarted(server_id)
                }
            };
            if revoked {
                self.resubmit_elsewhere(fleet_id);
            }
        }
    }

    /// Re-submits a displaced job's snapshot to a surviving capable
    /// shard, with bounded retry + exponential backoff. Terminal
    /// [`JobError::ShardLost`] when no capable shard remains or the
    /// retries run out.
    fn resubmit_elsewhere(&self, fleet_id: u64) {
        let (mut req, requirements, old_shard) = {
            let mut table = self.lock_jobs();
            let job = table.jobs.get_mut(&fleet_id).expect("registered job");
            if job.terminal.is_some() || job.in_recovery {
                return;
            }
            job.in_recovery = true;
            job.handle = None;
            let old_key = (job.shard, job.server_id);
            let snapshot = (job.snapshot.clone(), job.requirements, job.shard);
            table.by_server.remove(&old_key);
            snapshot
        };
        self.recovered.fetch_add(1, Ordering::Relaxed);
        loop {
            let attempts = {
                let mut table = self.lock_jobs();
                let job = table.jobs.get_mut(&fleet_id).expect("registered job");
                job.attempts += 1;
                job.attempts
            };
            if attempts > self.retry.max_attempts {
                self.finish_recovery(fleet_id, Some(Err(JobError::ShardLost)));
                return;
            }
            let candidates = match self.candidates(&requirements) {
                Ok(c) => c,
                // No capable shard remains (or the fleet is stopping):
                // the job is lost, as documented.
                Err(_) => {
                    self.finish_recovery(fleet_id, Some(Err(JobError::ShardLost)));
                    return;
                }
            };
            let shard = self.place(&candidates, &mut req);
            match self.servers[shard].submit(req.clone()) {
                Ok(handle) => {
                    let user_cancelled = {
                        let mut table = self.lock_jobs();
                        table.by_server.insert((shard, handle.id()), fleet_id);
                        let job = table.jobs.get_mut(&fleet_id).expect("registered job");
                        job.shard = shard;
                        job.server_id = handle.id();
                        job.handle = Some(handle.clone());
                        job.in_recovery = false;
                        job.user_cancelled
                    };
                    self.obs.rerouted.inc();
                    self.obs
                        .scope
                        .event(TraceKind::Placed, 0, fleet_id, shard as u64, handle.id());
                    self.obs.scope.event(
                        TraceKind::ReRouted,
                        0,
                        fleet_id,
                        old_shard as u64,
                        shard as u64,
                    );
                    if user_cancelled {
                        // A cancel landed mid-re-route; honor it on the
                        // new shard (finalizes a cancelled partial).
                        handle.cancel();
                    }
                    if handle.is_finished() {
                        self.on_shard_result(shard, &handle.wait());
                    }
                    if self.lock_fleet().shards[shard].status == ShardStatus::Down {
                        // The new shard died while we were landing: go
                        // around again (the kill sweep skips us while
                        // in_recovery was set; it is clear now, so
                        // re-guard).
                        self.resubmit_elsewhere(fleet_id);
                    }
                    return;
                }
                Err(JobError::NotAccepting) => {
                    thread::sleep(self.retry.backoff * (1 << attempts.min(8)));
                }
                Err(e) => {
                    self.finish_recovery(fleet_id, Some(Err(e)));
                    return;
                }
            }
        }
    }

    /// Ends a recovery: clears the guard and (optionally) sets the
    /// terminal outcome.
    fn finish_recovery(&self, fleet_id: u64, outcome: Option<Result<JobResult, JobError>>) {
        {
            let mut table = self.lock_jobs();
            let job = table.jobs.get_mut(&fleet_id).expect("registered job");
            job.in_recovery = false;
        }
        if let Some(outcome) = outcome {
            self.set_terminal(fleet_id, outcome);
        }
    }

    /// One stealing scan; see [`Router::steal_once`].
    fn steal_once(&self, min_backlog_shots: u64) -> bool {
        // Pick thief and victim from a consistent fleet snapshot.
        let (thief, victim) = {
            let fleet = self.lock_fleet();
            if fleet.stopping {
                return false;
            }
            let mut thief: Option<(usize, u64)> = None;
            let mut victim: Option<(usize, u64)> = None;
            for (i, shard) in fleet.shards.iter().enumerate() {
                if shard.status != ShardStatus::Up {
                    continue;
                }
                let backlog = self.servers[i].backlog_shots();
                if backlog == 0 && thief.is_none() {
                    thief = Some((i, backlog));
                }
                if backlog >= min_backlog_shots && victim.map(|(_, b)| backlog > b).unwrap_or(true)
                {
                    victim = Some((i, backlog));
                }
            }
            match (thief, victim) {
                (Some((t, _)), Some((v, _))) if t != v => (t, v),
                _ => return false,
            }
        };
        let thief_profile = self.lock_fleet().shards[thief].profile;
        // Steal from the *back* of the victim's queue: the last-queued
        // job has waited least, so moving it disturbs FIFO fairness the
        // least while still relieving the backlog.
        let unstarted = self.servers[victim].unstarted_jobs();
        for (server_id, _shots) in unstarted.iter().rev() {
            let Some(fleet_id) = ({
                let table = self.lock_jobs();
                let id = table.by_server.get(&(victim, *server_id)).copied();
                id.filter(|id| {
                    let job = &table.jobs[id];
                    job.terminal.is_none()
                        && !job.in_recovery
                        && !job.user_cancelled
                        && thief_profile.can_run(&job.requirements)
                })
            }) else {
                continue;
            };
            // The revoke re-checks atomically on the victim server: a
            // worker that claimed the job in the meantime wins, and we
            // move on to the next candidate.
            if !self.servers[victim].revoke_unstarted(*server_id) {
                continue;
            }
            let req = {
                let mut table = self.lock_jobs();
                let job = table.jobs.get_mut(&fleet_id).expect("registered job");
                job.in_recovery = true;
                table.by_server.remove(&(victim, *server_id));
                table.jobs[&fleet_id].snapshot.clone()
            };
            match self.servers[thief].submit(req) {
                Ok(handle) => {
                    let user_cancelled = {
                        let mut table = self.lock_jobs();
                        table.by_server.insert((thief, handle.id()), fleet_id);
                        let job = table.jobs.get_mut(&fleet_id).expect("registered job");
                        job.shard = thief;
                        job.server_id = handle.id();
                        job.handle = Some(handle.clone());
                        job.in_recovery = false;
                        job.user_cancelled
                    };
                    self.obs.stolen.inc();
                    self.obs
                        .scope
                        .event(TraceKind::Placed, 0, fleet_id, thief as u64, handle.id());
                    self.obs.scope.event(
                        TraceKind::Stolen,
                        0,
                        fleet_id,
                        victim as u64,
                        thief as u64,
                    );
                    if user_cancelled {
                        handle.cancel();
                    }
                    if handle.is_finished() {
                        self.on_shard_result(thief, &handle.wait());
                    }
                    if self.lock_fleet().shards[thief].status == ShardStatus::Down {
                        self.resubmit_elsewhere(fleet_id);
                    }
                    self.stolen.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(_) => {
                    // The thief went away mid-steal; the standard
                    // recovery path re-places the revoked job.
                    self.finish_recovery(fleet_id, None);
                    self.resubmit_elsewhere(fleet_id);
                    return true;
                }
            }
        }
        false
    }
}
