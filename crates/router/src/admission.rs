//! Admission control: per-tenant shot budgets and deficit-round-robin
//! weighted-fair queueing in front of the fleet.
//!
//! A [`FrontDoor`] wraps a [`Router`] with the two defenses a shared
//! fleet needs against a hot tenant:
//!
//! * **Budgets**: each tenant may have at most
//!   [`tenant_budget_shots`](AdmissionConfig::tenant_budget_shots)
//!   shots admitted-but-unfinished; an over-budget submission is shed
//!   with [`JobError::OverBudget`], telling the client exactly how many
//!   of its in-flight shots must complete before an identical
//!   resubmission fits.
//! * **Weighted-fair dispatch**: admitted jobs queue per tenant and are
//!   dispatched to the router by **deficit round-robin** (DRR): each
//!   visit a tenant's deficit grows by
//!   [`quantum_shots`](AdmissionConfig::quantum_shots) × its weight,
//!   and it dispatches whole jobs while the deficit covers them. Whole
//!   jobs only, so aggregates are untouched. At most
//!   [`fleet_window_shots`](AdmissionConfig::fleet_window_shots) shots
//!   are dispatched-but-unfinished at a time — the window is what makes
//!   fairness real (without it the first flood would reach the shards
//!   unimpeded).
//!
//! **Starvation bound** (asserted by the test suite): between a job's
//! admission and its dispatch, any *other* tenant dispatches at most
//! `2 × (quantum_shots × weight + its largest job)` shots — a 1-shot
//! tenant's queue wait is bounded by the hog's quantum, not the hog's
//! backlog. The [`dispatch_log`](FrontDoor::dispatch_log) measures this
//! deterministically in dispatched shots.
//!
//! Dispatch is driven by submissions and completions only (no poller):
//! the router's finish hook frees the finished job's budget and window
//! and immediately pumps the queues again.

use crate::fleet::{FleetHandle, RoutedResult, Router, RouterConfig, RouterInner};
use quape_obs::{ObsScope, TraceKind};
use quape_server::{JobError, JobRequest, JobResult};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

/// Budgets, weights and window sizing of a [`FrontDoor`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Max shots one tenant may have admitted-but-unfinished; the
    /// budget over which submissions are shed with
    /// [`JobError::OverBudget`].
    pub tenant_budget_shots: u64,
    /// DRR quantum: shots of deficit a tenant earns per queue visit
    /// (scaled by its weight).
    pub quantum_shots: u64,
    /// Max shots dispatched-but-unfinished fleet-wide; the backpressure
    /// that keeps queued work under the front door's fairness control.
    pub fleet_window_shots: u64,
    /// Per-tenant DRR weights; tenants not listed weigh 1.
    pub weights: Vec<(String, u64)>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            tenant_budget_shots: 1024,
            quantum_shots: 64,
            fleet_window_shots: 256,
            weights: Vec::new(),
        }
    }
}

/// One dispatch, for offline fairness auditing: `seq` is the total
/// shots dispatched before it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchRecord {
    /// Cumulative shots dispatched before this job.
    pub seq: u64,
    /// Cumulative shots dispatched before this job was *admitted* —
    /// `seq - arrival_seq` is the job's queue wait in dispatched shots,
    /// the starvation-bound metric.
    pub arrival_seq: u64,
    /// The dispatching tenant (`""` = unattributed).
    pub tenant: String,
    /// The job's shots.
    pub shots: u64,
}

struct TicketInner {
    outcome: Option<Result<FleetHandle, JobError>>,
    dispatch_seq: Option<u64>,
}

type Ticket = (Mutex<TicketInner>, Condvar);

/// An admitted (but possibly still queued) job. The fleet handle
/// materialises when DRR dispatches it.
#[must_use = "dropping the admitted job loses the only way to reach its handle"]
pub struct AdmittedJob {
    tenant: String,
    shots: u64,
    arrival_seq: u64,
    ticket: Arc<Ticket>,
}

impl std::fmt::Debug for AdmittedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmittedJob")
            .field("tenant", &self.tenant)
            .field("shots", &self.shots)
            .finish()
    }
}

impl AdmittedJob {
    /// The tenant the job was accounted to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The job's shots.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Total shots dispatched fleet-wide before this job was admitted —
    /// compare with [`dispatch_seq`](AdmittedJob::dispatch_seq) for the
    /// job's queue wait in shots.
    pub fn arrival_seq(&self) -> u64 {
        self.arrival_seq
    }

    /// Total shots dispatched before this job's own dispatch (`None`
    /// while still queued).
    pub fn dispatch_seq(&self) -> Option<u64> {
        self.ticket.0.lock().expect("ticket poisoned").dispatch_seq
    }

    /// Blocks until the job is dispatched and returns its fleet handle.
    ///
    /// # Errors
    ///
    /// The router's submit-time error when dispatch failed (e.g.
    /// [`JobError::NoCapableShard`]).
    pub fn handle(&self) -> Result<FleetHandle, JobError> {
        let inner = self.ticket.0.lock().expect("ticket poisoned");
        let inner = self
            .ticket
            .1
            .wait_while(inner, |t| t.outcome.is_none())
            .expect("ticket poisoned");
        inner
            .outcome
            .clone()
            .expect("wait_while guarantees outcome")
    }

    /// Blocks through dispatch *and* execution for the final result.
    ///
    /// # Errors
    ///
    /// As [`handle`](AdmittedJob::handle), plus terminal execution
    /// errors like [`JobError::ShardLost`].
    pub fn wait(&self) -> Result<JobResult, JobError> {
        self.handle()?.wait()
    }
}

struct Pending {
    req: JobRequest,
    tenant: String,
    shots: u64,
    arrival_seq: u64,
    ticket: Arc<Ticket>,
}

struct TenantQueue {
    tenant: String,
    weight: u64,
    deficit: u64,
    queue: VecDeque<Pending>,
}

#[derive(Default)]
struct FrontState {
    queues: Vec<TenantQueue>,
    drr_cursor: usize,
    /// Admitted-but-unfinished shots per tenant (the budget metric).
    inflight: HashMap<String, u64>,
    /// Dispatched-but-unfinished shots fleet-wide (the window metric).
    window_used: u64,
    /// Fleet job id → (tenant, shots), for freeing budget/window on
    /// completion.
    dispatched: HashMap<u64, (String, u64)>,
    /// Fleet job ids whose completion hook beat the dispatch
    /// bookkeeping (instant jobs); settled when the dispatcher lands.
    orphans: HashSet<u64>,
    /// Re-entrancy guard: one pump at a time; late arrivals set
    /// `repump` instead of recursing.
    pumping: bool,
    repump: bool,
    dispatch_seq: u64,
    shed: u64,
    log: Vec<DispatchRecord>,
    draining: bool,
}

/// Shared by the front door, the router's finish hook, and every
/// ticket — the part of the admission layer that must outlive `self`
/// borrows. Holds the fleet weakly: the `Router` (owned by the
/// [`FrontDoor`]) is what keeps the shards alive.
/// Fleet-scope admission telemetry, pre-registered at construction.
struct FrontObs {
    scope: ObsScope,
    admitted: quape_obs::Counter,
    shed: quape_obs::Counter,
    dispatched: quape_obs::Counter,
    drr_rounds: quape_obs::Counter,
    /// Jobs admitted but not yet handed to the router (live depth of
    /// the DRR queues, across all tenants).
    queue_depth: quape_obs::Gauge,
}

impl FrontObs {
    fn new(scope: ObsScope) -> Self {
        FrontObs {
            admitted: scope.counter("front.jobs_admitted"),
            shed: scope.counter("front.jobs_shed"),
            dispatched: scope.counter("front.jobs_dispatched"),
            drr_rounds: scope.counter("front.drr_rounds"),
            queue_depth: scope.gauge("front.queue_depth"),
            scope,
        }
    }
}

struct FrontCore {
    cfg: AdmissionConfig,
    fleet: Weak<RouterInner>,
    state: Mutex<FrontState>,
    idle: Condvar,
    obs: FrontObs,
}

impl FrontCore {
    fn lock(&self) -> std::sync::MutexGuard<'_, FrontState> {
        self.state.lock().expect("front lock poisoned")
    }

    /// Completion callback: frees the job's budget + window and pumps.
    fn on_finish(&self, fleet_id: u64) {
        {
            let mut st = self.lock();
            match st.dispatched.remove(&fleet_id) {
                Some((tenant, shots)) => {
                    st.window_used -= shots;
                    if let Some(inflight) = st.inflight.get_mut(&tenant) {
                        *inflight -= shots;
                    }
                }
                None => {
                    st.orphans.insert(fleet_id);
                    return;
                }
            }
        }
        self.idle.notify_all();
        self.pump();
    }

    /// Plans the next DRR batch under the lock. Deficits, the window
    /// and the log are updated here, so the fairness order is fixed
    /// before any (slow, compiling) router submit runs.
    fn plan(&self, st: &mut FrontState) -> Vec<(Pending, u64)> {
        let batch = self.plan_rounds(st);
        if !batch.is_empty() {
            self.obs.drr_rounds.inc();
            self.obs.scope.event(
                TraceKind::DrrRound,
                0,
                0,
                batch.len() as u64,
                batch.iter().map(|(p, _)| p.shots).sum(),
            );
        }
        batch
    }

    fn plan_rounds(&self, st: &mut FrontState) -> Vec<(Pending, u64)> {
        let mut batch = Vec::new();
        let n = st.queues.len();
        if n == 0 {
            return batch;
        }
        loop {
            let mut progressed = false;
            let mut window_blocked = false;
            let mut deficit_starved = false;
            for _ in 0..n {
                let qi = st.drr_cursor % n;
                // Window full: stop planning *without* granting this
                // queue a quantum or advancing the cursor — the next
                // pump (a completion freed space) resumes exactly here,
                // so a hot tenant cannot re-earn deficit by merely
                // being revisited.
                if st.window_used >= self.cfg.fleet_window_shots {
                    return batch;
                }
                if st.queues[qi].queue.is_empty() {
                    // Standard DRR: an empty queue forfeits its deficit
                    // (saving it would let an idle tenant burst later).
                    st.queues[qi].deficit = 0;
                    st.drr_cursor += 1;
                    continue;
                }
                st.queues[qi].deficit = st.queues[qi].deficit.saturating_add(
                    self.cfg
                        .quantum_shots
                        .max(1)
                        .saturating_mul(st.queues[qi].weight),
                );
                while let Some(front) = st.queues[qi].queue.front() {
                    if front.shots > st.queues[qi].deficit {
                        deficit_starved = true;
                        break;
                    }
                    // A job larger than the whole window may only go
                    // out alone; anything else waits for window space.
                    // Keep the deficit and *advance the cursor*: other
                    // tenants must get their turn first when space
                    // frees up.
                    if st.window_used + front.shots > self.cfg.fleet_window_shots
                        && st.window_used > 0
                    {
                        window_blocked = true;
                        break;
                    }
                    let pending = st.queues[qi].queue.pop_front().expect("front exists");
                    self.obs.queue_depth.add(-1);
                    st.queues[qi].deficit -= pending.shots;
                    st.window_used += pending.shots;
                    let seq = st.dispatch_seq;
                    st.dispatch_seq += pending.shots;
                    st.log.push(DispatchRecord {
                        seq,
                        arrival_seq: pending.arrival_seq,
                        tenant: pending.tenant.clone(),
                        shots: pending.shots,
                    });
                    batch.push((pending, seq));
                    progressed = true;
                }
                st.drr_cursor += 1;
            }
            if progressed {
                continue;
            }
            // Nothing moved this round. If some head job is only
            // waiting on its *deficit* (not the window), keep cycling:
            // deficits grow each round and the head will fit — this is
            // DRR's work-conserving virtual time, and returning early
            // here would strand the fleet with no future pump to grow
            // them. A window block instead returns: the completion that
            // frees space re-pumps.
            if window_blocked || !deficit_starved {
                return batch;
            }
        }
    }

    /// Dispatches planned jobs to the router **with the front lock
    /// released**: the router's finish hook takes the front lock, and
    /// an instantly-finishing job fires it on this very thread.
    fn pump(&self) {
        {
            let mut st = self.lock();
            if st.pumping {
                st.repump = true;
                return;
            }
            st.pumping = true;
        }
        loop {
            let batch = {
                let mut st = self.lock();
                st.repump = false;
                let batch = self.plan(&mut st);
                if batch.is_empty() {
                    if st.repump {
                        continue;
                    }
                    st.pumping = false;
                    return;
                }
                batch
            };
            for (pending, seq) in batch {
                let submitted = self
                    .fleet
                    .upgrade()
                    .ok_or(JobError::NotAccepting)
                    .and_then(|fleet| fleet.submit_routed(pending.req));
                let outcome = match submitted {
                    Ok(routed) => {
                        self.obs.dispatched.inc();
                        self.obs.scope.event_tenant(
                            TraceKind::Dispatched,
                            0,
                            routed.handle.id(),
                            seq,
                            pending.shots,
                            &pending.tenant,
                        );
                        let mut st = self.lock();
                        if st.orphans.remove(&routed.handle.id()) {
                            // Finished before we got here: free budget
                            // and window immediately.
                            st.window_used -= pending.shots;
                            if let Some(inflight) = st.inflight.get_mut(&pending.tenant) {
                                *inflight -= pending.shots;
                            }
                        } else {
                            st.dispatched.insert(
                                routed.handle.id(),
                                (pending.tenant.clone(), pending.shots),
                            );
                        }
                        Ok(routed.handle)
                    }
                    Err(e) => {
                        let mut st = self.lock();
                        st.window_used -= pending.shots;
                        if let Some(inflight) = st.inflight.get_mut(&pending.tenant) {
                            *inflight -= pending.shots;
                        }
                        Err(e)
                    }
                };
                let mut ticket = pending.ticket.0.lock().expect("ticket poisoned");
                ticket.outcome = Some(outcome);
                ticket.dispatch_seq = Some(seq);
                drop(ticket);
                pending.ticket.1.notify_all();
            }
            self.idle.notify_all();
            // Go around: completions during the dispatch may have freed
            // window for the next batch (and set `repump`).
        }
    }
}

/// The admission-controlled front of a fleet: per-tenant shot
/// budgets plus deficit-round-robin weighted-fair queueing over a
/// fleet-wide dispatch window.
pub struct FrontDoor {
    router: Router,
    core: Arc<FrontCore>,
}

impl FrontDoor {
    /// Starts a router (see [`Router::new`]) behind an admission layer.
    pub fn new(router_cfg: RouterConfig, cfg: AdmissionConfig) -> Self {
        let router = Router::new(router_cfg);
        let core = Arc::new(FrontCore {
            cfg,
            fleet: Arc::downgrade(router.inner()),
            state: Mutex::new(FrontState::default()),
            idle: Condvar::new(),
            obs: FrontObs::new(router.recorder().fleet_scope()),
        });
        let hook_core = Arc::clone(&core);
        router.set_finish_hook(Arc::new(move |fleet_id, _outcome| {
            hook_core.on_finish(fleet_id);
        }));
        FrontDoor { router, core }
    }

    /// The fleet behind the door (stats, fault injection).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Jobs shed with [`JobError::OverBudget`] so far.
    pub fn shed_count(&self) -> u64 {
        self.core.lock().shed
    }

    /// One tenant's admitted-but-unfinished shots.
    pub fn inflight_shots(&self, tenant: &str) -> u64 {
        self.core.lock().inflight.get(tenant).copied().unwrap_or(0)
    }

    /// The dispatch log so far (cloned; for fairness auditing).
    pub fn dispatch_log(&self) -> Vec<DispatchRecord> {
        self.core.lock().log.clone()
    }

    /// Admits or sheds a submission. Admission is immediate (the budget
    /// check); dispatch to the fleet happens when DRR reaches the job.
    /// Requests without a tenant share the `""` bucket.
    ///
    /// # Errors
    ///
    /// [`JobError::OverBudget`] when the tenant's admitted-but-
    /// unfinished shots plus this job would exceed its budget;
    /// [`JobError::EmptyJob`] for zero shots;
    /// [`JobError::NotAccepting`] once draining began.
    pub fn submit(&self, req: JobRequest) -> Result<AdmittedJob, JobError> {
        if req.shots == 0 {
            return Err(JobError::EmptyJob);
        }
        let tenant = req.tenant.clone().unwrap_or_default();
        let shots = req.shots;
        let admitted = {
            let mut st = self.core.lock();
            if st.draining {
                return Err(JobError::NotAccepting);
            }
            let inflight = st.inflight.get(&tenant).copied().unwrap_or(0);
            if inflight + shots > self.core.cfg.tenant_budget_shots {
                st.shed += 1;
                let retry_after_shots = inflight + shots - self.core.cfg.tenant_budget_shots;
                self.core.obs.shed.inc();
                self.core.obs.scope.event_tenant(
                    TraceKind::Shed,
                    0,
                    0,
                    retry_after_shots,
                    shots,
                    &tenant,
                );
                return Err(JobError::OverBudget { retry_after_shots });
            }
            *st.inflight.entry(tenant.clone()).or_insert(0) += shots;
            let ticket: Arc<Ticket> = Arc::new((
                Mutex::new(TicketInner {
                    outcome: None,
                    dispatch_seq: None,
                }),
                Condvar::new(),
            ));
            let arrival_seq = st.dispatch_seq;
            let weight = self
                .core
                .cfg
                .weights
                .iter()
                .find(|(t, _)| *t == tenant)
                .map(|(_, w)| (*w).max(1))
                .unwrap_or(1);
            let qi = match st.queues.iter().position(|q| q.tenant == tenant) {
                Some(qi) => qi,
                None => {
                    st.queues.push(TenantQueue {
                        tenant: tenant.clone(),
                        weight,
                        deficit: 0,
                        queue: VecDeque::new(),
                    });
                    st.queues.len() - 1
                }
            };
            st.queues[qi].queue.push_back(Pending {
                req,
                tenant: tenant.clone(),
                shots,
                arrival_seq,
                ticket: Arc::clone(&ticket),
            });
            self.core.obs.queue_depth.add(1);
            // Emit under the front lock so the admitted event's ring
            // position precedes this job's dispatch.
            self.core.obs.admitted.inc();
            self.core.obs.scope.event_tenant(
                TraceKind::Admitted,
                0,
                0,
                arrival_seq,
                shots,
                &tenant,
            );
            AdmittedJob {
                tenant,
                shots,
                arrival_seq,
                ticket,
            }
        };
        self.core.pump();
        Ok(admitted)
    }

    /// Stops admitting, dispatches every queued job as the window frees
    /// up, then drains the fleet. Results are the router's (see
    /// [`Router::drain`]), ordered by fleet submission id.
    ///
    /// # Errors
    ///
    /// As [`Router::drain`].
    pub fn drain(self) -> Result<Vec<RoutedResult>, JobError> {
        self.core.lock().draining = true;
        loop {
            self.core.pump();
            let st = self.core.lock();
            if st.queues.iter().all(|q| q.queue.is_empty()) {
                break;
            }
            // Completions notify `idle`; the timeout is a backstop, not
            // the mechanism.
            let _ = self
                .core
                .idle
                .wait_timeout(st, Duration::from_millis(10))
                .expect("front lock poisoned");
        }
        self.router.drain()
    }
}
