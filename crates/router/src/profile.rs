//! Per-shard capability descriptors and the job-side requirements they
//! are matched against.
//!
//! HiMA-style fleets are heterogeneous: control units differ in qubit
//! capacity, readout multiplexing geometry, demodulation resources and
//! supported execution modes. A [`ShardProfile`] is the router-visible
//! summary of one shard's hardware, derived from the shard's
//! [`QuapeConfig`] (the same struct a job compiles against); a
//! [`JobRequirements`] is the matching summary of one request, derived
//! without assembling it. [`ShardProfile::can_run`] is the capability
//! filter [`Router::submit`](crate::Router::submit) applies before any
//! placement policy sees the candidate list.

use quape_core::{ChannelLayout, MachineDescription, QuapeConfig, StepMode};
use quape_isa::scan_qubit_count;
use quape_server::{JobRequest, JobSource};

/// A bit-set of [`StepMode`]s a shard supports.
///
/// Profiles for older control stacks can rule out
/// [`StepMode::Lowered`] (the pre-decoded fast path needs firmware
/// support) while still serving cycle-accurate jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepModeSet {
    bits: u8,
}

impl StepModeSet {
    fn bit(mode: StepMode) -> u8 {
        match mode {
            StepMode::Cycle => 1,
            StepMode::EventDriven => 2,
            StepMode::Lowered => 4,
        }
    }

    /// Every step mode (the default).
    pub fn all() -> Self {
        StepModeSet { bits: 7 }
    }

    /// Exactly the given modes.
    pub fn only(modes: &[StepMode]) -> Self {
        StepModeSet {
            bits: modes.iter().fold(0, |acc, &m| acc | Self::bit(m)),
        }
    }

    /// True when `mode` is in the set.
    pub fn supports(self, mode: StepMode) -> bool {
        self.bits & Self::bit(mode) != 0
    }
}

impl Default for StepModeSet {
    fn default() -> Self {
        StepModeSet::all()
    }
}

/// What one shard's hardware can run: the capability descriptor the
/// router's placement filter checks before any policy applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardProfile {
    /// Largest qubit count the shard's channel map can address.
    pub max_qubits: u16,
    /// Readout multiplexing: `None` = a dedicated line per qubit (any
    /// job fits); `Some(r)` = `r` shared readout lines, so a job that
    /// *requires* more lines than that (or, unmultiplexed, more qubits
    /// than lines) does not fit.
    pub readout_lines: Option<u16>,
    /// DAQ demodulation servers available per channel.
    pub demod_slots: usize,
    /// Execution modes the shard's firmware supports.
    pub step_modes: StepModeSet,
}

impl ShardProfile {
    /// A profile that accepts every job — the default for shards whose
    /// deployment declares no constraints.
    pub fn unconstrained() -> Self {
        ShardProfile {
            max_qubits: u16::MAX,
            readout_lines: None,
            demod_slots: usize::MAX,
            step_modes: StepModeSet::all(),
        }
    }

    /// Derives the profile from the shard's own machine configuration —
    /// the deployment-time [`QuapeConfig`] describing its fridge:
    /// [`num_qubits`](QuapeConfig::num_qubits) caps addressable qubits
    /// (`None` = unconstrained), [`readout_lines`](QuapeConfig::readout_lines)
    /// and [`daq_demod_slots`](QuapeConfig::daq_demod_slots) carry over
    /// verbatim, and every step mode is assumed supported (narrow with
    /// [`step_modes`](ShardProfile::step_modes) for stacks without the
    /// lowered fast path).
    pub fn from_config(cfg: &QuapeConfig) -> Self {
        ShardProfile {
            max_qubits: cfg.num_qubits.unwrap_or(u16::MAX),
            readout_lines: cfg.readout_lines,
            demod_slots: cfg.daq_demod_slots,
            step_modes: StepModeSet::all(),
        }
    }

    /// Derives the profile from a declarative [`MachineDescription`] —
    /// the same mapping as [`from_config`](ShardProfile::from_config),
    /// read off the description's channel layout and DAQ geometry
    /// without lowering it.
    pub fn from_machine(machine: &MachineDescription) -> Self {
        let (qubits, readout_lines) = match machine.channels {
            ChannelLayout::Linear { qubits } => (qubits, None),
            ChannelLayout::Multiplexed {
                qubits,
                readout_lines,
            } => (qubits, Some(readout_lines)),
        };
        ShardProfile {
            max_qubits: qubits.unwrap_or(u16::MAX),
            readout_lines,
            demod_slots: machine.daq.demod_slots,
            step_modes: StepModeSet::all(),
        }
    }

    /// The capability filter: true when this shard can execute a job
    /// with the given requirements. Qubits must fit the channel map,
    /// the step mode must be supported, the job's demod depth must not
    /// exceed the shard's, and the readout geometries must be
    /// compatible (see [`JobRequirements::readout_lines`]).
    pub fn can_run(&self, req: &JobRequirements) -> bool {
        if req.qubits > self.max_qubits {
            return false;
        }
        if !self.step_modes.supports(req.step_mode) {
            return false;
        }
        if req.demod_slots > self.demod_slots {
            return false;
        }
        match (req.readout_lines, self.readout_lines) {
            // Shard gives every qubit its own line: any geometry fits.
            (_, None) => true,
            // Job asks for r multiplexed lines: the shard must have them.
            (Some(r), Some(have)) => r <= have,
            // Job assumes a dedicated line per qubit: the shard's shared
            // lines must cover every qubit.
            (None, Some(have)) => req.qubits <= have,
        }
    }

    /// Packed-span feasibility: true when this shard can execute a
    /// *combined* multiprogrammed job whose members' relocated regions
    /// sum to `packed_span` qubits. The machine sees one program
    /// spanning the whole packed region — so the member's requirements
    /// are widened to that footprint before the ordinary
    /// [`can_run`](ShardProfile::can_run) filter applies. A span that
    /// fits each member solo can still fail here; that is the point.
    pub fn can_pack(&self, packed_span: u16, member: &JobRequirements) -> bool {
        self.can_run(&JobRequirements {
            qubits: packed_span,
            ..*member
        })
    }

    /// The largest packed qubit span this shard can host — what a
    /// router wires into each shard's
    /// [`PackerConfig::max_pack_qubits`](quape_server::PackerConfig::max_pack_qubits)
    /// so a shard never forms a pack its own fridge cannot load.
    pub fn pack_span_limit(&self) -> u16 {
        match self.readout_lines {
            // Dedicated-line members: every packed qubit needs a line.
            Some(lines) => self.max_qubits.min(lines),
            None => self.max_qubits,
        }
    }
}

impl Default for ShardProfile {
    fn default() -> Self {
        ShardProfile::unconstrained()
    }
}

/// What one job needs from a shard, derived from its [`JobRequest`]
/// without assembling the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRequirements {
    /// Qubits the job addresses: the request's explicit
    /// [`num_qubits`](QuapeConfig::num_qubits) when set, else the
    /// program's own span ([`Program::num_qubits`](quape_isa::Program::num_qubits)
    /// for pre-built programs, a lexical
    /// [`scan_qubit_count`] for wire text).
    pub qubits: u16,
    /// Readout lines the job's config asks to multiplex onto (`None` =
    /// a dedicated line per qubit).
    pub readout_lines: Option<u16>,
    /// Demod servers the job's config assumes per channel.
    pub demod_slots: usize,
    /// The execution mode the job requested.
    pub step_mode: StepMode,
}

impl JobRequirements {
    /// Derives the requirements of a request. Text sources are scanned
    /// lexically (never assembled — capability filtering must stay far
    /// cheaper than a compile-cache hit).
    pub fn of(req: &JobRequest) -> Self {
        let span = match &req.source {
            JobSource::Text(text) => scan_qubit_count(text),
            JobSource::Program(p) => p.num_qubits(),
        };
        JobRequirements {
            qubits: req.cfg.num_qubits.unwrap_or(span).max(span),
            readout_lines: req.cfg.readout_lines,
            demod_slots: req.cfg.daq_demod_slots,
            step_mode: req.step_mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(qubits: u16) -> JobRequirements {
        JobRequirements {
            qubits,
            readout_lines: None,
            demod_slots: 1,
            step_mode: StepMode::EventDriven,
        }
    }

    #[test]
    fn unconstrained_accepts_everything() {
        let p = ShardProfile::unconstrained();
        assert!(p.can_run(&req(u16::MAX)));
        assert!(p.can_run(&JobRequirements {
            qubits: 3,
            readout_lines: Some(100),
            demod_slots: usize::MAX,
            step_mode: StepMode::Lowered,
        }));
    }

    #[test]
    fn qubit_cap_filters() {
        let p = ShardProfile {
            max_qubits: 8,
            ..ShardProfile::unconstrained()
        };
        assert!(p.can_run(&req(8)));
        assert!(!p.can_run(&req(9)));
    }

    #[test]
    fn readout_geometry_matches() {
        let shared4 = ShardProfile {
            readout_lines: Some(4),
            ..ShardProfile::unconstrained()
        };
        // Multiplexed job: needs its line count.
        assert!(shared4.can_run(&JobRequirements {
            readout_lines: Some(4),
            ..req(10)
        }));
        assert!(!shared4.can_run(&JobRequirements {
            readout_lines: Some(5),
            ..req(10)
        }));
        // Dedicated-line job: every qubit needs a line.
        assert!(shared4.can_run(&req(4)));
        assert!(!shared4.can_run(&req(5)));
    }

    #[test]
    fn step_mode_set_round_trips() {
        let s = StepModeSet::only(&[StepMode::Cycle, StepMode::EventDriven]);
        assert!(s.supports(StepMode::Cycle));
        assert!(s.supports(StepMode::EventDriven));
        assert!(!s.supports(StepMode::Lowered));
        let p = ShardProfile {
            step_modes: s,
            ..ShardProfile::unconstrained()
        };
        assert!(!p.can_run(&JobRequirements {
            step_mode: StepMode::Lowered,
            ..req(1)
        }));
    }

    #[test]
    fn packed_span_widens_the_feasibility_check() {
        let p = ShardProfile {
            max_qubits: 10,
            ..ShardProfile::unconstrained()
        };
        let member = req(4);
        // Each member fits solo, and so does a 2-pack…
        assert!(p.can_run(&member));
        assert!(p.can_pack(8, &member));
        // …but a 3-pack's combined span does not.
        assert!(!p.can_pack(12, &member));
    }

    #[test]
    fn pack_span_limit_respects_readout_lines() {
        let p = ShardProfile {
            max_qubits: 32,
            readout_lines: Some(6),
            ..ShardProfile::unconstrained()
        };
        // Dedicated-line members need a line per packed qubit.
        assert_eq!(p.pack_span_limit(), 6);
        assert_eq!(
            ShardProfile {
                max_qubits: 32,
                ..ShardProfile::unconstrained()
            }
            .pack_span_limit(),
            32
        );
    }

    #[test]
    fn from_config_carries_the_fields() {
        let cfg = QuapeConfig::superscalar(4)
            .with_num_qubits(6)
            .with_readout_lines(3)
            .with_demod_slots(2);
        let p = ShardProfile::from_config(&cfg);
        assert_eq!(p.max_qubits, 6);
        assert_eq!(p.readout_lines, Some(3));
        assert_eq!(p.demod_slots, 2);
    }
}
