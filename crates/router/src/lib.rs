//! # quape-router — a fault-tolerant HiMA-style sharded front router
//!
//! The paper's §3.1.2 cloud story multiplexes many tenants onto **one**
//! controller; hierarchical architectures like HiMA (arXiv:2408.11311)
//! scale the same idea one level up — *quantum process-level
//! parallelism*: many controllers, each serving its own QPU, behind a
//! front-end that places incoming jobs. This crate is that front-end,
//! grown into a believable production fleet:
//!
//! * **Capability-aware placement** ([`ShardProfile`],
//!   [`JobRequirements`]): shards are heterogeneous (qubit capacity,
//!   readout multiplexing, demod slots, supported step modes); submit
//!   filters infeasible shards *before* the [`Placement`] policy
//!   (round-robin / least-loaded / sticky-by-digest) picks among the
//!   capable ones, and rejects with [`JobError::NoCapableShard`]
//!   (re-exported from `quape_server`) when none exists.
//! * **Failure injection + re-routing** ([`Router::kill_shard`],
//!   [`FaultPlan`], [`Router::retire_shard`]): a fleet-level job
//!   registry keeps a re-submittable snapshot of every accepted job;
//!   jobs stranded by a dead shard are re-submitted to a surviving
//!   capable shard with bounded retry + exponential backoff
//!   ([`RetryPolicy`]), turning terminal
//!   [`JobError::ShardLost`] only when no capable shard remains.
//!   Re-runs start from shot 0, so by the engine's determinism the
//!   re-routed job's aggregate is **bit-identical** to the zero-failure
//!   run (differential-tested, including under a proptest over random
//!   kill schedules).
//! * **Work stealing** ([`Router::steal_once`], [`StealConfig`]): idle
//!   shards steal whole queued jobs off the hottest backlog — never
//!   splitting a job, so prefix consistency and aggregates are
//!   untouched.
//! * **Admission control** ([`FrontDoor`]): per-tenant shot budgets
//!   ([`JobError::OverBudget`]) and deficit-round-robin weighted-fair
//!   queueing with a proven starvation bound.
//!
//! The lifecycle is streaming end to end: [`Router::submit`] returns a
//! [`RoutedJob`] whose [`FleetHandle`] stays valid across re-routing
//! (progress, partial aggregates, blocking/timeout waits, cooperative
//! cancellation), and the router ends with [`drain`](Router::drain)
//! (finish everything accepted) or [`shutdown`](Router::shutdown)
//! (stop claiming, finalize partials) — both reporting worker panics
//! as [`JobError::WorkerPanicked`] instead of panicking the caller.
//!
//! ## Determinism
//!
//! A job's aggregate depends only on `(program, config, factory,
//! base_seed, shots)` — never on which shard ran it, the placement
//! policy, the shard count, the worker interleaving, a mid-stream
//! shard death, a steal, or an admission reordering. The router's
//! differential suite asserts every routed job's
//! [`BatchAggregate`](quape_core::BatchAggregate) is bit-identical to
//! a solo [`ShotEngine`](quape_core::ShotEngine) run.
//!
//! ```
//! use quape_core::QuapeConfig;
//! use quape_qpu::{BehavioralQpuFactory, MeasurementModel};
//! use quape_router::{Placement, Router, RouterConfig};
//! use quape_server::{JobRequest, JobSource, ServerConfig};
//!
//! let router = Router::new(RouterConfig {
//!     shards: 2,
//!     placement: Placement::StickyByDigest,
//!     shard: ServerConfig { threads: 1, ..ServerConfig::default() },
//!     ..RouterConfig::default()
//! });
//! let cfg = QuapeConfig::superscalar(4);
//! let factory = BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 });
//! let job = router.submit(
//!     JobRequest::new(
//!         "hello",
//!         JobSource::Text("0 H q0\n1 MEAS q0\nSTOP\n".into()),
//!         cfg.clone(),
//!         factory.clone(),
//!         32,
//!     )
//!     .tenant("alice"),
//! )?;
//! let result = job.handle.wait()?; // streaming: no drain needed
//! assert_eq!(result.shots, 32);
//! let results = router.drain()?;
//! assert_eq!(results.len(), 1);
//! assert_eq!(results[0].shard, job.shard);
//! # Ok::<(), quape_server::JobError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod fleet;
mod profile;
mod snapshot;

pub use admission::{AdmissionConfig, AdmittedJob, DispatchRecord, FrontDoor};
pub use fleet::{
    FaultPlan, FleetHandle, Placement, RetryPolicy, RoutedJob, RoutedResult, Router, RouterConfig,
    RouterFinishHook, ShardStatus, StealConfig,
};
pub use profile::{JobRequirements, ShardProfile, StepModeSet};
pub use snapshot::{FleetSnapshot, ShardSnapshot, TenantStatsRow};
// The error type jobs and admission surface; re-exported so router
// users match on one import.
pub use quape_server::JobError;

#[cfg(test)]
mod tests {
    use super::*;
    use quape_core::QuapeConfig;
    use quape_qpu::{BehavioralQpuFactory, MeasurementModel};
    use quape_server::{JobRequest, JobSource, ServerConfig};

    fn request(name: &str, text: &str, shots: u64) -> JobRequest {
        let cfg = QuapeConfig::superscalar(4);
        let factory =
            BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 });
        JobRequest::new(name, JobSource::Text(text.into()), cfg, factory, shots)
    }

    #[test]
    fn round_robin_cycles_over_shards() {
        let router = Router::new(RouterConfig {
            shards: 3,
            placement: Placement::RoundRobin,
            shard: ServerConfig {
                threads: 1,
                ..ServerConfig::default()
            },
            ..RouterConfig::default()
        });
        let placed: Vec<usize> = (0..6)
            .map(|i| {
                router
                    .submit(request(&format!("j{i}"), "0 H q0\nSTOP\n", 1))
                    .unwrap()
                    .shard
            })
            .collect();
        assert_eq!(placed, vec![0, 1, 2, 0, 1, 2]);
        router.drain().unwrap();
    }

    #[test]
    fn sticky_pins_identical_programs_to_one_shard() {
        let router = Router::new(RouterConfig {
            shards: 4,
            placement: Placement::StickyByDigest,
            shard: ServerConfig {
                threads: 1,
                ..ServerConfig::default()
            },
            ..RouterConfig::default()
        });
        let a: Vec<usize> = (0..5)
            .map(|i| {
                router
                    .submit(request(&format!("a{i}"), "0 H q0\n1 MEAS q0\nSTOP\n", 2))
                    .unwrap()
                    .shard
            })
            .collect();
        assert!(a.iter().all(|&s| s == a[0]), "same program, same shard");
        let results = router.drain().unwrap();
        // One compile total across the whole fleet for the 5 submissions.
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn shard_floor_is_one() {
        let router = Router::new(RouterConfig {
            shards: 0,
            placement: Placement::RoundRobin,
            shard: ServerConfig {
                threads: 1,
                ..ServerConfig::default()
            },
            ..RouterConfig::default()
        });
        assert_eq!(router.shard_count(), 1);
        router.shutdown().unwrap();
    }
}
