//! # quape-router — a HiMA-style sharded front router
//!
//! The paper's §3.1.2 cloud story multiplexes many tenants onto **one**
//! controller; hierarchical architectures like HiMA (arXiv:2408.11311)
//! scale the same idea one level up — *quantum process-level
//! parallelism*: many controllers, each serving its own QPU, behind a
//! front-end that places incoming jobs. This crate is that front-end:
//! a [`Router`] owns N **shards**, each a live
//! [`quape_server::ServingServer`] with its own compile cache and
//! worker pool (the per-request [`QpuFactory`](quape_core::QpuFactory)
//! models each shard's distinct QPU backend), and places every
//! submission by a [`Placement`] policy:
//!
//! * [`Placement::RoundRobin`] — cyclic, stateless;
//! * [`Placement::LeastLoadedShots`] — the shard with the smallest shot
//!   backlog, so one giant job does not serialize the fleet behind it;
//! * [`Placement::StickyByDigest`] — programs hash (by their
//!   compile-cache key) to a fixed shard, so resubmissions of the same
//!   program always land where its compiled job is already cached.
//!   Sticky routing *partitions* the program set across the fleet:
//!   each shard's cache only needs to hold its own slice, where
//!   round-robin makes every shard compile (and evict) everything.
//!
//! The lifecycle is streaming end to end: [`Router::submit`] returns a
//! [`RoutedJob`] whose [`JobHandle`] works while serving is live
//! (progress, prefix-consistent partial aggregates, blocking/timeout
//! waits, cooperative cancellation), and the router ends with
//! [`drain`](Router::drain) (finish everything accepted) or
//! [`shutdown`](Router::shutdown) (stop claiming, finalize partials).
//!
//! ## Determinism
//!
//! A job's aggregate depends only on `(program, config, factory,
//! base_seed, shots)` — never on which shard ran it, the placement
//! policy, the shard count, or the worker interleaving. The router's
//! differential suite (and a proptest over 1–4 shards) asserts every
//! routed job's [`BatchAggregate`](quape_core::BatchAggregate) is
//! bit-identical to a solo [`ShotEngine`](quape_core::ShotEngine) run.
//!
//! ```
//! use quape_core::QuapeConfig;
//! use quape_qpu::{BehavioralQpuFactory, MeasurementModel};
//! use quape_router::{Placement, Router, RouterConfig};
//! use quape_server::{JobRequest, JobSource, ServerConfig};
//!
//! let router = Router::new(RouterConfig {
//!     shards: 2,
//!     placement: Placement::StickyByDigest,
//!     shard: ServerConfig { threads: 1, ..ServerConfig::default() },
//! });
//! let cfg = QuapeConfig::superscalar(4);
//! let factory = BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 });
//! let job = router.submit(
//!     JobRequest::new(
//!         "hello",
//!         JobSource::Text("0 H q0\n1 MEAS q0\nSTOP\n".into()),
//!         cfg.clone(),
//!         factory.clone(),
//!         32,
//!     )
//!     .tenant("alice"),
//! )?;
//! let result = job.handle.wait(); // streaming: no drain needed
//! assert_eq!(result.shots, 32);
//! let results = router.drain();
//! assert_eq!(results.len(), 1);
//! assert_eq!(results[0].shard, job.shard);
//! # Ok::<(), quape_server::JobError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use quape_server::{
    CacheStats, JobError, JobHandle, JobRequest, JobResult, JobServer, ServerConfig, ServingServer,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How the router picks a shard for an incoming job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Cyclic assignment, ignoring load and content. The fairest
    /// baseline — and the cache-worst-case: every shard eventually
    /// compiles every program.
    #[default]
    RoundRobin,
    /// The shard with the smallest backlog of unexecuted shots
    /// ([`JobServer::backlog_shots`]); ties go to the lowest index.
    LeastLoadedShots,
    /// The shard determined by the request's compile-cache key
    /// ([`quape_server::JobSource::cache_key`]): resubmissions of the
    /// same program/config always land on the shard whose cache is
    /// already warm, partitioning the program set across the fleet.
    StickyByDigest,
}

/// Fleet sizing and placement policy of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of shards (min 1), each a full [`JobServer`] with its own
    /// compile cache and worker pool.
    pub shards: usize,
    /// The placement policy.
    pub placement: Placement,
    /// Per-shard worker-pool and cache sizing.
    pub shard: ServerConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: 2,
            placement: Placement::default(),
            shard: ServerConfig::default(),
        }
    }
}

/// A submitted job plus the shard it was placed on.
#[derive(Debug)]
pub struct RoutedJob {
    /// Index of the shard executing the job.
    pub shard: usize,
    /// The live job handle (progress, partials, wait, cancel).
    pub handle: JobHandle,
}

/// A finished job plus the shard that executed it.
#[derive(Debug, Clone)]
pub struct RoutedResult {
    /// Index of the shard that executed the job.
    pub shard: usize,
    /// The job's result (ids are per-shard).
    pub result: JobResult,
}

/// The sharded front router: N live job shards behind one submit path.
/// See the [crate docs](crate) for placement policies and determinism.
pub struct Router {
    shards: Vec<ServingServer>,
    placement: Placement,
    rr: AtomicUsize,
}

impl Router {
    /// Starts `cfg.shards` serving shards (their worker pools go live
    /// immediately).
    pub fn new(cfg: RouterConfig) -> Self {
        let shards = (0..cfg.shards.max(1))
            .map(|_| JobServer::serve(cfg.shard.clone()))
            .collect();
        Router {
            shards,
            placement: cfg.placement,
            rr: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The placement policy in force.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// One shard's underlying server (stats, backlog).
    pub fn shard(&self, index: usize) -> &JobServer {
        self.shards[index].server()
    }

    /// Per-shard compile-cache counters, indexed by shard.
    pub fn cache_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| s.server().cache_stats())
            .collect()
    }

    /// Per-tenant cache counters folded across all shards, sorted by
    /// tenant id.
    pub fn tenant_stats(&self) -> Vec<(String, CacheStats)> {
        let mut merged: Vec<(String, CacheStats)> = Vec::new();
        for shard in &self.shards {
            for (tenant, stats) in shard.server().tenant_stats() {
                match merged.binary_search_by(|(t, _)| t.as_str().cmp(&tenant)) {
                    Ok(i) => merged[i].1.merge(&stats),
                    Err(i) => merged.insert(i, (tenant, stats)),
                }
            }
        }
        merged
    }

    /// Per-shard backlog of unexecuted shots, indexed by shard.
    pub fn backlog_shots(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.server().backlog_shots())
            .collect()
    }

    /// Picks a shard; for sticky placement the computed cache key is
    /// stored on the request so the shard's submit reuses it instead of
    /// hashing the source text a second time.
    fn place(&self, req: &mut JobRequest) -> usize {
        let n = self.shards.len();
        match self.placement {
            Placement::RoundRobin => self.rr.fetch_add(1, Ordering::Relaxed) % n,
            Placement::LeastLoadedShots => self
                .backlog_shots()
                .iter()
                .enumerate()
                .min_by_key(|(_, backlog)| **backlog)
                .map(|(i, _)| i)
                .unwrap_or(0),
            Placement::StickyByDigest => {
                let key = req.source.cache_key(&req.cfg);
                req.precomputed_key = Some(key);
                ((key >> 64) as u64 % n as u64) as usize
            }
        }
    }

    /// Places and submits a job; it starts executing on its shard
    /// immediately. The returned [`RoutedJob`] carries the live handle.
    ///
    /// # Errors
    ///
    /// As [`JobServer::submit`] — parse/compile failures, zero shots,
    /// or a router that has been drained/shut down.
    pub fn submit(&self, mut req: JobRequest) -> Result<RoutedJob, JobError> {
        let shard = self.place(&mut req);
        let handle = self.shards[shard].submit(req)?;
        Ok(RoutedJob { shard, handle })
    }

    /// Stops accepting new jobs (fleet-wide, before any shard blocks),
    /// runs everything accepted so far to completion on every shard,
    /// and returns all results ordered by `(shard, job id)`.
    pub fn drain(self) -> Vec<RoutedResult> {
        Self::stop(
            self.shards,
            ServingServer::begin_drain,
            ServingServer::drain,
        )
    }

    /// Stops accepting new jobs *and* claiming new shot quanta on every
    /// shard — the stop signal reaches the whole fleet before any shard
    /// is joined, so no shard keeps claiming while another winds down.
    /// Unfinished jobs finalize as cancelled prefix partials. Returns
    /// all results ordered by `(shard, job id)`.
    pub fn shutdown(self) -> Vec<RoutedResult> {
        Self::stop(
            self.shards,
            ServingServer::begin_shutdown,
            ServingServer::shutdown,
        )
    }

    fn stop(
        shards: Vec<ServingServer>,
        signal: impl Fn(&ServingServer),
        end: impl Fn(ServingServer) -> Vec<JobResult>,
    ) -> Vec<RoutedResult> {
        // Phase flips are non-blocking: every shard stops accepting (and,
        // on shutdown, claiming) before the first worker join below.
        for shard in &shards {
            signal(shard);
        }
        shards
            .into_iter()
            .enumerate()
            .flat_map(|(shard, serving)| {
                end(serving)
                    .into_iter()
                    .map(move |result| RoutedResult { shard, result })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_core::QuapeConfig;
    use quape_qpu::{BehavioralQpuFactory, MeasurementModel};
    use quape_server::JobSource;

    fn request(name: &str, text: &str, shots: u64) -> JobRequest {
        let cfg = QuapeConfig::superscalar(4);
        let factory =
            BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 });
        JobRequest::new(name, JobSource::Text(text.into()), cfg, factory, shots)
    }

    #[test]
    fn round_robin_cycles_over_shards() {
        let router = Router::new(RouterConfig {
            shards: 3,
            placement: Placement::RoundRobin,
            shard: ServerConfig {
                threads: 1,
                ..ServerConfig::default()
            },
        });
        let placed: Vec<usize> = (0..6)
            .map(|i| {
                router
                    .submit(request(&format!("j{i}"), "0 H q0\nSTOP\n", 1))
                    .unwrap()
                    .shard
            })
            .collect();
        assert_eq!(placed, vec![0, 1, 2, 0, 1, 2]);
        router.drain();
    }

    #[test]
    fn sticky_pins_identical_programs_to_one_shard() {
        let router = Router::new(RouterConfig {
            shards: 4,
            placement: Placement::StickyByDigest,
            shard: ServerConfig {
                threads: 1,
                ..ServerConfig::default()
            },
        });
        let a: Vec<usize> = (0..5)
            .map(|i| {
                router
                    .submit(request(&format!("a{i}"), "0 H q0\n1 MEAS q0\nSTOP\n", 2))
                    .unwrap()
                    .shard
            })
            .collect();
        assert!(a.iter().all(|&s| s == a[0]), "same program, same shard");
        let results = router.drain();
        // One compile total across the whole fleet for the 5 submissions.
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn shard_floor_is_one() {
        let router = Router::new(RouterConfig {
            shards: 0,
            placement: Placement::RoundRobin,
            shard: ServerConfig {
                threads: 1,
                ..ServerConfig::default()
            },
        });
        assert_eq!(router.shard_count(), 1);
        router.shutdown();
    }
}
