//! The merged fleet snapshot: one serde-renderable value unifying every
//! shard's scheduler, compile-cache and packer counters with the
//! observability metric scopes and fleet-level recovery totals.
//!
//! Field order is declaration order (the serde shim serializes structs
//! in declaration order) and every collection is sorted — shards by
//! index, tenants by id, instruments by name — so two snapshots of the
//! same state render byte-identically and the JSON schema fingerprint
//! is stable across runs.

use quape_obs::MetricsSnapshot;
use quape_server::{CacheStats, PackerStats};

/// One shard's point-in-time state.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ShardSnapshot {
    /// Shard index (stable for the router's lifetime).
    pub shard: usize,
    /// Availability: `up`, `retiring`, or `down`.
    pub status: String,
    /// Shots accepted but not yet executed.
    pub backlog_shots: u64,
    /// Jobs queued or running, not yet finished.
    pub pending_jobs: u64,
    /// Compile-cache hit/miss/eviction counters.
    pub cache: CacheStats,
    /// Multiprogramming packer counters.
    pub packer: PackerStats,
    /// The shard scope's metric instruments (empty when observability
    /// is off).
    pub metrics: MetricsSnapshot,
}

/// One tenant's compile-cache counters, folded across every shard.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TenantStatsRow {
    /// Tenant id.
    pub tenant: String,
    /// Folded cache counters.
    pub cache: CacheStats,
}

/// A point-in-time snapshot of the whole fleet
/// ([`Router::fleet_snapshot`](crate::Router::fleet_snapshot)) — the
/// `--metrics-out` payload of `sharded_traffic`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FleetSnapshot {
    /// Per-shard state, by shard index.
    pub shards: Vec<ShardSnapshot>,
    /// Per-tenant cache counters, sorted by tenant id.
    pub tenants: Vec<TenantStatsRow>,
    /// Jobs re-routed off dead or retiring shards.
    pub recovered_jobs: u64,
    /// Jobs moved by work stealing.
    pub stolen_jobs: u64,
    /// The fleet scope's metric instruments (placement/recovery/
    /// admission counters; empty when observability is off).
    pub fleet_metrics: MetricsSnapshot,
    /// Trace-ring evictions across every scope (0 means the recorded
    /// trace is complete).
    pub trace_events_dropped: u64,
}
