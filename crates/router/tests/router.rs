//! Router differential suite: per-job aggregates are bit-identical to
//! solo `ShotEngine` runs regardless of shard count, placement policy,
//! or cancellation timing — plus placement-policy behavior and
//! fleet-wide tenant accounting.

use proptest::prelude::*;
use quape_core::{BatchAggregate, CompiledJob, QuapeConfig, ShotEngine};
use quape_isa::Program;
use quape_qpu::{BehavioralQpuFactory, MeasurementModel};
use quape_router::{Placement, RoutedResult, Router, RouterConfig};
use quape_server::{JobRequest, JobResult, JobSource, ServerConfig};
use quape_workloads::feedback::{conditional_x, feedback_chain, mrce_feedback_chain};

fn cfg() -> QuapeConfig {
    QuapeConfig::superscalar(4)
}

fn coin(cfg: &QuapeConfig) -> BehavioralQpuFactory {
    BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 })
}

fn program(choice: u8) -> Program {
    match choice % 4 {
        0 => conditional_x(0).unwrap(),
        1 => feedback_chain(0, 5).unwrap(),
        2 => feedback_chain(1, 8).unwrap(),
        _ => mrce_feedback_chain(0, 6).unwrap(),
    }
}

fn solo(choice: u8, shots: u64, seed: u64) -> BatchAggregate {
    let c = cfg();
    let job = CompiledJob::compile(c.clone(), program(choice)).unwrap();
    ShotEngine::new(job, coin(&c))
        .base_seed(seed)
        .threads(1)
        .run(shots)
        .aggregate
}

fn router(shards: usize, placement: Placement, threads: usize) -> Router {
    Router::new(RouterConfig {
        shards,
        placement,
        shard: ServerConfig {
            threads,
            shot_quantum: 3,
            cache_capacity: 4,
            machine: None,
            obs: Default::default(),
            packer: None,
        },
        ..RouterConfig::default()
    })
}

/// Submits `(choice, shots, seed)` jobs (named by index) and returns the
/// drained results sorted back into submission order.
fn ok(r: &RoutedResult) -> &JobResult {
    r.result.as_ref().expect("job completed")
}

fn run_router(r: Router, jobs: &[(u8, u64, u64)]) -> Vec<RoutedResult> {
    let c = cfg();
    for (i, (choice, shots, seed)) in jobs.iter().enumerate() {
        let _ = r
            .submit(
                JobRequest::new(
                    format!("job{i}"),
                    JobSource::Program(program(*choice)),
                    c.clone(),
                    coin(&c),
                    *shots,
                )
                .base_seed(*seed),
            )
            .unwrap();
    }
    let mut results = r.drain().unwrap();
    results.sort_unstable_by_key(|r| {
        ok(r)
            .name
            .strip_prefix("job")
            .and_then(|n| n.parse::<usize>().ok())
            .unwrap()
    });
    results
}

/// One fixed heterogeneous job set, every shard count × placement: all
/// aggregates bit-identical to solo engine runs (and therefore to each
/// other across configurations).
#[test]
fn aggregates_identical_across_shard_counts_and_placements() {
    let jobs: Vec<(u8, u64, u64)> = vec![
        (0, 40, 11),
        (1, 17, 12),
        (2, 9, 13),
        (3, 25, 14),
        (0, 5, 15),
        (1, 31, 16),
    ];
    let oracles: Vec<BatchAggregate> = jobs
        .iter()
        .map(|(c, shots, seed)| solo(*c, *shots, *seed))
        .collect();
    for shards in [1usize, 2, 3, 4] {
        for placement in [
            Placement::RoundRobin,
            Placement::LeastLoadedShots,
            Placement::StickyByDigest,
        ] {
            let results = run_router(router(shards, placement, 2), &jobs);
            assert_eq!(results.len(), jobs.len());
            for (i, r) in results.iter().enumerate() {
                assert!(r.shard < shards);
                assert_eq!(
                    ok(r).aggregate,
                    oracles[i],
                    "job{i} diverged with shards={shards} placement={placement:?}"
                );
            }
        }
    }
}

/// Least-loaded placement routes away from a shard with a huge backlog.
#[test]
fn least_loaded_avoids_the_busy_shard() {
    let r = router(3, Placement::LeastLoadedShots, 1);
    let c = cfg();
    let big = r
        .submit(
            JobRequest::new(
                "big",
                JobSource::Program(conditional_x(0).unwrap()),
                c.clone(),
                coin(&c),
                1_000_000,
            )
            .base_seed(1),
        )
        .unwrap();
    assert_eq!(big.shard, 0, "all-idle tie goes to the lowest index");
    // The big job's backlog keeps shard 0 maximally loaded; the next
    // submissions must avoid it.
    let next = r
        .submit(
            JobRequest::new(
                "small",
                JobSource::Program(conditional_x(0).unwrap()),
                c.clone(),
                coin(&c),
                4,
            )
            .base_seed(2),
        )
        .unwrap();
    assert_ne!(next.shard, 0, "least-loaded must avoid the busy shard");
    big.handle.cancel();
    let results = r.shutdown().unwrap();
    assert_eq!(results.len(), 2);
}

/// Sticky routing keeps one program's cache entries on one shard: the
/// fleet compiles each distinct program exactly once, wherever
/// round-robin would compile it on every shard it touches.
#[test]
fn sticky_routing_compiles_each_program_once_fleet_wide() {
    // 7 distinct programs over 3 shards: coprime, so round-robin really
    // does spread each program across shards (6 programs would alias the
    // cycle and pin programs by accident).
    let distinct = 7usize;
    let reps = 4usize;
    let submit_all = |r: &Router| {
        let c = cfg();
        for rep in 0..reps {
            for p in 0..distinct {
                let _ = r
                    .submit(
                        JobRequest::new(
                            format!("p{p}r{rep}"),
                            JobSource::Text(feedback_chain(0, 10 + p).unwrap().to_string()),
                            c.clone(),
                            coin(&c),
                            1,
                        )
                        .base_seed((p * reps + rep) as u64),
                    )
                    .unwrap();
            }
        }
    };
    let router = |placement| {
        Router::new(RouterConfig {
            shards: 3,
            placement,
            shard: ServerConfig {
                threads: 1,
                shot_quantum: 4,
                cache_capacity: 16,
                machine: None,
                obs: Default::default(),
                packer: None,
            },
            ..RouterConfig::default()
        })
    };
    let sticky = router(Placement::StickyByDigest);
    submit_all(&sticky);
    let compiles: u64 = sticky.cache_stats().iter().map(|s| s.compiles).sum();
    sticky.drain().unwrap();
    assert_eq!(
        compiles, distinct as u64,
        "sticky fleet compiles each program exactly once"
    );
    let rr = router(Placement::RoundRobin);
    submit_all(&rr);
    let rr_compiles: u64 = rr.cache_stats().iter().map(|s| s.compiles).sum();
    rr.drain().unwrap();
    assert!(
        rr_compiles > distinct as u64,
        "round-robin recompiles across shards ({rr_compiles} <= {distinct})"
    );
}

/// Per-tenant stats fold across shards.
#[test]
fn tenant_stats_fold_across_shards() {
    let r = router(2, Placement::RoundRobin, 1);
    let c = cfg();
    for i in 0..6u64 {
        let _ = r
            .submit(
                JobRequest::new(
                    format!("j{i}"),
                    JobSource::Program(conditional_x(0).unwrap()),
                    c.clone(),
                    coin(&c),
                    2,
                )
                .base_seed(i)
                .tenant(if i % 2 == 0 { "alice" } else { "bob" }),
            )
            .unwrap();
    }
    let tenants = r.tenant_stats();
    assert_eq!(tenants.len(), 2);
    assert_eq!(tenants[0].0, "alice");
    assert_eq!(tenants[1].0, "bob");
    // Round-robin over 2 shards: each tenant hits both shards; the fold
    // must account every lookup exactly once.
    for (name, stats) in &tenants {
        assert_eq!(stats.hits + stats.misses, 3, "{name}");
    }
    r.drain().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random heterogeneous job sets over 1..=4 shards: every routed
    /// job's aggregate is bit-identical to a solo `ShotEngine` run.
    #[test]
    fn router_matches_solo_engine_on_random_jobs(
        jobs in proptest::collection::vec((0u8..4, 1u64..24, 0u64..1000), 1..7),
        shards in 1usize..=4,
        placement_pick in 0u8..3,
    ) {
        let placement = match placement_pick {
            0 => Placement::RoundRobin,
            1 => Placement::LeastLoadedShots,
            _ => Placement::StickyByDigest,
        };
        let results = run_router(router(shards, placement, 2), &jobs);
        prop_assert_eq!(results.len(), jobs.len());
        for (i, r) in results.iter().enumerate() {
            let (choice, shots, seed) = jobs[i];
            prop_assert_eq!(
                &ok(r).aggregate,
                &solo(choice, shots, seed),
                "job{} diverged (shards={}, placement={:?})",
                i, shards, placement
            );
        }
    }
}

/// A capability-aware fleet clips each shard's packer cap to its
/// profile before the shard starts: the packer must never form a
/// combined program wider than the shard's own fridge (or, with
/// dedicated-line readout, than its readout lines).
#[test]
fn packer_cap_is_clipped_to_the_shard_profile() {
    use quape_router::ShardProfile;
    use quape_server::PackerConfig;
    let r = Router::new(RouterConfig {
        shards: 2,
        placement: Placement::RoundRobin,
        shard: ServerConfig {
            threads: 1,
            shot_quantum: 3,
            cache_capacity: 4,
            machine: None,
            obs: Default::default(),
            packer: Some(PackerConfig::default()),
        },
        profiles: vec![
            ShardProfile {
                max_qubits: 5,
                ..ShardProfile::unconstrained()
            },
            ShardProfile {
                max_qubits: 32,
                readout_lines: Some(6),
                ..ShardProfile::unconstrained()
            },
        ],
        ..RouterConfig::default()
    });
    let cap = |i: usize| {
        r.shard(i)
            .config()
            .packer
            .as_ref()
            .expect("packer configured")
            .max_pack_qubits
    };
    assert_eq!(cap(0), 5);
    // Dedicated-line members need a readout line per packed qubit.
    assert_eq!(cap(1), 6);
    r.drain().unwrap();
}

/// With the packer live on every shard, routed aggregates stay
/// bit-identical to solo engine runs — whether or not any given pair
/// actually packed (the de-multiplexer is exact by construction).
#[test]
fn packer_enabled_fleet_matches_solo_engine() {
    use quape_server::PackerConfig;
    let r = Router::new(RouterConfig {
        shards: 2,
        placement: Placement::StickyByDigest,
        shard: ServerConfig {
            threads: 1,
            shot_quantum: 4,
            cache_capacity: 8,
            machine: None,
            obs: Default::default(),
            packer: Some(PackerConfig::default()),
        },
        ..RouterConfig::default()
    });
    // Identical program/config/shots with distinct seeds: one pack
    // class, so co-resident submissions are packable.
    let jobs: Vec<(u8, u64, u64)> = (0..10).map(|i| (1u8, 16, 100 + i)).collect();
    let results = run_router(r, &jobs);
    for (i, res) in results.iter().enumerate() {
        let (choice, shots, seed) = jobs[i];
        assert_eq!(
            ok(res).aggregate,
            solo(choice, shots, seed),
            "job{i} diverged"
        );
    }
}
