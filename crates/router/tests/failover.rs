//! Fault-tolerance suite: kill-a-shard re-routing (deterministic and
//! property-based), planned retirement, capability filtering, work
//! stealing, and admission control — every surviving job's aggregate
//! bit-identical to a solo `ShotEngine` run.

use proptest::prelude::*;
use quape_core::{BatchAggregate, CompiledJob, QuapeConfig, ShotEngine};
use quape_isa::Program;
use quape_qpu::{BehavioralQpuFactory, MeasurementModel};
use quape_router::{
    AdmissionConfig, FaultPlan, FrontDoor, JobError, Placement, Router, RouterConfig, ShardProfile,
    ShardStatus, StealConfig,
};
use quape_server::{JobRequest, JobSource, ServerConfig};
use quape_workloads::feedback::{conditional_x, feedback_chain, mrce_feedback_chain};

fn cfg() -> QuapeConfig {
    QuapeConfig::superscalar(4)
}

fn coin(cfg: &QuapeConfig) -> BehavioralQpuFactory {
    BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 })
}

fn program(choice: u8) -> Program {
    match choice % 4 {
        0 => conditional_x(0).unwrap(),
        1 => feedback_chain(0, 5).unwrap(),
        2 => feedback_chain(1, 8).unwrap(),
        _ => mrce_feedback_chain(0, 6).unwrap(),
    }
}

fn solo(choice: u8, shots: u64, seed: u64) -> BatchAggregate {
    let c = cfg();
    let job = CompiledJob::compile(c.clone(), program(choice)).unwrap();
    ShotEngine::new(job, coin(&c))
        .base_seed(seed)
        .threads(1)
        .run(shots)
        .aggregate
}

fn request(name: &str, choice: u8, shots: u64, seed: u64) -> JobRequest {
    let c = cfg();
    let factory = coin(&c);
    JobRequest::new(name, JobSource::Program(program(choice)), c, factory, shots).base_seed(seed)
}

fn fleet(shards: usize, placement: Placement) -> RouterConfig {
    RouterConfig {
        shards,
        placement,
        shard: ServerConfig {
            threads: 1,
            shot_quantum: 3,
            cache_capacity: 4,
            machine: None,
            obs: Default::default(),
            packer: None,
        },
        ..RouterConfig::default()
    }
}

/// Kill a shard mid-stream: every accepted job still completes, with
/// aggregates bit-identical to solo runs, under every placement.
#[test]
fn killed_shard_jobs_reroute_bit_identically() {
    let jobs: Vec<(u8, u64, u64)> = vec![
        (0, 700, 21),
        (1, 300, 22),
        (2, 450, 23),
        (3, 350, 24),
        (0, 500, 25),
        (1, 250, 26),
        (2, 600, 27),
        (3, 400, 28),
    ];
    let oracles: Vec<BatchAggregate> = jobs
        .iter()
        .map(|(c, shots, seed)| solo(*c, *shots, *seed))
        .collect();
    for placement in [
        Placement::RoundRobin,
        Placement::LeastLoadedShots,
        Placement::StickyByDigest,
    ] {
        let router = Router::new(fleet(3, placement));
        let mut handles = Vec::new();
        let mut victim = None;
        for (i, (choice, shots, seed)) in jobs.iter().enumerate() {
            let routed = router
                .submit(request(&format!("job{i}"), *choice, *shots, *seed))
                .unwrap();
            // The first job's shard is the victim: with 1-thread shards
            // and hundreds of shots per job it is still busy (or has a
            // backlog) when the kill lands right after the submit loop.
            victim.get_or_insert(routed.shard);
            handles.push(routed.handle);
        }
        let victim = victim.unwrap();
        let plan = FaultPlan {
            victim,
            after_submits: jobs.len(),
        };
        assert!(plan.fire_if_due(jobs.len(), &router));
        assert_eq!(router.shard_status(victim), ShardStatus::Down);
        for (i, handle) in handles.iter().enumerate() {
            let result = handle.wait().unwrap_or_else(|e| {
                panic!("job{i} lost under {placement:?}: {e}");
            });
            assert_eq!(result.shots, jobs[i].1, "job{i} ran every shot");
            assert_eq!(
                result.aggregate, oracles[i],
                "job{i} diverged after the kill under {placement:?}"
            );
        }
        let results = router.drain().unwrap();
        assert_eq!(results.len(), jobs.len());
        assert!(results.iter().all(|r| r.result.is_ok()));
    }
}

/// A planned retirement moves unstarted jobs immediately, finishes the
/// started ones in place, and takes the shard out of placement.
#[test]
fn retired_shard_finishes_and_stops_accepting() {
    let router = Router::new(fleet(2, Placement::RoundRobin));
    let mut handles = Vec::new();
    for i in 0..6 {
        handles.push(
            router
                .submit(request(&format!("job{i}"), i as u8 % 4, 400, 40 + i as u64))
                .unwrap()
                .handle,
        );
    }
    router.retire_shard(0);
    assert_eq!(router.shard_status(0), ShardStatus::Retiring);
    // New submissions only ever land on the survivor.
    for i in 6..10 {
        let routed = router
            .submit(request(&format!("job{i}"), i as u8 % 4, 50, 40 + i as u64))
            .unwrap();
        assert_eq!(routed.shard, 1, "retiring shard must not be placeable");
        handles.push(routed.handle);
    }
    for (i, handle) in handles.iter().enumerate() {
        let result = handle.wait().unwrap();
        let shots = if i < 6 { 400 } else { 50 };
        assert_eq!(result.shots, shots);
        assert_eq!(
            result.aggregate,
            solo(i as u8 % 4, shots, 40 + i as u64),
            "job{i} diverged across the retirement"
        );
    }
    router.drain().unwrap();
}

/// The capability filter: an infeasible job is rejected fleet-wide, a
/// feasible one lands on the only capable shard whatever the policy.
#[test]
fn capability_filter_rejects_and_steers() {
    let small = ShardProfile {
        max_qubits: 1,
        ..ShardProfile::unconstrained()
    };
    let big = ShardProfile {
        max_qubits: 12,
        ..ShardProfile::unconstrained()
    };
    for placement in [
        Placement::RoundRobin,
        Placement::LeastLoadedShots,
        Placement::StickyByDigest,
    ] {
        let router = Router::new(RouterConfig {
            profiles: vec![small, big],
            ..fleet(2, placement)
        });
        // feedback_chain(1, 8) touches qubit 1 — a 2-qubit span, too
        // wide for the 1-qubit shard 0.
        for i in 0..4 {
            let routed = router
                .submit(request(&format!("wide{i}"), 2, 10, i))
                .unwrap();
            assert_eq!(routed.shard, 1, "only the big shard is capable");
        }
        // conditional_x(0) is single-qubit: fits anywhere.
        let narrow = router.submit(request("narrow", 0, 10, 9)).unwrap();
        assert!(narrow.shard < 2);
        // An explicit 13-qubit config overflows every profile.
        let c = cfg().with_num_qubits(13);
        let infeasible = JobRequest::new(
            "thirteen",
            JobSource::Program(conditional_x(0).unwrap()),
            c.clone(),
            coin(&c),
            4,
        );
        assert!(matches!(
            router.submit(infeasible),
            Err(JobError::NoCapableShard)
        ));
        router.drain().unwrap();
    }
}

/// Killing the only capable shard strands its jobs as `ShardLost`;
/// universally-placeable jobs survive on the other shard.
#[test]
fn shard_lost_when_no_capable_survivor() {
    let small = ShardProfile {
        max_qubits: 1,
        ..ShardProfile::unconstrained()
    };
    let router = Router::new(RouterConfig {
        profiles: vec![ShardProfile::unconstrained(), small],
        ..fleet(2, Placement::RoundRobin)
    });
    // Wide jobs (2 qubits) can only run on shard 0; narrow on both.
    let wide: Vec<_> = (0..3)
        .map(|i| {
            router
                .submit(request(&format!("wide{i}"), 2, 4000, 60 + i))
                .unwrap()
        })
        .collect();
    assert!(wide.iter().all(|r| r.shard == 0));
    let narrow = router.submit(request("narrow", 0, 200, 70)).unwrap();
    router.kill_shard(0);
    let mut lost = 0;
    for routed in &wide {
        match routed.handle.wait() {
            Err(JobError::ShardLost) => lost += 1,
            Ok(result) => {
                // A wide job that fully completed before the kill is a
                // legitimate outcome; anything else is a bug.
                assert_eq!(result.shots, result.shots_requested);
            }
            Err(e) => panic!("unexpected terminal error: {e}"),
        }
    }
    // 3 × 4000 shots on one 1-thread shard cannot all have finished
    // before the kill that immediately followed the submits.
    assert!(lost > 0, "at least one wide job must be stranded");
    let narrow_result = narrow.handle.wait();
    if narrow.shard == 0 {
        // Placed on the doomed shard: it must have been re-routed to
        // the capable survivor, not lost.
        let result = narrow_result.expect("narrow job survives on shard 1");
        assert_eq!(result.aggregate, solo(0, 200, 70));
    } else {
        assert!(narrow_result.is_ok());
    }
    let results = router.drain().unwrap();
    assert_eq!(results.len(), 4);
}

/// Work stealing moves one whole queued job to an idle shard, without
/// perturbing its aggregate.
#[test]
fn steal_moves_whole_job_bit_identically() {
    // Sticky placement pins every copy of one program to one shard,
    // piling a backlog there while the other shard idles.
    let router = Router::new(fleet(2, Placement::StickyByDigest));
    let first = router.submit(request("pile0", 1, 2000, 80)).unwrap();
    let victim = first.shard;
    let thief = 1 - victim;
    let mut handles = vec![first.handle];
    for i in 1..5 {
        let routed = router
            .submit(request(&format!("pile{i}"), 1, 300, 80 + i as u64))
            .unwrap();
        assert_eq!(routed.shard, victim, "sticky pins the pile to one shard");
        handles.push(routed.handle);
    }
    // The 1-thread victim is grinding pile0's 2000 shots; everything
    // behind it is unstarted and stealable.
    assert!(router.steal_once(1), "an idle shard and a backlog coexist");
    assert_eq!(router.stolen_jobs(), 1);
    let moved: Vec<_> = handles.iter().filter(|h| h.shard() == thief).collect();
    assert_eq!(moved.len(), 1, "exactly one whole job moved");
    for (i, handle) in handles.iter().enumerate() {
        let result = handle.wait().unwrap();
        let shots = if i == 0 { 2000 } else { 300 };
        assert_eq!(result.shots, shots);
        assert_eq!(
            result.aggregate,
            solo(1, shots, 80 + i as u64),
            "pile{i} diverged after the steal"
        );
    }
    router.drain().unwrap();
}

/// The background stealer drains a pile-up without explicit calls.
#[test]
fn background_stealer_balances_a_sticky_pile() {
    let router = Router::new(RouterConfig {
        steal: Some(StealConfig::default()),
        ..fleet(2, Placement::StickyByDigest)
    });
    let mut handles = Vec::new();
    for i in 0..8 {
        handles.push(
            router
                .submit(request(&format!("pile{i}"), 1, 500, 90 + i as u64))
                .unwrap()
                .handle,
        );
    }
    for (i, handle) in handles.iter().enumerate() {
        let result = handle.wait().unwrap();
        assert_eq!(
            result.aggregate,
            solo(1, 500, 90 + i as u64),
            "pile{i} diverged under background stealing"
        );
    }
    router.drain().unwrap();
}

/// Budget math: an over-budget submission is shed with the exact
/// retry-after figure, and completions refund the budget.
#[test]
fn over_budget_sheds_with_retry_after() {
    // Shots are sized so job "a" cannot race to completion (refunding
    // alice's budget) before the over-budget submission below lands —
    // tens of thousands of shots take milliseconds, the submit takes
    // microseconds.
    let door = FrontDoor::new(
        fleet(2, Placement::RoundRobin),
        AdmissionConfig {
            tenant_budget_shots: 100_000,
            quantum_shots: 32_000,
            fleet_window_shots: 1 << 30,
            weights: Vec::new(),
        },
    );
    let a = door
        .submit(request("a", 0, 80_000, 1).tenant("alice"))
        .unwrap();
    match door.submit(request("b", 0, 40_000, 2).tenant("alice")) {
        Err(JobError::OverBudget { retry_after_shots }) => {
            assert_eq!(retry_after_shots, 80_000 + 40_000 - 100_000);
        }
        other => panic!("expected OverBudget, got {other:?}"),
    }
    assert_eq!(door.shed_count(), 1);
    // Another tenant is unaffected.
    let b = door
        .submit(request("c", 0, 80_000, 3).tenant("bob"))
        .unwrap();
    a.wait().unwrap();
    // The finish hook refunds asynchronously right around wait()'s
    // return; poll briefly rather than racing it.
    let mut budget_freed = false;
    for _ in 0..1000 {
        if door.inflight_shots("alice") == 0 {
            budget_freed = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(budget_freed, "completion must refund the tenant budget");
    let retry = door
        .submit(request("b2", 0, 40_000, 2).tenant("alice"))
        .unwrap();
    retry.wait().unwrap();
    b.wait().unwrap();
    door.drain().unwrap();
}

/// The documented DRR starvation bound: while a hog floods the fleet, a
/// 1-shot tenant's queue wait (in dispatched shots) stays bounded by
/// the hog's quantum — never by the hog's backlog.
#[test]
fn drr_bounds_mouse_wait_under_hog_flood() {
    let quantum = 64u64;
    let hog_job = 32u64;
    let door = FrontDoor::new(
        fleet(2, Placement::RoundRobin),
        AdmissionConfig {
            tenant_budget_shots: 1 << 30,
            quantum_shots: quantum,
            fleet_window_shots: 64,
            weights: Vec::new(),
        },
    );
    let mut hog_jobs = Vec::new();
    for i in 0..60 {
        hog_jobs.push(
            door.submit(request(&format!("hog{i}"), 0, hog_job, i).tenant("hog"))
                .unwrap(),
        );
    }
    let mut mice = Vec::new();
    for i in 0..20 {
        mice.push(
            door.submit(request(&format!("mouse{i}"), 0, 1, 1000 + i).tenant("mouse"))
                .unwrap(),
        );
    }
    // Per DRR round the hog earns `quantum` deficit and can overshoot by
    // at most one whole job; the mouse is served at latest on its
    // queue's next visit, one round later. Twice that covers an
    // arrival that just missed its queue's turn.
    let bound = 2 * (quantum + hog_job);
    for (i, mouse) in mice.iter().enumerate() {
        mouse.wait().unwrap();
        let waited = mouse.dispatch_seq().expect("dispatched") - mouse.arrival_seq();
        assert!(
            waited <= bound,
            "mouse{i} waited {waited} dispatched shots (> bound {bound})"
        );
    }
    for hog in &hog_jobs {
        hog.wait().unwrap();
    }
    let log = door.dispatch_log();
    assert_eq!(log.len(), 80, "every admitted job dispatched exactly once");
    door.drain().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any kill schedule — random victim, random kill point in the
    /// submission stream, random placement — yields per-job aggregates
    /// bit-identical to the zero-failure (solo) run for every job that
    /// completes; and with an unconstrained fleet of ≥2 shards, every
    /// job completes.
    #[test]
    fn any_kill_schedule_is_bit_identical(
        jobs in proptest::collection::vec((0u8..4, 50u64..400, 0u64..1000), 2..7),
        shards in 2usize..=4,
        victim_pick in 0usize..4,
        kill_after in 0usize..7,
        placement_pick in 0u8..3,
    ) {
        let placement = match placement_pick {
            0 => Placement::RoundRobin,
            1 => Placement::LeastLoadedShots,
            _ => Placement::StickyByDigest,
        };
        let victim = victim_pick % shards;
        let kill_after = kill_after % (jobs.len() + 1);
        let plan = FaultPlan { victim, after_submits: kill_after };
        let router = Router::new(fleet(shards, placement));
        let mut handles = Vec::new();
        plan.fire_if_due(0, &router);
        for (i, (choice, shots, seed)) in jobs.iter().enumerate() {
            let routed = router
                .submit(request(&format!("job{i}"), *choice, *shots, *seed))
                .unwrap();
            handles.push(routed.handle);
            plan.fire_if_due(i + 1, &router);
        }
        for (i, handle) in handles.iter().enumerate() {
            let (choice, shots, seed) = jobs[i];
            let result = handle.wait().unwrap_or_else(|e| {
                panic!(
                    "job{i} lost ({e}) with an unconstrained survivor \
                     (shards={shards}, victim={victim}, kill_after={kill_after})"
                )
            });
            prop_assert_eq!(result.shots, shots, "job{} must run every shot", i);
            prop_assert_eq!(
                &result.aggregate,
                &solo(choice, shots, seed),
                "job{} diverged (shards={}, placement={:?}, victim={}, kill_after={})",
                i, shards, placement, victim, kill_after
            );
        }
        let results = router.drain().unwrap();
        prop_assert_eq!(results.len(), jobs.len());
    }
}

/// A fleet declared entirely by machine descriptions derives each
/// shard's capability profile from its description: the same
/// steer/reject behavior as hand-written profiles, driven by the
/// declarative surface.
#[test]
fn heterogeneous_fleet_from_machine_descriptions() {
    use quape_core::machdesc::{ChannelLayout, MachineDescription};

    // Shard 0: a 1-qubit fridge. Shard 1: a 12-qubit fridge.
    let mut small = MachineDescription::baseline();
    small.channels = ChannelLayout::Linear { qubits: Some(1) };
    let mut big = MachineDescription::multiprocessor(2);
    big.channels = ChannelLayout::Linear { qubits: Some(12) };
    let router = Router::new(RouterConfig {
        shard: ServerConfig {
            threads: 1,
            shot_quantum: 3,
            cache_capacity: 4,
            machine: None,
            obs: Default::default(),
            packer: None,
        },
        ..RouterConfig::heterogeneous(vec![small, big])
    });
    // feedback_chain(1, 8) touches qubit 1 — too wide for shard 0.
    for i in 0..3 {
        let routed = router
            .submit(request(&format!("wide{i}"), 2, 10, i))
            .unwrap();
        assert_eq!(routed.shard, 1, "only the 12-qubit machine is capable");
    }
    // An explicit 13-qubit config overflows both described machines.
    let c = cfg().with_num_qubits(13);
    let infeasible = JobRequest::new(
        "thirteen",
        JobSource::Program(conditional_x(0).unwrap()),
        c.clone(),
        coin(&c),
        4,
    );
    assert!(matches!(
        router.submit(infeasible),
        Err(JobError::NoCapableShard)
    ));
    // Explicit profiles win over descriptions: unconstrain shard 0.
    drop(router);
    let mut small2 = MachineDescription::baseline();
    small2.channels = ChannelLayout::Linear { qubits: Some(1) };
    let router = Router::new(RouterConfig {
        profiles: vec![ShardProfile::unconstrained()],
        shard: ServerConfig {
            threads: 1,
            shot_quantum: 3,
            cache_capacity: 4,
            machine: None,
            obs: Default::default(),
            packer: None,
        },
        placement: Placement::RoundRobin,
        ..RouterConfig::heterogeneous(vec![small2])
    });
    let routed = router.submit(request("wide", 2, 10, 99)).unwrap();
    assert_eq!(routed.shard, 0, "explicit profile overrides the machine");
    router.drain().unwrap();
}
