//! Trace-correctness suite: the lifecycle invariants every recorded
//! trace must satisfy — no quantum before accepted, exactly one
//! terminal per job, re-routed jobs placed on both their shards, a
//! stolen job terminating on its victim scope — plus determinism
//! (same-seed runs trace identically modulo timestamps) and the
//! obs-on/obs-off bit-identity differential.

use proptest::prelude::*;
use quape_core::{BatchAggregate, CompiledJob, QuapeConfig, ShotEngine};
use quape_isa::Program;
use quape_obs::{audit_complete, audit_lifecycle, flight_recorder, Recorder, TraceKind};
use quape_qpu::{BehavioralQpuFactory, MeasurementModel};
use quape_router::{FaultPlan, Placement, Router, RouterConfig, ShardStatus};
use quape_server::{JobRequest, JobServer, JobSource, ServerConfig};
use quape_workloads::feedback::{conditional_x, feedback_chain, mrce_feedback_chain};

fn cfg() -> QuapeConfig {
    QuapeConfig::superscalar(4)
}

fn coin(cfg: &QuapeConfig) -> BehavioralQpuFactory {
    BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 })
}

fn program(choice: u8) -> Program {
    match choice % 4 {
        0 => conditional_x(0).unwrap(),
        1 => feedback_chain(0, 5).unwrap(),
        2 => feedback_chain(1, 8).unwrap(),
        _ => mrce_feedback_chain(0, 6).unwrap(),
    }
}

fn solo(choice: u8, shots: u64, seed: u64) -> BatchAggregate {
    let c = cfg();
    let job = CompiledJob::compile(c.clone(), program(choice)).unwrap();
    ShotEngine::new(job, coin(&c))
        .base_seed(seed)
        .threads(1)
        .run(shots)
        .aggregate
}

fn request(name: &str, choice: u8, shots: u64, seed: u64) -> JobRequest {
    let c = cfg();
    let factory = coin(&c);
    JobRequest::new(name, JobSource::Program(program(choice)), c, factory, shots).base_seed(seed)
}

fn fleet(shards: usize, placement: Placement, recorder: Recorder) -> RouterConfig {
    RouterConfig {
        shards,
        placement,
        obs: recorder,
        shard: ServerConfig {
            threads: 1,
            shot_quantum: 3,
            cache_capacity: 4,
            machine: None,
            obs: Default::default(),
            packer: None,
        },
        ..RouterConfig::default()
    }
}

/// One traced single-thread batch run; returns the normalized event
/// stream (everything except wall-clock timestamps).
fn traced_batch_run(seed_base: u64) -> Vec<String> {
    let recorder = Recorder::new();
    let server = JobServer::new(ServerConfig {
        threads: 1,
        shot_quantum: 4,
        cache_capacity: 4,
        machine: None,
        packer: None,
        obs: recorder.scope(0),
    });
    for i in 0..6u64 {
        let _ = server
            .submit(
                request(&format!("j{i}"), (i % 4) as u8, 40 + i * 7, seed_base + i)
                    .tenant(if i % 2 == 0 { "even" } else { "odd" }),
            )
            .unwrap();
    }
    let results = server.run();
    assert_eq!(results.len(), 6);
    recorder
        .events()
        .iter()
        .map(|ev| format!("{:?}", ev.normalized()))
        .collect()
}

/// Two same-seed single-thread batch runs must record the same events
/// in the same order — the trace is as deterministic as the schedule
/// it observes, differing only in wall-clock fields.
#[test]
fn same_seed_batch_runs_trace_identically() {
    let a = traced_batch_run(500);
    let b = traced_batch_run(500);
    assert_eq!(a, b, "same-seed traces diverged");
    assert!(!a.is_empty());
    // And a different seed produces a different shot schedule but the
    // same lifecycle shape: both audit clean.
    let c = traced_batch_run(501);
    assert_eq!(a.len(), c.len(), "event counts are schedule-independent");
}

/// Tracing must not steer the schedule: the same jobs served with the
/// recorder on and off produce bit-identical aggregates.
#[test]
fn tracing_is_side_effect_free() {
    let run = |recorder: Recorder| -> Vec<BatchAggregate> {
        let router = Router::new(fleet(2, Placement::RoundRobin, recorder));
        let handles: Vec<_> = (0..6u64)
            .map(|i| {
                router
                    .submit(request(
                        &format!("j{i}"),
                        (i % 4) as u8,
                        60 + i * 11,
                        700 + i,
                    ))
                    .unwrap()
                    .handle
            })
            .collect();
        let aggs = handles
            .iter()
            .map(|h| h.wait().unwrap().aggregate)
            .collect();
        router.drain().unwrap();
        aggs
    };
    let observed = run(Recorder::new());
    let dark = run(Recorder::off());
    assert_eq!(observed, dark, "tracing steered the schedule");
    for (i, agg) in observed.iter().enumerate() {
        assert_eq!(
            agg,
            &solo((i % 4) as u8, 60 + i as u64 * 11, 700 + i as u64),
            "job {i} diverged from its solo oracle"
        );
    }
}

/// Kill a shard mid-backlog: the trace must show every re-routed job
/// placed on both shards, the victim's copies cancelled, and every
/// lifecycle complete.
#[test]
fn failover_trace_carries_both_shards() {
    let recorder = Recorder::new();
    let router = Router::new(fleet(3, Placement::RoundRobin, recorder.clone()));
    let mut handles = Vec::new();
    let mut victim = None;
    for i in 0..8u64 {
        let routed = router
            .submit(request(
                &format!("j{i}"),
                (i % 4) as u8,
                300 + i * 50,
                900 + i,
            ))
            .unwrap();
        victim.get_or_insert(routed.shard);
        handles.push(routed.handle);
    }
    let victim = victim.unwrap();
    router.kill_shard(victim);
    assert_eq!(router.shard_status(victim), ShardStatus::Down);
    for handle in &handles {
        handle.wait().unwrap();
    }
    let events = recorder.events();
    let audit = audit_complete(&events, 8)
        .unwrap_or_else(|e| panic!("failover trace failed: {e}\n{}", flight_recorder(&recorder)));
    assert_eq!(
        audit.rerouted as u64,
        router.recovered_jobs(),
        "every re-route the router counted is in the trace"
    );
    assert!(
        events
            .iter()
            .any(|ev| ev.kind == TraceKind::ShardDown && ev.a == victim as u64),
        "the kill itself is traced"
    );
    router.drain().unwrap();
}

/// A stolen job's trace ends on the victim scope with a `Stolen`
/// terminal (no result was published there) and runs to `Finalized` on
/// the thief's scope.
#[test]
fn steal_trace_terminates_on_both_scopes() {
    let recorder = Recorder::new();
    let router = Router::new(fleet(2, Placement::StickyByDigest, recorder.clone()));
    let first = router.submit(request("pile0", 1, 2000, 80)).unwrap();
    let victim = first.shard;
    let mut handles = vec![first.handle];
    for i in 1..5 {
        handles.push(
            router
                .submit(request(&format!("pile{i}"), 1, 300, 80 + i as u64))
                .unwrap()
                .handle,
        );
    }
    assert!(router.steal_once(1), "an idle shard and a backlog coexist");
    for handle in &handles {
        handle.wait().unwrap();
    }
    let events = recorder.events();
    audit_complete(&events, 5)
        .unwrap_or_else(|e| panic!("steal trace failed: {e}\n{}", flight_recorder(&recorder)));
    let stolen_on_victim = events
        .iter()
        .filter(|ev| ev.shard == victim as u32 && ev.kind == TraceKind::Stolen)
        .count();
    assert_eq!(stolen_on_victim, 1, "the victim traced the revocation");
    assert!(
        events.iter().any(|ev| ev.shard == quape_obs::FLEET_SCOPE
            && ev.kind == TraceKind::Stolen
            && ev.a == victim as u64),
        "the fleet traced the steal"
    );
    router.drain().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under random job mixes and a random kill point, the trace always
    /// audits clean: accepted-first, one terminal, re-routes placed on
    /// both shards — and every job still completes.
    #[test]
    fn trace_audits_clean_under_random_failover(
        jobs in proptest::collection::vec((0u8..4, 50u64..400, 0u64..1000), 2..7),
        kill_after in 1usize..7,
        victim in 0usize..3,
    ) {
        let recorder = Recorder::new();
        let router = Router::new(fleet(3, Placement::RoundRobin, recorder.clone()));
        let plan = FaultPlan { victim, after_submits: kill_after.min(jobs.len()) };
        let mut handles = Vec::new();
        for (i, (choice, shots, seed)) in jobs.iter().enumerate() {
            handles.push(
                router
                    .submit(request(&format!("p{i}"), *choice, *shots, *seed))
                    .unwrap()
                    .handle,
            );
            plan.fire_if_due(i + 1, &router);
        }
        for handle in &handles {
            handle.wait().unwrap();
        }
        let audit = audit_complete(&recorder.events(), jobs.len())
            .unwrap_or_else(|e| panic!("{e}\n{}", flight_recorder(&recorder)));
        prop_assert!(audit.jobs >= jobs.len());
        router.drain().unwrap();
        // The audit holds on the post-drain trace too (drain finalizes
        // nothing twice).
        audit_lifecycle(&recorder.events()).unwrap();
    }
}
