//! # quape-circuit — gate-level circuit IR and circuit-step scheduler
//!
//! The QuAPE compiler consumes quantum circuits expressed in this IR and
//! schedules them into *circuit steps* — the paper's unit of Quantum
//! Operation Level Parallelism (§3.2.1): a step contains all quantum
//! operations that start at the same timing point, and the step sequence
//! fixes the execution order of the program.
//!
//! The scheduler is ASAP (as-soon-as-possible) layering over qubit
//! occupancy: an operation starts at the earliest step at which all its
//! qubits are free. [`Barrier`](CircuitOp::Barrier)s force alignment, which
//! is how feed-forward boundaries are expressed before feedback-control
//! code generation.
//!
//! ```
//! use quape_circuit::Circuit;
//!
//! let mut c = Circuit::new(3);
//! c.y90(0)?.y90(1)?;        // step 0: two parallel rotations
//! c.cz(0, 2)?;              // step 1
//! c.cz(1, 2)?;              // step 2
//! c.ym90(0)?.ym90(1)?;      // steps 2–3 (ASAP packs q0 into step 2)
//! c.measure(2)?;            // step 3
//! let s = c.schedule();
//! assert_eq!(s.depth(), 4);
//! # Ok::<(), quape_circuit::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod op;
mod profile;
mod schedule;

pub use circuit::{Circuit, CircuitError};
pub use op::CircuitOp;
pub use profile::ParallelismProfile;
pub use schedule::{ScheduledCircuit, Step};
