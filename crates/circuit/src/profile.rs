//! Parallelism statistics over step widths.
//!
//! The superscalar evaluation (§7) hinges on each benchmark's
//! quantum-instruction count per circuit step (QICES); this profile
//! summarizes that distribution so benchmark generators can assert the
//! shape they were designed to have.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Distribution summary of operations-per-step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelismProfile {
    widths: Vec<usize>,
}

impl ParallelismProfile {
    /// Builds a profile from an iterator of step widths.
    pub fn from_widths(widths: impl IntoIterator<Item = usize>) -> Self {
        ParallelismProfile {
            widths: widths.into_iter().collect(),
        }
    }

    /// Step widths in execution order.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Number of steps.
    pub fn depth(&self) -> usize {
        self.widths.len()
    }

    /// Total operation count.
    pub fn total_ops(&self) -> usize {
        self.widths.iter().sum()
    }

    /// Widest step (peak QOLP).
    pub fn max_width(&self) -> usize {
        self.widths.iter().copied().max().unwrap_or(0)
    }

    /// Mean operations per step (average QICES).
    pub fn mean_width(&self) -> f64 {
        if self.widths.is_empty() {
            0.0
        } else {
            self.total_ops() as f64 / self.widths.len() as f64
        }
    }

    /// Fraction of steps whose width is at least `w`.
    pub fn fraction_at_least(&self, w: usize) -> f64 {
        if self.widths.is_empty() {
            return 0.0;
        }
        self.widths.iter().filter(|&&x| x >= w).count() as f64 / self.widths.len() as f64
    }
}

impl fmt::Display for ParallelismProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "depth={} ops={} mean_width={:.2} max_width={}",
            self.depth(),
            self.total_ops(),
            self.mean_width(),
            self.max_width()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_known_distribution() {
        let p = ParallelismProfile::from_widths([4, 2, 1, 1]);
        assert_eq!(p.depth(), 4);
        assert_eq!(p.total_ops(), 8);
        assert_eq!(p.max_width(), 4);
        assert!((p.mean_width() - 2.0).abs() < 1e-12);
        assert!((p.fraction_at_least(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_well_behaved() {
        let p = ParallelismProfile::from_widths([]);
        assert_eq!(p.depth(), 0);
        assert_eq!(p.max_width(), 0);
        assert_eq!(p.mean_width(), 0.0);
        assert_eq!(p.fraction_at_least(1), 0.0);
    }
}
