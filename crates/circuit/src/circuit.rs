//! The [`Circuit`] container and its builder methods.

use crate::op::CircuitOp;
use crate::schedule::ScheduledCircuit;
use quape_isa::{Angle, Gate1, Gate2, Qubit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while building a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// An operation referenced a qubit outside the circuit width.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: Qubit,
        /// The circuit width.
        num_qubits: u16,
    },
    /// A two-qubit gate used the same qubit twice.
    DuplicateQubit {
        /// The duplicated operand.
        qubit: Qubit,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "{qubit} out of range for a {num_qubits}-qubit circuit")
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "two-qubit gate uses {qubit} for both operands")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A quantum circuit: an ordered list of operations over `num_qubits`
/// qubits, prior to step scheduling.
///
/// Builder methods return `&mut Self` so construction chains:
///
/// ```
/// use quape_circuit::Circuit;
/// let mut c = Circuit::new(2);
/// c.h(0)?.cnot(0, 1)?.measure(1)?;
/// assert_eq!(c.len(), 3);
/// # Ok::<(), quape_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    num_qubits: u16,
    ops: Vec<CircuitOp>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u16) -> Self {
        Circuit {
            name: String::from("circuit"),
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Creates an empty, named circuit.
    pub fn named(name: impl Into<String>, num_qubits: u16) -> Self {
        Circuit {
            name: name.into(),
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// The circuit name (used by benchmark registries and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// Number of operations (including barriers).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in program order.
    pub fn ops(&self) -> &[CircuitOp] {
        &self.ops
    }

    /// Number of non-barrier operations.
    pub fn gate_count(&self) -> usize {
        self.ops.iter().filter(|o| !o.is_barrier()).count()
    }

    /// Number of measurement operations.
    pub fn measure_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, CircuitOp::Measure(_)))
            .count()
    }

    fn check(&self, q: Qubit) -> Result<Qubit, CircuitError> {
        if q.index() < self.num_qubits {
            Ok(q)
        } else {
            Err(CircuitError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits,
            })
        }
    }

    /// Appends an arbitrary operation.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range qubits and two-qubit gates with equal operands.
    pub fn push(&mut self, op: CircuitOp) -> Result<&mut Self, CircuitError> {
        match &op {
            CircuitOp::Gate1(_, q) | CircuitOp::Measure(q) => {
                self.check(*q)?;
            }
            CircuitOp::Gate2(_, a, b) => {
                self.check(*a)?;
                self.check(*b)?;
                if a == b {
                    return Err(CircuitError::DuplicateQubit { qubit: *a });
                }
            }
            CircuitOp::Barrier(qs) => {
                for q in qs {
                    self.check(*q)?;
                }
            }
        }
        self.ops.push(op);
        Ok(self)
    }

    /// Appends a single-qubit gate.
    pub fn gate1(&mut self, gate: Gate1, q: u16) -> Result<&mut Self, CircuitError> {
        self.push(CircuitOp::Gate1(gate, Qubit::new(q)))
    }

    /// Appends a two-qubit gate.
    pub fn gate2(&mut self, gate: Gate2, a: u16, b: u16) -> Result<&mut Self, CircuitError> {
        self.push(CircuitOp::Gate2(gate, Qubit::new(a), Qubit::new(b)))
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::H, q)
    }

    /// Appends a Pauli X.
    pub fn x(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::X, q)
    }

    /// Appends a Pauli Y.
    pub fn y(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::Y, q)
    }

    /// Appends a Pauli Z.
    pub fn z(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::Z, q)
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::S, q)
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::Sdg, q)
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::T, q)
    }

    /// Appends a T† gate.
    pub fn tdg(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::Tdg, q)
    }

    /// Appends a +π/2 X rotation.
    pub fn x90(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::X90, q)
    }

    /// Appends a −π/2 X rotation.
    pub fn xm90(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::Xm90, q)
    }

    /// Appends a +π/2 Y rotation.
    pub fn y90(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::Y90, q)
    }

    /// Appends a −π/2 Y rotation.
    pub fn ym90(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::Ym90, q)
    }

    /// Appends an X rotation by `theta` radians (discretized to 2π/32).
    pub fn rx(&mut self, q: u16, theta: f64) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::Rx(Angle::from_radians(theta)), q)
    }

    /// Appends a Y rotation by `theta` radians (discretized to 2π/32).
    pub fn ry(&mut self, q: u16, theta: f64) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::Ry(Angle::from_radians(theta)), q)
    }

    /// Appends a Z rotation by `theta` radians (discretized to 2π/32).
    pub fn rz(&mut self, q: u16, theta: f64) -> Result<&mut Self, CircuitError> {
        self.gate1(Gate1::Rz(Angle::from_radians(theta)), q)
    }

    /// Appends a CNOT (control, target).
    pub fn cnot(&mut self, control: u16, target: u16) -> Result<&mut Self, CircuitError> {
        self.gate2(Gate2::Cnot, control, target)
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: u16, b: u16) -> Result<&mut Self, CircuitError> {
        self.gate2(Gate2::Cz, a, b)
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: u16, b: u16) -> Result<&mut Self, CircuitError> {
        self.gate2(Gate2::Swap, a, b)
    }

    /// Appends a measurement.
    pub fn measure(&mut self, q: u16) -> Result<&mut Self, CircuitError> {
        self.push(CircuitOp::Measure(Qubit::new(q)))
    }

    /// Appends a barrier across all qubits.
    pub fn barrier_all(&mut self) -> &mut Self {
        self.ops.push(CircuitOp::Barrier(Vec::new()));
        self
    }

    /// Appends a barrier across the listed qubits.
    pub fn barrier(&mut self, qubits: &[u16]) -> Result<&mut Self, CircuitError> {
        let qs: Vec<Qubit> = qubits.iter().map(|&q| Qubit::new(q)).collect();
        self.push(CircuitOp::Barrier(qs))
    }

    /// Appends every operation of `other` (widths must be compatible).
    ///
    /// # Errors
    ///
    /// Fails if `other` references a qubit outside this circuit's width.
    pub fn append(&mut self, other: &Circuit) -> Result<&mut Self, CircuitError> {
        for op in other.ops() {
            self.push(op.clone())?;
        }
        Ok(self)
    }

    /// Schedules the circuit into circuit steps (ASAP layering).
    pub fn schedule(&self) -> ScheduledCircuit {
        ScheduledCircuit::from_circuit(self)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} qubits, {} ops)",
            self.name,
            self.num_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0)
            .unwrap()
            .cnot(0, 1)
            .unwrap()
            .cz(1, 2)
            .unwrap()
            .measure(2)
            .unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.measure_count(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut c = Circuit::new(2);
        let err = c.h(2).unwrap_err();
        assert_eq!(
            err,
            CircuitError::QubitOutOfRange {
                qubit: Qubit::new(2),
                num_qubits: 2
            }
        );
        let err = c.barrier(&[0, 5]).unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { .. }));
    }

    #[test]
    fn duplicate_two_qubit_operand_rejected() {
        let mut c = Circuit::new(2);
        let err = c.cnot(1, 1).unwrap_err();
        assert_eq!(
            err,
            CircuitError::DuplicateQubit {
                qubit: Qubit::new(1)
            }
        );
    }

    #[test]
    fn append_merges_programs() {
        let mut a = Circuit::new(2);
        a.h(0).unwrap();
        let mut b = Circuit::new(2);
        b.x(1).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn append_respects_width() {
        let mut a = Circuit::new(1);
        let mut b = Circuit::new(2);
        b.x(1).unwrap();
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn rotations_discretize() {
        let mut c = Circuit::new(1);
        c.rx(0, std::f64::consts::FRAC_PI_2).unwrap();
        match &c.ops()[0] {
            CircuitOp::Gate1(Gate1::Rx(a), _) => assert_eq!(a.index(), 8),
            other => panic!("unexpected {other}"),
        }
    }
}
