//! ASAP scheduling of circuits into circuit steps.

use crate::circuit::Circuit;
use crate::op::CircuitOp;
use crate::profile::ParallelismProfile;
use quape_isa::{OpTimings, Qubit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One circuit step: all operations that start at the same timing point.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Step {
    ops: Vec<CircuitOp>,
}

impl Step {
    /// Operations starting in this step.
    pub fn ops(&self) -> &[CircuitOp] {
        &self.ops
    }

    /// Number of operations starting in this step (the paper's QICES when
    /// the step is lowered 1:1 to quantum instructions).
    pub fn width(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations start in this step.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The step's duration: the maximum duration of its operations (the
    /// QPU executes a step fully in parallel, §3.2.2).
    pub fn duration_ns(&self, timings: &OpTimings) -> u64 {
        self.ops
            .iter()
            .filter_map(|o| o.to_quantum_op())
            .map(|op| timings.duration_of(&op))
            .max()
            .unwrap_or(0)
    }

    /// True if the step contains a measurement.
    pub fn has_measurement(&self) -> bool {
        self.ops.iter().any(|o| matches!(o, CircuitOp::Measure(_)))
    }
}

/// A circuit scheduled into steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledCircuit {
    name: String,
    num_qubits: u16,
    steps: Vec<Step>,
}

impl ScheduledCircuit {
    /// ASAP-schedules a circuit: each operation starts at the earliest step
    /// in which all of its qubits are free; barriers align their qubits.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.num_qubits() as usize;
        // Next free step per qubit.
        let mut next_free = vec![0usize; n];
        let mut steps: Vec<Step> = Vec::new();
        for op in circuit.ops() {
            match op {
                CircuitOp::Barrier(qs) => {
                    let fence = if qs.is_empty() {
                        next_free.iter().copied().max().unwrap_or(0)
                    } else {
                        qs.iter()
                            .map(|q| next_free[q.index() as usize])
                            .max()
                            .unwrap_or(0)
                    };
                    if qs.is_empty() {
                        for f in next_free.iter_mut() {
                            *f = fence;
                        }
                    } else {
                        for q in qs {
                            next_free[q.index() as usize] = fence;
                        }
                    }
                }
                real => {
                    let qubits: Vec<Qubit> = real.qubits();
                    let at = qubits
                        .iter()
                        .map(|q| next_free[q.index() as usize])
                        .max()
                        .unwrap_or(0);
                    while steps.len() <= at {
                        steps.push(Step::default());
                    }
                    steps[at].ops.push(real.clone());
                    for q in &qubits {
                        next_free[q.index() as usize] = at + 1;
                    }
                }
            }
        }
        ScheduledCircuit {
            name: circuit.name().to_string(),
            num_qubits: circuit.num_qubits(),
            steps,
        }
    }

    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// The steps, in execution order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Circuit depth in steps.
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// Total number of operations.
    pub fn op_count(&self) -> usize {
        self.steps.iter().map(Step::width).sum()
    }

    /// Parallelism statistics over the step widths.
    pub fn profile(&self) -> ParallelismProfile {
        ParallelismProfile::from_widths(self.steps.iter().map(Step::width))
    }

    /// Total QPU execution time: the sum of step durations.
    pub fn qpu_time_ns(&self, timings: &OpTimings) -> u64 {
        self.steps.iter().map(|s| s.duration_ns(timings)).sum()
    }

    /// Checks the fundamental schedule invariant: within a step, no qubit
    /// is used by two operations. Returns the first violating qubit.
    pub fn find_step_conflict(&self) -> Option<(usize, Qubit)> {
        for (i, step) in self.steps.iter().enumerate() {
            let mut used = std::collections::HashSet::new();
            for op in step.ops() {
                for q in op.qubits() {
                    if !used.insert(q) {
                        return Some((i, q));
                    }
                }
            }
        }
        None
    }
}

impl fmt::Display for ScheduledCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} — {} steps", self.name, self.steps.len())?;
        for (i, step) in self.steps.iter().enumerate() {
            let ops: Vec<String> = step.ops().iter().map(|o| o.to_string()).collect();
            writeln!(f, "  step {i}: {}", ops.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_isa::Gate1;

    #[test]
    fn independent_gates_share_a_step() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().h(1).unwrap();
        let s = c.schedule();
        assert_eq!(s.depth(), 1);
        assert_eq!(s.steps()[0].width(), 2);
    }

    #[test]
    fn dependent_gates_serialize() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().cnot(0, 1).unwrap().h(1).unwrap();
        let s = c.schedule();
        assert_eq!(s.depth(), 3);
        assert_eq!(s.profile().max_width(), 1);
    }

    #[test]
    fn asap_packs_early() {
        // q2's H can run in step 0 even though it appears last.
        let mut c = Circuit::new(3);
        c.h(0).unwrap().cnot(0, 1).unwrap().h(2).unwrap();
        let s = c.schedule();
        assert_eq!(s.depth(), 2);
        assert_eq!(s.steps()[0].width(), 2);
    }

    #[test]
    fn barrier_all_aligns_everything() {
        let mut c = Circuit::new(3);
        c.h(0).unwrap();
        c.barrier_all();
        c.h(2).unwrap();
        let s = c.schedule();
        // Without the barrier both H's would share step 0.
        assert_eq!(s.depth(), 2);
        assert_eq!(
            s.steps()[1].ops()[0],
            CircuitOp::Gate1(Gate1::H, Qubit::new(2))
        );
    }

    #[test]
    fn selective_barrier_only_fences_listed_qubits() {
        let mut c = Circuit::new(3);
        c.h(0).unwrap();
        c.barrier(&[0, 1]).unwrap();
        c.h(1).unwrap(); // fenced to step 1
        c.h(2).unwrap(); // free to run in step 0
        let s = c.schedule();
        assert_eq!(s.depth(), 2);
        assert_eq!(s.steps()[0].width(), 2);
        assert_eq!(s.steps()[1].width(), 1);
    }

    #[test]
    fn step_duration_is_max_of_member_ops() {
        let t = OpTimings::paper();
        let mut c = Circuit::new(3);
        c.h(0).unwrap().cnot(1, 2).unwrap();
        let s = c.schedule();
        assert_eq!(s.steps()[0].duration_ns(&t), 40);
        assert_eq!(s.qpu_time_ns(&t), 40);
    }

    #[test]
    fn measurement_flagged() {
        let mut c = Circuit::new(1);
        c.measure(0).unwrap();
        let s = c.schedule();
        assert!(s.steps()[0].has_measurement());
        assert_eq!(s.steps()[0].duration_ns(&OpTimings::paper()), 600);
    }

    #[test]
    fn no_step_conflicts_in_valid_schedule() {
        let mut c = Circuit::new(4);
        for i in 0..4 {
            c.h(i).unwrap();
        }
        c.cnot(0, 1).unwrap().cnot(2, 3).unwrap();
        let s = c.schedule();
        assert_eq!(s.find_step_conflict(), None);
    }

    #[test]
    fn empty_circuit_schedules_to_zero_steps() {
        let c = Circuit::new(3);
        let s = c.schedule();
        assert_eq!(s.depth(), 0);
        assert_eq!(s.op_count(), 0);
        assert_eq!(s.qpu_time_ns(&OpTimings::paper()), 0);
    }
}
