//! Circuit-level operations.

use quape_isa::{Gate1, Gate2, QuantumOp, Qubit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One operation in a circuit, in program order (pre-scheduling).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CircuitOp {
    /// A single-qubit gate.
    Gate1(Gate1, Qubit),
    /// A two-qubit gate.
    Gate2(Gate2, Qubit, Qubit),
    /// A measurement.
    Measure(Qubit),
    /// A scheduling barrier over the listed qubits: operations after the
    /// barrier start no earlier than the step after every listed qubit's
    /// last pre-barrier operation. An empty list means "all qubits".
    Barrier(Vec<Qubit>),
}

impl CircuitOp {
    /// Qubits touched by the operation (empty for an all-qubit barrier).
    pub fn qubits(&self) -> Vec<Qubit> {
        match self {
            CircuitOp::Gate1(_, q) | CircuitOp::Measure(q) => vec![*q],
            CircuitOp::Gate2(_, a, b) => vec![*a, *b],
            CircuitOp::Barrier(qs) => qs.clone(),
        }
    }

    /// True for barriers (scheduling pseudo-ops that issue nothing).
    pub fn is_barrier(&self) -> bool {
        matches!(self, CircuitOp::Barrier(_))
    }

    /// Converts a real operation into the ISA-level [`QuantumOp`].
    ///
    /// Returns `None` for barriers, which have no hardware counterpart.
    pub fn to_quantum_op(&self) -> Option<QuantumOp> {
        match self {
            CircuitOp::Gate1(g, q) => Some(QuantumOp::Gate1(*g, *q)),
            CircuitOp::Gate2(g, a, b) => Some(QuantumOp::Gate2(*g, *a, *b)),
            CircuitOp::Measure(q) => Some(QuantumOp::Measure(*q)),
            CircuitOp::Barrier(_) => None,
        }
    }
}

impl fmt::Display for CircuitOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitOp::Gate1(g, q) => write!(f, "{g} {q}"),
            CircuitOp::Gate2(g, a, b) => write!(f, "{g} {a}, {b}"),
            CircuitOp::Measure(q) => write!(f, "MEAS {q}"),
            CircuitOp::Barrier(qs) if qs.is_empty() => write!(f, "BARRIER *"),
            CircuitOp::Barrier(qs) => {
                let names: Vec<String> = qs.iter().map(|q| q.to_string()).collect();
                write!(f, "BARRIER {}", names.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubits_of_each_variant() {
        let q = |i| Qubit::new(i);
        assert_eq!(CircuitOp::Gate1(Gate1::H, q(1)).qubits(), vec![q(1)]);
        assert_eq!(
            CircuitOp::Gate2(Gate2::Cz, q(0), q(2)).qubits(),
            vec![q(0), q(2)]
        );
        assert_eq!(CircuitOp::Measure(q(3)).qubits(), vec![q(3)]);
        assert_eq!(CircuitOp::Barrier(vec![]).qubits(), vec![]);
    }

    #[test]
    fn conversion_to_quantum_op() {
        let q = |i| Qubit::new(i);
        assert!(CircuitOp::Barrier(vec![]).to_quantum_op().is_none());
        assert_eq!(
            CircuitOp::Gate1(Gate1::X, q(0)).to_quantum_op(),
            Some(QuantumOp::Gate1(Gate1::X, q(0)))
        );
        assert_eq!(
            CircuitOp::Measure(q(1)).to_quantum_op(),
            Some(QuantumOp::Measure(q(1)))
        );
    }

    #[test]
    fn display_forms() {
        let q = |i| Qubit::new(i);
        assert_eq!(CircuitOp::Gate1(Gate1::H, q(0)).to_string(), "H q0");
        assert_eq!(CircuitOp::Barrier(vec![]).to_string(), "BARRIER *");
        assert_eq!(
            CircuitOp::Barrier(vec![q(1), q(2)]).to_string(),
            "BARRIER q1, q2"
        );
    }
}
