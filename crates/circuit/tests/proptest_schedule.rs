//! Property tests for the ASAP step scheduler.

use proptest::prelude::*;
use quape_circuit::{Circuit, CircuitOp};
use quape_isa::{Gate1, Gate2};

#[derive(Debug, Clone)]
enum RandOp {
    G1(u16),
    G2(u16, u16),
    Meas(u16),
    BarrierAll,
}

fn arb_ops(num_qubits: u16) -> impl Strategy<Value = Vec<RandOp>> {
    let q = 0..num_qubits;
    let op = prop_oneof![
        4 => q.clone().prop_map(RandOp::G1),
        3 => (0..num_qubits, 0..num_qubits).prop_map(|(a, b)| RandOp::G2(a, b)),
        1 => q.prop_map(RandOp::Meas),
        1 => Just(RandOp::BarrierAll),
    ];
    proptest::collection::vec(op, 0..120)
}

fn build(num_qubits: u16, ops: &[RandOp]) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for op in ops {
        match *op {
            RandOp::G1(q) => {
                c.gate1(Gate1::H, q).expect("in range");
            }
            RandOp::G2(a, b) if a != b => {
                c.gate2(Gate2::Cnot, a, b).expect("in range");
            }
            RandOp::G2(..) => {}
            RandOp::Meas(q) => {
                c.measure(q).expect("in range");
            }
            RandOp::BarrierAll => {
                c.barrier_all();
            }
        }
    }
    c
}

proptest! {
    /// No step ever uses a qubit twice.
    #[test]
    fn schedule_has_no_step_conflicts(ops in arb_ops(8)) {
        let c = build(8, &ops);
        let s = c.schedule();
        prop_assert_eq!(s.find_step_conflict(), None);
    }

    /// Scheduling preserves every non-barrier operation exactly once.
    #[test]
    fn schedule_preserves_op_multiset(ops in arb_ops(6)) {
        let c = build(6, &ops);
        let s = c.schedule();
        let mut original: Vec<CircuitOp> =
            c.ops().iter().filter(|o| !o.is_barrier()).cloned().collect();
        let mut scheduled: Vec<CircuitOp> =
            s.steps().iter().flat_map(|st| st.ops().iter().cloned()).collect();
        let key = |o: &CircuitOp| format!("{o}");
        original.sort_by_key(key);
        scheduled.sort_by_key(key);
        prop_assert_eq!(original, scheduled);
    }

    /// Per-qubit program order is preserved: two ops sharing a qubit appear
    /// in the same relative order in the step sequence.
    #[test]
    fn schedule_preserves_per_qubit_order(ops in arb_ops(5)) {
        let c = build(5, &ops);
        let s = c.schedule();
        // Record (step, arrival) for each op occurrence per qubit.
        let mut per_qubit: Vec<Vec<usize>> = vec![Vec::new(); 5];
        for (step_idx, step) in s.steps().iter().enumerate() {
            for op in step.ops() {
                for q in op.qubits() {
                    per_qubit[q.index() as usize].push(step_idx);
                }
            }
        }
        // Within a step a qubit appears at most once (checked above), so
        // step indices per qubit must be strictly increasing *as a set*;
        // compare against the program-order walk.
        let mut next_free = [0usize; 5];
        for op in c.ops().iter().filter(|o| !o.is_barrier()) {
            let at = op.qubits().iter().map(|q| next_free[q.index() as usize]).max().unwrap_or(0);
            for q in op.qubits() {
                prop_assert!(at >= next_free[q.index() as usize].saturating_sub(1));
                next_free[q.index() as usize] = at + 1;
            }
        }
    }

    /// Depth is bounded by op count and reaches it for a serial chain.
    #[test]
    fn depth_bounds(ops in arb_ops(4)) {
        let c = build(4, &ops);
        let s = c.schedule();
        prop_assert!(s.depth() <= c.gate_count());
        prop_assert_eq!(s.op_count(), c.gate_count());
    }
}

#[test]
fn serial_chain_reaches_depth_bound() {
    let mut c = Circuit::new(1);
    for _ in 0..10 {
        c.x(0).unwrap();
    }
    assert_eq!(c.schedule().depth(), 10);
}
