//! The QuAPE machine, split into a compile-once job and per-shot state.
//!
//! [`CompiledJob`] owns the immutable, shareable artifacts of a run — the
//! validated [`QuapeConfig`], the block-wrapped [`Program`] (with its
//! block information table), and the [`ChannelMap`] — all behind `Arc` so
//! that cloning a job is O(1). A [`Shot`] is the mutable machine state of
//! one execution (processors, scheduler, MRR/DAQ/AWG devices, PRNG,
//! counters) built from a job in O(state) instead of
//! O(revalidate-everything); the multi-shot experiments of §7/§8 construct
//! one job and then run thousands of shots from it (see
//! [`crate::ShotEngine`]).
//!
//! [`Machine`] remains the single-shot convenience wrapper the rest of
//! the workspace was written against: `Machine::new(cfg, program, qpu)`
//! compiles a job and builds its one shot.

use crate::backend::QpuBackend;
use crate::config::QuapeConfig;
use crate::devices::{AwgBank, ChannelMap, Daq, MeasurementFile};
use crate::processor::{Env, Processor, StallInfo};
use crate::report::{MachineStats, RunReport, StepDispatch, StopReason};
use crate::scheduler::Scheduler;
use quape_isa::{
    BlockInfo, BlockInfoTable, Dependency, Instruction, Program, ProgramError, SHARED_REG_COUNT,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// How a run loop advances the machine clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Tick every component on every clock cycle. Kept as the
    /// differential-testing oracle for [`StepMode::EventDriven`].
    Cycle,
    /// Cycle-accurate discrete-event execution: when every component is
    /// provably idle this cycle, jump the clock straight to the earliest
    /// event horizon (DAQ delivery, timing-queue head, scheduler fill
    /// completion, switch deadline) instead of stepping through the idle
    /// span. Produces bit-identical [`RunReport`]s to [`StepMode::Cycle`].
    #[default]
    EventDriven,
}

/// How much of a run a [`RunReport`] materialises.
///
/// The per-shot event vectors (`wait_cycles`, `issued`, `playback`,
/// `step_dispatches`) are what figure-level analysis reads, but batch
/// and serving paths reduce every shot to a
/// [`ShotSummary`](crate::ShotSummary) of counters —
/// materialising the vectors there is pure allocation cost. Lean mode
/// skips them while keeping every counter (and therefore every
/// [`BatchAggregate`](crate::BatchAggregate)) bit-identical to a full
/// run: execution is unchanged, only the record-keeping is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportMode {
    /// Materialise everything — the default for [`Machine`]/[`Shot`]
    /// figure-level runs.
    #[default]
    Full,
    /// Summary-only: leave `wait_cycles`, `issued`, `playback` and
    /// `step_dispatches` empty in the report; counters (`issued_ops`,
    /// `stats.awg_triggers`, `stats.*`) stay exact. The default for
    /// [`ShotEngine`](crate::ShotEngine) batches.
    Lean,
}

/// A per-shot event trace: a plain `Vec` in full mode, a no-op sink in
/// lean mode. Backs the report's `wait_cycles` (pushed from the
/// processors' stall paths and bulk-filled by the event-driven skip)
/// and `step_dispatches` (pushed per quantum dispatch) vectors.
#[derive(Debug, Default)]
pub(crate) struct EventSink<T> {
    events: Vec<T>,
    record: bool,
}

impl<T> EventSink<T> {
    fn new(record: bool) -> Self {
        EventSink {
            events: Vec::new(),
            record,
        }
    }

    pub(crate) fn push(&mut self, event: T) {
        if self.record {
            self.events.push(event);
        }
    }

    fn into_vec(self) -> Vec<T> {
        self.events
    }
}

impl EventSink<u64> {
    /// Bulk-accounts a skipped span `start..end` during which `waiting`
    /// processors were measure-wait stalled — exactly the entries a
    /// cycle-stepped run would have pushed one by one.
    fn extend_span(&mut self, start: u64, end: u64, waiting: usize) {
        if !self.record || waiting == 0 {
            return;
        }
        if waiting == 1 {
            self.events.extend(start..end);
        } else {
            self.events.reserve(waiting * (end - start) as usize);
            for cyc in start..end {
                for _ in 0..waiting {
                    self.events.push(cyc);
                }
            }
        }
    }
}

/// One program block's instruction words, pre-cut at job compilation and
/// shared by every shot: cache fills clone the `Arc` instead of copying
/// the words, so per-shot fill cost is O(blocks), not O(instructions).
#[derive(Debug, Clone)]
pub(crate) struct BlockCode {
    /// Absolute address of the block's first instruction.
    pub base: u32,
    /// The block's instruction words.
    pub words: Arc<[Instruction]>,
}

/// Errors from machine construction.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The configuration is inconsistent.
    Config(String),
    /// The program failed validation.
    Program(ProgramError),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            MachineError::Program(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<ProgramError> for MachineError {
    fn from(e: ProgramError) -> Self {
        MachineError::Program(e)
    }
}

/// A recorded measurement outcome (time, qubit, value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MeasurementRecord {
    /// Issue time of the measurement operation.
    pub time_ns: u64,
    /// Measured qubit.
    pub qubit: quape_isa::Qubit,
    /// Classical outcome.
    pub value: bool,
}

/// Wraps a block-less program into a single implicit block so the
/// scheduler always has a table to work from.
fn ensure_blocks(program: Program) -> Result<Program, ProgramError> {
    if !program.blocks().is_empty() {
        return Ok(program);
    }
    let len = program.len() as u32;
    let mut table = BlockInfoTable::new();
    table.push(BlockInfo::new("main", 0..len, Dependency::none()))?;
    Program::with_parts(
        program.instructions().to_vec(),
        table,
        program.step_map().to_vec(),
    )
}

/// The immutable, shareable half of a run: validated configuration,
/// block-wrapped program, and channel map, each behind an `Arc`.
///
/// Compile once, then build any number of [`Shot`]s (possibly from many
/// threads — a job is `Send + Sync` and clones in O(1)).
///
/// ```
/// use quape_core::{CompiledJob, QuapeConfig};
/// use quape_qpu::{BehavioralQpu, MeasurementModel};
/// use quape_isa::assemble;
///
/// let program = assemble("0 H q0\n0 H q1\n2 CNOT q0, q1\nSTOP\n")?;
/// let job = CompiledJob::compile(QuapeConfig::superscalar(4), program)?;
/// for shot_index in 0..4u64 {
///     let qpu = BehavioralQpu::new(job.cfg().timings, MeasurementModel::AlwaysZero, shot_index);
///     let report = job.shot(Box::new(qpu), shot_index).run();
///     assert_eq!(report.issued_count(), 3);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledJob {
    cfg: Arc<QuapeConfig>,
    program: Arc<Program>,
    code: Arc<[BlockCode]>,
    chan: Arc<ChannelMap>,
    num_qubits: u16,
}

impl CompiledJob {
    /// Validates `cfg` and `program` once and freezes the shareable
    /// artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Config`] for inconsistent configurations
    /// (including a `num_qubits` override smaller than what the program
    /// touches) and [`MachineError::Program`] when wrapping a block-less
    /// program fails.
    pub fn compile(cfg: QuapeConfig, program: Program) -> Result<Self, MachineError> {
        cfg.validate().map_err(MachineError::Config)?;
        let program = ensure_blocks(program)?;
        let scanned = program.num_qubits().max(1);
        let num_qubits = match cfg.num_qubits {
            None => scanned,
            Some(n) if n >= scanned => n,
            Some(n) => {
                return Err(MachineError::Config(format!(
                "num_qubits override {n} is smaller than the {scanned} qubits the program touches"
            )))
            }
        };
        let chan = match cfg.readout_lines {
            None => ChannelMap::linear(num_qubits),
            Some(lines) => ChannelMap::multiplexed(num_qubits, lines),
        };
        let code: Arc<[BlockCode]> = program
            .blocks()
            .iter()
            .map(|(_, info)| BlockCode {
                base: info.range.start,
                words: program.instructions()[info.range.start as usize..info.range.end as usize]
                    .into(),
            })
            .collect();
        Ok(CompiledJob {
            cfg: Arc::new(cfg),
            program: Arc::new(program),
            code,
            chan: Arc::new(chan),
            num_qubits,
        })
    }

    /// The validated configuration.
    pub fn cfg(&self) -> &QuapeConfig {
        &self.cfg
    }

    /// Stable content digest of the compiled job: the program's
    /// [`digest`](Program::digest) combined with the configuration's
    /// [`content_digest`](QuapeConfig::content_digest).
    ///
    /// Two jobs compiled from structurally equal programs under
    /// execution-equivalent configurations hash identically across
    /// processes, so the digest is a sound compile-cache key. The
    /// config's `seed` is deliberately excluded — it is a runtime
    /// parameter (batch runs override it per request), not part of the
    /// compiled artifact.
    pub fn digest(&self) -> u64 {
        let mut h = quape_isa::Fnv64::new();
        h.write_u64(self.program.digest().0)
            .write_u64(self.cfg.content_digest());
        h.finish()
    }

    /// The block-wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The block information table the scheduler works from.
    pub fn blocks(&self) -> &BlockInfoTable {
        self.program.blocks()
    }

    /// The qubit→channel map.
    pub fn channel_map(&self) -> &ChannelMap {
        &self.chan
    }

    /// Number of qubits the setup is sized for.
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// Builds the per-shot machine state for one execution, driving `qpu`
    /// and seeding the shot's PRNG (DAQ jitter) with `rng_seed`.
    pub fn shot(&self, qpu: Box<dyn QpuBackend>, rng_seed: u64) -> Shot {
        let cfg = &self.cfg;
        let mut processors: Vec<Processor> = (0..cfg.num_processors).map(Processor::new).collect();
        let mut scheduler = Scheduler::new(&self.program);
        // Pre-task load of the first num_processors blocks (§7).
        scheduler.initial_load(&mut processors, &self.code, cfg.num_processors);
        let stats = MachineStats {
            processors: vec![Default::default(); cfg.num_processors],
            ..Default::default()
        };
        Shot {
            job: self.clone(),
            processors,
            scheduler,
            mrr: MeasurementFile::new(),
            daq: Daq::new(cfg.daq_demod_slots),
            awg: AwgBank::new(cfg.timings),
            qpu,
            rng: SmallRng::seed_from_u64(rng_seed),
            shared_regs: [0; SHARED_REG_COUNT],
            cycle: 0,
            halt: false,
            error: false,
            stats,
            step_dispatches: EventSink::new(true),
            wait_cycles: EventSink::new(true),
            late_issues: 0,
            late_cycles: 0,
            measurements: Vec::new(),
            skip_scratch: Vec::with_capacity(cfg.num_processors),
        }
    }
}

/// The mutable state of one execution: processors, scheduler, devices,
/// QPU, PRNG, and statistics. Built from a [`CompiledJob`]; stepped at
/// clock-cycle granularity.
pub struct Shot {
    job: CompiledJob,
    processors: Vec<Processor>,
    scheduler: Scheduler,
    mrr: MeasurementFile,
    daq: Daq,
    awg: AwgBank,
    qpu: Box<dyn QpuBackend>,
    rng: SmallRng,
    shared_regs: [i32; SHARED_REG_COUNT],
    cycle: u64,
    halt: bool,
    error: bool,
    stats: MachineStats,
    step_dispatches: EventSink<StepDispatch>,
    wait_cycles: EventSink<u64>,
    late_issues: u64,
    late_cycles: u64,
    measurements: Vec<MeasurementRecord>,
    /// Scratch for [`Shot::try_skip`]'s per-processor stall verdicts
    /// (allocated once per shot, reused across skip checks).
    skip_scratch: Vec<StallInfo>,
}

impl Shot {
    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The job this shot executes.
    pub fn job(&self) -> &CompiledJob {
        &self.job
    }

    /// Selects how much of the run the report materialises (see
    /// [`ReportMode`]). Call before stepping: events recorded while the
    /// previous mode was in force are kept as-is.
    pub fn report_mode(mut self, mode: ReportMode) -> Self {
        let lean = mode == ReportMode::Lean;
        self.wait_cycles.record = !lean;
        self.step_dispatches.record = !lean;
        self.awg.set_record_timeline(!lean);
        self.qpu.set_lean(lean);
        self
    }

    /// Advances the machine by one clock cycle.
    pub fn step(&mut self) {
        let _ = self.step_with_progress();
    }

    /// One clock cycle, returning a *progress hint*: `false` means no
    /// component observably acted (delivery, block event, issue, dispatch,
    /// fetch, state transition), so the coming cycles are skip candidates.
    /// The hint is a heuristic for the event-driven loop — [`Shot::try_skip`]
    /// independently re-proves any skip, so false positives merely cost a
    /// stepped cycle.
    fn step_with_progress(&mut self) -> bool {
        let now = self.cycle;
        let cfg: &QuapeConfig = &self.job.cfg;
        let program: &Program = &self.job.program;
        let in_flight = self.daq.in_flight();
        self.daq.tick(now * cfg.clock_ns, &mut self.mrr);
        let mut progress = in_flight != self.daq.in_flight();
        // AWG playback: retire waveforms that finished by this cycle.
        // Retirement is *not* observable progress — it has no
        // report-visible effect and no stop condition reads the playback
        // queue — so a tick that only retires keeps the loop in its
        // skip-eligible state instead of forcing a fully-checked cycle.
        self.awg.tick(now * cfg.clock_ns);
        // Every observable scheduler action records a block event.
        let events = self.scheduler.events.len();
        self.scheduler.tick(
            now,
            &mut self.processors,
            program,
            &self.job.code,
            cfg,
            &mut self.stats,
        );
        progress |= events != self.scheduler.events.len();
        let mut env = Env {
            cfg,
            program,
            mrr: &mut self.mrr,
            daq: &mut self.daq,
            awg: &mut self.awg,
            qpu: &mut *self.qpu,
            chan: &self.job.chan,
            rng: &mut self.rng,
            shared_regs: &mut self.shared_regs,
            step_dispatches: &mut self.step_dispatches,
            wait_cycles: &mut self.wait_cycles,
            late_issues: &mut self.late_issues,
            late_cycles: &mut self.late_cycles,
            measurements: &mut self.measurements,
            halt: &mut self.halt,
            error: &mut self.error,
        };
        for p in &mut self.processors {
            progress |= p.tick(now, &mut env);
        }
        self.cycle += 1;
        progress
    }

    fn quiescent(&self) -> bool {
        self.scheduler.all_done()
            && self
                .processors
                .iter()
                .all(|p| p.is_idle() && !p.has_pending_work())
            && self.daq.in_flight() == 0
    }

    fn drained_after_halt(&self) -> bool {
        self.halt
            && self.processors.iter().all(|p| !p.has_pending_work())
            && self.daq.in_flight() == 0
    }

    /// Runs until completion with a default budget of 10 million cycles.
    pub fn run(self) -> RunReport {
        self.run_with_limit(10_000_000)
    }

    /// Runs until completion, a `HALT`, an error, or the cycle budget,
    /// using the default [`StepMode`] (event-driven).
    pub fn run_with_limit(self, max_cycles: u64) -> RunReport {
        self.run_with_mode(StepMode::default(), max_cycles)
    }

    /// Runs until completion, a `HALT`, an error, or the cycle budget,
    /// advancing time as `mode` dictates. Both modes produce bit-identical
    /// reports; [`StepMode::Cycle`] is the slow oracle.
    pub fn run_with_mode(mut self, mode: StepMode, max_cycles: u64) -> RunReport {
        // `maybe_stalled` tracks whether the previous cycle observably
        // did nothing. While it holds, the stop conditions cannot have
        // changed (their inputs are all observable state), so only the
        // cycle budget needs re-checking — and, in event-driven mode, a
        // time skip is worth attempting.
        let mut maybe_stalled = false;
        let stop = loop {
            if !maybe_stalled {
                if self.error {
                    break StopReason::Error;
                }
                if self.quiescent() {
                    break StopReason::Completed;
                }
                if self.drained_after_halt() {
                    break StopReason::Halted;
                }
            }
            if self.cycle >= max_cycles {
                break StopReason::CycleLimit;
            }
            if maybe_stalled && mode == StepMode::EventDriven && self.try_skip(max_cycles) {
                // Something fires at the horizon; step it directly.
                maybe_stalled = false;
                continue;
            }
            maybe_stalled = !self.step_with_progress();
        };
        self.into_report(stop)
    }

    /// Event-driven time skip: if the coming cycle is provably a pure
    /// stall for every component, jump the clock to the earliest event
    /// horizon (bounded by `limit`), bulk-accounting the per-cycle
    /// statistics a cycle-stepped run would have accumulated. Returns
    /// false when some component would make progress — the caller must
    /// then [`Shot::step`] normally.
    ///
    /// Soundness: during a span in which no processor dispatches, no
    /// timing queue issues, the DAQ delivers nothing and the scheduler
    /// starts nothing, the machine state is constant except for those
    /// statistics — so every skipped cycle would have been identical, and
    /// the first cycle at which anything *can* change is the minimum of
    /// the component horizons gathered here.
    ///
    /// The caller only invokes this right after a tick that made no
    /// observable progress ([`Shot::step_with_progress`] returned false).
    /// That tick already proved all *cycle-independent* activity inactive
    /// — dispatch, fetch, context resolution, and (when the scheduler ran
    /// free) the action picker — so this check only re-examines the
    /// *clocked* events: timing-queue heads, switch deadlines, the DAQ,
    /// and scheduler busy spans. The from-first-principles verifiers
    /// ([`Processor::stall_info`], [`Scheduler::would_act`]) cross-check
    /// every trusted verdict under `debug_assertions` (exercised by the
    /// step-mode differential suite and proptests).
    fn try_skip(&mut self, limit: u64) -> bool {
        let cfg: &QuapeConfig = &self.job.cfg;
        let program: &Program = &self.job.program;
        let now = self.cycle;
        let mut horizon: Option<u64> = None;
        fn merge(h: &mut Option<u64>, at: u64) {
            *h = Some(h.map_or(at, |x| x.min(at)));
        }

        // DAQ: a due delivery must be stepped; a future one bounds the
        // skip at its delivery cycle (ceil: delivery happens at the first
        // tick whose wall-clock time has reached it).
        if let Some(ns) = self.daq.next_delivery_ns() {
            if ns <= now * cfg.clock_ns {
                return false;
            }
            merge(&mut horizon, ns.div_ceil(cfg.clock_ns));
        }
        // AWG: a playback ending now must be retired by a stepped tick; a
        // future end bounds the skip so occupancy retires on schedule.
        if let Some(ns) = self.awg.next_event_ns() {
            if ns <= now * cfg.clock_ns {
                return false;
            }
            merge(&mut horizon, ns.div_ceil(cfg.clock_ns));
        }
        // Every processor must be provably stalled. A processor finishing
        // a block or the priority counter moving would have registered as
        // progress last tick, so neither needs re-checking here.
        debug_assert!(!self.processors.iter().any(Processor::finished_pending));
        debug_assert!(!self.scheduler.counter_would_advance(program));
        self.skip_scratch.clear();
        for p in &self.processors {
            let verdict = p.skip_check(now);
            debug_assert!(
                {
                    let full = p.stall_info(now, &self.mrr, cfg);
                    match (verdict, full) {
                        (None, None) => true,
                        (Some(a), Some(b)) => {
                            a.horizon == b.horizon
                                && a.measure_wait == b.measure_wait
                                && a.context_stall == b.context_stall
                        }
                        _ => false,
                    }
                },
                "trusted skip check diverged from the full stall verifier"
            );
            match verdict {
                None => return false,
                Some(s) => {
                    if let Some(h) = s.horizon {
                        merge(&mut horizon, h);
                    }
                    self.skip_scratch.push(s);
                }
            }
        }
        // Scheduler: only its clocked busy span can fire within a stall.
        let mut scheduler_busy = true;
        if let Some(finish) = self.scheduler.job_finish() {
            if now >= finish {
                return false; // fill job completes this cycle
            }
            merge(&mut horizon, finish);
        } else if self.scheduler.is_busy(now) {
            merge(&mut horizon, self.scheduler.busy_until());
        } else {
            scheduler_busy = false;
            // A free scheduler that settled last tick stays inactive
            // until machine state changes; one that just came off a busy
            // span has not evaluated its picker yet — ask it for real.
            if !self.scheduler.is_settled()
                && self
                    .scheduler
                    .would_act(now, &self.processors, program, cfg)
            {
                return false;
            }
            debug_assert!(
                !self
                    .scheduler
                    .would_act(now, &self.processors, program, cfg),
                "settled scheduler would still act"
            );
        }

        // No event horizon at all means the machine can only spin to the
        // cycle budget (e.g. an FMR waiting on a result that never comes).
        let target = horizon.unwrap_or(limit).min(limit);
        if target <= now {
            return false;
        }
        let span = target - now;

        // Bulk accounting of the skipped span's per-cycle statistics.
        if scheduler_busy {
            // The span never crosses `busy_until`/`finish` (both are in
            // the horizon), so every skipped cycle counts as busy.
            self.stats.scheduler_busy_cycles += span;
        }
        let mut waiting = 0usize;
        for (p, s) in self.processors.iter_mut().zip(&self.skip_scratch) {
            if s.measure_wait {
                waiting += 1;
            }
            p.account_stall_span(s, span);
        }
        self.wait_cycles.extend_span(now, target, waiting);
        self.cycle = target;
        true
    }

    /// Measurement outcomes observed so far (delivered results).
    pub fn measurements(&self) -> &[MeasurementRecord] {
        &self.measurements
    }

    /// The AWG bank's device state (diagnostic; tests cross-check its
    /// occupancy view against the QPU shadow model).
    pub fn awg(&self) -> &AwgBank {
        &self.awg
    }

    /// The QPU occupancy model's view of when `qubit` becomes free
    /// (diagnostic twin of [`AwgBank::qubit_busy_until`]).
    pub fn qpu_busy_until(&self, qubit: quape_isa::Qubit) -> u64 {
        self.qpu.busy_until(qubit)
    }

    fn into_report(mut self, stop: StopReason) -> RunReport {
        for (i, p) in self.processors.iter().enumerate() {
            self.stats.processors[i] = p.stats;
        }
        self.stats.late_issues = self.late_issues;
        self.stats.late_cycles = self.late_cycles;
        self.stats.awg_max_concurrent = self.awg.max_concurrent() as u64;
        self.stats.daq_contended_results = self.daq.contended_results();
        self.stats.daq_contention_delay_ns = self.daq.contention_delay_ns();
        // End-of-shot handover: the QPU, AWG and scheduler give up their
        // accumulated vectors by value instead of being copied. The
        // trigger/issue counters come from the devices, not the vector
        // lengths, so lean runs report the same numbers with the vectors
        // left empty.
        let qpu_makespan_ns = self.qpu.makespan_ns();
        let issued_ops = self.qpu.issued_count();
        let (issued, violations) = self.qpu.take_results();
        let (playback, awg_violations) = self.awg.take_results();
        self.stats.awg_triggers = self.awg.triggers();
        RunReport {
            cycles: self.cycle,
            ns: self.cycle * self.job.cfg.clock_ns,
            stop,
            issued,
            issued_ops,
            violations,
            playback,
            awg_violations,
            stats: self.stats,
            step_dispatches: self.step_dispatches.into_vec(),
            wait_cycles: self.wait_cycles.into_vec(),
            measurements: self.measurements,
            block_events: std::mem::take(&mut self.scheduler.events),
            qpu_makespan_ns,
        }
    }
}

/// The full control stack of Fig. 5/9 as a single-shot convenience: one
/// compiled job driving one [`Shot`].
///
/// For multi-shot experiments, compile the job once with
/// [`CompiledJob::compile`] and use [`crate::ShotEngine`] instead of
/// re-validating everything per repetition.
///
/// ```
/// use quape_core::{Machine, QuapeConfig};
/// use quape_qpu::{BehavioralQpu, MeasurementModel};
/// use quape_isa::assemble;
///
/// let program = assemble("0 H q0\n0 H q1\n2 CNOT q0, q1\nSTOP\n")?;
/// let cfg = QuapeConfig::superscalar(4);
/// let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysZero, 1);
/// let report = Machine::new(cfg, program, Box::new(qpu))?.run();
/// assert_eq!(report.issued_count(), 3);
/// assert!(report.timing_clean());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Machine {
    shot: Shot,
}

impl Machine {
    /// Builds a machine for `program` driving `qpu`.
    ///
    /// The shot's PRNG is seeded from `cfg.seed`, exactly as before the
    /// job/shot split.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Config`] for inconsistent configurations and
    /// [`MachineError::Program`] when wrapping a block-less program fails.
    pub fn new(
        cfg: QuapeConfig,
        program: Program,
        qpu: Box<dyn QpuBackend>,
    ) -> Result<Self, MachineError> {
        let seed = cfg.seed;
        let job = CompiledJob::compile(cfg, program)?;
        Ok(Machine {
            shot: job.shot(qpu, seed),
        })
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.shot.cycle()
    }

    /// Advances the machine by one clock cycle.
    pub fn step(&mut self) {
        self.shot.step();
    }

    /// Runs until completion with a default budget of 10 million cycles.
    pub fn run(self) -> RunReport {
        self.shot.run()
    }

    /// Runs until completion, a `HALT`, an error, or the cycle budget.
    pub fn run_with_limit(self, max_cycles: u64) -> RunReport {
        self.shot.run_with_limit(max_cycles)
    }

    /// Runs with an explicit [`StepMode`] (differential testing hook).
    pub fn run_with_mode(self, mode: StepMode, max_cycles: u64) -> RunReport {
        self.shot.run_with_mode(mode, max_cycles)
    }

    /// Measurement outcomes observed so far (delivered results).
    pub fn measurements(&self) -> &[MeasurementRecord] {
        self.shot.measurements()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_qpu::{BehavioralQpu, MeasurementModel};

    fn coin(cfg: &QuapeConfig, seed: u64) -> Box<dyn QpuBackend> {
        Box::new(BehavioralQpu::new(
            cfg.timings,
            MeasurementModel::Bernoulli { p_one: 0.5 },
            seed,
        ))
    }

    fn two_qubit_program() -> Program {
        quape_isa::assemble("0 H q0\n2 CNOT q0, q1\n2 MEAS q0\nSTOP\n").expect("valid program")
    }

    #[test]
    fn num_qubits_scanned_by_default() {
        let job = CompiledJob::compile(QuapeConfig::superscalar(4), two_qubit_program())
            .expect("compiles");
        assert_eq!(job.num_qubits(), 2);
        assert_eq!(job.channel_map().channel_count(), 6);
    }

    #[test]
    fn num_qubits_override_expands_channel_map() {
        let cfg = QuapeConfig::superscalar(4).with_num_qubits(10);
        let job = CompiledJob::compile(cfg, two_qubit_program()).expect("compiles");
        assert_eq!(job.num_qubits(), 10);
        assert_eq!(job.channel_map().channel_count(), 30);
    }

    #[test]
    fn readout_lines_config_builds_multiplexed_map() {
        let cfg = QuapeConfig::superscalar(4)
            .with_num_qubits(10)
            .with_readout_lines(8);
        let job = CompiledJob::compile(cfg, two_qubit_program()).expect("compiles");
        assert_eq!(job.channel_map().readout_lines(), 8);
        assert_eq!(job.channel_map().channel_count(), 28);
    }

    #[test]
    fn awg_occupancy_tracks_qpu_shadow_model() {
        // Step a shot manually: at every cycle the AWG bank's device-side
        // qubit occupancy must match the QPU shadow model exactly.
        let cfg = QuapeConfig::superscalar(4).with_seed(3);
        let job = CompiledJob::compile(cfg.clone(), two_qubit_program()).expect("compiles");
        let mut shot = job.shot(coin(&cfg, 5), cfg.seed);
        for _ in 0..2_000 {
            shot.step();
            for q in 0..job.num_qubits() {
                let q = quape_isa::Qubit::new(q);
                assert_eq!(
                    shot.awg().qubit_busy_until(q),
                    shot.qpu_busy_until(q),
                    "device and QPU occupancy diverged on {q} at cycle {}",
                    shot.cycle()
                );
            }
        }
        assert!(shot.awg().playing() == 0, "all playbacks retired at rest");
        assert_eq!(shot.awg().retired(), shot.awg().timeline().len());
    }

    #[test]
    fn job_digest_is_stable_and_content_keyed() {
        let cfg = QuapeConfig::superscalar(4);
        let a = CompiledJob::compile(cfg.clone(), two_qubit_program()).expect("compiles");
        let b = CompiledJob::compile(cfg.clone(), two_qubit_program()).expect("compiles");
        assert_eq!(a.digest(), b.digest());
        // Different seed, same compiled artifact.
        let reseeded =
            CompiledJob::compile(cfg.clone().with_seed(5), two_qubit_program()).expect("compiles");
        assert_eq!(a.digest(), reseeded.digest());
        // Different program or different config: different key.
        let other = CompiledJob::compile(
            cfg.clone(),
            quape_isa::assemble("0 H q0\nSTOP\n").expect("valid"),
        )
        .expect("compiles");
        assert_ne!(a.digest(), other.digest());
        let wider = CompiledJob::compile(QuapeConfig::superscalar(8), two_qubit_program())
            .expect("compiles");
        assert_ne!(a.digest(), wider.digest());
    }

    #[test]
    fn num_qubits_override_too_small_rejected() {
        let cfg = QuapeConfig::superscalar(4).with_num_qubits(1);
        let err = CompiledJob::compile(cfg, two_qubit_program()).unwrap_err();
        assert!(matches!(err, MachineError::Config(_)), "{err}");
    }

    #[test]
    fn machine_wrapper_matches_job_shot() {
        let cfg = QuapeConfig::superscalar(4).with_seed(9);
        let program = two_qubit_program();
        let via_machine = Machine::new(cfg.clone(), program.clone(), coin(&cfg, 5))
            .expect("machine builds")
            .run();
        let job = CompiledJob::compile(cfg.clone(), program).expect("compiles");
        let via_shot = job.shot(coin(&cfg, 5), cfg.seed).run();
        assert_eq!(via_machine.cycles, via_shot.cycles);
        assert_eq!(via_machine.measurements, via_shot.measurements);
        let a: Vec<(u64, String)> = via_machine
            .issued
            .iter()
            .map(|o| (o.time_ns, o.op.to_string()))
            .collect();
        let b: Vec<(u64, String)> = via_shot
            .issued
            .iter()
            .map(|o| (o.time_ns, o.op.to_string()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn shots_from_one_job_are_independent() {
        let cfg = QuapeConfig::superscalar(4);
        let job = CompiledJob::compile(cfg.clone(), two_qubit_program()).expect("compiles");
        let first = job.shot(coin(&cfg, 1), 1).run();
        let second = job.shot(coin(&cfg, 1), 1).run();
        // Same seeds ⇒ identical; fresh state ⇒ no leakage between shots.
        assert_eq!(first.cycles, second.cycles);
        assert_eq!(first.measurements, second.measurements);
        assert_eq!(first.issued.len(), 3);
    }
}
