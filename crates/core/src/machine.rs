//! The QuAPE machine, split into a compile-once job and per-shot state.
//!
//! [`CompiledJob`] owns the immutable, shareable artifacts of a run — the
//! validated [`QuapeConfig`], the block-wrapped [`Program`] (with its
//! block information table), and the [`ChannelMap`] — all behind `Arc` so
//! that cloning a job is O(1). A [`Shot`] is the mutable machine state of
//! one execution (processors, scheduler, MRR/DAQ/AWG devices, PRNG,
//! counters) built from a job in O(state) instead of
//! O(revalidate-everything); the multi-shot experiments of §7/§8 construct
//! one job and then run thousands of shots from it (see
//! [`crate::ShotEngine`]).
//!
//! [`Machine`] remains the single-shot convenience wrapper the rest of
//! the workspace was written against: `Machine::new(cfg, program, qpu)`
//! compiles a job and builds its one shot.

use crate::backend::QpuBackend;
use crate::config::QuapeConfig;
use crate::devices::{AwgBank, ChannelMap, Daq, MeasurementFile};
use crate::fast::FastProcessor;
use crate::processor::{Env, Processor, ProcessorCore, StallInfo};
use crate::report::{MachineStats, RunReport, StepDispatch, StopReason};
use crate::scheduler::Scheduler;
use quape_isa::{
    BlockInfo, BlockInfoTable, Dependency, Instruction, LoweredProgram, Program, ProgramError,
    SHARED_REG_COUNT,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// How a run loop advances the machine clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum StepMode {
    /// Tick every component on every clock cycle. Kept as the
    /// differential-testing oracle for [`StepMode::EventDriven`].
    Cycle,
    /// Cycle-accurate discrete-event execution: when every component is
    /// provably idle this cycle, jump the clock straight to the earliest
    /// event horizon (DAQ delivery, timing-queue head, scheduler fill
    /// completion, switch deadline) instead of stepping through the idle
    /// span. Produces bit-identical [`RunReport`]s to [`StepMode::Cycle`].
    #[default]
    EventDriven,
    /// Pre-decoded micro-op fast path: the shot executes the job's
    /// [`LoweredProgram`] — operands pre-resolved, durations baked in,
    /// dispatch predicates pre-classified into flag bits — with the same
    /// event-horizon skip logic as [`StepMode::EventDriven`]. Produces
    /// bit-identical [`RunReport`]s to both other modes
    /// (differential-tested); request it when shot throughput matters.
    Lowered,
}

/// How much of a run a [`RunReport`] materialises.
///
/// The per-shot event vectors (`wait_cycles`, `issued`, `playback`,
/// `step_dispatches`) are what figure-level analysis reads, but batch
/// and serving paths reduce every shot to a
/// [`ShotSummary`](crate::ShotSummary) of counters —
/// materialising the vectors there is pure allocation cost. Lean mode
/// skips them while keeping every counter (and therefore every
/// [`BatchAggregate`](crate::BatchAggregate)) bit-identical to a full
/// run: execution is unchanged, only the record-keeping is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportMode {
    /// Materialise everything — the default for [`Machine`]/[`Shot`]
    /// figure-level runs.
    #[default]
    Full,
    /// Summary-only: leave `wait_cycles`, `issued`, `playback` and
    /// `step_dispatches` empty in the report; counters (`issued_ops`,
    /// `stats.awg_triggers`, `stats.*`) stay exact. The default for
    /// [`ShotEngine`](crate::ShotEngine) batches.
    Lean,
}

/// A per-shot event trace: a plain `Vec` in full mode, a no-op sink in
/// lean mode. Backs the report's `wait_cycles` (pushed from the
/// processors' stall paths and bulk-filled by the event-driven skip)
/// and `step_dispatches` (pushed per quantum dispatch) vectors.
#[derive(Debug, Default)]
pub(crate) struct EventSink<T> {
    events: Vec<T>,
    record: bool,
}

impl<T> EventSink<T> {
    fn new(record: bool) -> Self {
        EventSink {
            events: Vec::new(),
            record,
        }
    }

    pub(crate) fn push(&mut self, event: T) {
        if self.record {
            self.events.push(event);
        }
    }

    fn into_vec(self) -> Vec<T> {
        self.events
    }

    /// Empties the sink in place, keeping the record flag and the
    /// allocation (arena reuse across shots).
    fn clear(&mut self) {
        self.events.clear();
    }
}

impl EventSink<u64> {
    /// Bulk-accounts a skipped span `start..end` during which `waiting`
    /// processors were measure-wait stalled — exactly the entries a
    /// cycle-stepped run would have pushed one by one.
    fn extend_span(&mut self, start: u64, end: u64, waiting: usize) {
        if !self.record || waiting == 0 {
            return;
        }
        if waiting == 1 {
            self.events.extend(start..end);
        } else {
            self.events.reserve(waiting * (end - start) as usize);
            for cyc in start..end {
                for _ in 0..waiting {
                    self.events.push(cyc);
                }
            }
        }
    }
}

/// One program block's instruction words, pre-cut at job compilation and
/// shared by every shot: cache fills clone the `Arc` instead of copying
/// the words, so per-shot fill cost is O(blocks), not O(instructions).
#[derive(Debug, Clone)]
pub(crate) struct BlockCode {
    /// Absolute address of the block's first instruction.
    pub base: u32,
    /// The block's instruction words.
    pub words: Arc<[Instruction]>,
}

/// Errors from machine construction.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The configuration is inconsistent.
    Config(String),
    /// The program failed validation.
    Program(ProgramError),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            MachineError::Program(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<ProgramError> for MachineError {
    fn from(e: ProgramError) -> Self {
        MachineError::Program(e)
    }
}

/// A recorded measurement outcome (time, qubit, value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MeasurementRecord {
    /// Issue time of the measurement operation.
    pub time_ns: u64,
    /// Measured qubit.
    pub qubit: quape_isa::Qubit,
    /// Classical outcome.
    pub value: bool,
}

/// Wraps a block-less program into a single implicit block so the
/// scheduler always has a table to work from.
fn ensure_blocks(program: Program) -> Result<Program, ProgramError> {
    if !program.blocks().is_empty() {
        return Ok(program);
    }
    let len = program.len() as u32;
    let mut table = BlockInfoTable::new();
    table.push(BlockInfo::new("main", 0..len, Dependency::none()))?;
    Program::with_parts(
        program.instructions().to_vec(),
        table,
        program.step_map().to_vec(),
    )
}

/// The immutable, shareable half of a run: validated configuration,
/// block-wrapped program, and channel map, each behind an `Arc`.
///
/// Compile once, then build any number of [`Shot`]s (possibly from many
/// threads — a job is `Send + Sync` and clones in O(1)).
///
/// ```
/// use quape_core::{CompiledJob, QuapeConfig};
/// use quape_qpu::{BehavioralQpu, MeasurementModel};
/// use quape_isa::assemble;
///
/// let program = assemble("0 H q0\n0 H q1\n2 CNOT q0, q1\nSTOP\n")?;
/// let job = CompiledJob::compile(QuapeConfig::superscalar(4), program)?;
/// for shot_index in 0..4u64 {
///     let qpu = BehavioralQpu::new(job.cfg().timings, MeasurementModel::AlwaysZero, shot_index);
///     let report = job.shot(Box::new(qpu), shot_index).run();
///     assert_eq!(report.issued_count(), 3);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledJob {
    cfg: Arc<QuapeConfig>,
    program: Arc<Program>,
    code: Arc<[BlockCode]>,
    /// Micro-op artifact for [`StepMode::Lowered`], lowered once here and
    /// `Arc`-shared by every shot (and the server's compile cache).
    lowered: Arc<LoweredProgram>,
    chan: Arc<ChannelMap>,
    num_qubits: u16,
    /// Content digest, frozen at compile time. Computing it walks (and
    /// stringifies) the whole program, so hot paths that key caches on
    /// job identity — e.g. the engine's per-worker scratch — must not
    /// recompute it per shot.
    digest: u64,
}

impl CompiledJob {
    /// Validates `cfg` and `program` once and freezes the shareable
    /// artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Config`] for inconsistent configurations
    /// (including a `num_qubits` override smaller than what the program
    /// touches) and [`MachineError::Program`] when wrapping a block-less
    /// program fails.
    pub fn compile(cfg: QuapeConfig, program: Program) -> Result<Self, MachineError> {
        cfg.validate().map_err(MachineError::Config)?;
        let program = ensure_blocks(program)?;
        let scanned = program.num_qubits().max(1);
        let num_qubits = match cfg.num_qubits {
            None => scanned,
            Some(n) if n >= scanned => n,
            Some(n) => {
                return Err(MachineError::Config(format!(
                "num_qubits override {n} is smaller than the {scanned} qubits the program touches"
            )))
            }
        };
        let chan = match cfg.readout_lines {
            None => ChannelMap::linear(num_qubits),
            Some(lines) => ChannelMap::multiplexed(num_qubits, lines),
        };
        let code: Arc<[BlockCode]> = program
            .blocks()
            .iter()
            .map(|(_, info)| BlockCode {
                base: info.range.start,
                words: program.instructions()[info.range.start as usize..info.range.end as usize]
                    .into(),
            })
            .collect();
        let lowered = Arc::new(LoweredProgram::lower(&program, &cfg.timings));
        let mut h = quape_isa::Fnv64::new();
        h.write_u64(program.digest().0)
            .write_u64(cfg.content_digest());
        let digest = h.finish();
        Ok(CompiledJob {
            cfg: Arc::new(cfg),
            program: Arc::new(program),
            code,
            lowered,
            chan: Arc::new(chan),
            num_qubits,
            digest,
        })
    }

    /// The validated configuration.
    pub fn cfg(&self) -> &QuapeConfig {
        &self.cfg
    }

    /// Stable content digest of the compiled job: the program's
    /// [`digest`](Program::digest) combined with the configuration's
    /// [`content_digest`](QuapeConfig::content_digest).
    ///
    /// Two jobs compiled from structurally equal programs under
    /// execution-equivalent configurations hash identically across
    /// processes, so the digest is a sound compile-cache key. The
    /// config's `seed` is deliberately excluded — it is a runtime
    /// parameter (batch runs override it per request), not part of the
    /// compiled artifact.
    ///
    /// Computed once at [`compile`](Self::compile) time; this accessor is
    /// a plain field read, cheap enough for per-shot identity checks.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The block-wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The block information table the scheduler works from.
    pub fn blocks(&self) -> &BlockInfoTable {
        self.program.blocks()
    }

    /// The qubit→channel map.
    pub fn channel_map(&self) -> &ChannelMap {
        &self.chan
    }

    /// Number of qubits the setup is sized for.
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// The pre-decoded micro-op artifact backing [`StepMode::Lowered`].
    pub fn lowered(&self) -> &LoweredProgram {
        &self.lowered
    }

    /// Builds a shot core generically: fresh processors, a scheduler with
    /// the pre-task initial load applied, fresh devices and counters.
    fn core<P: ProcessorCore>(
        &self,
        qpu: Box<dyn QpuBackend>,
        rng_seed: u64,
        code: Arc<P::Code>,
        new_proc: impl FnMut(usize) -> P,
    ) -> ShotCore<P> {
        let cfg = &self.cfg;
        let mut processors: Vec<P> = (0..cfg.num_processors).map(new_proc).collect();
        let mut scheduler = Scheduler::new(&self.program, cfg.dependency_mode);
        // Pre-task load of the first num_processors blocks (§7).
        scheduler.initial_load(&mut processors, &*code, cfg.num_processors);
        let stats = MachineStats {
            processors: vec![Default::default(); cfg.num_processors],
            ..Default::default()
        };
        ShotCore {
            job: self.clone(),
            code,
            processors,
            scheduler,
            mrr: MeasurementFile::new(),
            daq: Daq::new(cfg.daq_demod_slots),
            awg: AwgBank::new(cfg.timings),
            qpu,
            rng: SmallRng::seed_from_u64(rng_seed),
            shared_regs: [0; SHARED_REG_COUNT],
            cycle: 0,
            halt: false,
            error: false,
            stats,
            step_dispatches: EventSink::new(true),
            wait_cycles: EventSink::new(true),
            late_issues: 0,
            late_cycles: 0,
            measurements: Vec::new(),
            skip_scratch: Vec::with_capacity(cfg.num_processors),
        }
    }

    /// Builds the per-shot machine state for one execution, driving `qpu`
    /// and seeding the shot's PRNG (DAQ jitter) with `rng_seed`.
    pub fn shot(&self, qpu: Box<dyn QpuBackend>, rng_seed: u64) -> Shot {
        Shot {
            core: self.core(qpu, rng_seed, self.code.clone(), |id| {
                Processor::new(id, self.cfg.icache_banks)
            }),
        }
    }

    /// Builds the per-shot state directly on the lowered fast core — the
    /// engine-internal twin of `shot(..)` + [`StepMode::Lowered`].
    pub(crate) fn fast_core(
        &self,
        qpu: Box<dyn QpuBackend>,
        rng_seed: u64,
    ) -> ShotCore<FastProcessor> {
        let lowered = self.lowered.clone();
        let banks = self.cfg.icache_banks;
        self.core(qpu, rng_seed, lowered.clone(), move |id| {
            FastProcessor::new(id, lowered.clone(), banks)
        })
    }
}

/// The mutable state of one execution: processors, scheduler, devices,
/// QPU, PRNG, and statistics — generic over the processor implementation
/// ([`ProcessorCore`]). [`Shot`] wraps `ShotCore<Processor>` as the
/// public single-type façade; [`StepMode::Lowered`] runs on
/// `ShotCore<FastProcessor>` over the job's [`LoweredProgram`].
pub(crate) struct ShotCore<P: ProcessorCore> {
    job: CompiledJob,
    /// The compiled artifact cache fills read, shared with the job
    /// (`[BlockCode]` for the reference core, the micro-op program for
    /// the fast one).
    code: Arc<P::Code>,
    processors: Vec<P>,
    scheduler: Scheduler,
    mrr: MeasurementFile,
    daq: Daq,
    awg: AwgBank,
    qpu: Box<dyn QpuBackend>,
    rng: SmallRng,
    shared_regs: [i32; SHARED_REG_COUNT],
    cycle: u64,
    halt: bool,
    error: bool,
    stats: MachineStats,
    step_dispatches: EventSink<StepDispatch>,
    wait_cycles: EventSink<u64>,
    late_issues: u64,
    late_cycles: u64,
    measurements: Vec<MeasurementRecord>,
    /// Scratch for `try_skip`'s per-processor stall verdicts
    /// (allocated once per shot, reused across skip checks).
    skip_scratch: Vec<StallInfo>,
}

impl<P: ProcessorCore> ShotCore<P> {
    /// Selects how much of the run the report materialises (see
    /// [`ReportMode`]).
    fn set_report_mode(&mut self, mode: ReportMode) {
        let lean = mode == ReportMode::Lean;
        self.wait_cycles.record = !lean;
        self.step_dispatches.record = !lean;
        self.awg.set_record_timeline(!lean);
        self.qpu.set_lean(lean);
    }

    /// One clock cycle, returning a *progress hint*: `false` means no
    /// component observably acted (delivery, block event, issue, dispatch,
    /// fetch, state transition), so the coming cycles are skip candidates.
    /// The hint is a heuristic for the event-driven loop — `try_skip`
    /// independently re-proves any skip, so false positives merely cost a
    /// stepped cycle.
    fn step_with_progress(&mut self) -> bool {
        let now = self.cycle;
        let cfg: &QuapeConfig = &self.job.cfg;
        let program: &Program = &self.job.program;
        let mut progress = self.daq.tick(now * cfg.clock_ns, &mut self.mrr) != 0;
        // AWG playback: retire waveforms that finished by this cycle.
        // Retirement is *not* observable progress — it has no
        // report-visible effect and no stop condition reads the playback
        // queue — so a tick that only retires keeps the loop in its
        // skip-eligible state instead of forcing a fully-checked cycle.
        self.awg.tick(now * cfg.clock_ns);
        // Every observable scheduler action records a block event.
        let events = self.scheduler.events.len();
        self.scheduler.tick(
            now,
            &mut self.processors,
            program,
            &self.code,
            cfg,
            &mut self.stats,
        );
        progress |= events != self.scheduler.events.len();
        let mut env = Env {
            cfg,
            program,
            mrr: &mut self.mrr,
            daq: &mut self.daq,
            awg: &mut self.awg,
            qpu: &mut *self.qpu,
            chan: &self.job.chan,
            rng: &mut self.rng,
            shared_regs: &mut self.shared_regs,
            step_dispatches: &mut self.step_dispatches,
            wait_cycles: &mut self.wait_cycles,
            late_issues: &mut self.late_issues,
            late_cycles: &mut self.late_cycles,
            measurements: &mut self.measurements,
            halt: &mut self.halt,
            error: &mut self.error,
        };
        for p in &mut self.processors {
            progress |= p.tick(now, &mut env);
        }
        self.cycle += 1;
        progress
    }

    fn quiescent(&self) -> bool {
        self.scheduler.all_done()
            && self
                .processors
                .iter()
                .all(|p| p.is_idle() && !p.has_pending_work())
            && self.daq.in_flight() == 0
    }

    fn drained_after_halt(&self) -> bool {
        self.halt
            && self.processors.iter().all(|p| !p.has_pending_work())
            && self.daq.in_flight() == 0
    }

    /// Runs until completion, a `HALT`, an error, or the cycle budget.
    /// `skip = true` is the event-driven loop (time jumps over provably
    /// idle spans); `skip = false` is the cycle-stepped oracle. Both
    /// produce bit-identical reports.
    pub(crate) fn run_loop(mut self, skip: bool, max_cycles: u64) -> RunReport {
        // `maybe_stalled` tracks whether the previous cycle observably
        // did nothing. While it holds, the stop conditions cannot have
        // changed (their inputs are all observable state), so only the
        // cycle budget needs re-checking — and, when skipping, a time
        // skip is worth attempting.
        let mut maybe_stalled = false;
        let stop = loop {
            if !maybe_stalled {
                if self.error {
                    break StopReason::Error;
                }
                if self.quiescent() {
                    break StopReason::Completed;
                }
                if self.drained_after_halt() {
                    break StopReason::Halted;
                }
            }
            if self.cycle >= max_cycles {
                break StopReason::CycleLimit;
            }
            if maybe_stalled && skip && self.try_skip(max_cycles) {
                // Something fires at the horizon; step it directly.
                maybe_stalled = false;
                continue;
            }
            maybe_stalled = !self.step_with_progress();
        };
        self.into_report(stop)
    }

    /// Event-driven time skip: if the coming cycle is provably a pure
    /// stall for every component, jump the clock to the earliest event
    /// horizon (bounded by `limit`), bulk-accounting the per-cycle
    /// statistics a cycle-stepped run would have accumulated. Returns
    /// false when some component would make progress — the caller must
    /// then step normally.
    ///
    /// Soundness: during a span in which no processor dispatches, no
    /// timing queue issues, the DAQ delivers nothing and the scheduler
    /// starts nothing, the machine state is constant except for those
    /// statistics — so every skipped cycle would have been identical, and
    /// the first cycle at which anything *can* change is the minimum of
    /// the component horizons gathered here.
    ///
    /// The caller only invokes this right after a tick that made no
    /// observable progress (`step_with_progress` returned false).
    /// That tick already proved all *cycle-independent* activity inactive
    /// — dispatch, fetch, context resolution, and (when the scheduler ran
    /// free) the action picker — so this check only re-examines the
    /// *clocked* events: timing-queue heads, switch deadlines, the DAQ,
    /// and scheduler busy spans. The from-first-principles verifiers
    /// ([`Processor::stall_info`], [`Scheduler::would_act`]) cross-check
    /// every trusted verdict under `debug_assertions` (exercised by the
    /// step-mode differential suite and proptests).
    fn try_skip(&mut self, limit: u64) -> bool {
        let cfg: &QuapeConfig = &self.job.cfg;
        let program: &Program = &self.job.program;
        let now = self.cycle;
        let mut horizon: Option<u64> = None;
        fn merge(h: &mut Option<u64>, at: u64) {
            *h = Some(h.map_or(at, |x| x.min(at)));
        }

        // DAQ: a due delivery must be stepped; a future one bounds the
        // skip at its delivery cycle (ceil: delivery happens at the first
        // tick whose wall-clock time has reached it).
        if let Some(ns) = self.daq.next_delivery_ns() {
            if ns <= now * cfg.clock_ns {
                return false;
            }
            merge(&mut horizon, ns.div_ceil(cfg.clock_ns));
        }
        // AWG: a playback ending now must be retired by a stepped tick; a
        // future end bounds the skip so occupancy retires on schedule.
        if let Some(ns) = self.awg.next_event_ns() {
            if ns <= now * cfg.clock_ns {
                return false;
            }
            merge(&mut horizon, ns.div_ceil(cfg.clock_ns));
        }
        // Every processor must be provably stalled. A processor finishing
        // a block or the priority counter moving would have registered as
        // progress last tick, so neither needs re-checking here.
        debug_assert!(!self.processors.iter().any(P::finished_pending));
        debug_assert!(!self.scheduler.counter_would_advance(program));
        self.skip_scratch.clear();
        for p in &self.processors {
            let verdict = p.skip_check(now);
            debug_assert!(
                {
                    let full = p.stall_info(now, &self.mrr, cfg);
                    match (verdict, full) {
                        (None, None) => true,
                        (Some(a), Some(b)) => {
                            a.horizon == b.horizon
                                && a.measure_wait == b.measure_wait
                                && a.context_stall == b.context_stall
                        }
                        _ => false,
                    }
                },
                "trusted skip check diverged from the full stall verifier"
            );
            match verdict {
                None => return false,
                Some(s) => {
                    if let Some(h) = s.horizon {
                        merge(&mut horizon, h);
                    }
                    self.skip_scratch.push(s);
                }
            }
        }
        // Scheduler: only its clocked busy span can fire within a stall.
        let mut scheduler_busy = true;
        if let Some(finish) = self.scheduler.job_finish() {
            if now >= finish {
                return false; // fill job completes this cycle
            }
            merge(&mut horizon, finish);
        } else if self.scheduler.is_busy(now) {
            merge(&mut horizon, self.scheduler.busy_until());
        } else {
            scheduler_busy = false;
            // A free scheduler that settled last tick stays inactive
            // until machine state changes; one that just came off a busy
            // span has not evaluated its picker yet — ask it for real.
            if !self.scheduler.is_settled()
                && self
                    .scheduler
                    .would_act(now, &self.processors, program, cfg)
            {
                return false;
            }
            debug_assert!(
                !self
                    .scheduler
                    .would_act(now, &self.processors, program, cfg),
                "settled scheduler would still act"
            );
        }

        // No event horizon at all means the machine can only spin to the
        // cycle budget (e.g. an FMR waiting on a result that never comes).
        let target = horizon.unwrap_or(limit).min(limit);
        if target <= now {
            return false;
        }
        let span = target - now;

        // Bulk accounting of the skipped span's per-cycle statistics.
        if scheduler_busy {
            // The span never crosses `busy_until`/`finish` (both are in
            // the horizon), so every skipped cycle counts as busy.
            self.stats.scheduler_busy_cycles += span;
        }
        let mut waiting = 0usize;
        for (p, s) in self.processors.iter_mut().zip(&self.skip_scratch) {
            if s.measure_wait {
                waiting += 1;
            }
            p.account_stall_span(s, span);
        }
        self.wait_cycles.extend_span(now, target, waiting);
        self.cycle = target;
        true
    }

    fn into_report(mut self, stop: StopReason) -> RunReport {
        for (i, p) in self.processors.iter().enumerate() {
            self.stats.processors[i] = *p.stats();
        }
        self.stats.late_issues = self.late_issues;
        self.stats.late_cycles = self.late_cycles;
        self.stats.awg_max_concurrent = self.awg.max_concurrent() as u64;
        self.stats.daq_contended_results = self.daq.contended_results();
        self.stats.daq_contention_delay_ns = self.daq.contention_delay_ns();
        // End-of-shot handover: the QPU, AWG and scheduler give up their
        // accumulated vectors by value instead of being copied. The
        // trigger/issue counters come from the devices, not the vector
        // lengths, so lean runs report the same numbers with the vectors
        // left empty.
        let qpu_makespan_ns = self.qpu.makespan_ns();
        let issued_ops = self.qpu.issued_count();
        let (issued, violations) = self.qpu.take_results();
        let (playback, awg_violations) = self.awg.take_results();
        self.stats.awg_triggers = self.awg.triggers();
        RunReport {
            cycles: self.cycle,
            ns: self.cycle * self.job.cfg.clock_ns,
            stop,
            issued,
            issued_ops,
            violations,
            playback,
            awg_violations,
            stats: self.stats,
            step_dispatches: self.step_dispatches.into_vec(),
            wait_cycles: self.wait_cycles.into_vec(),
            measurements: self.measurements,
            block_events: std::mem::take(&mut self.scheduler.events),
            qpu_makespan_ns,
        }
    }
}

impl ShotCore<FastProcessor> {
    /// Returns the core to the state `CompiledJob::fast_core(qpu,
    /// rng_seed)` would construct, but in place: every buffer, queue,
    /// table and sink is cleared rather than reallocated. The
    /// differential suites hold a reset core bit-identical to a fresh
    /// one (see [`LoweredShotRunner`]).
    fn reset_for_shot(&mut self, qpu: Box<dyn QpuBackend>, rng_seed: u64) {
        let num_processors = self.job.cfg.num_processors;
        for p in &mut self.processors {
            p.reset();
        }
        self.scheduler.reset();
        self.scheduler
            .initial_load(&mut self.processors, &self.code, num_processors);
        self.mrr.reset();
        self.daq.reset();
        self.awg.reset();
        self.qpu = qpu;
        self.rng = SmallRng::seed_from_u64(rng_seed);
        self.shared_regs = [0; SHARED_REG_COUNT];
        self.cycle = 0;
        self.halt = false;
        self.error = false;
        let processors = std::mem::take(&mut self.stats.processors);
        self.stats = MachineStats {
            processors,
            ..Default::default()
        };
        self.stats.processors.fill(Default::default());
        self.step_dispatches.clear();
        self.wait_cycles.clear();
        self.late_issues = 0;
        self.late_cycles = 0;
        self.measurements.clear();
        self.skip_scratch.clear();
    }

    /// Reduces the finished shot to a borrowed [`ShotOutcome`]: the exact
    /// counters [`into_report`](ShotCore::into_report) would surface,
    /// without materialising an owned [`RunReport`]. Drains the QPU/AWG
    /// result accumulators as a side effect (they restart empty on the
    /// next reset).
    fn finish_outcome(&mut self, stop: StopReason) -> ShotOutcome<'_> {
        let (_issued, violations) = self.qpu.take_results();
        let (_playback, awg_violations) = self.awg.take_results();
        ShotOutcome {
            cycles: self.cycle,
            ns: self.cycle * self.job.cfg.clock_ns,
            stop,
            issued_ops: self.qpu.issued_count(),
            late_issues: self.late_issues,
            late_cycles: self.late_cycles,
            violations: violations.len() as u64,
            awg_violations: awg_violations.len() as u64,
            daq_contended: self.daq.contended_results(),
            qpu_makespan_ns: self.qpu.makespan_ns(),
            measurements: &self.measurements,
        }
    }

    /// Specialized event-driven run loop for the lowered fast core —
    /// [`StepMode::Lowered`]'s whole-shot entry point.
    ///
    /// Behaviourally this is `run_loop(true, max_cycles)`: the same stop
    /// conditions, the same skip proofs, the same bulk accounting, bit
    /// for bit. What changes is the host-side cost model of a stepped
    /// cycle, which dominates shot wall time on feedback chains:
    ///
    /// - The [`Env`] is built **once per shot** instead of once per tick
    ///   (`step_with_progress` re-borrows all seventeen fields on every
    ///   stepped cycle).
    /// - A scheduler tick is **elided** when it is provably a no-op: the
    ///   scheduler settled on its last real tick and no processor has a
    ///   finished-block notification pending. This is exactly the
    ///   invariant the event-driven `try_skip` already trusts for whole
    ///   skipped spans ([`Scheduler::is_settled`]); here it is applied to
    ///   stepped cycles too, and cross-checked against
    ///   [`Scheduler::would_act`] under `debug_assertions`.
    /// - The skip check is inlined so a failed skip flows straight into
    ///   the stepped tick without re-deriving borrows.
    ///
    /// The three-way differential suites (`step_mode_equivalence`,
    /// `proptest_step_modes`) hold this loop bit-identical to the
    /// cycle-stepped oracle.
    pub(crate) fn run_fast(mut self, max_cycles: u64) -> RunReport {
        let stop = self.run_fast_loop(max_cycles);
        self.into_report(stop)
    }

    /// The borrowed body of [`run_fast`]: runs the shot to its stop
    /// reason without consuming the core, so a reusable arena
    /// ([`LoweredShotRunner`]) can run many shots through one allocation.
    pub(crate) fn run_fast_loop(&mut self, max_cycles: u64) -> StopReason {
        fn merge(h: &mut Option<u64>, at: u64) {
            *h = Some(h.map_or(at, |x| x.min(at)));
        }
        {
            let clock_ns = self.job.cfg.clock_ns;
            let cfg: &QuapeConfig = &self.job.cfg;
            let program: &Program = &self.job.program;
            let code: &LoweredProgram = &self.code;
            let processors = &mut self.processors;
            let scheduler = &mut self.scheduler;
            let stats = &mut self.stats;
            let skip_scratch = &mut self.skip_scratch;
            let cycle = &mut self.cycle;
            let mut env = Env {
                cfg,
                program,
                mrr: &mut self.mrr,
                daq: &mut self.daq,
                awg: &mut self.awg,
                qpu: &mut *self.qpu,
                chan: &self.job.chan,
                rng: &mut self.rng,
                shared_regs: &mut self.shared_regs,
                step_dispatches: &mut self.step_dispatches,
                wait_cycles: &mut self.wait_cycles,
                late_issues: &mut self.late_issues,
                late_cycles: &mut self.late_cycles,
                measurements: &mut self.measurements,
                halt: &mut self.halt,
                error: &mut self.error,
            };
            // See `run_loop` for the `maybe_stalled` contract: while the
            // previous tick observably did nothing, the stop conditions
            // cannot have changed and a time skip is worth attempting.
            let mut maybe_stalled = false;
            // Block statuses only move inside `Scheduler::tick` (or the
            // pre-loop initial load), so the all-done verdict is cached
            // and refreshed after each non-elided scheduler tick instead
            // of re-scanning the status table on every progress cycle.
            let mut all_done = scheduler.all_done();
            // Cached device event horizons (`u64::MAX` = none pending).
            // The DAQ queue only changes by delivering (guarded below) or
            // by an issue inside a processor tick (which reports
            // progress); the AWG timeline only changes by retiring
            // (guarded below) or by an emission inside an issue. Both
            // caches are refreshed at exactly those points, so the
            // steady-state stall cycles and the skip checks read a local
            // instead of probing the device queues.
            let mut daq_next = env.daq.next_delivery_ns().unwrap_or(u64::MAX);
            let mut awg_next = env.awg.next_event_ns().unwrap_or(u64::MAX);
            loop {
                if !maybe_stalled {
                    if *env.error {
                        break StopReason::Error;
                    }
                    if all_done
                        && processors
                            .iter()
                            .all(|p| p.is_idle() && !p.has_pending_work())
                        && env.daq.in_flight() == 0
                    {
                        break StopReason::Completed;
                    }
                    if *env.halt
                        && processors.iter().all(|p| !p.has_pending_work())
                        && env.daq.in_flight() == 0
                    {
                        break StopReason::Halted;
                    }
                }
                if *cycle >= max_cycles {
                    break StopReason::CycleLimit;
                }
                // Inline `try_skip` (same proofs, same horizon merge,
                // same bulk accounting — see its soundness comment).
                if maybe_stalled {
                    let skipped = 'skip: {
                        let now = *cycle;
                        let now_ns = now * clock_ns;
                        let mut horizon: Option<u64> = None;
                        if daq_next != u64::MAX {
                            if daq_next <= now_ns {
                                break 'skip false;
                            }
                            merge(&mut horizon, daq_next.div_ceil(clock_ns));
                        }
                        if awg_next != u64::MAX {
                            if awg_next <= now_ns {
                                break 'skip false;
                            }
                            merge(&mut horizon, awg_next.div_ceil(clock_ns));
                        }
                        debug_assert_eq!(
                            daq_next,
                            env.daq.next_delivery_ns().unwrap_or(u64::MAX),
                            "stale DAQ horizon cache"
                        );
                        debug_assert_eq!(
                            awg_next,
                            env.awg.next_event_ns().unwrap_or(u64::MAX),
                            "stale AWG horizon cache"
                        );
                        debug_assert!(!processors.iter().any(|p| p.finished_pending()));
                        debug_assert!(!scheduler.counter_would_advance(program));
                        let cross_check =
                            |p: &FastProcessor,
                             verdict: &Option<StallInfo>,
                             mrr: &MeasurementFile| {
                                let full = p.stall_info(now, mrr, cfg);
                                match (verdict, full) {
                                    (None, None) => true,
                                    (Some(a), Some(b)) => {
                                        a.horizon == b.horizon
                                            && a.measure_wait == b.measure_wait
                                            && a.context_stall == b.context_stall
                                    }
                                    _ => false,
                                }
                            };
                        // Uniprocessor fast path: one verdict on the
                        // stack, no scratch traffic.
                        let mut solo = StallInfo::default();
                        let single = processors.len() == 1;
                        if single {
                            let verdict = processors[0].skip_check(now);
                            debug_assert!(
                                cross_check(&processors[0], &verdict, env.mrr),
                                "trusted skip check diverged from the full stall verifier"
                            );
                            match verdict {
                                None => break 'skip false,
                                Some(s) => {
                                    if let Some(h) = s.horizon {
                                        merge(&mut horizon, h);
                                    }
                                    solo = s;
                                }
                            }
                        } else {
                            skip_scratch.clear();
                            for p in processors.iter() {
                                let verdict = p.skip_check(now);
                                debug_assert!(
                                    cross_check(p, &verdict, env.mrr),
                                    "trusted skip check diverged from the full stall verifier"
                                );
                                match verdict {
                                    None => break 'skip false,
                                    Some(s) => {
                                        if let Some(h) = s.horizon {
                                            merge(&mut horizon, h);
                                        }
                                        skip_scratch.push(s);
                                    }
                                }
                            }
                        }
                        let mut scheduler_busy = true;
                        if let Some(finish) = scheduler.job_finish() {
                            if now >= finish {
                                break 'skip false;
                            }
                            merge(&mut horizon, finish);
                        } else if scheduler.is_busy(now) {
                            merge(&mut horizon, scheduler.busy_until());
                        } else {
                            scheduler_busy = false;
                            if !scheduler.is_settled()
                                && scheduler.would_act(now, processors, program, cfg)
                            {
                                break 'skip false;
                            }
                            debug_assert!(
                                !scheduler.would_act(now, processors, program, cfg),
                                "settled scheduler would still act"
                            );
                        }
                        let target = horizon.unwrap_or(max_cycles).min(max_cycles);
                        if target <= now {
                            break 'skip false;
                        }
                        let span = target - now;
                        if scheduler_busy {
                            stats.scheduler_busy_cycles += span;
                        }
                        let mut waiting = 0usize;
                        if single {
                            if solo.measure_wait {
                                waiting = 1;
                            }
                            processors[0].account_stall_span(&solo, span);
                        } else {
                            for (p, s) in processors.iter_mut().zip(skip_scratch.iter()) {
                                if s.measure_wait {
                                    waiting += 1;
                                }
                                p.account_stall_span(s, span);
                            }
                        }
                        env.wait_cycles.extend_span(now, target, waiting);
                        *cycle = target;
                        true
                    };
                    if skipped {
                        maybe_stalled = false;
                        continue;
                    }
                }
                // Inline `step_with_progress`, with the settled-scheduler
                // tick elision and the device ticks guarded by the cached
                // horizons (a tick with nothing due is a no-op by
                // construction: both device ticks only pop entries whose
                // time has been reached).
                let now = *cycle;
                let now_ns = now * clock_ns;
                let mut progress = false;
                if daq_next <= now_ns {
                    progress = env.daq.tick(now_ns, env.mrr) != 0;
                    daq_next = env.daq.next_delivery_ns().unwrap_or(u64::MAX);
                }
                if awg_next <= now_ns {
                    env.awg.tick(now_ns);
                    awg_next = env.awg.next_event_ns().unwrap_or(u64::MAX);
                }
                if !scheduler.is_settled() || processors.iter().any(|p| p.finished_pending()) {
                    let events = scheduler.events.len();
                    scheduler.tick(now, processors, program, code, cfg, stats);
                    progress |= events != scheduler.events.len();
                    all_done = scheduler.all_done();
                } else {
                    // A settled scheduler with no pending done-notification
                    // cannot act: nothing that feeds its picker (block
                    // statuses, processor idle/bank state) has changed
                    // since it last proved itself inactive, and settling
                    // implies no fill job in flight and no busy span.
                    debug_assert!(
                        !scheduler.would_act(now, processors, program, cfg),
                        "settled scheduler would act on a stepped cycle"
                    );
                }
                for p in processors.iter_mut() {
                    progress |= p.tick(now, &mut env);
                }
                if progress {
                    // A processor tick can only touch the device queues
                    // through an issue (which reports progress), so the
                    // horizon caches need refreshing exactly here.
                    daq_next = env.daq.next_delivery_ns().unwrap_or(u64::MAX);
                    awg_next = env.awg.next_event_ns().unwrap_or(u64::MAX);
                }
                *cycle = now + 1;
                maybe_stalled = !progress;
            }
        }
    }
}

/// The borrowed result view of one arena shot (see
/// [`LoweredShotRunner`]): every counter a batch digest needs, plus the
/// measurement records in issue order, without the owned vectors of a
/// [`RunReport`]. The numbers are bit-identical to the corresponding
/// fields of the report a fresh [`Shot`] run would produce.
#[derive(Debug)]
pub struct ShotOutcome<'a> {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Program time in nanoseconds (cycles × clock period).
    pub ns: u64,
    /// Why the shot stopped.
    pub stop: StopReason,
    /// Quantum operations issued (counted at the backend).
    pub issued_ops: u64,
    /// Operations that reached their timing queue after their deadline.
    pub late_issues: u64,
    /// Total lateness across late issues, in cycles.
    pub late_cycles: u64,
    /// Timing violations detected by the QPU occupancy model.
    pub violations: u64,
    /// Occupancy conflicts detected at the AWG bank.
    pub awg_violations: u64,
    /// Results delayed by DAQ demod contention.
    pub daq_contended: u64,
    /// When the QPU finished its last operation.
    pub qpu_makespan_ns: u64,
    /// Measurement outcomes in issue order.
    pub measurements: &'a [MeasurementRecord],
}

impl ShotOutcome<'_> {
    /// End-to-end execution time: program time or QPU drain, whichever
    /// is later (the [`RunReport::execution_time_ns`] twin).
    pub fn execution_time_ns(&self) -> u64 {
        self.ns.max(self.qpu_makespan_ns)
    }
}

/// A reusable [`StepMode::Lowered`] shot arena.
///
/// [`CompiledJob::shot`] rebuilds the whole per-shot state — processors,
/// scheduler table, device queues, event sinks, measurement log — on the
/// heap for every shot. In a batch engine that cost is pure churn: the
/// shapes are identical from shot to shot because they derive from the
/// job, not from the outcomes. A worker thread keeps one
/// `LoweredShotRunner` instead and pumps shots through it; the first
/// shot builds the state, every later one resets it **in place**
/// (buffers cleared, tables refilled, counters zeroed) so the
/// steady-state per-shot allocation count does not depend on the
/// program — only the backend construction and the caller's digest
/// remain (see the `engine_heap` integration test, which pins this with
/// a counting allocator).
///
/// Reset fidelity is load-bearing and differential-tested: a reused
/// runner's outcomes are bit-identical to fresh
/// [`Shot`]-per-shot runs, and [`ShotEngine`](crate::ShotEngine)
/// aggregates stay bit-identical across all three step modes.
pub struct LoweredShotRunner {
    job: CompiledJob,
    core: Option<ShotCore<FastProcessor>>,
}

impl LoweredShotRunner {
    /// Creates an empty runner for `job` (the arena is built lazily by
    /// the first [`run_shot`](LoweredShotRunner::run_shot)).
    pub fn new(job: CompiledJob) -> Self {
        LoweredShotRunner { job, core: None }
    }

    /// The job this runner executes.
    pub fn job(&self) -> &CompiledJob {
        &self.job
    }

    /// Runs one lean shot on the arena, driving `qpu` and seeding the
    /// machine PRNG with `rng_seed`, and returns the borrowed outcome
    /// digest. Equivalent to
    /// `job.shot(qpu, rng_seed).report_mode(ReportMode::Lean)
    /// .run_with_mode(StepMode::Lowered, max_cycles)` reduced to its
    /// summary counters.
    pub fn run_shot(
        &mut self,
        qpu: Box<dyn QpuBackend>,
        rng_seed: u64,
        max_cycles: u64,
    ) -> ShotOutcome<'_> {
        match &mut self.core {
            Some(core) => core.reset_for_shot(qpu, rng_seed),
            slot @ None => *slot = Some(self.job.fast_core(qpu, rng_seed)),
        }
        let core = self.core.as_mut().expect("core just ensured");
        core.set_report_mode(ReportMode::Lean);
        let stop = core.run_fast_loop(max_cycles);
        core.finish_outcome(stop)
    }
}

/// The per-shot machine state of one execution. Built from a
/// [`CompiledJob`]; stepped at clock-cycle granularity.
///
/// Internally this wraps the reference `ShotCore<Processor>`;
/// [`Shot::run_with_mode`] with [`StepMode::Lowered`] converts an
/// un-stepped shot onto the micro-op fast core before running.
pub struct Shot {
    core: ShotCore<Processor>,
}

impl Shot {
    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.core.cycle
    }

    /// The job this shot executes.
    pub fn job(&self) -> &CompiledJob {
        &self.core.job
    }

    /// Selects how much of the run the report materialises (see
    /// [`ReportMode`]). Call before stepping: events recorded while the
    /// previous mode was in force are kept as-is.
    pub fn report_mode(mut self, mode: ReportMode) -> Self {
        self.core.set_report_mode(mode);
        self
    }

    /// Advances the machine by one clock cycle.
    pub fn step(&mut self) {
        let _ = self.core.step_with_progress();
    }

    /// Runs until completion with a default budget of 10 million cycles.
    pub fn run(self) -> RunReport {
        self.run_with_limit(10_000_000)
    }

    /// Runs until completion, a `HALT`, an error, or the cycle budget,
    /// using the default [`StepMode`] (event-driven).
    pub fn run_with_limit(self, max_cycles: u64) -> RunReport {
        self.run_with_mode(StepMode::default(), max_cycles)
    }

    /// Runs until completion, a `HALT`, an error, or the cycle budget,
    /// advancing time as `mode` dictates. All modes produce bit-identical
    /// reports; [`StepMode::Cycle`] is the slow oracle.
    pub fn run_with_mode(self, mode: StepMode, max_cycles: u64) -> RunReport {
        match mode {
            StepMode::Cycle => self.core.run_loop(false, max_cycles),
            StepMode::EventDriven => self.core.run_loop(true, max_cycles),
            StepMode::Lowered => {
                // The fast core starts from shot-initial state: a shot the
                // caller already stepped manually cannot be transplanted
                // mid-run, so it continues event-driven instead (the
                // report is identical either way).
                if self.core.cycle == 0 {
                    self.into_fast().run_fast(max_cycles)
                } else {
                    self.core.run_loop(true, max_cycles)
                }
            }
        }
    }

    /// Measurement outcomes observed so far (delivered results).
    pub fn measurements(&self) -> &[MeasurementRecord] {
        &self.core.measurements
    }

    /// The AWG bank's device state (diagnostic; tests cross-check its
    /// occupancy view against the QPU shadow model).
    pub fn awg(&self) -> &AwgBank {
        &self.core.awg
    }

    /// The QPU occupancy model's view of when `qubit` becomes free
    /// (diagnostic twin of [`AwgBank::qubit_busy_until`]).
    pub fn qpu_busy_until(&self, qubit: quape_isa::Qubit) -> u64 {
        self.core.qpu.busy_until(qubit)
    }

    /// Converts an un-stepped reference core into the lowered fast core,
    /// carrying over the QPU, PRNG, and report-mode state. The rebuilt
    /// scheduler re-records exactly the initial-load block events the
    /// discarded one held, so reports stay bit-identical.
    fn into_fast(self) -> ShotCore<FastProcessor> {
        debug_assert_eq!(self.core.cycle, 0, "fast conversion requires a fresh shot");
        let core = self.core;
        let job = core.job;
        let lowered = job.lowered.clone();
        let n = job.cfg.num_processors;
        let mut processors: Vec<FastProcessor> = (0..n)
            .map(|i| FastProcessor::new(i, lowered.clone(), job.cfg.icache_banks))
            .collect();
        let mut scheduler = Scheduler::new(&job.program, job.cfg.dependency_mode);
        scheduler.initial_load(&mut processors, &*lowered, n);
        ShotCore {
            job,
            code: lowered,
            processors,
            scheduler,
            mrr: core.mrr,
            daq: core.daq,
            awg: core.awg,
            qpu: core.qpu,
            rng: core.rng,
            shared_regs: core.shared_regs,
            cycle: 0,
            halt: core.halt,
            error: core.error,
            stats: core.stats,
            step_dispatches: core.step_dispatches,
            wait_cycles: core.wait_cycles,
            late_issues: core.late_issues,
            late_cycles: core.late_cycles,
            measurements: core.measurements,
            skip_scratch: core.skip_scratch,
        }
    }
}

/// The full control stack of Fig. 5/9 as a single-shot convenience: one
/// compiled job driving one [`Shot`].
///
/// For multi-shot experiments, compile the job once with
/// [`CompiledJob::compile`] and use [`crate::ShotEngine`] instead of
/// re-validating everything per repetition.
///
/// ```
/// use quape_core::{Machine, QuapeConfig};
/// use quape_qpu::{BehavioralQpu, MeasurementModel};
/// use quape_isa::assemble;
///
/// let program = assemble("0 H q0\n0 H q1\n2 CNOT q0, q1\nSTOP\n")?;
/// let cfg = QuapeConfig::superscalar(4);
/// let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysZero, 1);
/// let report = Machine::new(cfg, program, Box::new(qpu))?.run();
/// assert_eq!(report.issued_count(), 3);
/// assert!(report.timing_clean());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Machine {
    shot: Shot,
}

impl Machine {
    /// Builds a machine for `program` driving `qpu`.
    ///
    /// The shot's PRNG is seeded from `cfg.seed`, exactly as before the
    /// job/shot split.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Config`] for inconsistent configurations and
    /// [`MachineError::Program`] when wrapping a block-less program fails.
    pub fn new(
        cfg: QuapeConfig,
        program: Program,
        qpu: Box<dyn QpuBackend>,
    ) -> Result<Self, MachineError> {
        let seed = cfg.seed;
        let job = CompiledJob::compile(cfg, program)?;
        Ok(Machine {
            shot: job.shot(qpu, seed),
        })
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.shot.cycle()
    }

    /// Advances the machine by one clock cycle.
    pub fn step(&mut self) {
        self.shot.step();
    }

    /// Runs until completion with a default budget of 10 million cycles.
    pub fn run(self) -> RunReport {
        self.shot.run()
    }

    /// Runs until completion, a `HALT`, an error, or the cycle budget.
    pub fn run_with_limit(self, max_cycles: u64) -> RunReport {
        self.shot.run_with_limit(max_cycles)
    }

    /// Runs with an explicit [`StepMode`] (differential testing hook).
    pub fn run_with_mode(self, mode: StepMode, max_cycles: u64) -> RunReport {
        self.shot.run_with_mode(mode, max_cycles)
    }

    /// Measurement outcomes observed so far (delivered results).
    pub fn measurements(&self) -> &[MeasurementRecord] {
        self.shot.measurements()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_qpu::{BehavioralQpu, MeasurementModel};

    fn coin(cfg: &QuapeConfig, seed: u64) -> Box<dyn QpuBackend> {
        Box::new(BehavioralQpu::new(
            cfg.timings,
            MeasurementModel::Bernoulli { p_one: 0.5 },
            seed,
        ))
    }

    fn two_qubit_program() -> Program {
        quape_isa::assemble("0 H q0\n2 CNOT q0, q1\n2 MEAS q0\nSTOP\n").expect("valid program")
    }

    #[test]
    fn num_qubits_scanned_by_default() {
        let job = CompiledJob::compile(QuapeConfig::superscalar(4), two_qubit_program())
            .expect("compiles");
        assert_eq!(job.num_qubits(), 2);
        assert_eq!(job.channel_map().channel_count(), 6);
    }

    #[test]
    fn num_qubits_override_expands_channel_map() {
        let cfg = QuapeConfig::superscalar(4).with_num_qubits(10);
        let job = CompiledJob::compile(cfg, two_qubit_program()).expect("compiles");
        assert_eq!(job.num_qubits(), 10);
        assert_eq!(job.channel_map().channel_count(), 30);
    }

    #[test]
    fn readout_lines_config_builds_multiplexed_map() {
        let cfg = QuapeConfig::superscalar(4)
            .with_num_qubits(10)
            .with_readout_lines(8);
        let job = CompiledJob::compile(cfg, two_qubit_program()).expect("compiles");
        assert_eq!(job.channel_map().readout_lines(), 8);
        assert_eq!(job.channel_map().channel_count(), 28);
    }

    #[test]
    fn awg_occupancy_tracks_qpu_shadow_model() {
        // Step a shot manually: at every cycle the AWG bank's device-side
        // qubit occupancy must match the QPU shadow model exactly.
        let cfg = QuapeConfig::superscalar(4).with_seed(3);
        let job = CompiledJob::compile(cfg.clone(), two_qubit_program()).expect("compiles");
        let mut shot = job.shot(coin(&cfg, 5), cfg.seed);
        for _ in 0..2_000 {
            shot.step();
            for q in 0..job.num_qubits() {
                let q = quape_isa::Qubit::new(q);
                assert_eq!(
                    shot.awg().qubit_busy_until(q),
                    shot.qpu_busy_until(q),
                    "device and QPU occupancy diverged on {q} at cycle {}",
                    shot.cycle()
                );
            }
        }
        assert!(shot.awg().playing() == 0, "all playbacks retired at rest");
        assert_eq!(shot.awg().retired(), shot.awg().timeline().len());
    }

    #[test]
    fn job_digest_is_stable_and_content_keyed() {
        let cfg = QuapeConfig::superscalar(4);
        let a = CompiledJob::compile(cfg.clone(), two_qubit_program()).expect("compiles");
        let b = CompiledJob::compile(cfg.clone(), two_qubit_program()).expect("compiles");
        assert_eq!(a.digest(), b.digest());
        // Different seed, same compiled artifact.
        let reseeded =
            CompiledJob::compile(cfg.clone().with_seed(5), two_qubit_program()).expect("compiles");
        assert_eq!(a.digest(), reseeded.digest());
        // Different program or different config: different key.
        let other = CompiledJob::compile(
            cfg.clone(),
            quape_isa::assemble("0 H q0\nSTOP\n").expect("valid"),
        )
        .expect("compiles");
        assert_ne!(a.digest(), other.digest());
        let wider = CompiledJob::compile(QuapeConfig::superscalar(8), two_qubit_program())
            .expect("compiles");
        assert_ne!(a.digest(), wider.digest());
    }

    #[test]
    fn num_qubits_override_too_small_rejected() {
        let cfg = QuapeConfig::superscalar(4).with_num_qubits(1);
        let err = CompiledJob::compile(cfg, two_qubit_program()).unwrap_err();
        assert!(matches!(err, MachineError::Config(_)), "{err}");
    }

    #[test]
    fn machine_wrapper_matches_job_shot() {
        let cfg = QuapeConfig::superscalar(4).with_seed(9);
        let program = two_qubit_program();
        let via_machine = Machine::new(cfg.clone(), program.clone(), coin(&cfg, 5))
            .expect("machine builds")
            .run();
        let job = CompiledJob::compile(cfg.clone(), program).expect("compiles");
        let via_shot = job.shot(coin(&cfg, 5), cfg.seed).run();
        assert_eq!(via_machine.cycles, via_shot.cycles);
        assert_eq!(via_machine.measurements, via_shot.measurements);
        let a: Vec<(u64, String)> = via_machine
            .issued
            .iter()
            .map(|o| (o.time_ns, o.op.to_string()))
            .collect();
        let b: Vec<(u64, String)> = via_shot
            .issued
            .iter()
            .map(|o| (o.time_ns, o.op.to_string()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn shots_from_one_job_are_independent() {
        let cfg = QuapeConfig::superscalar(4);
        let job = CompiledJob::compile(cfg.clone(), two_qubit_program()).expect("compiles");
        let first = job.shot(coin(&cfg, 1), 1).run();
        let second = job.shot(coin(&cfg, 1), 1).run();
        // Same seeds ⇒ identical; fresh state ⇒ no leakage between shots.
        assert_eq!(first.cycles, second.cycles);
        assert_eq!(first.measurements, second.measurements);
        assert_eq!(first.issued.len(), 3);
    }
}
