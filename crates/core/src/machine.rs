//! The QuAPE machine: multiprocessor + scheduler + devices + QPU, stepped
//! at clock-cycle granularity.

use crate::backend::QpuBackend;
use crate::config::QuapeConfig;
use crate::devices::{AwgBank, ChannelMap, Daq, MeasurementFile};
use crate::processor::{Env, Processor};
use crate::report::{MachineStats, RunReport, StepDispatch, StopReason};
use crate::scheduler::Scheduler;
use quape_isa::{
    BlockInfo, BlockInfoTable, Dependency, Instruction, Program, ProgramError, SHARED_REG_COUNT,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Errors from machine construction.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The configuration is inconsistent.
    Config(String),
    /// The program failed validation.
    Program(ProgramError),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            MachineError::Program(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<ProgramError> for MachineError {
    fn from(e: ProgramError) -> Self {
        MachineError::Program(e)
    }
}

/// A recorded measurement outcome (time, qubit, value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MeasurementRecord {
    /// Issue time of the measurement operation.
    pub time_ns: u64,
    /// Measured qubit.
    pub qubit: quape_isa::Qubit,
    /// Classical outcome.
    pub value: bool,
}

/// The full control stack of Fig. 5/9: scheduler, processors, measurement
/// result registers, DAQ, AWG bank and a QPU backend.
///
/// ```
/// use quape_core::{Machine, QuapeConfig};
/// use quape_qpu::{BehavioralQpu, MeasurementModel};
/// use quape_isa::assemble;
///
/// let program = assemble("0 H q0\n0 H q1\n2 CNOT q0, q1\nSTOP\n")?;
/// let cfg = QuapeConfig::superscalar(4);
/// let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysZero, 1);
/// let report = Machine::new(cfg, program, Box::new(qpu))?.run();
/// assert_eq!(report.issued_count(), 3);
/// assert!(report.timing_clean());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Machine {
    cfg: QuapeConfig,
    program: Program,
    processors: Vec<Processor>,
    scheduler: Scheduler,
    mrr: MeasurementFile,
    daq: Daq,
    awg: AwgBank,
    qpu: Box<dyn QpuBackend>,
    chan: ChannelMap,
    rng: SmallRng,
    shared_regs: [i32; SHARED_REG_COUNT],
    cycle: u64,
    halt: bool,
    error: bool,
    stats: MachineStats,
    step_dispatches: Vec<StepDispatch>,
    wait_cycles: Vec<u64>,
    late_issues: u64,
    late_cycles: u64,
    measurements: Vec<MeasurementRecord>,
}

/// Wraps a block-less program into a single implicit block so the
/// scheduler always has a table to work from.
fn ensure_blocks(program: Program) -> Result<Program, ProgramError> {
    if !program.blocks().is_empty() {
        return Ok(program);
    }
    let len = program.len() as u32;
    let mut table = BlockInfoTable::new();
    table.push(BlockInfo::new("main", 0..len, Dependency::none()))?;
    Program::with_parts(program.instructions().to_vec(), table, program.step_map().to_vec())
}

fn num_qubits_of(program: &Program) -> u16 {
    let mut max = 0u16;
    for instr in program.instructions() {
        match instr {
            Instruction::Quantum(q) => {
                for qubit in q.op.qubits() {
                    max = max.max(qubit.index() + 1);
                }
            }
            Instruction::Classical(c) => {
                if let quape_isa::ClassicalOp::Mrce { qubit, target, .. } = c {
                    max = max.max(qubit.index() + 1).max(target.index() + 1);
                }
                if let quape_isa::ClassicalOp::Fmr { qubit, .. } = c {
                    max = max.max(qubit.index() + 1);
                }
            }
        }
    }
    max.max(1)
}

impl Machine {
    /// Builds a machine for `program` driving `qpu`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Config`] for inconsistent configurations and
    /// [`MachineError::Program`] when wrapping a block-less program fails.
    pub fn new(
        cfg: QuapeConfig,
        program: Program,
        qpu: Box<dyn QpuBackend>,
    ) -> Result<Self, MachineError> {
        cfg.validate().map_err(MachineError::Config)?;
        let program = ensure_blocks(program)?;
        let chan = ChannelMap::linear(num_qubits_of(&program));
        let mut processors: Vec<Processor> =
            (0..cfg.num_processors).map(Processor::new).collect();
        let mut scheduler = Scheduler::new(&program);
        // Pre-task load of the first num_processors blocks (§7).
        scheduler.initial_load(&mut processors, &program, cfg.num_processors);
        let stats = MachineStats { processors: vec![Default::default(); cfg.num_processors], ..Default::default() };
        let rng = SmallRng::seed_from_u64(cfg.seed);
        Ok(Machine {
            cfg,
            program,
            processors,
            scheduler,
            mrr: MeasurementFile::new(),
            daq: Daq::new(),
            awg: AwgBank::new(),
            qpu,
            chan,
            rng,
            shared_regs: [0; SHARED_REG_COUNT],
            cycle: 0,
            halt: false,
            error: false,
            stats,
            step_dispatches: Vec::new(),
            wait_cycles: Vec::new(),
            late_issues: 0,
            late_cycles: 0,
            measurements: Vec::new(),
        })
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances the machine by one clock cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        self.daq.tick(now * self.cfg.clock_ns, &mut self.mrr);
        self.scheduler.tick(now, &mut self.processors, &self.program, &self.cfg, &mut self.stats);
        let mut env = Env {
            cfg: &self.cfg,
            program: &self.program,
            mrr: &mut self.mrr,
            daq: &mut self.daq,
            awg: &mut self.awg,
            qpu: &mut *self.qpu,
            chan: &self.chan,
            rng: &mut self.rng,
            shared_regs: &mut self.shared_regs,
            step_dispatches: &mut self.step_dispatches,
            wait_cycles: &mut self.wait_cycles,
            late_issues: &mut self.late_issues,
            late_cycles: &mut self.late_cycles,
            measurements: &mut self.measurements,
            halt: &mut self.halt,
            error: &mut self.error,
        };
        for p in &mut self.processors {
            p.tick(now, &mut env);
        }
        self.cycle += 1;
    }

    fn quiescent(&self) -> bool {
        self.scheduler.all_done()
            && self.processors.iter().all(|p| p.is_idle() && !p.has_pending_work())
            && self.daq.in_flight() == 0
    }

    fn drained_after_halt(&self) -> bool {
        self.halt
            && self.processors.iter().all(|p| !p.has_pending_work())
            && self.daq.in_flight() == 0
    }

    /// Runs until completion with a default budget of 10 million cycles.
    pub fn run(self) -> RunReport {
        self.run_with_limit(10_000_000)
    }

    /// Runs until completion, a `HALT`, an error, or the cycle budget.
    pub fn run_with_limit(mut self, max_cycles: u64) -> RunReport {
        let stop = loop {
            if self.error {
                break StopReason::Error;
            }
            if self.quiescent() {
                break StopReason::Completed;
            }
            if self.drained_after_halt() {
                break StopReason::Halted;
            }
            if self.cycle >= max_cycles {
                break StopReason::CycleLimit;
            }
            self.step();
        };
        self.into_report(stop)
    }

    /// Measurement outcomes observed so far (delivered results).
    pub fn measurements(&self) -> &[MeasurementRecord] {
        &self.measurements
    }

    fn into_report(mut self, stop: StopReason) -> RunReport {
        for (i, p) in self.processors.iter().enumerate() {
            self.stats.processors[i] = p.stats;
        }
        self.stats.late_issues = self.late_issues;
        self.stats.late_cycles = self.late_cycles;
        RunReport {
            cycles: self.cycle,
            ns: self.cycle * self.cfg.clock_ns,
            stop,
            issued: self.qpu.log().to_vec(),
            violations: self.qpu.violations().to_vec(),
            stats: self.stats,
            step_dispatches: self.step_dispatches,
            wait_cycles: self.wait_cycles,
            measurements: self.measurements,
            block_events: self.scheduler.events.clone(),
            qpu_makespan_ns: self.qpu.makespan_ns(),
        }
    }
}
