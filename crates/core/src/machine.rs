//! The QuAPE machine, split into a compile-once job and per-shot state.
//!
//! [`CompiledJob`] owns the immutable, shareable artifacts of a run — the
//! validated [`QuapeConfig`], the block-wrapped [`Program`] (with its
//! block information table), and the [`ChannelMap`] — all behind `Arc` so
//! that cloning a job is O(1). A [`Shot`] is the mutable machine state of
//! one execution (processors, scheduler, MRR/DAQ/AWG devices, PRNG,
//! counters) built from a job in O(state) instead of
//! O(revalidate-everything); the multi-shot experiments of §7/§8 construct
//! one job and then run thousands of shots from it (see
//! [`crate::ShotEngine`]).
//!
//! [`Machine`] remains the single-shot convenience wrapper the rest of
//! the workspace was written against: `Machine::new(cfg, program, qpu)`
//! compiles a job and builds its one shot.

use crate::backend::QpuBackend;
use crate::config::QuapeConfig;
use crate::devices::{AwgBank, ChannelMap, Daq, MeasurementFile};
use crate::processor::{Env, Processor};
use crate::report::{MachineStats, RunReport, StepDispatch, StopReason};
use crate::scheduler::Scheduler;
use quape_isa::{BlockInfo, BlockInfoTable, Dependency, Program, ProgramError, SHARED_REG_COUNT};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// Errors from machine construction.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The configuration is inconsistent.
    Config(String),
    /// The program failed validation.
    Program(ProgramError),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            MachineError::Program(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<ProgramError> for MachineError {
    fn from(e: ProgramError) -> Self {
        MachineError::Program(e)
    }
}

/// A recorded measurement outcome (time, qubit, value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MeasurementRecord {
    /// Issue time of the measurement operation.
    pub time_ns: u64,
    /// Measured qubit.
    pub qubit: quape_isa::Qubit,
    /// Classical outcome.
    pub value: bool,
}

/// Wraps a block-less program into a single implicit block so the
/// scheduler always has a table to work from.
fn ensure_blocks(program: Program) -> Result<Program, ProgramError> {
    if !program.blocks().is_empty() {
        return Ok(program);
    }
    let len = program.len() as u32;
    let mut table = BlockInfoTable::new();
    table.push(BlockInfo::new("main", 0..len, Dependency::none()))?;
    Program::with_parts(
        program.instructions().to_vec(),
        table,
        program.step_map().to_vec(),
    )
}

/// The immutable, shareable half of a run: validated configuration,
/// block-wrapped program, and channel map, each behind an `Arc`.
///
/// Compile once, then build any number of [`Shot`]s (possibly from many
/// threads — a job is `Send + Sync` and clones in O(1)).
///
/// ```
/// use quape_core::{CompiledJob, QuapeConfig};
/// use quape_qpu::{BehavioralQpu, MeasurementModel};
/// use quape_isa::assemble;
///
/// let program = assemble("0 H q0\n0 H q1\n2 CNOT q0, q1\nSTOP\n")?;
/// let job = CompiledJob::compile(QuapeConfig::superscalar(4), program)?;
/// for shot_index in 0..4u64 {
///     let qpu = BehavioralQpu::new(job.cfg().timings, MeasurementModel::AlwaysZero, shot_index);
///     let report = job.shot(Box::new(qpu), shot_index).run();
///     assert_eq!(report.issued_count(), 3);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledJob {
    cfg: Arc<QuapeConfig>,
    program: Arc<Program>,
    chan: Arc<ChannelMap>,
    num_qubits: u16,
}

impl CompiledJob {
    /// Validates `cfg` and `program` once and freezes the shareable
    /// artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Config`] for inconsistent configurations
    /// (including a `num_qubits` override smaller than what the program
    /// touches) and [`MachineError::Program`] when wrapping a block-less
    /// program fails.
    pub fn compile(cfg: QuapeConfig, program: Program) -> Result<Self, MachineError> {
        cfg.validate().map_err(MachineError::Config)?;
        let program = ensure_blocks(program)?;
        let scanned = program.num_qubits().max(1);
        let num_qubits = match cfg.num_qubits {
            None => scanned,
            Some(n) if n >= scanned => n,
            Some(n) => {
                return Err(MachineError::Config(format!(
                "num_qubits override {n} is smaller than the {scanned} qubits the program touches"
            )))
            }
        };
        let chan = ChannelMap::linear(num_qubits);
        Ok(CompiledJob {
            cfg: Arc::new(cfg),
            program: Arc::new(program),
            chan: Arc::new(chan),
            num_qubits,
        })
    }

    /// The validated configuration.
    pub fn cfg(&self) -> &QuapeConfig {
        &self.cfg
    }

    /// The block-wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The block information table the scheduler works from.
    pub fn blocks(&self) -> &BlockInfoTable {
        self.program.blocks()
    }

    /// The qubit→channel map.
    pub fn channel_map(&self) -> &ChannelMap {
        &self.chan
    }

    /// Number of qubits the setup is sized for.
    pub fn num_qubits(&self) -> u16 {
        self.num_qubits
    }

    /// Builds the per-shot machine state for one execution, driving `qpu`
    /// and seeding the shot's PRNG (DAQ jitter) with `rng_seed`.
    pub fn shot(&self, qpu: Box<dyn QpuBackend>, rng_seed: u64) -> Shot {
        let cfg = &self.cfg;
        let mut processors: Vec<Processor> = (0..cfg.num_processors).map(Processor::new).collect();
        let mut scheduler = Scheduler::new(&self.program);
        // Pre-task load of the first num_processors blocks (§7).
        scheduler.initial_load(&mut processors, &self.program, cfg.num_processors);
        let stats = MachineStats {
            processors: vec![Default::default(); cfg.num_processors],
            ..Default::default()
        };
        Shot {
            job: self.clone(),
            processors,
            scheduler,
            mrr: MeasurementFile::new(),
            daq: Daq::new(),
            awg: AwgBank::new(),
            qpu,
            rng: SmallRng::seed_from_u64(rng_seed),
            shared_regs: [0; SHARED_REG_COUNT],
            cycle: 0,
            halt: false,
            error: false,
            stats,
            step_dispatches: Vec::new(),
            wait_cycles: Vec::new(),
            late_issues: 0,
            late_cycles: 0,
            measurements: Vec::new(),
        }
    }
}

/// The mutable state of one execution: processors, scheduler, devices,
/// QPU, PRNG, and statistics. Built from a [`CompiledJob`]; stepped at
/// clock-cycle granularity.
pub struct Shot {
    job: CompiledJob,
    processors: Vec<Processor>,
    scheduler: Scheduler,
    mrr: MeasurementFile,
    daq: Daq,
    awg: AwgBank,
    qpu: Box<dyn QpuBackend>,
    rng: SmallRng,
    shared_regs: [i32; SHARED_REG_COUNT],
    cycle: u64,
    halt: bool,
    error: bool,
    stats: MachineStats,
    step_dispatches: Vec<StepDispatch>,
    wait_cycles: Vec<u64>,
    late_issues: u64,
    late_cycles: u64,
    measurements: Vec<MeasurementRecord>,
}

impl Shot {
    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The job this shot executes.
    pub fn job(&self) -> &CompiledJob {
        &self.job
    }

    /// Advances the machine by one clock cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        let cfg: &QuapeConfig = &self.job.cfg;
        let program: &Program = &self.job.program;
        self.daq.tick(now * cfg.clock_ns, &mut self.mrr);
        self.scheduler
            .tick(now, &mut self.processors, program, cfg, &mut self.stats);
        let mut env = Env {
            cfg,
            program,
            mrr: &mut self.mrr,
            daq: &mut self.daq,
            awg: &mut self.awg,
            qpu: &mut *self.qpu,
            chan: &self.job.chan,
            rng: &mut self.rng,
            shared_regs: &mut self.shared_regs,
            step_dispatches: &mut self.step_dispatches,
            wait_cycles: &mut self.wait_cycles,
            late_issues: &mut self.late_issues,
            late_cycles: &mut self.late_cycles,
            measurements: &mut self.measurements,
            halt: &mut self.halt,
            error: &mut self.error,
        };
        for p in &mut self.processors {
            p.tick(now, &mut env);
        }
        self.cycle += 1;
    }

    fn quiescent(&self) -> bool {
        self.scheduler.all_done()
            && self
                .processors
                .iter()
                .all(|p| p.is_idle() && !p.has_pending_work())
            && self.daq.in_flight() == 0
    }

    fn drained_after_halt(&self) -> bool {
        self.halt
            && self.processors.iter().all(|p| !p.has_pending_work())
            && self.daq.in_flight() == 0
    }

    /// Runs until completion with a default budget of 10 million cycles.
    pub fn run(self) -> RunReport {
        self.run_with_limit(10_000_000)
    }

    /// Runs until completion, a `HALT`, an error, or the cycle budget.
    pub fn run_with_limit(mut self, max_cycles: u64) -> RunReport {
        let stop = loop {
            if self.error {
                break StopReason::Error;
            }
            if self.quiescent() {
                break StopReason::Completed;
            }
            if self.drained_after_halt() {
                break StopReason::Halted;
            }
            if self.cycle >= max_cycles {
                break StopReason::CycleLimit;
            }
            self.step();
        };
        self.into_report(stop)
    }

    /// Measurement outcomes observed so far (delivered results).
    pub fn measurements(&self) -> &[MeasurementRecord] {
        &self.measurements
    }

    fn into_report(mut self, stop: StopReason) -> RunReport {
        for (i, p) in self.processors.iter().enumerate() {
            self.stats.processors[i] = p.stats;
        }
        self.stats.late_issues = self.late_issues;
        self.stats.late_cycles = self.late_cycles;
        RunReport {
            cycles: self.cycle,
            ns: self.cycle * self.job.cfg.clock_ns,
            stop,
            issued: self.qpu.log().to_vec(),
            violations: self.qpu.violations().to_vec(),
            stats: self.stats,
            step_dispatches: self.step_dispatches,
            wait_cycles: self.wait_cycles,
            measurements: self.measurements,
            block_events: self.scheduler.events.clone(),
            qpu_makespan_ns: self.qpu.makespan_ns(),
        }
    }
}

/// The full control stack of Fig. 5/9 as a single-shot convenience: one
/// compiled job driving one [`Shot`].
///
/// For multi-shot experiments, compile the job once with
/// [`CompiledJob::compile`] and use [`crate::ShotEngine`] instead of
/// re-validating everything per repetition.
///
/// ```
/// use quape_core::{Machine, QuapeConfig};
/// use quape_qpu::{BehavioralQpu, MeasurementModel};
/// use quape_isa::assemble;
///
/// let program = assemble("0 H q0\n0 H q1\n2 CNOT q0, q1\nSTOP\n")?;
/// let cfg = QuapeConfig::superscalar(4);
/// let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysZero, 1);
/// let report = Machine::new(cfg, program, Box::new(qpu))?.run();
/// assert_eq!(report.issued_count(), 3);
/// assert!(report.timing_clean());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Machine {
    shot: Shot,
}

impl Machine {
    /// Builds a machine for `program` driving `qpu`.
    ///
    /// The shot's PRNG is seeded from `cfg.seed`, exactly as before the
    /// job/shot split.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Config`] for inconsistent configurations and
    /// [`MachineError::Program`] when wrapping a block-less program fails.
    pub fn new(
        cfg: QuapeConfig,
        program: Program,
        qpu: Box<dyn QpuBackend>,
    ) -> Result<Self, MachineError> {
        let seed = cfg.seed;
        let job = CompiledJob::compile(cfg, program)?;
        Ok(Machine {
            shot: job.shot(qpu, seed),
        })
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.shot.cycle()
    }

    /// Advances the machine by one clock cycle.
    pub fn step(&mut self) {
        self.shot.step();
    }

    /// Runs until completion with a default budget of 10 million cycles.
    pub fn run(self) -> RunReport {
        self.shot.run()
    }

    /// Runs until completion, a `HALT`, an error, or the cycle budget.
    pub fn run_with_limit(self, max_cycles: u64) -> RunReport {
        self.shot.run_with_limit(max_cycles)
    }

    /// Measurement outcomes observed so far (delivered results).
    pub fn measurements(&self) -> &[MeasurementRecord] {
        self.shot.measurements()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_qpu::{BehavioralQpu, MeasurementModel};

    fn coin(cfg: &QuapeConfig, seed: u64) -> Box<dyn QpuBackend> {
        Box::new(BehavioralQpu::new(
            cfg.timings,
            MeasurementModel::Bernoulli { p_one: 0.5 },
            seed,
        ))
    }

    fn two_qubit_program() -> Program {
        quape_isa::assemble("0 H q0\n2 CNOT q0, q1\n2 MEAS q0\nSTOP\n").expect("valid program")
    }

    #[test]
    fn num_qubits_scanned_by_default() {
        let job = CompiledJob::compile(QuapeConfig::superscalar(4), two_qubit_program())
            .expect("compiles");
        assert_eq!(job.num_qubits(), 2);
        assert_eq!(job.channel_map().channel_count(), 6);
    }

    #[test]
    fn num_qubits_override_expands_channel_map() {
        let cfg = QuapeConfig::superscalar(4).with_num_qubits(10);
        let job = CompiledJob::compile(cfg, two_qubit_program()).expect("compiles");
        assert_eq!(job.num_qubits(), 10);
        assert_eq!(job.channel_map().channel_count(), 30);
    }

    #[test]
    fn num_qubits_override_too_small_rejected() {
        let cfg = QuapeConfig::superscalar(4).with_num_qubits(1);
        let err = CompiledJob::compile(cfg, two_qubit_program()).unwrap_err();
        assert!(matches!(err, MachineError::Config(_)), "{err}");
    }

    #[test]
    fn machine_wrapper_matches_job_shot() {
        let cfg = QuapeConfig::superscalar(4).with_seed(9);
        let program = two_qubit_program();
        let via_machine = Machine::new(cfg.clone(), program.clone(), coin(&cfg, 5))
            .expect("machine builds")
            .run();
        let job = CompiledJob::compile(cfg.clone(), program).expect("compiles");
        let via_shot = job.shot(coin(&cfg, 5), cfg.seed).run();
        assert_eq!(via_machine.cycles, via_shot.cycles);
        assert_eq!(via_machine.measurements, via_shot.measurements);
        let a: Vec<(u64, String)> = via_machine
            .issued
            .iter()
            .map(|o| (o.time_ns, o.op.to_string()))
            .collect();
        let b: Vec<(u64, String)> = via_shot
            .issued
            .iter()
            .map(|o| (o.time_ns, o.op.to_string()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn shots_from_one_job_are_independent() {
        let cfg = QuapeConfig::superscalar(4);
        let job = CompiledJob::compile(cfg.clone(), two_qubit_program()).expect("compiles");
        let first = job.shot(coin(&cfg, 1), 1).run();
        let second = job.shot(coin(&cfg, 1), 1).run();
        // Same seeds ⇒ identical; fresh state ⇒ no leakage between shots.
        assert_eq!(first.cycles, second.cycles);
        assert_eq!(first.measurements, second.measurements);
        assert_eq!(first.issued.len(), 3);
    }
}
