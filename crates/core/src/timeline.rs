//! ASCII timeline rendering of a run's issued operations.
//!
//! Produces the per-qubit Gantt view used by the examples to show what
//! the control stack actually delivered to the QPU — the visual
//! equivalent of Fig. 3's parallel/serial execution diagrams.
//!
//! Pulse extents are re-derived here from `OpTimings` after the run; see
//! ROADMAP "Open items" for the follow-on that models AWG playback as
//! first-class event-timeline state the renderer can stream from.

use crate::report::RunReport;
use quape_isa::{OpTimings, QuantumOp};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Options for [`render_timeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineOptions {
    /// Nanoseconds represented by one character column.
    pub ns_per_column: u64,
    /// Maximum number of columns (the timeline truncates after this).
    pub max_columns: usize,
    /// Operation durations used to draw extents.
    pub timings: OpTimings,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            ns_per_column: 10,
            max_columns: 120,
            timings: OpTimings {
                single_qubit_ns: 20,
                two_qubit_ns: 40,
                readout_pulse_ns: 300,
            },
        }
    }
}

fn glyph(op: &QuantumOp) -> char {
    match op {
        QuantumOp::Gate1(g, _) => g.mnemonic().chars().next().unwrap_or('?'),
        QuantumOp::Gate2(g, ..) => g.mnemonic().chars().next().unwrap_or('?'),
        QuantumOp::Measure(_) => 'M',
    }
}

/// Renders the issued operations of `report` as one text row per qubit.
///
/// Each operation paints its first column with the gate's initial and the
/// rest of its duration with `=`; idle time is `.`. A trailing `>` marks
/// truncation at `max_columns`.
///
/// ```
/// use quape_core::{render_timeline, Machine, QuapeConfig, TimelineOptions};
/// use quape_qpu::{BehavioralQpu, MeasurementModel};
/// use quape_isa::assemble;
///
/// let program = assemble("0 H q0\n0 H q1\n2 CNOT q0, q1\nSTOP\n")?;
/// let cfg = QuapeConfig::superscalar(4);
/// let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysZero, 1);
/// let report = Machine::new(cfg, program, Box::new(qpu))?.run();
/// let art = render_timeline(&report, &TimelineOptions::default());
/// assert!(art.contains("q0"));
/// assert!(art.contains("H="));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_timeline(report: &RunReport, opts: &TimelineOptions) -> String {
    if report.issued.is_empty() {
        return String::from("(no operations issued)\n");
    }
    let t0 = report.issued.iter().map(|o| o.time_ns).min().unwrap_or(0);
    let mut rows: BTreeMap<u16, Vec<char>> = BTreeMap::new();
    let mut truncated = false;
    for issued in &report.issued {
        let start_col = ((issued.time_ns - t0) / opts.ns_per_column) as usize;
        let width = (opts.timings.duration_of(&issued.op) / opts.ns_per_column).max(1) as usize;
        for qubit in issued.op.qubits() {
            let row = rows.entry(qubit.index()).or_default();
            if start_col >= opts.max_columns {
                truncated = true;
                continue;
            }
            let end_col = (start_col + width).min(opts.max_columns);
            if start_col + width > opts.max_columns {
                truncated = true;
            }
            if row.len() < end_col {
                row.resize(end_col, '.');
            }
            row[start_col] = glyph(&issued.op);
            for slot in row.iter_mut().take(end_col).skip(start_col + 1) {
                *slot = '=';
            }
        }
    }
    let width = rows.values().map(Vec::len).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "t = {t0} ns, one column = {} ns{}",
        opts.ns_per_column,
        if truncated { " (truncated)" } else { "" }
    );
    for (qubit, mut row) in rows {
        row.resize(width, '.');
        let line: String = row.into_iter().collect();
        let _ = writeln!(
            out,
            "q{qubit:<3} {line}{}",
            if truncated { ">" } else { "" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, QuapeConfig};
    use quape_isa::assemble;
    use quape_qpu::{BehavioralQpu, MeasurementModel};

    fn run(src: &str) -> RunReport {
        let cfg = QuapeConfig::superscalar(8);
        let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysZero, 1);
        Machine::new(cfg, assemble(src).unwrap(), Box::new(qpu))
            .unwrap()
            .run()
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let report = run("0 H q0\n0 H q1\n2 CNOT q0, q1\nSTOP\n");
        let art = render_timeline(&report, &TimelineOptions::default());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 qubit rows
                                    // Both qubit rows start with the H glyph at the same column.
        let h0 = lines[1].find('H').expect("q0 has an H");
        let h1 = lines[2].find('H').expect("q1 has an H");
        assert_eq!(h0, h1);
        // The CNOT paints both rows after the H pulses.
        assert!(lines[1].contains('C') && lines[2].contains('C'));
    }

    #[test]
    fn durations_paint_extents() {
        let report = run("0 MEAS q0\nSTOP\n");
        let art = render_timeline(&report, &TimelineOptions::default());
        // 300 ns readout at 10 ns/col = 30 columns: M followed by 29 '='.
        let row = art.lines().nth(1).expect("one qubit row");
        let eq_count = row.matches('=').count();
        assert_eq!(eq_count, 29, "{row}");
    }

    #[test]
    fn truncation_is_flagged() {
        let mut src = String::new();
        for _ in 0..100 {
            src.push_str("2 X q0\n");
        }
        src.push_str("STOP\n");
        let report = run(&src);
        let art = render_timeline(
            &report,
            &TimelineOptions {
                max_columns: 20,
                ..TimelineOptions::default()
            },
        );
        assert!(art.contains("(truncated)"));
        assert!(art.lines().nth(1).expect("row").ends_with('>'));
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let report = run("NOP\nSTOP\n");
        let art = render_timeline(&report, &TimelineOptions::default());
        assert!(art.contains("no operations"));
    }
}
