//! ASCII timeline rendering of a run's AWG playback timeline.
//!
//! Produces the per-qubit Gantt view used by the examples to show what
//! the control stack actually delivered to the QPU — the visual
//! equivalent of Fig. 3's parallel/serial execution diagrams.
//!
//! Pulse extents **stream from the recorded playback timeline**
//! ([`RunReport::playback`]): the AWG bank resolved each waveform's
//! duration at emit time, so the renderer never re-derives timing. For
//! hand-built reports without playback data it falls back to deriving
//! extents from the issued operations and [`TimelineOptions::timings`].

use crate::report::RunReport;
use quape_isa::{OpTimings, QuantumOp};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Options for [`render_timeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineOptions {
    /// Nanoseconds represented by one character column.
    pub ns_per_column: u64,
    /// Maximum number of columns (the timeline truncates after this).
    pub max_columns: usize,
    /// Operation durations for the no-playback fallback path (reports
    /// produced by a machine run carry recorded extents instead).
    pub timings: OpTimings,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            ns_per_column: 10,
            max_columns: 120,
            timings: OpTimings {
                single_qubit_ns: 20,
                two_qubit_ns: 40,
                readout_pulse_ns: 300,
            },
        }
    }
}

fn glyph(op: &QuantumOp) -> char {
    match op {
        QuantumOp::Gate1(g, _) => g.mnemonic().chars().next().unwrap_or('?'),
        QuantumOp::Gate2(g, ..) => g.mnemonic().chars().next().unwrap_or('?'),
        QuantumOp::Measure(_) => 'M',
    }
}

/// One pulse to paint: a qubit row plus the extent in absolute time.
struct Paint {
    qubit: u16,
    start_ns: u64,
    end_ns: u64,
    glyph: char,
}

/// Renders the playback timeline of `report` as one text row per qubit.
///
/// Each pulse paints its first column with the gate's initial and the
/// rest of its extent with `=` (every column the pulse touches, rounding
/// the end up); idle time is `.`. A trailing `>` marks each row that
/// overflowed `max_columns`.
///
/// ```
/// use quape_core::{render_timeline, Machine, QuapeConfig, TimelineOptions};
/// use quape_qpu::{BehavioralQpu, MeasurementModel};
/// use quape_isa::assemble;
///
/// let program = assemble("0 H q0\n0 H q1\n2 CNOT q0, q1\nSTOP\n")?;
/// let cfg = QuapeConfig::superscalar(4);
/// let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysZero, 1);
/// let report = Machine::new(cfg, program, Box::new(qpu))?.run();
/// let art = render_timeline(&report, &TimelineOptions::default());
/// assert!(art.contains("q0"));
/// assert!(art.contains("H="));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_timeline(report: &RunReport, opts: &TimelineOptions) -> String {
    let paints: Vec<Paint> = if report.playback.is_empty() {
        // Fallback for reports without device recordings.
        report
            .issued
            .iter()
            .flat_map(|issued| {
                let duration = opts.timings.duration_of(&issued.op);
                let g = glyph(&issued.op);
                let start_ns = issued.time_ns;
                issued.op.qubits().map(move |q| Paint {
                    qubit: q.index(),
                    start_ns,
                    end_ns: start_ns + duration,
                    glyph: g,
                })
            })
            .collect()
    } else {
        report
            .playback
            .iter()
            .map(|e| Paint {
                qubit: e.qubit.index(),
                start_ns: e.start_ns,
                end_ns: e.end_ns,
                glyph: glyph(&e.op),
            })
            .collect()
    };
    if paints.is_empty() {
        return String::from("(no operations issued)\n");
    }
    let t0 = paints.iter().map(|p| p.start_ns).min().unwrap_or(0);
    // Row content plus a per-row truncation flag: only rows that actually
    // overflow `max_columns` carry the `>` marker.
    let mut rows: BTreeMap<u16, (Vec<char>, bool)> = BTreeMap::new();
    for p in &paints {
        let start_col = ((p.start_ns - t0) / opts.ns_per_column) as usize;
        // Paint every column the pulse touches: floor the start, round the
        // end up (a 25 ns pulse at 10 ns/col spans 3 columns, not 2).
        let end_col = ((p.end_ns - t0).div_ceil(opts.ns_per_column) as usize).max(start_col + 1);
        let (row, truncated) = rows.entry(p.qubit).or_default();
        if start_col >= opts.max_columns {
            *truncated = true;
            continue;
        }
        if end_col > opts.max_columns {
            *truncated = true;
        }
        let end_col = end_col.min(opts.max_columns);
        if row.len() < end_col {
            row.resize(end_col, '.');
        }
        row[start_col] = p.glyph;
        for slot in row.iter_mut().take(end_col).skip(start_col + 1) {
            *slot = '=';
        }
    }
    let any_truncated = rows.values().any(|(_, t)| *t);
    let width = rows.values().map(|(row, _)| row.len()).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "t = {t0} ns, one column = {} ns{}",
        opts.ns_per_column,
        if any_truncated { " (truncated)" } else { "" }
    );
    for (qubit, (mut row, truncated)) in rows {
        row.resize(width, '.');
        let line: String = row.into_iter().collect();
        let _ = writeln!(
            out,
            "q{qubit:<3} {line}{}",
            if truncated { ">" } else { "" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, QuapeConfig};
    use quape_isa::assemble;
    use quape_qpu::{BehavioralQpu, MeasurementModel};

    fn run(src: &str) -> RunReport {
        let cfg = QuapeConfig::superscalar(8);
        let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysZero, 1);
        Machine::new(cfg, assemble(src).unwrap(), Box::new(qpu))
            .unwrap()
            .run()
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let report = run("0 H q0\n0 H q1\n2 CNOT q0, q1\nSTOP\n");
        let art = render_timeline(&report, &TimelineOptions::default());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 qubit rows
                                    // Both qubit rows start with the H glyph at the same column.
        let h0 = lines[1].find('H').expect("q0 has an H");
        let h1 = lines[2].find('H').expect("q1 has an H");
        assert_eq!(h0, h1);
        // The CNOT paints both rows after the H pulses.
        assert!(lines[1].contains('C') && lines[2].contains('C'));
    }

    #[test]
    fn durations_paint_extents() {
        let report = run("0 MEAS q0\nSTOP\n");
        assert!(!report.playback.is_empty(), "machine runs record playback");
        let art = render_timeline(&report, &TimelineOptions::default());
        // 300 ns readout at 10 ns/col = 30 columns: M followed by 29 '='.
        let row = art.lines().nth(1).expect("one qubit row");
        let eq_count = row.matches('=').count();
        assert_eq!(eq_count, 29, "{row}");
    }

    #[test]
    fn pulse_width_rounds_up_to_touched_columns() {
        // A 25 ns pulse at 10 ns/col touches 3 columns (glyph + 2 '='),
        // not the 2 that truncating division would paint.
        let mut report = run("0 X q0\nSTOP\n");
        report.playback[0].end_ns = report.playback[0].start_ns + 25;
        let art = render_timeline(&report, &TimelineOptions::default());
        let row = art.lines().nth(1).expect("one qubit row");
        assert_eq!(row.matches('=').count(), 2, "{row}");
        assert!(row.contains("X=="), "{row}");
    }

    #[test]
    fn truncation_is_flagged() {
        let mut src = String::new();
        for _ in 0..100 {
            src.push_str("2 X q0\n");
        }
        src.push_str("STOP\n");
        let report = run(&src);
        let art = render_timeline(
            &report,
            &TimelineOptions {
                max_columns: 20,
                ..TimelineOptions::default()
            },
        );
        assert!(art.contains("(truncated)"));
        assert!(art.lines().nth(1).expect("row").ends_with('>'));
    }

    #[test]
    fn truncation_marks_only_overflowing_rows() {
        // q0 runs a long pulse train past max_columns; q1 plays one short
        // gate. Only q0's row may carry the `>` marker.
        let mut src = String::from("0 H q1\n");
        for _ in 0..50 {
            src.push_str("2 X q0\n");
        }
        src.push_str("STOP\n");
        let report = run(&src);
        let art = render_timeline(
            &report,
            &TimelineOptions {
                max_columns: 20,
                ..TimelineOptions::default()
            },
        );
        assert!(art.contains("(truncated)"));
        let lines: Vec<&str> = art.lines().collect();
        let q0 = lines.iter().find(|l| l.starts_with("q0")).expect("q0 row");
        let q1 = lines.iter().find(|l| l.starts_with("q1")).expect("q1 row");
        assert!(q0.ends_with('>'), "{q0}");
        assert!(!q1.ends_with('>'), "{q1}");
    }

    #[test]
    fn renders_from_recorded_playback_not_rederived_timings() {
        // Corrupting the options' timings must not change the art: the
        // extents come from the device recording.
        let report = run("0 MEAS q0\nSTOP\n");
        let mut opts = TimelineOptions::default();
        opts.timings.readout_pulse_ns = 10;
        let art = render_timeline(&report, &opts);
        let row = art.lines().nth(1).expect("one qubit row");
        assert_eq!(row.matches('=').count(), 29, "{row}");
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let report = run("NOP\nSTOP\n");
        let art = render_timeline(&report, &TimelineOptions::default());
        assert!(art.contains("no operations"));
    }
}
