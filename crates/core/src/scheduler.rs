//! The multiprocessor scheduler (§5.2).
//!
//! Continuously reads the block information table, performs the dependency
//! check (direct bit-vector or priority counter), and allocates ready
//! program blocks to idle processors. It handles **one scheduling action
//! at a time** — while busy filling a cache it does not answer other
//! requests, which reproduces the paper's observation that overly
//! fine-grained blocks overwhelm the scheduler. Prefetching into the free
//! cache bank of a processor hides most of the allocation latency.

use crate::config::QuapeConfig;
use crate::processor::Processor;
use crate::report::{BlockEvent, MachineStats};
use quape_isa::{BlockId, BlockStatus, Dependency, DependencyMode, Program};

/// Run-time status of one block, mirroring the status registers of §5.2.2
/// with an extra in-flight state for jobs the scheduler is working on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RtStatus {
    Wait,
    /// Fill job running toward a free bank of `proc`.
    Prefetching {
        proc: usize,
    },
    /// Resident in a bank of `proc`, waiting to become ready/started.
    Prefetched {
        proc: usize,
    },
    /// Fill job running; the block starts on `proc` when it completes.
    Allocating {
        proc: usize,
    },
    InExecution,
    Done,
}

impl RtStatus {
    fn public(self) -> BlockStatus {
        match self {
            RtStatus::Wait => BlockStatus::Wait,
            RtStatus::Prefetching { .. } | RtStatus::Prefetched { .. } => BlockStatus::Prefetch,
            RtStatus::Allocating { .. } | RtStatus::InExecution => BlockStatus::InExecution,
            RtStatus::Done => BlockStatus::Done,
        }
    }
}

/// An in-flight scheduling job (the scheduler is busy until `finish`).
#[derive(Debug, Clone, Copy)]
enum Job {
    Allocate {
        block: BlockId,
        proc: usize,
        finish: u64,
    },
    Prefetch {
        block: BlockId,
        proc: usize,
        finish: u64,
    },
}

/// The dynamic block scheduler.
#[derive(Debug)]
pub(crate) struct Scheduler {
    status: Vec<RtStatus>,
    mode: Option<DependencyMode>,
    priority_counter: u16,
    busy_until: u64,
    job: Option<Job>,
    pub(crate) events: Vec<BlockEvent>,
}

impl Scheduler {
    /// Builds the scheduler state from a validated block table.
    pub fn new(program: &Program) -> Self {
        let n = program.blocks().len();
        Scheduler {
            status: vec![RtStatus::Wait; n],
            mode: program.blocks().mode(),
            priority_counter: 0,
            busy_until: 0,
            job: None,
            events: Vec::new(),
        }
    }

    /// Pre-task initial load: the first `count` blocks of the table are
    /// installed directly into the active banks of processors 0..count
    /// (the paper allows prefetching the first N blocks before the task
    /// starts).
    pub fn initial_load(&mut self, processors: &mut [Processor], program: &Program, count: usize) {
        let n = count.min(self.status.len()).min(processors.len());
        for (i, proc) in processors.iter_mut().enumerate().take(n) {
            let id = BlockId(i as u16);
            let info = program.blocks().get(id).expect("block in table");
            let words =
                program.instructions()[info.range.start as usize..info.range.end as usize].to_vec();
            proc.icache_mut()
                .install_active(id, info.range.start, words);
            self.set_status(0, id, RtStatus::Prefetched { proc: i });
        }
    }

    fn set_status(&mut self, cycle: u64, block: BlockId, status: RtStatus) {
        let proc = match status {
            RtStatus::Prefetching { proc }
            | RtStatus::Prefetched { proc }
            | RtStatus::Allocating { proc } => Some(proc),
            _ => None,
        };
        self.status[block.index()] = status;
        self.events.push(BlockEvent {
            cycle,
            block,
            status: status.public(),
            processor: proc,
        });
    }

    /// True once every block has completed.
    pub fn all_done(&self) -> bool {
        self.status.iter().all(|s| matches!(s, RtStatus::Done))
    }

    /// True when a scheduling job is in flight.
    pub fn is_busy(&self, cycle: u64) -> bool {
        cycle < self.busy_until
    }

    fn dependency_met(&self, dep: &Dependency) -> bool {
        match dep {
            Dependency::Direct(deps) => deps
                .iter()
                .all(|d| matches!(self.status[d.index()], RtStatus::Done)),
            Dependency::Priority(p) => *p == self.priority_counter,
        }
    }

    /// A block is a prefetch candidate when all of its dependencies are at
    /// least in execution (so it is plausibly next).
    fn prefetch_candidate(&self, dep: &Dependency) -> bool {
        match dep {
            Dependency::Direct(deps) => deps.iter().all(|d| {
                matches!(
                    self.status[d.index()],
                    RtStatus::InExecution | RtStatus::Allocating { .. } | RtStatus::Done
                )
            }),
            Dependency::Priority(p) => {
                *p == self.priority_counter || *p == self.priority_counter + 1
            }
        }
    }

    fn advance_priority_counter(&mut self, program: &Program) {
        if self.mode != Some(DependencyMode::Priority) {
            return;
        }
        loop {
            let mut current_level_open = false;
            let mut next_levels: Vec<u16> = Vec::new();
            for (id, info) in program.blocks().iter() {
                if let Dependency::Priority(p) = info.dependency {
                    let done = matches!(self.status[id.index()], RtStatus::Done);
                    if p == self.priority_counter && !done {
                        current_level_open = true;
                    }
                    if p > self.priority_counter && !done {
                        next_levels.push(p);
                    }
                }
            }
            if current_level_open {
                return;
            }
            match next_levels.iter().min() {
                Some(&next) => self.priority_counter = next,
                None => return, // everything done
            }
        }
    }

    fn fill_cycles(&self, len: usize, cfg: &QuapeConfig) -> u64 {
        cfg.scheduler_response_cycles + (len as u64).div_ceil(cfg.fill_words_per_cycle as u64)
    }

    /// One scheduler cycle.
    pub fn tick(
        &mut self,
        cycle: u64,
        processors: &mut [Processor],
        program: &Program,
        cfg: &QuapeConfig,
        stats: &mut MachineStats,
    ) {
        // 1. Consume done notifications.
        for p in processors.iter_mut() {
            if let Some(block) = p.take_finished() {
                self.set_status(cycle, block, RtStatus::Done);
            }
        }
        self.advance_priority_counter(program);

        if cfg.ideal_scheduler {
            self.tick_ideal(cycle, processors, program);
            return;
        }

        // 2. Complete an in-flight job.
        if let Some(job) = self.job {
            stats.scheduler_busy_cycles += 1;
            match job {
                Job::Allocate {
                    block,
                    proc,
                    finish,
                } if cycle >= finish => {
                    let info = program.blocks().get(block).expect("block in table");
                    let words = program.instructions()
                        [info.range.start as usize..info.range.end as usize]
                        .to_vec();
                    processors[proc].load_and_run(block, info.range.start, words, cycle);
                    self.set_status(cycle, block, RtStatus::InExecution);
                    stats.prefetch_misses += 1;
                    self.job = None;
                }
                Job::Prefetch {
                    block,
                    proc,
                    finish,
                } if cycle >= finish => {
                    let info = program.blocks().get(block).expect("block in table");
                    let words = program.instructions()
                        [info.range.start as usize..info.range.end as usize]
                        .to_vec();
                    if processors[proc].prefetch_block(block, info.range.start, words) {
                        self.set_status(cycle, block, RtStatus::Prefetched { proc });
                    } else {
                        // Bank got occupied in the meantime: back to wait.
                        self.set_status(cycle, block, RtStatus::Wait);
                    }
                    self.job = None;
                }
                _ => return, // still busy
            }
        }
        if self.is_busy(cycle) {
            stats.scheduler_busy_cycles += 1;
            return;
        }

        // 3. Start a ready block (one action per cycle).
        let ready: Vec<BlockId> = program
            .blocks()
            .iter()
            .filter(|(id, info)| {
                matches!(
                    self.status[id.index()],
                    RtStatus::Wait | RtStatus::Prefetched { .. }
                ) && self.dependency_met(&info.dependency)
            })
            .map(|(id, _)| id)
            .collect();

        for block in &ready {
            if let RtStatus::Prefetched { proc } = self.status[block.index()] {
                if processors[proc].is_idle() {
                    processors[proc].start_prefetched(*block, cfg.switch_cycles, cycle);
                    self.set_status(cycle, *block, RtStatus::InExecution);
                    stats.prefetch_hits += 1;
                    self.busy_until = cycle + 1;
                    return;
                }
            }
        }
        // No prefetched block could start; allocate the first waiting
        // ready block to an idle processor.
        for block in &ready {
            let waiting = matches!(self.status[block.index()], RtStatus::Wait);
            let stuck_prefetch = match self.status[block.index()] {
                RtStatus::Prefetched { proc } => !processors[proc].is_idle(),
                _ => false,
            };
            if !(waiting || stuck_prefetch) {
                continue;
            }
            if let Some(proc) = processors.iter().position(Processor::is_idle) {
                if stuck_prefetch {
                    // Abandon the stranded prefetch and run elsewhere.
                    if let RtStatus::Prefetched { proc: holder } = self.status[block.index()] {
                        processors[holder].discard_prefetched(*block);
                    }
                }
                let info = program.blocks().get(*block).expect("block in table");
                let finish = cycle + self.fill_cycles(info.len(), cfg);
                self.job = Some(Job::Allocate {
                    block: *block,
                    proc,
                    finish,
                });
                self.busy_until = finish;
                self.set_status(cycle, *block, RtStatus::Allocating { proc });
                return;
            }
        }

        // 4. Otherwise prefetch an upcoming block into a free bank.
        if !cfg.prefetch {
            return;
        }
        let candidate = program.blocks().iter().find(|(id, info)| {
            matches!(self.status[id.index()], RtStatus::Wait)
                && self.prefetch_candidate(&info.dependency)
        });
        if let Some((block, info)) = candidate {
            // Prefer a processor executing one of the block's direct
            // dependencies; otherwise any processor with a free bank.
            let dep_procs: Vec<usize> = match &info.dependency {
                Dependency::Direct(deps) => processors
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.current_block().is_some_and(|b| deps.contains(&b)))
                    .map(|(i, _)| i)
                    .collect(),
                Dependency::Priority(_) => Vec::new(),
            };
            let target = dep_procs
                .iter()
                .copied()
                .find(|&i| processors[i].icache().free_bank().is_some())
                .or_else(|| {
                    processors
                        .iter()
                        .position(|p| p.icache().free_bank().is_some())
                });
            if let Some(proc) = target {
                let finish = cycle + self.fill_cycles(info.len(), cfg);
                self.job = Some(Job::Prefetch {
                    block,
                    proc,
                    finish,
                });
                self.busy_until = finish;
                self.set_status(cycle, block, RtStatus::Prefetching { proc });
            }
        }
    }

    /// Zero-cost scheduling for the ideal-speedup series of Fig. 11b.
    fn tick_ideal(&mut self, cycle: u64, processors: &mut [Processor], program: &Program) {
        loop {
            let ready = program.blocks().iter().find(|(id, info)| {
                matches!(
                    self.status[id.index()],
                    RtStatus::Wait | RtStatus::Prefetched { .. }
                ) && self.dependency_met(&info.dependency)
            });
            let (block, info) = match ready {
                Some(r) => r,
                None => return,
            };
            let Some(proc) = processors.iter().position(Processor::is_idle) else {
                return;
            };
            let words =
                program.instructions()[info.range.start as usize..info.range.end as usize].to_vec();
            processors[proc].load_and_run(block, info.range.start, words, cycle);
            self.set_status(cycle, block, RtStatus::InExecution);
        }
    }
}
