//! The multiprocessor scheduler (§5.2).
//!
//! Continuously reads the block information table, performs the dependency
//! check (direct bit-vector or priority counter), and allocates ready
//! program blocks to idle processors. It handles **one scheduling action
//! at a time** — while busy filling a cache it does not answer other
//! requests, which reproduces the paper's observation that overly
//! fine-grained blocks overwhelm the scheduler. Prefetching into the free
//! cache bank of a processor hides most of the allocation latency.
//!
//! The decision logic is split from its application: [`Scheduler::tick`]
//! applies whatever [`Scheduler::pick_action`] selects, and the
//! event-driven run loop reuses the same picker read-only (via
//! [`Scheduler::would_act`]) to prove that skipped cycles are no-ops.
//! Cache fills hand out `Arc` slices from the job's pre-cut
//! [`BlockCode`](crate::machine::BlockCode) table instead of copying
//! instruction words per fill. The scheduler itself is generic over
//! [`ProcessorCore`], so the same allocation/prefetch state machine
//! drives both the reference processors and the lowered fast path.

use crate::config::QuapeConfig;
use crate::processor::ProcessorCore;
use crate::report::{BlockEvent, MachineStats};
use quape_isa::{BlockId, BlockStatus, Dependency, DependencyMode, Program};

/// Run-time status of one block, mirroring the status registers of §5.2.2
/// with an extra in-flight state for jobs the scheduler is working on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RtStatus {
    Wait,
    /// Fill job running toward a free bank of `proc`.
    Prefetching {
        proc: usize,
    },
    /// Resident in a bank of `proc`, waiting to become ready/started.
    Prefetched {
        proc: usize,
    },
    /// Fill job running; the block starts on `proc` when it completes.
    Allocating {
        proc: usize,
    },
    InExecution,
    Done,
}

impl RtStatus {
    fn public(self) -> BlockStatus {
        match self {
            RtStatus::Wait => BlockStatus::Wait,
            RtStatus::Prefetching { .. } | RtStatus::Prefetched { .. } => BlockStatus::Prefetch,
            RtStatus::Allocating { .. } | RtStatus::InExecution => BlockStatus::InExecution,
            RtStatus::Done => BlockStatus::Done,
        }
    }
}

/// An in-flight scheduling job (the scheduler is busy until `finish`).
#[derive(Debug, Clone, Copy)]
enum Job {
    Allocate {
        block: BlockId,
        proc: usize,
        finish: u64,
    },
    Prefetch {
        block: BlockId,
        proc: usize,
        finish: u64,
    },
}

impl Job {
    fn finish(self) -> u64 {
        match self {
            Job::Allocate { finish, .. } | Job::Prefetch { finish, .. } => finish,
        }
    }
}

/// A scheduling decision, separated from its application so the
/// event-driven run loop can ask "would you act?" without side effects.
#[derive(Debug, Clone, Copy)]
enum SchedAction {
    /// Switch an idle processor onto the bank already holding `block`.
    StartPrefetched { block: BlockId, proc: usize },
    /// Fill-and-run `block` on idle `proc`; `abandon` names the processor
    /// holding a stranded prefetched copy to discard, if any.
    Allocate {
        block: BlockId,
        proc: usize,
        abandon: Option<usize>,
    },
    /// Fill `block` into a free bank of `proc` ahead of time.
    Prefetch { block: BlockId, proc: usize },
}

/// The dynamic block scheduler.
#[derive(Debug)]
pub(crate) struct Scheduler {
    status: Vec<RtStatus>,
    mode: Option<DependencyMode>,
    priority_counter: u16,
    busy_until: u64,
    job: Option<Job>,
    /// True when the most recent tick evaluated the action picker and
    /// found nothing to do while free — the trusted-skip fast path may
    /// then assume the scheduler stays inactive until machine state
    /// changes, without re-running the picker.
    settled: bool,
    pub(crate) events: Vec<BlockEvent>,
}

impl Scheduler {
    /// Builds the scheduler state from a validated block table.
    /// `override_mode` (the [`QuapeConfig::dependency_mode`] knob) takes
    /// precedence over the program-derived dependency mode when set.
    ///
    /// [`QuapeConfig::dependency_mode`]: crate::QuapeConfig::dependency_mode
    pub fn new(program: &Program, override_mode: Option<DependencyMode>) -> Self {
        let n = program.blocks().len();
        Scheduler {
            status: vec![RtStatus::Wait; n],
            mode: override_mode.or(program.blocks().mode()),
            priority_counter: 0,
            busy_until: 0,
            job: None,
            settled: false,
            events: Vec::new(),
        }
    }

    /// Returns the scheduler to its just-constructed state for the same
    /// program, keeping the status-table and event allocations (the
    /// arena-reuse twin of [`Scheduler::new`]; the resolved dependency
    /// mode survives).
    pub fn reset(&mut self) {
        self.status.fill(RtStatus::Wait);
        self.priority_counter = 0;
        self.busy_until = 0;
        self.job = None;
        self.settled = false;
        self.events.clear();
    }

    /// Pre-task initial load: the first `count` blocks of the table are
    /// installed directly into the active banks of processors 0..count
    /// (the paper allows prefetching the first N blocks before the task
    /// starts).
    pub fn initial_load<P: ProcessorCore>(
        &mut self,
        processors: &mut [P],
        code: &P::Code,
        count: usize,
    ) {
        let n = count.min(self.status.len()).min(processors.len());
        for (i, proc) in processors.iter_mut().enumerate().take(n) {
            let id = BlockId(i as u16);
            proc.install_initial(id, code);
            self.set_status(0, id, RtStatus::Prefetched { proc: i });
        }
    }

    fn set_status(&mut self, cycle: u64, block: BlockId, status: RtStatus) {
        let proc = match status {
            RtStatus::Prefetching { proc }
            | RtStatus::Prefetched { proc }
            | RtStatus::Allocating { proc } => Some(proc),
            _ => None,
        };
        self.status[block.index()] = status;
        self.events.push(BlockEvent {
            cycle,
            block,
            status: status.public(),
            processor: proc,
        });
    }

    /// True once every block has completed.
    pub fn all_done(&self) -> bool {
        self.status.iter().all(|s| matches!(s, RtStatus::Done))
    }

    /// True when a scheduling job is in flight.
    pub fn is_busy(&self, cycle: u64) -> bool {
        cycle < self.busy_until
    }

    /// Completion cycle of the in-flight fill job, if any.
    pub fn job_finish(&self) -> Option<u64> {
        self.job.map(Job::finish)
    }

    /// Cycle at which the scheduler stops being busy.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// True when the last tick proved there is nothing to schedule (see
    /// the `settled` field).
    pub fn is_settled(&self) -> bool {
        self.settled
    }

    fn dependency_met(&self, dep: &Dependency) -> bool {
        match dep {
            Dependency::Direct(deps) => deps
                .iter()
                .all(|d| matches!(self.status[d.index()], RtStatus::Done)),
            Dependency::Priority(p) => *p == self.priority_counter,
        }
    }

    /// A block is a prefetch candidate when all of its dependencies are at
    /// least in execution (so it is plausibly next).
    fn prefetch_candidate(&self, dep: &Dependency) -> bool {
        match dep {
            Dependency::Direct(deps) => deps.iter().all(|d| {
                matches!(
                    self.status[d.index()],
                    RtStatus::InExecution | RtStatus::Allocating { .. } | RtStatus::Done
                )
            }),
            Dependency::Priority(p) => {
                *p == self.priority_counter || *p == self.priority_counter + 1
            }
        }
    }

    /// Where the priority counter should sit given the current statuses.
    fn priority_counter_target(&self, program: &Program) -> u16 {
        if self.mode != Some(DependencyMode::Priority) {
            return self.priority_counter;
        }
        let mut counter = self.priority_counter;
        loop {
            let mut current_level_open = false;
            let mut next_level: Option<u16> = None;
            for (id, info) in program.blocks().iter() {
                if let Dependency::Priority(p) = info.dependency {
                    let done = matches!(self.status[id.index()], RtStatus::Done);
                    if p == counter && !done {
                        current_level_open = true;
                    }
                    if p > counter && !done {
                        next_level = Some(next_level.map_or(p, |n| n.min(p)));
                    }
                }
            }
            if current_level_open {
                return counter;
            }
            match next_level {
                Some(next) => counter = next,
                None => return counter, // everything done
            }
        }
    }

    /// True when the next tick would move the priority counter (a level
    /// just completed) — observable progress for the event-driven loop.
    pub fn counter_would_advance(&self, program: &Program) -> bool {
        self.priority_counter_target(program) != self.priority_counter
    }

    fn advance_priority_counter(&mut self, program: &Program) {
        self.priority_counter = self.priority_counter_target(program);
    }

    fn fill_cycles(&self, len: usize, cfg: &QuapeConfig) -> u64 {
        cfg.scheduler_response_cycles + (len as u64).div_ceil(cfg.fill_words_per_cycle as u64)
    }

    /// The one scheduling action the scheduler would start right now,
    /// were it free: start a prefetched ready block, allocate a ready
    /// block to an idle processor, or prefetch an upcoming block.
    fn pick_action<P: ProcessorCore>(
        &self,
        processors: &[P],
        program: &Program,
        cfg: &QuapeConfig,
    ) -> Option<SchedAction> {
        // Allocation-free: this runs inside the event-driven skip check
        // on every potential jump, so the ready set is scanned in place.
        let ready = || {
            program.blocks().iter().filter(|(id, info)| {
                matches!(
                    self.status[id.index()],
                    RtStatus::Wait | RtStatus::Prefetched { .. }
                ) && self.dependency_met(&info.dependency)
            })
        };

        for (block, _) in ready() {
            if let RtStatus::Prefetched { proc } = self.status[block.index()] {
                if processors[proc].is_idle() {
                    return Some(SchedAction::StartPrefetched { block, proc });
                }
            }
        }
        // No prefetched block could start; allocate the first waiting
        // ready block (or a stranded prefetch) to an idle processor.
        for (block, _) in ready() {
            let abandon = match self.status[block.index()] {
                RtStatus::Wait => None,
                RtStatus::Prefetched { proc } if !processors[proc].is_idle() => Some(proc),
                _ => continue,
            };
            if let Some(proc) = processors.iter().position(P::is_idle) {
                return Some(SchedAction::Allocate {
                    block,
                    proc,
                    abandon,
                });
            }
        }

        // Otherwise prefetch an upcoming block into a free bank.
        if !cfg.prefetch {
            return None;
        }
        let candidate = program.blocks().iter().find(|(id, info)| {
            matches!(self.status[id.index()], RtStatus::Wait)
                && self.prefetch_candidate(&info.dependency)
        })?;
        let (block, info) = candidate;
        // Prefer a processor executing one of the block's direct
        // dependencies; otherwise any processor with a free bank.
        let dep_proc = match &info.dependency {
            Dependency::Direct(deps) => processors.iter().position(|p| {
                p.current_block().is_some_and(|b| deps.contains(&b)) && p.has_free_bank()
            }),
            Dependency::Priority(_) => None,
        };
        let target = dep_proc.or_else(|| processors.iter().position(P::has_free_bank))?;
        Some(SchedAction::Prefetch {
            block,
            proc: target,
        })
    }

    /// Read-only twin of [`Scheduler::tick`] for the event-driven loop:
    /// would the tick at `cycle` take any observable action? (Pending
    /// done-notifications and priority-counter movement are the caller's
    /// checks; this covers fill-job completion and new actions.)
    pub fn would_act<P: ProcessorCore>(
        &self,
        cycle: u64,
        processors: &[P],
        program: &Program,
        cfg: &QuapeConfig,
    ) -> bool {
        if cfg.ideal_scheduler {
            return self.ideal_pick(processors, program).is_some();
        }
        if let Some(job) = self.job {
            return cycle >= job.finish();
        }
        if self.is_busy(cycle) {
            // Only the per-cycle busy counter moves; whether an action
            // fires at `busy_until` is re-checked there by the caller.
            return false;
        }
        self.pick_action(processors, program, cfg).is_some()
    }

    /// One scheduler cycle.
    pub fn tick<P: ProcessorCore>(
        &mut self,
        cycle: u64,
        processors: &mut [P],
        program: &Program,
        code: &P::Code,
        cfg: &QuapeConfig,
        stats: &mut MachineStats,
    ) {
        // Pessimistic until this tick proves otherwise (any early return
        // leaves the trusted-skip path re-verifying for itself).
        self.settled = false;

        // 1. Consume done notifications.
        for p in processors.iter_mut() {
            if let Some(block) = p.take_finished() {
                self.set_status(cycle, block, RtStatus::Done);
            }
        }
        self.advance_priority_counter(program);

        if cfg.ideal_scheduler {
            self.tick_ideal(cycle, processors, program, code);
            self.settled = true;
            return;
        }

        // 2. Complete an in-flight job.
        if let Some(job) = self.job {
            stats.scheduler_busy_cycles += 1;
            match job {
                Job::Allocate {
                    block,
                    proc,
                    finish,
                } if cycle >= finish => {
                    processors[proc].load_and_run(block, code, cycle);
                    self.set_status(cycle, block, RtStatus::InExecution);
                    stats.prefetch_misses += 1;
                    self.job = None;
                }
                Job::Prefetch {
                    block,
                    proc,
                    finish,
                } if cycle >= finish => {
                    if processors[proc].prefetch_block(block, code) {
                        self.set_status(cycle, block, RtStatus::Prefetched { proc });
                    } else {
                        // Bank got occupied in the meantime: back to wait.
                        self.set_status(cycle, block, RtStatus::Wait);
                    }
                    self.job = None;
                }
                _ => return, // still busy
            }
        }
        if self.is_busy(cycle) {
            stats.scheduler_busy_cycles += 1;
            return;
        }

        // 3./4. Start one scheduling action.
        match self.pick_action(processors, program, cfg) {
            Some(SchedAction::StartPrefetched { block, proc }) => {
                processors[proc].start_prefetched(block, cfg.switch_cycles, cycle);
                self.set_status(cycle, block, RtStatus::InExecution);
                stats.prefetch_hits += 1;
                self.busy_until = cycle + 1;
            }
            Some(SchedAction::Allocate {
                block,
                proc,
                abandon,
            }) => {
                if let Some(holder) = abandon {
                    // Abandon the stranded prefetch and run elsewhere.
                    processors[holder].discard_prefetched(block);
                }
                let info = program.blocks().get(block).expect("block in table");
                let finish = cycle + self.fill_cycles(info.len(), cfg);
                self.job = Some(Job::Allocate {
                    block,
                    proc,
                    finish,
                });
                self.busy_until = finish;
                self.set_status(cycle, block, RtStatus::Allocating { proc });
            }
            Some(SchedAction::Prefetch { block, proc }) => {
                let info = program.blocks().get(block).expect("block in table");
                let finish = cycle + self.fill_cycles(info.len(), cfg);
                self.job = Some(Job::Prefetch {
                    block,
                    proc,
                    finish,
                });
                self.busy_until = finish;
                self.set_status(cycle, block, RtStatus::Prefetching { proc });
            }
            None => self.settled = true,
        }
    }

    /// The next start the zero-cost scheduler would perform.
    fn ideal_pick<P: ProcessorCore>(
        &self,
        processors: &[P],
        program: &Program,
    ) -> Option<(BlockId, usize)> {
        let (block, _) = program.blocks().iter().find(|(id, info)| {
            matches!(
                self.status[id.index()],
                RtStatus::Wait | RtStatus::Prefetched { .. }
            ) && self.dependency_met(&info.dependency)
        })?;
        let proc = processors.iter().position(P::is_idle)?;
        Some((block, proc))
    }

    /// Zero-cost scheduling for the ideal-speedup series of Fig. 11b.
    fn tick_ideal<P: ProcessorCore>(
        &mut self,
        cycle: u64,
        processors: &mut [P],
        program: &Program,
        code: &P::Code,
    ) {
        while let Some((block, proc)) = self.ideal_pick(processors, program) {
            processors[proc].load_and_run(block, code, cycle);
            self.set_status(cycle, block, RtStatus::InExecution);
        }
    }
}
