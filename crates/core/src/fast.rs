//! The `StepMode::Lowered` fast-path processor.
//!
//! [`FastProcessor`] is a cycle-exact port of [`Processor`] that walks the
//! pre-decoded micro-ops of a [`LoweredProgram`] instead of layered
//! [`quape_isa::Instruction`] words:
//!
//! * dispatch-stage predicates (quantum? `QWAIT`? needs the buffer front?
//!   synchronizes on a measure?) are single bit tests on the flags byte a
//!   fetch slot caches, instead of nested enum matches;
//! * quantum issues carry the waveform codeword and pulse duration baked
//!   in at lowering time, so the emit path skips the per-op waveform/
//!   duration derivation ([`crate::processor::Env::issue_pre`]);
//! * the circuit-step index of every dispatch is pre-resolved, replacing
//!   the per-dispatch binary search over the program's step map;
//! * icache banks track `start..end` address ranges into the shared
//!   micro-op array ([`FastBank`]), so bank installs copy two integers
//!   instead of cloning `Arc` slices.
//!
//! Everything observable — counters, event timelines, RNG draw order,
//! stall accounting, the event-horizon skip logic — matches the reference
//! processor bit for bit; the three-way step-mode equivalence tests and
//! the `debug_assertions` cross-checks in the run loop enforce it.

use crate::config::QuapeConfig;
use crate::devices::MeasurementFile;
use crate::processor::{Env, ProcessorCore, StallFlags, StallInfo};
use crate::report::{ProcessorStats, StepDispatch};
use quape_isa::{
    micro_flags as f, BlockId, CondOp, LoweredProgram, MicroOp, MicroWord, QuantumOp, Qubit,
    StepId, REG_COUNT,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// One icache bank of the fast path: a resident block is an address range
/// into the shared micro-op array (mirrors `CacheBank` semantics).
#[derive(Debug, Clone, Copy, Default)]
struct FastBank {
    block: Option<BlockId>,
    start: u32,
    end: u32,
}

impl FastBank {
    fn is_free(&self) -> bool {
        self.block.is_none()
    }

    fn contains(&self, pc: u32) -> bool {
        self.block.is_some() && pc >= self.start && pc < self.end
    }

    fn clear(&mut self) {
        self.block = None;
        self.start = 0;
        self.end = 0;
    }
}

/// A stored simple-feedback context (fast-path copy of `StoredContext`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FastContext {
    qubit: Qubit,
    target: Qubit,
    op_if_one: CondOp,
    op_if_zero: CondOp,
}

/// Execution state (fast-path copy of the reference `State`; absolute
/// deadlines so the event-driven skip can jump over countdowns).
#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Idle,
    Switching {
        until: u64,
    },
    Running,
    ContextSwitch {
        fires_at: u64,
        op: Option<QuantumOp>,
        resume_idle: bool,
    },
    Halted,
}

/// A timing-queue entry with the emission parameters pre-resolved.
#[derive(Debug, Clone, Copy)]
struct FastTimedOp {
    issue_cycle: u64,
    op: QuantumOp,
    waveform: u16,
    dur_ns: u64,
}

/// A buffered fetch slot: address plus the cached classification flags,
/// so lookahead scans never touch the micro-op array.
#[derive(Debug, Clone, Copy)]
struct FastSlot {
    addr: u32,
    flags: u8,
}

/// The lowered-program processing unit. See the module docs.
#[derive(Debug)]
pub(crate) struct FastProcessor {
    id: usize,
    ops: Arc<LoweredProgram>,
    regs: [i32; REG_COUNT],
    flag_zero: bool,
    flag_neg: bool,
    call_stack: Vec<u32>,
    banks: Vec<FastBank>,
    active: usize,
    pc: u32,
    state: State,
    buffer: VecDeque<FastSlot>,
    fetch_blocked: bool,
    timeline: u64,
    timeline_anchored: bool,
    tqueue: VecDeque<FastTimedOp>,
    contexts: Vec<FastContext>,
    current_block: Option<BlockId>,
    finished_block: Option<BlockId>,
    stall_flags: StallFlags,
    stats: ProcessorStats,
}

impl FastProcessor {
    /// Creates an idle fast processor over the shared micro-op array with
    /// an `icache_banks`-bank block cache.
    pub(crate) fn new(id: usize, ops: Arc<LoweredProgram>, icache_banks: usize) -> Self {
        FastProcessor {
            id,
            ops,
            regs: [0; REG_COUNT],
            flag_zero: false,
            flag_neg: false,
            call_stack: Vec::new(),
            banks: vec![FastBank::default(); icache_banks],
            active: 0,
            pc: 0,
            state: State::Idle,
            buffer: VecDeque::new(),
            fetch_blocked: false,
            timeline: 0,
            timeline_anchored: false,
            tqueue: VecDeque::new(),
            contexts: Vec::new(),
            current_block: None,
            finished_block: None,
            stall_flags: StallFlags::default(),
            stats: ProcessorStats::default(),
        }
    }

    /// Returns the processor to its just-constructed state, keeping the
    /// buffer/queue/stack allocations (the arena-reuse twin of
    /// [`FastProcessor::new`]; `id` and the shared micro-op array
    /// survive).
    pub(crate) fn reset(&mut self) {
        self.regs = [0; REG_COUNT];
        self.flag_zero = false;
        self.flag_neg = false;
        self.call_stack.clear();
        self.banks.fill(FastBank::default());
        self.active = 0;
        self.pc = 0;
        self.state = State::Idle;
        self.buffer.clear();
        self.fetch_blocked = false;
        self.timeline = 0;
        self.timeline_anchored = false;
        self.tqueue.clear();
        self.contexts.clear();
        self.current_block = None;
        self.finished_block = None;
        self.stall_flags = StallFlags::default();
        self.stats = ProcessorStats::default();
    }

    /// Copies out the micro-op at `addr` (micro-ops are small and `Copy`).
    #[inline]
    fn micro(&self, addr: u32) -> MicroOp {
        self.ops.ops()[addr as usize]
    }

    /// True when the active bank holds `pc` (mirror of `icache.fetch()`).
    #[inline]
    fn active_contains(&self, pc: u32) -> bool {
        self.banks[self.active].contains(pc)
    }

    fn free_bank(&self) -> Option<usize> {
        (0..self.banks.len()).find(|&i| i != self.active && self.banks[i].is_free())
    }

    fn bank_of(&self, block: BlockId) -> Option<usize> {
        self.banks.iter().position(|b| b.block == Some(block))
    }

    fn install(&mut self, bank: usize, block: BlockId, start: u32, end: u32) {
        self.banks[bank] = FastBank {
            block: Some(block),
            start,
            end,
        };
    }

    fn switch_to(&mut self, bank: usize) {
        if bank != self.active {
            self.banks[self.active].clear();
            self.active = bank;
        }
    }

    fn retire_active(&mut self) {
        self.banks[self.active].clear();
    }

    fn evict(&mut self, block: BlockId) {
        for bank in &mut self.banks {
            if bank.block == Some(block) {
                bank.clear();
            }
        }
    }

    fn start_block(&mut self, block: BlockId, bank: usize, switch_cycles: u64, now: u64) {
        self.switch_to(bank);
        self.pc = self.banks[self.active].start;
        self.current_block = Some(block);
        self.buffer.clear();
        self.fetch_blocked = false;
        self.timeline = self.timeline.max(now + switch_cycles);
        self.timeline_anchored = false;
        self.state = if switch_cycles == 0 {
            State::Running
        } else {
            State::Switching {
                until: now + switch_cycles,
            }
        };
    }

    fn finish_block(&mut self) {
        self.stats.blocks_completed += 1;
        self.finished_block = self.current_block.take();
        self.buffer.clear();
        self.fetch_blocked = false;
        self.state = State::Idle;
        self.retire_active();
    }

    fn fail(&mut self, env: &mut Env<'_>) {
        *env.error = true;
        self.state = State::Halted;
    }

    /// Enqueues an MRCE conditional "as soon as possible", deriving its
    /// emission parameters on the spot (cold path: context resolutions
    /// are rare relative to dispatches).
    fn enqueue_catch_up(&mut self, cycle: u64, op: QuantumOp, env: &mut Env<'_>) {
        let waveform = quape_isa::waveform_index(&op);
        let dur_ns = env.cfg.timings.duration_of(&op);
        self.enqueue_quantum(cycle, 0, op, waveform, dur_ns, MicroOp::NO_STEP, env, true);
    }

    /// Computes the issue slot for a quantum group and pushes it into the
    /// timing queue (port of the reference `enqueue_quantum`, with the
    /// waveform/duration/step pre-resolved by the lowering).
    #[allow(clippy::too_many_arguments)]
    fn enqueue_quantum(
        &mut self,
        cycle: u64,
        label: u32,
        op: QuantumOp,
        waveform: u16,
        dur_ns: u64,
        step: u32,
        env: &mut Env<'_>,
        catch_up: bool,
    ) {
        // +1: dispatch-to-issue latency of the quantum pipeline.
        let earliest = cycle + 1;
        let issue_cycle = if catch_up {
            earliest
        } else if !self.timeline_anchored {
            (self.timeline + u64::from(label)).max(earliest)
        } else {
            let scheduled = self.timeline + u64::from(label);
            if scheduled < earliest {
                *env.late_issues += 1;
                *env.late_cycles += earliest - scheduled;
                earliest
            } else {
                scheduled
            }
        };
        if !catch_up {
            self.timeline = issue_cycle;
            self.timeline_anchored = true;
        }
        if let QuantumOp::Measure(q) = op {
            env.mrr.invalidate(q);
        }
        // Keep the queue ordered by issue time: out-of-band operations may
        // be earlier than already-queued pre-scheduled ones.
        let pos = self
            .tqueue
            .iter()
            .rposition(|t| t.issue_cycle <= issue_cycle)
            .map_or(0, |p| p + 1);
        self.tqueue.insert(
            pos,
            FastTimedOp {
                issue_cycle,
                op,
                waveform,
                dur_ns,
            },
        );
        self.stats.dispatched_quantum += 1;
        env.step_dispatches.push(StepDispatch {
            cycle,
            step: (step != MicroOp::NO_STEP).then_some(StepId(step)),
            processor: self.id,
        });
    }

    fn conflicts_with_context(&self, op: &QuantumOp) -> bool {
        op.qubits()
            .any(|q| self.contexts.iter().any(|c| c.qubit == q || c.target == q))
    }

    fn tick_timing_controller(&mut self, cycle: u64, env: &mut Env<'_>) -> bool {
        let mut issued = false;
        while let Some(front) = self.tqueue.front() {
            if front.issue_cycle > cycle {
                break;
            }
            let t = self.tqueue.pop_front().expect("checked front");
            env.issue_pre(t.issue_cycle, t.op, t.waveform, t.dur_ns);
            issued = true;
        }
        issued
    }

    /// Advances the processor by one clock cycle (port of the reference
    /// `Processor::tick`; same progress-hint contract).
    fn tick(&mut self, cycle: u64, env: &mut Env<'_>) -> bool {
        self.stall_flags = StallFlags::default();
        let mut progress = self.tick_timing_controller(cycle, env);

        match self.state {
            State::Halted => return progress,
            State::Switching { until } => {
                if cycle < until {
                    return progress;
                }
                self.state = State::Running;
                progress = true;
            }
            State::ContextSwitch {
                fires_at,
                op,
                resume_idle,
            } => {
                if cycle < fires_at {
                    return progress;
                }
                if let Some(op) = op {
                    self.enqueue_catch_up(cycle, op, env);
                }
                self.state = if resume_idle {
                    State::Idle
                } else {
                    State::Running
                };
                return true;
            }
            State::Idle | State::Running => {}
        }

        // MRCE context unit: a resolved context triggers the switch before
        // any dispatch this cycle. (Empty-store guard: feedback chains
        // without MRCE never pay for the scan.)
        if !self.contexts.is_empty() {
            if let Some(pos) = self.contexts.iter().position(|c| env.mrr.is_valid(c.qubit)) {
                progress = true;
                let ctx = self.contexts.remove(pos);
                let chosen = if env.mrr.read(ctx.qubit).value {
                    ctx.op_if_one
                } else {
                    ctx.op_if_zero
                };
                let op = chosen.gate().map(|g| QuantumOp::Gate1(g, ctx.target));
                self.stats.context_switches += 1;
                let resume_idle = matches!(self.state, State::Idle);
                if env.cfg.context_switch_cycles == 0 {
                    if let Some(op) = op {
                        self.enqueue_catch_up(cycle, op, env);
                    }
                } else {
                    self.state = State::ContextSwitch {
                        fires_at: cycle + env.cfg.context_switch_cycles,
                        op,
                        resume_idle,
                    };
                    return true;
                }
            }
        }
        if matches!(self.state, State::Idle) {
            return progress;
        }

        let dispatched = self.dispatch(cycle, env);
        let mut fetched = false;
        if matches!(self.state, State::Running) {
            let buffered = self.buffer.len();
            self.fetch(env);
            fetched = self.buffer.len() != buffered || !matches!(self.state, State::Running);
        }
        if dispatched {
            self.stats.active_cycles += 1;
        }
        progress || dispatched || fetched
    }

    /// Dispatch stage (port of the reference `dispatch`; flag tests in
    /// place of enum matches).
    fn dispatch(&mut self, cycle: u64, env: &mut Env<'_>) -> bool {
        let mut any = false;

        // ---- Quantum dispatch: group at the buffer front. ----
        if let Some(front) = self.buffer.front().copied() {
            if front.flags & f::QWAIT != 0 {
                let MicroWord::Qwait { cycles } = self.micro(front.addr).word else {
                    unreachable!("QWAIT flag on non-QWAIT micro-op");
                };
                self.timeline += u64::from(cycles);
                self.buffer.pop_front();
                self.stats.dispatched_classical += 1;
                any = true;
            } else if front.flags & f::QUANTUM != 0 {
                let head = self.micro(front.addr);
                let MicroWord::Quantum {
                    op,
                    timing,
                    dur_ns,
                    waveform,
                } = head.word
                else {
                    unreachable!("QUANTUM flag on non-quantum micro-op");
                };
                if self.conflicts_with_context(&op) {
                    self.stats.context_dependency_stalls += 1;
                    self.stall_flags.context_stall = true;
                } else {
                    self.buffer.pop_front();
                    self.enqueue_quantum(
                        cycle, timing, op, waveform, dur_ns, head.step, env, false,
                    );
                    let mut grouped = 1;
                    while grouped < env.cfg.quantum_pipes {
                        let Some(slot) = self.buffer.front().copied() else {
                            break;
                        };
                        if slot.flags & f::QUANTUM == 0 || slot.flags & f::TIMING_ZERO == 0 {
                            break;
                        }
                        let member = self.micro(slot.addr);
                        let MicroWord::Quantum {
                            op,
                            dur_ns,
                            waveform,
                            ..
                        } = member.word
                        else {
                            unreachable!("QUANTUM flag on non-quantum micro-op");
                        };
                        if self.conflicts_with_context(&op) {
                            break;
                        }
                        self.buffer.pop_front();
                        self.enqueue_quantum(
                            cycle,
                            0,
                            op,
                            waveform,
                            dur_ns,
                            member.step,
                            env,
                            false,
                        );
                        grouped += 1;
                    }
                    any = true;
                }
            }
        }

        // ---- Classical dispatch with lookahead. ----
        let mut idx = None;
        for (i, slot) in self.buffer.iter().enumerate() {
            if slot.flags & (f::QUANTUM | f::QWAIT) != 0 {
                // Quantum stream (including QWAIT): classical lookahead
                // bypasses it, keep scanning.
                continue;
            }
            let needs_front = slot.flags & f::NEEDS_FRONT != 0
                || (slot.flags & f::SYNC != 0
                    && self
                        .buffer
                        .iter()
                        .take(i)
                        .any(|s| s.flags & f::MEASURE != 0));
            if needs_front && i != 0 {
                break;
            }
            idx = Some((i, slot.addr));
            break;
        }
        if let Some((i, addr)) = idx {
            if self.execute_classical(cycle, addr, i, env) {
                any = true;
            }
        }
        any
    }

    /// Executes one classical micro-op. Returns false when it stalled
    /// (stays in the buffer). Port of the reference `execute_classical`.
    fn execute_classical(
        &mut self,
        cycle: u64,
        addr: u32,
        buf_index: usize,
        env: &mut Env<'_>,
    ) -> bool {
        use MicroWord as W;
        let mop = self.micro(addr);
        let mut taken_target: Option<u32> = None;
        match mop.word {
            W::Nop => {}
            W::Stop => {
                if !self.tqueue.is_empty() || !self.contexts.is_empty() {
                    return false;
                }
                self.stats.dispatched_classical += 1;
                self.finish_block();
                return true;
            }
            W::Halt => {
                self.stats.dispatched_classical += 1;
                *env.halt = true;
                self.state = State::Halted;
                return true;
            }
            W::Jmp { target } => taken_target = Some(target),
            W::Br { cond, target } => {
                if cond.eval(self.flag_zero, self.flag_neg) {
                    taken_target = Some(target);
                }
            }
            W::Call { target } => {
                self.call_stack.push(addr + 1);
                taken_target = Some(target);
            }
            W::Ret => match self.call_stack.pop() {
                Some(ret) => taken_target = Some(ret),
                None => {
                    self.fail(env);
                    return true;
                }
            },
            W::Ldi { rd, imm } => self.regs[rd as usize] = i32::from(imm),
            W::Mov { rd, rs } => self.regs[rd as usize] = self.regs[rs as usize],
            W::Add { rd, rs1, rs2 } => {
                let v = self.regs[rs1 as usize].wrapping_add(self.regs[rs2 as usize]);
                self.write_alu(rd, v);
            }
            W::Addi { rd, rs, imm } => {
                let v = self.regs[rs as usize].wrapping_add(i32::from(imm));
                self.write_alu(rd, v);
            }
            W::Sub { rd, rs1, rs2 } => {
                let v = self.regs[rs1 as usize].wrapping_sub(self.regs[rs2 as usize]);
                self.write_alu(rd, v);
            }
            W::And { rd, rs1, rs2 } => {
                let v = self.regs[rs1 as usize] & self.regs[rs2 as usize];
                self.write_alu(rd, v);
            }
            W::Or { rd, rs1, rs2 } => {
                let v = self.regs[rs1 as usize] | self.regs[rs2 as usize];
                self.write_alu(rd, v);
            }
            W::Xor { rd, rs1, rs2 } => {
                let v = self.regs[rs1 as usize] ^ self.regs[rs2 as usize];
                self.write_alu(rd, v);
            }
            W::Not { rd, rs } => {
                let v = !self.regs[rs as usize];
                self.write_alu(rd, v);
            }
            W::Cmp { rs1, rs2 } => {
                let v = self.regs[rs1 as usize].wrapping_sub(self.regs[rs2 as usize]);
                self.set_flags(v);
            }
            W::Cmpi { rs, imm } => {
                let v = self.regs[rs as usize].wrapping_sub(i32::from(imm));
                self.set_flags(v);
            }
            W::Fmr { rd, qubit } => {
                let entry = env.mrr.read(Qubit::new(qubit));
                if !entry.valid {
                    self.stats.measure_wait_cycles += 1;
                    self.stall_flags.measure_wait = true;
                    env.wait_cycles.push(cycle);
                    return false;
                }
                self.regs[rd as usize] = i32::from(entry.value);
                // FMR is a synchronization point: re-anchor the timeline.
                self.timeline_anchored = false;
            }
            W::Qwait { .. } => unreachable!("QWAIT handled in the quantum stream"),
            W::Lds { rd, sreg } => {
                self.regs[rd as usize] = env.shared_regs[sreg as usize];
            }
            W::Sts { sreg, rs } => {
                env.shared_regs[sreg as usize] = self.regs[rs as usize];
            }
            W::Mrce {
                qubit,
                target,
                op_if_one,
                op_if_zero,
            } => {
                let qubit = Qubit::new(qubit);
                let target = Qubit::new(target);
                let entry = env.mrr.read(qubit);
                if entry.valid {
                    let chosen = if entry.value { op_if_one } else { op_if_zero };
                    if let Some(g) = chosen.gate() {
                        self.enqueue_catch_up(cycle, QuantumOp::Gate1(g, target), env);
                    }
                } else if env.cfg.fast_context_switch {
                    if self.contexts.len() >= env.cfg.context_capacity {
                        self.stats.measure_wait_cycles += 1;
                        self.stall_flags.measure_wait = true;
                        env.wait_cycles.push(cycle);
                        return false; // context store full: stall
                    }
                    self.contexts.push(FastContext {
                        qubit,
                        target,
                        op_if_one,
                        op_if_zero,
                    });
                } else {
                    // Fast context switch disabled: stall like FMR.
                    self.stats.measure_wait_cycles += 1;
                    self.stall_flags.measure_wait = true;
                    env.wait_cycles.push(cycle);
                    return false;
                }
            }
            W::Quantum { .. } => unreachable!("quantum handled in the quantum stream"),
        }
        self.stats.dispatched_classical += 1;
        self.buffer.remove(buf_index);
        if let Some(target) = taken_target {
            self.stats.branches_taken += 1;
            self.redirect(target, env);
        } else if mop.flags & f::CONTROL_FLOW != 0 {
            // Untaken branch: fetch resumes at the fall-through PC.
            self.fetch_blocked = false;
        }
        true
    }

    fn write_alu(&mut self, rd: u8, v: i32) {
        self.regs[rd as usize] = v;
        self.set_flags(v);
    }

    fn set_flags(&mut self, v: i32) {
        self.flag_zero = v == 0;
        self.flag_neg = v < 0;
    }

    fn redirect(&mut self, target: u32, env: &mut Env<'_>) {
        self.pc = target;
        self.fetch_blocked = false;
        if !self.active_contains(target) {
            // Transfer outside the resident block: unsupported.
            self.fail(env);
        }
    }

    /// Fetch stage (port of the reference `fetch`; the fetched slot
    /// caches the micro-op's flags byte for the dispatch scans).
    fn fetch(&mut self, env: &mut Env<'_>) {
        if self.fetch_blocked {
            return;
        }
        let free = env.cfg.predecode_buffer.saturating_sub(self.buffer.len());
        let n = free.min(env.cfg.fetch_width);
        for _ in 0..n {
            if self.active_contains(self.pc) {
                let flags = self.ops.flags_at(self.pc);
                self.buffer.push_back(FastSlot {
                    addr: self.pc,
                    flags,
                });
                self.pc += 1;
                if flags & f::CONTROL_FLOW != 0 {
                    self.fetch_blocked = true;
                    break;
                }
            } else {
                // Walked past the end of the block: implicit STOP.
                if self.buffer.is_empty() && self.tqueue.is_empty() && self.contexts.is_empty() {
                    self.finish_block();
                }
                break;
            }
        }
    }

    /// Trusted cycle-dependent skip check (port of the reference
    /// `skip_check`; same contract).
    fn skip_check(&self, cycle: u64) -> Option<StallInfo> {
        let mut stall = StallInfo {
            horizon: None,
            measure_wait: self.stall_flags.measure_wait,
            context_stall: self.stall_flags.context_stall,
        };
        if let Some(front) = self.tqueue.front() {
            if front.issue_cycle <= cycle {
                return None;
            }
            stall.merge_horizon(front.issue_cycle);
        }
        match self.state {
            State::Switching { until } => {
                if cycle >= until {
                    return None;
                }
                stall.merge_horizon(until);
            }
            State::ContextSwitch { fires_at, .. } => {
                if cycle >= fires_at {
                    return None;
                }
                stall.merge_horizon(fires_at);
            }
            State::Idle | State::Running | State::Halted => {}
        }
        Some(stall)
    }

    /// From-first-principles stall verifier (port of the reference
    /// `stall_info`; same contract and soundness argument).
    fn stall_info(
        &self,
        cycle: u64,
        mrr: &MeasurementFile,
        cfg: &QuapeConfig,
    ) -> Option<StallInfo> {
        let mut stall = StallInfo::default();
        if let Some(front) = self.tqueue.front() {
            if front.issue_cycle <= cycle {
                return None;
            }
            stall.merge_horizon(front.issue_cycle);
        }
        match self.state {
            State::Halted => return Some(stall),
            State::Switching { until } => {
                if cycle >= until {
                    return None;
                }
                stall.merge_horizon(until);
                return Some(stall);
            }
            State::ContextSwitch { fires_at, .. } => {
                if cycle >= fires_at {
                    return None;
                }
                stall.merge_horizon(fires_at);
                return Some(stall);
            }
            State::Idle | State::Running => {}
        }
        if self.contexts.iter().any(|c| mrr.is_valid(c.qubit)) {
            return None;
        }
        if matches!(self.state, State::Idle) {
            return Some(stall);
        }

        // Running. Fast path: an unblocked fetch with buffer room always
        // makes progress.
        let fetch_open =
            !self.fetch_blocked && cfg.predecode_buffer > self.buffer.len() && cfg.fetch_width > 0;
        if fetch_open && self.active_contains(self.pc) {
            return None;
        }

        // Mirror the dispatch stage.
        if let Some(slot) = self.buffer.front() {
            if slot.flags & f::QWAIT != 0 {
                return None;
            }
            if slot.flags & f::QUANTUM != 0 {
                let MicroWord::Quantum { op, .. } = self.micro(slot.addr).word else {
                    unreachable!("QUANTUM flag on non-quantum micro-op");
                };
                if self.conflicts_with_context(&op) {
                    stall.context_stall = true;
                } else {
                    return None; // quantum group would dispatch
                }
            }
        }
        // Classical lookahead — same pick as `dispatch`.
        let mut pick = None;
        for (i, slot) in self.buffer.iter().enumerate() {
            if slot.flags & (f::QUANTUM | f::QWAIT) != 0 {
                continue;
            }
            let needs_front = slot.flags & f::NEEDS_FRONT != 0
                || (slot.flags & f::SYNC != 0
                    && self
                        .buffer
                        .iter()
                        .take(i)
                        .any(|s| s.flags & f::MEASURE != 0));
            if needs_front && i != 0 {
                break;
            }
            pick = Some(slot.addr);
            break;
        }
        if let Some(addr) = pick {
            match self.micro(addr).word {
                MicroWord::Stop => {
                    if self.tqueue.is_empty() && self.contexts.is_empty() {
                        return None; // STOP would retire the block
                    }
                    // Drain stall: no counters, wake on tqueue/context events.
                }
                MicroWord::Fmr { qubit, .. } => {
                    if mrr.is_valid(Qubit::new(qubit)) {
                        return None;
                    }
                    stall.measure_wait = true;
                }
                MicroWord::Mrce { qubit, .. } => {
                    if mrr.is_valid(Qubit::new(qubit))
                        || (cfg.fast_context_switch && self.contexts.len() < cfg.context_capacity)
                    {
                        return None; // executes or parks a context
                    }
                    stall.measure_wait = true;
                }
                _ => return None, // any other classical op executes
            }
        }
        // Implicit end-of-block STOP once everything has drained.
        if fetch_open
            && self.buffer.is_empty()
            && self.tqueue.is_empty()
            && self.contexts.is_empty()
        {
            return None;
        }
        Some(stall)
    }
}

impl ProcessorCore for FastProcessor {
    type Code = LoweredProgram;

    fn tick(&mut self, cycle: u64, env: &mut Env<'_>) -> bool {
        FastProcessor::tick(self, cycle, env)
    }

    fn skip_check(&self, cycle: u64) -> Option<StallInfo> {
        FastProcessor::skip_check(self, cycle)
    }

    fn stall_info(
        &self,
        cycle: u64,
        mrr: &MeasurementFile,
        cfg: &QuapeConfig,
    ) -> Option<StallInfo> {
        FastProcessor::stall_info(self, cycle, mrr, cfg)
    }

    fn account_stall_span(&mut self, stall: &StallInfo, span: u64) {
        if stall.measure_wait {
            self.stats.measure_wait_cycles += span;
        }
        if stall.context_stall {
            self.stats.context_dependency_stalls += span;
        }
    }

    fn is_idle(&self) -> bool {
        matches!(self.state, State::Idle)
    }

    fn has_pending_work(&self) -> bool {
        !self.tqueue.is_empty() || !self.contexts.is_empty()
    }

    fn finished_pending(&self) -> bool {
        self.finished_block.is_some()
    }

    fn take_finished(&mut self) -> Option<BlockId> {
        self.finished_block.take()
    }

    fn current_block(&self) -> Option<BlockId> {
        self.current_block
    }

    fn has_free_bank(&self) -> bool {
        self.free_bank().is_some()
    }

    fn install_initial(&mut self, block: BlockId, code: &Self::Code) {
        let b = code.block(block.index());
        self.install(self.active, block, b.start, b.end);
    }

    fn load_and_run(&mut self, block: BlockId, code: &Self::Code, now: u64) {
        self.retire_active();
        let b = code.block(block.index());
        self.install(self.active, block, b.start, b.end);
        self.start_block(block, self.active, 0, now);
    }

    fn prefetch_block(&mut self, block: BlockId, code: &Self::Code) -> bool {
        match self.free_bank() {
            Some(bank) => {
                let b = code.block(block.index());
                self.install(bank, block, b.start, b.end);
                true
            }
            None => false,
        }
    }

    fn start_prefetched(&mut self, block: BlockId, switch_cycles: u64, now: u64) -> bool {
        match self.bank_of(block) {
            Some(bank) => {
                self.start_block(block, bank, switch_cycles, now);
                true
            }
            None => false,
        }
    }

    fn discard_prefetched(&mut self, block: BlockId) {
        if self.current_block != Some(block) {
            self.evict(block);
        }
    }

    fn stats(&self) -> &ProcessorStats {
        &self.stats
    }
}
