//! Declarative machine descriptions: one serializable surface naming
//! every microarchitectural knob of a QuAPE machine.
//!
//! [`QuapeConfig`] is the engine's working representation — flat,
//! validated, digested for compile caches. A [`MachineDescription`] is
//! the *document* form of the same machine: grouped by subsystem
//! (processor complex, scheduler, instruction cache, readout channels,
//! DAQ, operation timings), serializable to JSON, and convertible both
//! ways:
//!
//! * [`MachineDescription::to_config`] lowers a description into a
//!   validated [`QuapeConfig`];
//! * [`MachineDescription::from_config`] lifts any config back into a
//!   description.
//!
//! The round trip is lossless with respect to everything that shapes
//! execution: `from_config(&c).to_config()` yields a config whose
//! [`QuapeConfig::content_digest`] equals `c.content_digest()` (the
//! digest excludes `seed`, a per-request runtime parameter that
//! descriptions deliberately do not carry).
//!
//! The paper's evaluation configurations are available as named
//! built-ins ([`MachineDescription::builtin`]); the [`QuapeConfig`]
//! presets are thin wrappers over them, so the description layer is the
//! single source of truth for machine shapes.

use crate::machine::StepMode;
use crate::QuapeConfig;
use quape_isa::{DependencyMode, OpTimings};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Geometry of the processor complex: how many processing units, how
/// wide each one fetches and dispatches, and the MRCE context-switch
/// machinery (§5.2, §5.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorDesc {
    /// Number of processing units (1 = the QuMA_v2-like baseline).
    pub count: usize,
    /// Instructions fetched per cycle (1 = scalar, 8 = the paper's
    /// superscalar prototype).
    pub fetch_width: usize,
    /// Quantum pipelines per processor.
    pub quantum_pipes: usize,
    /// Pre-decode buffer capacity in instructions.
    pub predecode_buffer: usize,
    /// Capacity of the MRCE context store.
    pub context_capacity: usize,
    /// Cycles for the MRCE fast context switch (measured as 3 in §7).
    pub context_switch_cycles: u64,
    /// Enables the MRCE fast context switch; when disabled, MRCE stalls
    /// like a plain FMR + branch (the ablation baseline).
    pub fast_context_switch: bool,
}

/// The hardware block scheduler's geometry (§5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerDesc {
    /// Scheduler response time per scheduling action, in cycles.
    pub response_cycles: u64,
    /// Forces the block-dependency mode; `None` derives it from the
    /// program's block table (the default hardware behavior).
    pub dependency_mode: Option<DependencyMode>,
    /// Zero-cost scheduling for the ideal-speedup series of Fig. 11b.
    pub ideal: bool,
}

/// Per-processor private instruction cache (§5.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ICacheDesc {
    /// Cache banks per processor (the prototype is dual-bank: one
    /// executing, one prefetched; minimum 2).
    pub banks: usize,
    /// Instruction words copied into a bank per cycle.
    pub fill_words_per_cycle: usize,
    /// Cycles to switch onto an already-prefetched bank.
    pub switch_cycles: u64,
    /// Enables prefetching of upcoming blocks into free banks.
    pub prefetch: bool,
}

/// Readout channel layout: how qubits map onto readout lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelLayout {
    /// Every qubit has a private readout channel
    /// ([`crate::ChannelMap::linear`]). `qubits: None` sizes the setup
    /// by scanning the program for its highest qubit index.
    Linear {
        /// Explicit qubit count, or `None` to size from the program.
        qubits: Option<u16>,
    },
    /// `readout_lines` shared lines serve all qubits
    /// ([`crate::ChannelMap::multiplexed`]), as in the paper's 8 readout
    /// channels for 10 qubits.
    Multiplexed {
        /// Explicit qubit count, or `None` to size from the program.
        qubits: Option<u16>,
        /// Number of shared readout lines (≥ 1, and at most the qubit
        /// count when that is explicit).
        readout_lines: u16,
    },
}

/// The DAQ demodulation chain (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaqDesc {
    /// Demodulation/integration/threshold latency, base component (ns).
    pub base_ns: u64,
    /// Non-deterministic Stage II latency, drawn from `0..=jitter_ns`.
    pub jitter_ns: u64,
    /// Concurrent demodulation servers per readout channel (≥ 1).
    pub demod_slots: usize,
}

/// A complete, declarative description of one QuAPE machine — every
/// microarchitectural knob, grouped by subsystem. See the module docs
/// for the relationship with [`QuapeConfig`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineDescription {
    /// Clock period in nanoseconds (10 ns = 100 MHz).
    pub clock_ns: u64,
    /// Processor complex geometry.
    pub processors: ProcessorDesc,
    /// Block scheduler geometry.
    pub scheduler: SchedulerDesc,
    /// Private instruction cache geometry.
    pub icache: ICacheDesc,
    /// Readout channel layout.
    pub channels: ChannelLayout,
    /// DAQ demodulation chain.
    pub daq: DaqDesc,
    /// Nominal quantum-operation durations.
    pub timings: OpTimings,
    /// Default run-loop step mode for jobs on this machine (a run-time
    /// default, not part of the compile-cache digest).
    pub step_mode: StepMode,
}

/// Why a [`MachineDescription`] is not a valid machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DescriptionError {
    /// A multiplexed layout declared zero readout lines.
    ZeroReadoutLines,
    /// A multiplexed layout declared more readout lines than qubits.
    ReadoutLinesExceedQubits {
        /// Declared readout lines.
        lines: u16,
        /// Declared qubit count.
        qubits: u16,
    },
    /// The DAQ declared zero demodulation servers per channel.
    ZeroDemodSlots,
    /// [`MachineDescription::builtin`] was asked for a name it does not
    /// know.
    UnknownBuiltin(String),
    /// The lowered [`QuapeConfig`] failed its own validation.
    Config(String),
    /// The description could not be parsed from JSON.
    Json(String),
}

impl fmt::Display for DescriptionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescriptionError::ZeroReadoutLines => {
                write!(f, "multiplexed readout needs at least one line")
            }
            DescriptionError::ReadoutLinesExceedQubits { lines, qubits } => write!(
                f,
                "multiplexed readout declares {lines} lines for {qubits} qubits; \
                 lines must not exceed qubits"
            ),
            DescriptionError::ZeroDemodSlots => {
                write!(f, "DAQ needs at least one demod server per channel")
            }
            DescriptionError::UnknownBuiltin(name) => write!(
                f,
                "unknown builtin machine '{name}' (known: {})",
                BUILTIN_NAMES.join(", ")
            ),
            DescriptionError::Config(msg) => write!(f, "invalid machine config: {msg}"),
            DescriptionError::Json(msg) => write!(f, "malformed machine description: {msg}"),
        }
    }
}

impl std::error::Error for DescriptionError {}

/// Builtin description names accepted by [`MachineDescription::builtin`]
/// (the parameterized families also accept `superscalar-<w>` and
/// `multiprocessor-<n>`).
pub const BUILTIN_NAMES: &[&str] = &["baseline", "uniprocessor", "scalar-baseline", "superscalar"];

impl MachineDescription {
    /// The uniprocessor, scalar baseline — the description behind
    /// [`QuapeConfig::uniprocessor`].
    pub fn baseline() -> Self {
        MachineDescription {
            clock_ns: 10,
            processors: ProcessorDesc {
                count: 1,
                fetch_width: 1,
                quantum_pipes: 1,
                predecode_buffer: 8,
                context_capacity: 4,
                context_switch_cycles: 3,
                fast_context_switch: true,
            },
            scheduler: SchedulerDesc {
                response_cycles: 4,
                dependency_mode: None,
                ideal: false,
            },
            icache: ICacheDesc {
                banks: 2,
                fill_words_per_cycle: 4,
                switch_cycles: 2,
                prefetch: true,
            },
            channels: ChannelLayout::Linear { qubits: None },
            daq: DaqDesc {
                base_ns: 100,
                jitter_ns: 30,
                demod_slots: crate::devices::DEFAULT_DEMOD_SLOTS,
            },
            timings: OpTimings {
                single_qubit_ns: 20,
                two_qubit_ns: 40,
                readout_pulse_ns: 300,
            },
            step_mode: StepMode::EventDriven,
        }
    }

    /// `w`-way superscalar single processor (the prototype implements
    /// w = 8) — the description behind [`QuapeConfig::superscalar`].
    pub fn superscalar(w: usize) -> Self {
        let mut d = Self::baseline();
        d.processors.fetch_width = w;
        d.processors.quantum_pipes = w;
        d.processors.predecode_buffer = 4 * w;
        d
    }

    /// Multiprocessor with `n` processing units — the description behind
    /// [`QuapeConfig::multiprocessor`].
    pub fn multiprocessor(n: usize) -> Self {
        let mut d = Self::baseline();
        d.processors.count = n;
        d
    }

    /// Looks up a built-in description by name: the names in
    /// [`BUILTIN_NAMES`] plus the parameterized families
    /// `superscalar-<w>` and `multiprocessor-<n>`.
    ///
    /// # Errors
    ///
    /// [`DescriptionError::UnknownBuiltin`] when the name matches no
    /// builtin (including malformed parameters like `superscalar-zero`).
    pub fn builtin(name: &str) -> Result<Self, DescriptionError> {
        let unknown = || DescriptionError::UnknownBuiltin(name.to_string());
        match name {
            "baseline" | "uniprocessor" | "scalar-baseline" => Ok(Self::baseline()),
            "superscalar" => Ok(Self::superscalar(8)),
            _ => {
                if let Some(w) = name.strip_prefix("superscalar-") {
                    let w: usize = w.parse().map_err(|_| unknown())?;
                    if w == 0 {
                        return Err(unknown());
                    }
                    Ok(Self::superscalar(w))
                } else if let Some(n) = name.strip_prefix("multiprocessor-") {
                    let n: usize = n.parse().map_err(|_| unknown())?;
                    if n == 0 {
                        return Err(unknown());
                    }
                    Ok(Self::multiprocessor(n))
                } else {
                    Err(unknown())
                }
            }
        }
    }

    /// Lifts a [`QuapeConfig`] into its description (always succeeds;
    /// the config's `seed` is dropped — it is a runtime parameter).
    pub fn from_config(cfg: &QuapeConfig) -> Self {
        MachineDescription {
            clock_ns: cfg.clock_ns,
            processors: ProcessorDesc {
                count: cfg.num_processors,
                fetch_width: cfg.fetch_width,
                quantum_pipes: cfg.quantum_pipes,
                predecode_buffer: cfg.predecode_buffer,
                context_capacity: cfg.context_capacity,
                context_switch_cycles: cfg.context_switch_cycles,
                fast_context_switch: cfg.fast_context_switch,
            },
            scheduler: SchedulerDesc {
                response_cycles: cfg.scheduler_response_cycles,
                dependency_mode: cfg.dependency_mode,
                ideal: cfg.ideal_scheduler,
            },
            icache: ICacheDesc {
                banks: cfg.icache_banks,
                fill_words_per_cycle: cfg.fill_words_per_cycle,
                switch_cycles: cfg.switch_cycles,
                prefetch: cfg.prefetch,
            },
            channels: match cfg.readout_lines {
                None => ChannelLayout::Linear {
                    qubits: cfg.num_qubits,
                },
                Some(lines) => ChannelLayout::Multiplexed {
                    qubits: cfg.num_qubits,
                    readout_lines: lines,
                },
            },
            daq: DaqDesc {
                base_ns: cfg.daq_base_ns,
                jitter_ns: cfg.daq_jitter_ns,
                demod_slots: cfg.daq_demod_slots,
            },
            timings: cfg.timings,
            step_mode: StepMode::default(),
        }
    }

    /// The raw field-by-field lowering, without validation. Used by the
    /// [`QuapeConfig`] presets, which historically returned unvalidated
    /// configs for out-of-range parameters (validation happens at
    /// machine construction).
    pub(crate) fn config_unvalidated(&self) -> QuapeConfig {
        let (num_qubits, readout_lines) = match self.channels {
            ChannelLayout::Linear { qubits } => (qubits, None),
            ChannelLayout::Multiplexed {
                qubits,
                readout_lines,
            } => (qubits, Some(readout_lines)),
        };
        QuapeConfig {
            clock_ns: self.clock_ns,
            num_processors: self.processors.count,
            fetch_width: self.processors.fetch_width,
            quantum_pipes: self.processors.quantum_pipes,
            predecode_buffer: self.processors.predecode_buffer,
            timings: self.timings,
            daq_base_ns: self.daq.base_ns,
            daq_jitter_ns: self.daq.jitter_ns,
            daq_demod_slots: self.daq.demod_slots,
            readout_lines,
            scheduler_response_cycles: self.scheduler.response_cycles,
            dependency_mode: self.scheduler.dependency_mode,
            icache_banks: self.icache.banks,
            fill_words_per_cycle: self.icache.fill_words_per_cycle,
            switch_cycles: self.icache.switch_cycles,
            context_switch_cycles: self.processors.context_switch_cycles,
            context_capacity: self.processors.context_capacity,
            prefetch: self.icache.prefetch,
            fast_context_switch: self.processors.fast_context_switch,
            ideal_scheduler: self.scheduler.ideal,
            seed: 0,
            num_qubits,
        }
    }

    /// Checks description-level constraints (the ones expressible before
    /// lowering: channel layout and DAQ sanity).
    ///
    /// # Errors
    ///
    /// The first violated constraint, as a typed [`DescriptionError`].
    pub fn validate(&self) -> Result<(), DescriptionError> {
        if let ChannelLayout::Multiplexed {
            qubits,
            readout_lines,
        } = self.channels
        {
            if readout_lines == 0 {
                return Err(DescriptionError::ZeroReadoutLines);
            }
            if let Some(qubits) = qubits {
                if readout_lines > qubits {
                    return Err(DescriptionError::ReadoutLinesExceedQubits {
                        lines: readout_lines,
                        qubits,
                    });
                }
            }
        }
        if self.daq.demod_slots == 0 {
            return Err(DescriptionError::ZeroDemodSlots);
        }
        Ok(())
    }

    /// Lowers the description into a validated [`QuapeConfig`].
    ///
    /// # Errors
    ///
    /// Description-level violations come back as their typed
    /// [`DescriptionError`] variants; anything the flat config's own
    /// [`QuapeConfig::validate`] rejects comes back as
    /// [`DescriptionError::Config`].
    pub fn to_config(&self) -> Result<QuapeConfig, DescriptionError> {
        self.validate()?;
        let cfg = self.config_unvalidated();
        cfg.validate().map_err(DescriptionError::Config)?;
        Ok(cfg)
    }

    /// Serializes the description as pretty-printed JSON (the format of
    /// the committed `machines/*.json` files).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("machine descriptions always serialize")
    }

    /// Parses a description from JSON and validates it.
    ///
    /// # Errors
    ///
    /// [`DescriptionError::Json`] on parse failure, otherwise the same
    /// errors as [`MachineDescription::validate`].
    pub fn from_json(text: &str) -> Result<Self, DescriptionError> {
        let d: MachineDescription =
            serde_json::from_str(text).map_err(|e| DescriptionError::Json(e.to_string()))?;
        d.validate()?;
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_lower_to_the_presets() {
        assert_eq!(
            MachineDescription::baseline().to_config().unwrap(),
            QuapeConfig::uniprocessor()
        );
        assert_eq!(
            MachineDescription::superscalar(8).to_config().unwrap(),
            QuapeConfig::superscalar(8)
        );
        assert_eq!(
            MachineDescription::multiprocessor(4).to_config().unwrap(),
            QuapeConfig::multiprocessor(4)
        );
    }

    #[test]
    fn builtin_lookup() {
        assert_eq!(
            MachineDescription::builtin("baseline").unwrap(),
            MachineDescription::baseline()
        );
        assert_eq!(
            MachineDescription::builtin("superscalar").unwrap(),
            MachineDescription::superscalar(8)
        );
        assert_eq!(
            MachineDescription::builtin("superscalar-4").unwrap(),
            MachineDescription::superscalar(4)
        );
        assert_eq!(
            MachineDescription::builtin("multiprocessor-6").unwrap(),
            MachineDescription::multiprocessor(6)
        );
        for bad in [
            "qupe",
            "superscalar-zero",
            "superscalar-0",
            "multiprocessor-",
        ] {
            assert!(matches!(
                MachineDescription::builtin(bad),
                Err(DescriptionError::UnknownBuiltin(_))
            ));
        }
    }

    #[test]
    fn config_round_trip_preserves_digest() {
        let configs = [
            QuapeConfig::uniprocessor(),
            QuapeConfig::multiprocessor(6),
            QuapeConfig::superscalar(8).ideal(),
            QuapeConfig::multiprocessor(4)
                .with_num_qubits(10)
                .with_readout_lines(8)
                .with_demod_slots(2)
                .with_icache_banks(3)
                .with_dependency_mode(quape_isa::DependencyMode::Priority)
                .with_seed(99),
        ];
        for cfg in configs {
            let desc = MachineDescription::from_config(&cfg);
            let back = desc.to_config().unwrap();
            assert_eq!(
                back.content_digest(),
                cfg.content_digest(),
                "round trip must preserve the compile-cache digest"
            );
            assert_eq!(MachineDescription::from_config(&back), desc);
        }
    }

    #[test]
    fn json_round_trip() {
        let desc = MachineDescription::from_config(
            &QuapeConfig::multiprocessor(4)
                .with_num_qubits(10)
                .with_readout_lines(8),
        );
        let text = desc.to_json();
        assert_eq!(MachineDescription::from_json(&text).unwrap(), desc);
    }

    #[test]
    fn validation_errors_are_typed_and_distinct() {
        let mut d = MachineDescription::baseline();
        d.channels = ChannelLayout::Multiplexed {
            qubits: None,
            readout_lines: 0,
        };
        assert_eq!(d.validate(), Err(DescriptionError::ZeroReadoutLines));

        let mut d = MachineDescription::baseline();
        d.channels = ChannelLayout::Multiplexed {
            qubits: Some(4),
            readout_lines: 9,
        };
        assert_eq!(
            d.validate(),
            Err(DescriptionError::ReadoutLinesExceedQubits {
                lines: 9,
                qubits: 4
            })
        );

        let mut d = MachineDescription::baseline();
        d.daq.demod_slots = 0;
        assert_eq!(d.validate(), Err(DescriptionError::ZeroDemodSlots));

        let mut d = MachineDescription::baseline();
        d.icache.banks = 1;
        assert!(matches!(
            d.to_config(),
            Err(DescriptionError::Config(msg)) if msg.contains("icache")
        ));
    }
}
