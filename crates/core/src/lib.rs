//! # quape-core — the QuAPE control microarchitecture
//!
//! A cycle-accurate model of **QuAPE** (Quantum control microArchitecture
//! for Parallelism Exploitation), the MICRO 2021 design by Zhang, Xie
//! et al. for superconducting-qubit control. The three mechanisms of the
//! paper are implemented faithfully:
//!
//! 1. **Multiprocessor** (Circuit Level Parallelism): processing units
//!    share a centralized instruction memory; a hardware scheduler
//!    dynamically allocates *program blocks* using the block information
//!    table (direct or priority dependencies), with dual-bank private
//!    instruction caches and prefetching for fast block switching.
//! 2. **Quantum superscalar** (Quantum Operation Level Parallelism):
//!    W-way fetch, timing-label grouping and recombination in the
//!    pre-decoder, multiple quantum pipelines, and separate
//!    classical-instruction dispatch with lookahead to absorb branch
//!    latency — all without speculation, preserving deterministic
//!    operation supply.
//! 3. **Fast context switch** for simple feedback control: the `MRCE`
//!    instruction parks conditional operations in a context store and a
//!    3-cycle switch fires them when the measurement result lands.
//!
//! The machine drives AWG/DAQ device models and a pluggable
//! [`QpuBackend`]; run results ([`RunReport`]) feed the paper's metrics:
//! execution time & speedup (Figs. 11/12) and CES / TR (Fig. 13) via
//! [`ces_report`].
//!
//! ```
//! use quape_core::{ces_report_paper, Machine, QuapeConfig};
//! use quape_qpu::{BehavioralQpu, MeasurementModel};
//! use quape_isa::assemble;
//!
//! // Two parallel H gates, then a CNOT — the paper's §2.2 listing.
//! let program = assemble(".step 0\n0 H q0\n0 H q1\n.step 1\n1 CNOT q0, q1\n.step none\nSTOP\n")?;
//! let cfg = QuapeConfig::superscalar(8);
//! let qpu = BehavioralQpu::new(cfg.timings, MeasurementModel::AlwaysZero, 1);
//! let report = Machine::new(cfg, program, Box::new(qpu))?.run();
//! let ces = ces_report_paper(&report);
//! assert!(ces.meets_deadline());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod config;
mod decoherence;
mod devices;
mod engine;
mod fast;
mod icache;
pub mod machdesc;
mod machine;
mod metrics;
mod processor;
mod report;
mod scheduler;
mod timeline;

pub use backend::{QpuBackend, StateVectorQpu};
pub use config::QuapeConfig;
pub use decoherence::{decoherence_cost, CoherenceParams, DecoherenceCost};
pub use devices::{
    AwgBank, AwgViolation, AwgViolationKind, ChannelMap, Daq, MeasurementFile, MrrEntry,
    PendingResult, PlaybackEvent, QubitChannels,
};
pub use machdesc::{
    ChannelLayout, DaqDesc, DescriptionError, ICacheDesc, MachineDescription, ProcessorDesc,
    SchedulerDesc, BUILTIN_NAMES,
};

pub use engine::{
    shot_seed, BatchAggregate, BatchReport, DistributionSummary, EngineObs, QpuFactory,
    QubitHistogram, ShotEngine, ShotSummary, StateVectorQpuFactory, StopCounts, WorkerScratch,
};
pub use machine::{
    CompiledJob, LoweredShotRunner, Machine, MachineError, MeasurementRecord, ReportMode, Shot,
    ShotOutcome, StepMode,
};
pub use metrics::{ces_report, ces_report_paper, CesReport, StepMetrics, TR_GATE_NS};
pub use report::{BlockEvent, MachineStats, ProcessorStats, RunReport, StepDispatch, StopReason};
pub use timeline::{render_timeline, TimelineOptions};
