//! The paper's QOLP metrics: Cycles Each Step (CES) and Time Ratio (TR).
//!
//! CES (Eq. 1) is the number of QCP clock cycles needed to process the
//! instructions of one circuit step — quantum instruction execution,
//! classical instructions, control stalls, and the QCP-side part of
//! feedback control. The Stage I/II measurement wait is *excluded* (it is
//! unavoidable for both QCP and QPU, §3.2.1).
//!
//! TR (Eq. 2) divides the QCP time of a step by the QPU time of that step;
//! §7 evaluates with `clock = 10 ns` and `gate = 20 ns`. The QOLP goal is
//! TR ≤ 1 for the whole program.

use crate::report::RunReport;
use quape_isa::StepId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Gate time used for the TR calculation in §7.
pub const TR_GATE_NS: u64 = 20;

/// Per-step metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepMetrics {
    /// The circuit step.
    pub step: StepId,
    /// Cycles Each Step.
    pub ces: u64,
    /// Time Ratio.
    pub tr: f64,
    /// Quantum instructions dispatched in this step (QICES).
    pub qices: usize,
}

/// CES/TR summary of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CesReport {
    /// Per-step metrics in step order.
    pub steps: Vec<StepMetrics>,
    /// Clock period used.
    pub clock_ns: u64,
    /// Gate time used.
    pub gate_ns: u64,
}

impl CesReport {
    /// Mean TR across steps (the quantity plotted in Fig. 13).
    pub fn average_tr(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.tr).sum::<f64>() / self.steps.len() as f64
    }

    /// Maximum TR across steps.
    pub fn max_tr(&self) -> f64 {
        self.steps.iter().map(|s| s.tr).fold(0.0, f64::max)
    }

    /// True when every step meets the TR ≤ 1 requirement.
    pub fn meets_deadline(&self) -> bool {
        self.steps.iter().all(|s| s.tr <= 1.0 + 1e-9)
    }

    /// Mean CES across steps.
    pub fn average_ces(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.ces as f64).sum::<f64>() / self.steps.len() as f64
    }
}

impl fmt::Display for CesReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>6} {:>6} {:>7} {:>6}", "step", "QICES", "CES", "TR")?;
        for s in &self.steps {
            writeln!(
                f,
                "{:>6} {:>6} {:>7} {:>6.2}",
                s.step.0, s.qices, s.ces, s.tr
            )?;
        }
        writeln!(
            f,
            "average TR {:.3}, max TR {:.3}",
            self.average_tr(),
            self.max_tr()
        )
    }
}

/// Computes CES/TR from a run's dispatch records.
///
/// CES of step *i* is the span between the dispatch completion of step
/// *i−1* and of step *i* (for the first step: from the first dispatch of
/// the program), minus any measurement-wait cycles inside that span.
///
/// Requires a [`ReportMode::Full`](crate::ReportMode) report: the
/// analysis reads the per-event `step_dispatches` and `wait_cycles`
/// vectors, which lean (summary-only) reports leave empty — a lean
/// report would silently yield an empty CES table here, so it is
/// rejected by a debug assertion instead.
pub fn ces_report(report: &RunReport, clock_ns: u64, gate_ns: u64) -> CesReport {
    debug_assert!(
        !report.step_dispatches.is_empty() || report.stats.total_quantum() == 0,
        "ces_report needs a ReportMode::Full report (lean runs elide step_dispatches)"
    );
    let mut last_dispatch: BTreeMap<StepId, u64> = BTreeMap::new();
    let mut counts: BTreeMap<StepId, usize> = BTreeMap::new();
    let mut first_overall = u64::MAX;
    for d in &report.step_dispatches {
        first_overall = first_overall.min(d.cycle);
        if let Some(step) = d.step {
            let e = last_dispatch.entry(step).or_insert(d.cycle);
            *e = (*e).max(d.cycle);
            *counts.entry(step).or_insert(0) += 1;
        }
    }
    let mut waits: Vec<u64> = report.wait_cycles.clone();
    waits.sort_unstable();
    let wait_in = |lo: u64, hi: u64| -> u64 {
        // Count wait cycles in (lo, hi].
        let a = waits.partition_point(|&c| c <= lo);
        let b = waits.partition_point(|&c| c <= hi);
        (b - a) as u64
    };
    let mut steps = Vec::with_capacity(last_dispatch.len());
    let mut prev = first_overall.saturating_sub(1);
    for (step, last) in &last_dispatch {
        let span = last.saturating_sub(prev);
        let ces = span.saturating_sub(wait_in(prev, *last));
        let tr = (ces * clock_ns) as f64 / gate_ns as f64;
        steps.push(StepMetrics {
            step: *step,
            ces,
            tr,
            qices: counts[step],
        });
        prev = *last;
    }
    CesReport {
        steps,
        clock_ns,
        gate_ns,
    }
}

/// Convenience wrapper using the paper's §7 parameters (10 ns clock,
/// 20 ns gate).
pub fn ces_report_paper(report: &RunReport) -> CesReport {
    ces_report(report, 10, TR_GATE_NS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{MachineStats, StepDispatch, StopReason};

    fn fake_report(dispatches: Vec<(u64, u32)>, waits: Vec<u64>) -> RunReport {
        RunReport {
            cycles: 100,
            ns: 1000,
            stop: StopReason::Completed,
            issued: Vec::new(),
            issued_ops: 0,
            violations: Vec::new(),
            playback: Vec::new(),
            awg_violations: Vec::new(),
            stats: MachineStats::default(),
            step_dispatches: dispatches
                .into_iter()
                .map(|(cycle, step)| StepDispatch {
                    cycle,
                    step: Some(StepId(step)),
                    processor: 0,
                })
                .collect(),
            wait_cycles: waits,
            measurements: Vec::new(),
            block_events: Vec::new(),
            qpu_makespan_ns: 0,
        }
    }

    #[test]
    fn single_wide_step_ces() {
        // 4 instructions of step 0 dispatched over cycles 5..=8.
        let r = fake_report(vec![(5, 0), (6, 0), (7, 0), (8, 0)], vec![]);
        let c = ces_report(&r, 10, 20);
        assert_eq!(c.steps.len(), 1);
        assert_eq!(c.steps[0].ces, 4);
        assert_eq!(c.steps[0].qices, 4);
        assert!((c.steps[0].tr - 2.0).abs() < 1e-12);
    }

    #[test]
    fn consecutive_steps_measure_spans() {
        // Step 0 finishes at cycle 6, step 1 at cycle 10 → CES₁ = 4.
        let r = fake_report(vec![(5, 0), (6, 0), (9, 1), (10, 1)], vec![]);
        let c = ces_report(&r, 10, 20);
        assert_eq!(c.steps[0].ces, 2);
        assert_eq!(c.steps[1].ces, 4);
    }

    #[test]
    fn measurement_wait_is_excluded() {
        // Step 1 span is 10 cycles but 6 of them were Stage I/II waits.
        let r = fake_report(vec![(5, 0), (15, 1)], vec![7, 8, 9, 10, 11, 12]);
        let c = ces_report(&r, 10, 20);
        assert_eq!(c.steps[1].ces, 4);
    }

    #[test]
    fn deadline_check() {
        let fast = fake_report(vec![(5, 0), (6, 0), (8, 1)], vec![]);
        assert!(ces_report(&fast, 10, 20).meets_deadline());
        let slow = fake_report(vec![(5, 0), (20, 1)], vec![]);
        assert!(!ces_report(&slow, 10, 20).meets_deadline());
    }

    #[test]
    fn average_and_max() {
        let r = fake_report(vec![(2, 0), (4, 1), (12, 2)], vec![]);
        let c = ces_report(&r, 10, 20);
        // Spans from program start (cycle 1): CES = 1, 2, 8 → TR 0.5, 1, 4.
        assert_eq!(
            c.steps.iter().map(|s| s.ces).collect::<Vec<_>>(),
            vec![1, 2, 8]
        );
        assert!((c.average_tr() - 5.5 / 3.0).abs() < 1e-12);
        assert!((c.max_tr() - 4.0).abs() < 1e-12);
        assert!((c.average_ces() - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = fake_report(vec![], vec![]);
        let c = ces_report_paper(&r);
        assert!(c.steps.is_empty());
        assert_eq!(c.average_tr(), 0.0);
        assert!(c.meets_deadline());
    }
}
