//! One QuAPE processing unit.
//!
//! Implements the §5 pipeline at dispatch-level cycle accuracy:
//!
//! * **fetch** — up to `fetch_width` instructions per cycle from the
//!   active private-cache bank into the pre-decode buffer; fetch stops at
//!   a control transfer (no speculation: deterministic operation supply);
//! * **pre-decode / dispatch** — quantum instructions at the buffer front
//!   are grouped by timing label (head + following zero-label
//!   instructions) and dispatched to up to `quantum_pipes` pipelines in
//!   one cycle; leftover group members are buffered and *recombined* the
//!   next cycle; one classical instruction per cycle may dispatch, with
//!   *lookahead* past buffered quantum instructions so branch latency is
//!   absorbed;
//! * **timing queue / controller** — dispatched operations carry an
//!   absolute issue cycle built from their timing labels; the controller
//!   releases them to the emitter exactly on time and records lateness
//!   when the pipeline fell behind;
//! * **MRCE context unit** — simple feedback control parks in a context
//!   store; when the measurement result lands, a 3-cycle context switch
//!   issues the selected conditional operation.

use crate::devices::{AwgBank, ChannelMap, Daq, MeasurementFile};
use crate::icache::PrivateICache;
use crate::report::{ProcessorStats, StepDispatch};
use crate::{backend::QpuBackend, config::QuapeConfig};
use quape_isa::{
    BlockId, ClassicalOp, CondOp, Cycles, Instruction, Program, QuantumOp, Qubit, REG_COUNT,
};
use rand::rngs::SmallRng;
use rand::Rng;

/// Mutable machine state a processor touches during its tick.
pub(crate) struct Env<'a> {
    pub cfg: &'a QuapeConfig,
    pub program: &'a Program,
    pub mrr: &'a mut MeasurementFile,
    pub daq: &'a mut Daq,
    pub awg: &'a mut AwgBank,
    pub qpu: &'a mut dyn QpuBackend,
    pub chan: &'a ChannelMap,
    pub rng: &'a mut SmallRng,
    pub shared_regs: &'a mut [i32; quape_isa::SHARED_REG_COUNT],
    pub step_dispatches: &'a mut crate::machine::EventSink<StepDispatch>,
    pub wait_cycles: &'a mut crate::machine::EventSink<u64>,
    pub late_issues: &'a mut u64,
    pub late_cycles: &'a mut u64,
    pub measurements: &'a mut Vec<crate::machine::MeasurementRecord>,
    pub halt: &'a mut bool,
    pub error: &'a mut bool,
}

impl Env<'_> {
    /// Issues an operation to the analog front end at `cycle`.
    fn issue(&mut self, cycle: u64, op: QuantumOp) {
        let t_ns = cycle * self.cfg.clock_ns;
        self.awg.emit(self.chan, t_ns, &op);
        let outcome = self.qpu.apply(t_ns, op);
        if let (QuantumOp::Measure(q), Some(value)) = (op, outcome) {
            self.finish_measure(t_ns, q, value);
        }
    }

    /// [`Env::issue`] with the waveform codeword and nominal duration
    /// pre-resolved at lowering time (micro-op fast path). Observable
    /// behavior — AWG triggers, QPU application, RNG draw order, DAQ
    /// scheduling — is identical to [`Env::issue`].
    pub(crate) fn issue_pre(&mut self, cycle: u64, op: QuantumOp, waveform: u16, dur_ns: u64) {
        let t_ns = cycle * self.cfg.clock_ns;
        self.awg.emit_pre(self.chan, t_ns, &op, waveform, dur_ns);
        let outcome = self.qpu.apply(t_ns, op);
        if let (QuantumOp::Measure(q), Some(value)) = (op, outcome) {
            self.finish_measure(t_ns, q, value);
        }
    }

    /// Measurement epilogue shared by both issue paths. Consumes one RNG
    /// draw when DAQ jitter is configured, so it must run in issue order.
    fn finish_measure(&mut self, t_ns: u64, q: Qubit, value: bool) {
        let jitter = if self.cfg.daq_jitter_ns == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.cfg.daq_jitter_ns)
        };
        // The readout pulse ends at `ready_ns`; the result then runs
        // through the demod pipeline of the qubit's readout channel
        // (bounded concurrency — contention delays the delivery).
        let ready_ns = t_ns + self.cfg.timings.readout_pulse_ns;
        let demod_ns = self.cfg.daq_base_ns + jitter;
        self.daq
            .schedule_readout(self.chan.channels(q).readout, q, value, ready_ns, demod_ns);
        self.measurements.push(crate::machine::MeasurementRecord {
            time_ns: t_ns,
            qubit: q,
            value,
        });
    }
}

/// The per-processor surface the generic scheduler and shot core drive.
///
/// Two implementations exist: the reference [`Processor`], which walks
/// [`Instruction`] words out of its icache banks, and the lowered fast
/// path's [`FastProcessor`](crate::fast::FastProcessor), which walks the
/// pre-decoded micro-ops of a
/// [`LoweredProgram`](quape_isa::LoweredProgram). `Code` is the compiled
/// artifact cache fills read from: the `[BlockCode]` table for the
/// reference core, the `LoweredProgram` for the fast one.
pub(crate) trait ProcessorCore {
    /// Compiled artifact the instruction-cache fill engine reads.
    type Code: ?Sized + Send + Sync;

    /// Advances the processor by one clock cycle (see [`Processor::tick`]).
    fn tick(&mut self, cycle: u64, env: &mut Env<'_>) -> bool;
    /// Trusted cycle-dependent skip check (see [`Processor::skip_check`]).
    fn skip_check(&self, cycle: u64) -> Option<StallInfo>;
    /// From-first-principles stall verifier (see [`Processor::stall_info`]).
    fn stall_info(&self, cycle: u64, mrr: &MeasurementFile, cfg: &QuapeConfig)
        -> Option<StallInfo>;
    /// Bulk-accounts `span` skipped stall cycles.
    fn account_stall_span(&mut self, stall: &StallInfo, span: u64);
    /// True when no block is assigned and nothing is in flight.
    fn is_idle(&self) -> bool;
    /// True when the timing queue or context store still holds work.
    fn has_pending_work(&self) -> bool;
    /// True while a done-notification awaits the scheduler.
    fn finished_pending(&self) -> bool;
    /// Takes the pending done-notification, if any.
    fn take_finished(&mut self) -> Option<BlockId>;
    /// The block currently executing (or being switched to).
    fn current_block(&self) -> Option<BlockId>;
    /// True when a cache bank is free for a prefetch fill.
    fn has_free_bank(&self) -> bool;
    /// Pre-task initial load: installs `block` into the active bank.
    fn install_initial(&mut self, block: BlockId, code: &Self::Code);
    /// Installs `block` into the active bank and runs it immediately.
    fn load_and_run(&mut self, block: BlockId, code: &Self::Code, now: u64);
    /// Installs `block` into the free bank. False when none is free.
    fn prefetch_block(&mut self, block: BlockId, code: &Self::Code) -> bool;
    /// Switches to a prefetched block. False when it is not resident.
    fn start_prefetched(&mut self, block: BlockId, switch_cycles: u64, now: u64) -> bool;
    /// Drops a prefetched block (never the one in execution).
    fn discard_prefetched(&mut self, block: BlockId);
    /// The processor's accumulated statistics.
    fn stats(&self) -> &ProcessorStats;
}

impl ProcessorCore for Processor {
    type Code = [crate::machine::BlockCode];

    fn tick(&mut self, cycle: u64, env: &mut Env<'_>) -> bool {
        Processor::tick(self, cycle, env)
    }

    fn skip_check(&self, cycle: u64) -> Option<StallInfo> {
        Processor::skip_check(self, cycle)
    }

    fn stall_info(
        &self,
        cycle: u64,
        mrr: &MeasurementFile,
        cfg: &QuapeConfig,
    ) -> Option<StallInfo> {
        Processor::stall_info(self, cycle, mrr, cfg)
    }

    fn account_stall_span(&mut self, stall: &StallInfo, span: u64) {
        Processor::account_stall_span(self, stall, span);
    }

    fn is_idle(&self) -> bool {
        Processor::is_idle(self)
    }

    fn has_pending_work(&self) -> bool {
        Processor::has_pending_work(self)
    }

    fn finished_pending(&self) -> bool {
        Processor::finished_pending(self)
    }

    fn take_finished(&mut self) -> Option<BlockId> {
        Processor::take_finished(self)
    }

    fn current_block(&self) -> Option<BlockId> {
        Processor::current_block(self)
    }

    fn has_free_bank(&self) -> bool {
        self.icache.free_bank().is_some()
    }

    fn install_initial(&mut self, block: BlockId, code: &Self::Code) {
        let bc = &code[block.index()];
        self.icache.install_active(block, bc.base, bc.words.clone());
    }

    fn load_and_run(&mut self, block: BlockId, code: &Self::Code, now: u64) {
        let bc = &code[block.index()];
        Processor::load_and_run(self, block, bc.base, bc.words.clone(), now);
    }

    fn prefetch_block(&mut self, block: BlockId, code: &Self::Code) -> bool {
        let bc = &code[block.index()];
        Processor::prefetch_block(self, block, bc.base, bc.words.clone())
    }

    fn start_prefetched(&mut self, block: BlockId, switch_cycles: u64, now: u64) -> bool {
        Processor::start_prefetched(self, block, switch_cycles, now)
    }

    fn discard_prefetched(&mut self, block: BlockId) {
        Processor::discard_prefetched(self, block);
    }

    fn stats(&self) -> &ProcessorStats {
        &self.stats
    }
}

/// A stored simple-feedback context (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StoredContext {
    qubit: Qubit,
    target: Qubit,
    op_if_one: CondOp,
    op_if_zero: CondOp,
}

/// Execution state of the processor.
///
/// Countdown states carry **absolute deadlines** (cycle numbers) instead
/// of remaining-cycle counters, so the event-driven run loop can jump the
/// clock over them without ticking the countdown cycle by cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// No block assigned.
    Idle,
    /// Switching onto a prefetched cache bank; runs normally from cycle
    /// `until` onward.
    Switching { until: u64 },
    /// Executing the current block.
    Running,
    /// Performing an MRCE context switch; the conditional op (if any)
    /// issues during cycle `fires_at`, and the processor returns to
    /// `Running` or `Idle` depending on where it was interrupted.
    ContextSwitch {
        fires_at: u64,
        op: Option<QuantumOp>,
        resume_idle: bool,
    },
    /// Stopped by HALT or an execution error.
    Halted,
}

/// An entry of the timing queue.
#[derive(Debug, Clone, Copy)]
struct TimedOp {
    issue_cycle: u64,
    op: QuantumOp,
}

/// A buffered, pre-decoded instruction.
#[derive(Debug, Clone, Copy)]
struct Slot {
    addr: u32,
    instr: Instruction,
}

/// Per-cycle stall counters the last tick bumped, recorded at the bump
/// sites so the event-driven skip can replicate them in bulk without
/// re-deriving the dispatch decision.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StallFlags {
    /// Bumped `measure_wait_cycles` and recorded a wait cycle.
    pub measure_wait: bool,
    /// Bumped `context_dependency_stalls`.
    pub context_stall: bool,
}

/// Verdict of [`Processor::stall_info`]: the processor provably does
/// nothing this cycle except the flagged per-cycle counter bumps, until
/// `horizon` (or an external event) arrives.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StallInfo {
    /// Earliest future cycle at which this processor itself acts
    /// (timing-queue head, switch deadline). `None`: externally driven.
    pub horizon: Option<u64>,
    /// Stalled on an invalid measurement result (FMR / blocked MRCE):
    /// bumps `measure_wait_cycles` and records one wait-cycle per cycle.
    pub measure_wait: bool,
    /// Quantum dispatch blocked by a parked MRCE context on the same
    /// qubits: bumps `context_dependency_stalls` per cycle.
    pub context_stall: bool,
}

impl StallInfo {
    pub(crate) fn merge_horizon(&mut self, at: u64) {
        self.horizon = Some(self.horizon.map_or(at, |h| h.min(at)));
    }
}

/// One processing unit of the multiprocessor.
#[derive(Debug)]
pub struct Processor {
    id: usize,
    regs: [i32; REG_COUNT],
    flag_zero: bool,
    flag_neg: bool,
    call_stack: Vec<u32>,
    icache: PrivateICache,
    pc: u32,
    state: State,
    buffer: std::collections::VecDeque<Slot>,
    fetch_blocked: bool,
    /// Absolute cycle of the most recent quantum-operation issue slot.
    timeline: u64,
    /// False right after a block start or a synchronization point: the
    /// next quantum group re-anchors the timeline instead of counting as
    /// late (the compiler cannot pre-schedule across those boundaries).
    timeline_anchored: bool,
    tqueue: std::collections::VecDeque<TimedOp>,
    contexts: Vec<StoredContext>,
    current_block: Option<BlockId>,
    finished_block: Option<BlockId>,
    /// Stall counters bumped by the most recent tick (see [`StallFlags`]).
    stall_flags: StallFlags,
    pub(crate) stats: ProcessorStats,
}

impl Processor {
    /// Creates an idle processor with an `icache_banks`-bank cache.
    pub fn new(id: usize, icache_banks: usize) -> Self {
        Processor {
            id,
            regs: [0; REG_COUNT],
            flag_zero: false,
            flag_neg: false,
            call_stack: Vec::new(),
            icache: PrivateICache::new(icache_banks),
            pc: 0,
            state: State::Idle,
            buffer: std::collections::VecDeque::new(),
            fetch_blocked: false,
            timeline: 0,
            timeline_anchored: false,
            tqueue: std::collections::VecDeque::new(),
            contexts: Vec::new(),
            current_block: None,
            finished_block: None,
            stall_flags: StallFlags::default(),
            stats: ProcessorStats::default(),
        }
    }

    /// Processor index.
    #[allow(dead_code)] // diagnostic accessor
    pub fn id(&self) -> usize {
        self.id
    }

    /// True when no block is assigned and nothing is in flight.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, State::Idle)
    }

    /// True when the timing queue has undelivered operations or contexts
    /// are still parked.
    pub fn has_pending_work(&self) -> bool {
        !self.tqueue.is_empty() || !self.contexts.is_empty()
    }

    /// The block currently executing (or being switched to).
    pub fn current_block(&self) -> Option<BlockId> {
        self.current_block
    }

    /// Takes the done-notification for the scheduler, if one is pending.
    pub fn take_finished(&mut self) -> Option<BlockId> {
        self.finished_block.take()
    }

    /// True while a done-notification awaits the scheduler (consuming it
    /// records a block event, so it counts as progress for time-skipping).
    pub fn finished_pending(&self) -> bool {
        self.finished_block.is_some()
    }

    /// Bulk-accounts `span` skipped stall cycles (event-driven run loop):
    /// the per-cycle counters a cycle-stepped run would have accumulated.
    pub(crate) fn account_stall_span(&mut self, stall: &StallInfo, span: u64) {
        if stall.measure_wait {
            self.stats.measure_wait_cycles += span;
        }
        if stall.context_stall {
            self.stats.context_dependency_stalls += span;
        }
    }

    /// Starts executing `block`, whose instructions are resident in
    /// `bank`. `switch_cycles = 0` starts immediately (used by the ideal
    /// scheduler and for the pre-task initial load).
    pub(crate) fn start_block(
        &mut self,
        block: BlockId,
        bank: usize,
        switch_cycles: u64,
        now: u64,
    ) {
        self.icache.switch_to(bank);
        let base = self.icache.active().base();
        self.pc = base;
        self.current_block = Some(block);
        self.buffer.clear();
        self.fetch_blocked = false;
        self.timeline = self.timeline.max(now + switch_cycles);
        self.timeline_anchored = false;
        self.state = if switch_cycles == 0 {
            State::Running
        } else {
            State::Switching {
                until: now + switch_cycles,
            }
        };
    }

    /// Installs a block into the active bank and runs it (on-demand
    /// allocation path; the fill latency was modeled by the scheduler's
    /// busy period).
    pub(crate) fn load_and_run(
        &mut self,
        block: BlockId,
        base: u32,
        words: std::sync::Arc<[quape_isa::Instruction]>,
        now: u64,
    ) {
        self.icache.retire_active();
        self.icache.install_active(block, base, words);
        let active = self.icache.bank_of(block).expect("just installed");
        self.start_block(block, active, 0, now);
    }

    /// Installs a block into the free cache bank (prefetch). Returns
    /// false when no bank is free.
    pub(crate) fn prefetch_block(
        &mut self,
        block: BlockId,
        base: u32,
        words: std::sync::Arc<[quape_isa::Instruction]>,
    ) -> bool {
        match self.icache.free_bank() {
            Some(bank) => {
                self.icache.install(bank, block, base, words);
                true
            }
            None => false,
        }
    }

    /// Switches to a previously prefetched block. Returns false when the
    /// block is not resident.
    pub(crate) fn start_prefetched(
        &mut self,
        block: BlockId,
        switch_cycles: u64,
        now: u64,
    ) -> bool {
        match self.icache.bank_of(block) {
            Some(bank) => {
                self.start_block(block, bank, switch_cycles, now);
                true
            }
            None => false,
        }
    }

    /// Drops a prefetched block from its bank (the scheduler decided to
    /// run it elsewhere). Never evicts the block in execution.
    pub(crate) fn discard_prefetched(&mut self, block: BlockId) {
        if self.current_block != Some(block) {
            self.icache.evict(block);
        }
    }

    fn finish_block(&mut self) {
        self.stats.blocks_completed += 1;
        self.finished_block = self.current_block.take();
        self.buffer.clear();
        self.fetch_blocked = false;
        self.state = State::Idle;
        self.icache.retire_active();
    }

    fn fail(&mut self, env: &mut Env<'_>) {
        *env.error = true;
        self.state = State::Halted;
    }

    /// Advances the processor by one clock cycle.
    ///
    /// Returns a *progress hint*: `false` means the tick observably did
    /// nothing (a stall or idle cycle). The event-driven run loop uses the
    /// hint to decide when a time skip is worth attempting; correctness
    /// never depends on it ([`Processor::stall_info`] re-verifies), so a
    /// conservative `true` is always safe.
    pub(crate) fn tick(&mut self, cycle: u64, env: &mut Env<'_>) -> bool {
        self.stall_flags = StallFlags::default();
        let mut progress = self.tick_timing_controller(cycle, env);

        match self.state {
            State::Halted => return progress,
            State::Switching { until } => {
                if cycle < until {
                    return progress;
                }
                // Switch complete: this cycle already runs normally.
                self.state = State::Running;
                progress = true;
            }
            State::ContextSwitch {
                fires_at,
                op,
                resume_idle,
            } => {
                if cycle < fires_at {
                    return progress;
                }
                if let Some(op) = op {
                    self.enqueue_quantum(cycle, Cycles::ZERO, op, None, env, true);
                }
                self.state = if resume_idle {
                    State::Idle
                } else {
                    State::Running
                };
                return true;
            }
            State::Idle | State::Running => {}
        }

        // MRCE context unit: a resolved context triggers the 3-cycle
        // switch before any dispatch this cycle. The unit keeps watching
        // even after the block finished (the result may arrive late).
        if let Some(pos) = self.contexts.iter().position(|c| env.mrr.is_valid(c.qubit)) {
            progress = true;
            let ctx = self.contexts.remove(pos);
            let chosen = if env.mrr.read(ctx.qubit).value {
                ctx.op_if_one
            } else {
                ctx.op_if_zero
            };
            let op = chosen.gate().map(|g| QuantumOp::Gate1(g, ctx.target));
            self.stats.context_switches += 1;
            let resume_idle = matches!(self.state, State::Idle);
            if env.cfg.context_switch_cycles == 0 {
                if let Some(op) = op {
                    self.enqueue_quantum(cycle, Cycles::ZERO, op, None, env, true);
                }
            } else {
                self.state = State::ContextSwitch {
                    fires_at: cycle + env.cfg.context_switch_cycles,
                    op,
                    resume_idle,
                };
                return true;
            }
        }
        if matches!(self.state, State::Idle) {
            return progress;
        }

        let dispatched = self.dispatch(cycle, env);
        let mut fetched = false;
        if matches!(self.state, State::Running) {
            let buffered = self.buffer.len();
            self.fetch(env);
            // Supplied instructions, or the implicit end-of-block STOP.
            fetched = self.buffer.len() != buffered || !matches!(self.state, State::Running);
        }
        if dispatched {
            self.stats.active_cycles += 1;
        }
        progress || dispatched || fetched
    }

    /// Releases due operations from the timing queue to the emitter.
    /// Returns true if anything issued.
    fn tick_timing_controller(&mut self, cycle: u64, env: &mut Env<'_>) -> bool {
        let mut issued = false;
        while let Some(front) = self.tqueue.front() {
            if front.issue_cycle > cycle {
                break;
            }
            let t = self.tqueue.pop_front().expect("checked front");
            env.issue(t.issue_cycle, t.op);
            issued = true;
        }
        issued
    }

    /// Computes the issue slot for a quantum group and pushes it into the
    /// timing queue. `catch_up` issues "as soon as possible" (used by
    /// MRCE conditionals).
    fn enqueue_quantum(
        &mut self,
        cycle: u64,
        label: Cycles,
        op: QuantumOp,
        step_addr: Option<u32>,
        env: &mut Env<'_>,
        catch_up: bool,
    ) {
        // +1: dispatch-to-issue latency of the quantum pipeline.
        let earliest = cycle + 1;
        let issue_cycle = if catch_up {
            // Out-of-band operation (MRCE conditional): issues as soon as
            // possible, independent of the pre-scheduled timeline.
            earliest
        } else if !self.timeline_anchored {
            // First group after a block start / sync point: anchors the
            // timeline, never counts as late.
            (self.timeline + u64::from(label.count())).max(earliest)
        } else {
            let scheduled = self.timeline + u64::from(label.count());
            if scheduled < earliest {
                *env.late_issues += 1;
                *env.late_cycles += earliest - scheduled;
                earliest
            } else {
                scheduled
            }
        };
        if !catch_up {
            self.timeline = issue_cycle;
            self.timeline_anchored = true;
        }
        if let QuantumOp::Measure(q) = op {
            // Invalidate at dispatch so a following FMR cannot read the
            // previous, stale result.
            env.mrr.invalidate(q);
        }
        // Keep the queue ordered by issue time: out-of-band operations may
        // be earlier than already-queued pre-scheduled ones.
        let pos = self
            .tqueue
            .iter()
            .rposition(|t| t.issue_cycle <= issue_cycle)
            .map_or(0, |p| p + 1);
        self.tqueue.insert(pos, TimedOp { issue_cycle, op });
        self.stats.dispatched_quantum += 1;
        env.step_dispatches.push(StepDispatch {
            cycle,
            step: step_addr.and_then(|a| env.program.step_of(a as usize)),
            processor: self.id,
        });
    }

    /// True if dispatching `op` must wait for a stored context touching
    /// the same qubits.
    fn conflicts_with_context(&self, op: &QuantumOp) -> bool {
        op.qubits()
            .any(|q| self.contexts.iter().any(|c| c.qubit == q || c.target == q))
    }

    /// Dispatch stage. Returns true if any instruction left the buffer.
    fn dispatch(&mut self, cycle: u64, env: &mut Env<'_>) -> bool {
        let mut any = false;

        // ---- Quantum dispatch: group at the buffer front. ----
        if let Some(front) = self.buffer.front().copied() {
            match front.instr {
                Instruction::Classical(ClassicalOp::Qwait { cycles }) => {
                    // QWAIT advances the timeline in quantum program order.
                    self.timeline += u64::from(cycles.count());
                    self.buffer.pop_front();
                    self.stats.dispatched_classical += 1;
                    any = true;
                }
                Instruction::Quantum(head) => {
                    if self.conflicts_with_context(&head.op) {
                        self.stats.context_dependency_stalls += 1;
                        self.stall_flags.context_stall = true;
                    } else {
                        // Group: head + following zero-label quantum
                        // instructions, up to the pipe count, stopping at
                        // any context conflict. Members are popped and
                        // enqueued one at a time (group membership does
                        // not depend on the enqueues), so no group buffer
                        // is materialized on this per-dispatch hot path.
                        self.buffer.pop_front();
                        self.enqueue_quantum(
                            cycle,
                            head.timing,
                            head.op,
                            Some(front.addr),
                            env,
                            false,
                        );
                        let mut grouped = 1;
                        while grouped < env.cfg.quantum_pipes {
                            match self.buffer.front() {
                                Some(slot) => match slot.instr {
                                    Instruction::Quantum(q)
                                        if q.timing == Cycles::ZERO
                                            && !self.conflicts_with_context(&q.op) =>
                                    {
                                        let addr = slot.addr;
                                        self.buffer.pop_front();
                                        self.enqueue_quantum(
                                            cycle,
                                            Cycles::ZERO,
                                            q.op,
                                            Some(addr),
                                            env,
                                            false,
                                        );
                                        grouped += 1;
                                    }
                                    _ => break,
                                },
                                None => break,
                            }
                        }
                        any = true;
                    }
                }
                Instruction::Classical(_) => {}
            }
        }

        // ---- Classical dispatch with lookahead. ----
        // Find the first classical instruction; it may bypass buffered
        // quantum instructions unless bypass is illegal for it.
        let mut idx = None;
        for (i, slot) in self.buffer.iter().enumerate() {
            if let Instruction::Classical(op) = slot.instr {
                if matches!(op, ClassicalOp::Qwait { .. }) {
                    // QWAIT lives in the quantum stream; classical
                    // instructions may bypass it, keep scanning.
                    continue;
                }
                let needs_front = matches!(op, ClassicalOp::Stop | ClassicalOp::Halt)
                    || (matches!(op, ClassicalOp::Fmr { .. } | ClassicalOp::Mrce { .. })
                        && self.buffer.iter().take(i).any(|s| {
                            matches!(
                                s.instr,
                                Instruction::Quantum(q) if q.op.is_measure()
                            )
                        }));
                if needs_front && i != 0 {
                    // Must wait until it reaches the buffer front.
                    break;
                }
                idx = Some(i);
                break;
            }
        }
        if let Some(i) = idx {
            let slot = self.buffer[i];
            if let Instruction::Classical(op) = slot.instr {
                let consumed = self.execute_classical(cycle, slot.addr, op, i, env);
                if consumed {
                    any = true;
                }
            }
        }
        any
    }

    /// Executes one classical instruction. Returns false when the
    /// instruction stalled (stays in the buffer).
    fn execute_classical(
        &mut self,
        cycle: u64,
        addr: u32,
        op: ClassicalOp,
        buf_index: usize,
        env: &mut Env<'_>,
    ) -> bool {
        use ClassicalOp as C;
        let mut taken_target: Option<u32> = None;
        match op {
            C::Nop => {}
            C::Stop => {
                // A block is only done once its queued operations have
                // issued and its feedback contexts resolved; otherwise a
                // dependent block could race the in-flight operations.
                if !self.tqueue.is_empty() || !self.contexts.is_empty() {
                    return false;
                }
                self.stats.dispatched_classical += 1;
                self.finish_block();
                return true;
            }
            C::Halt => {
                self.stats.dispatched_classical += 1;
                *env.halt = true;
                self.state = State::Halted;
                return true;
            }
            C::Jmp { target } => taken_target = Some(target),
            C::Br { cond, target } => {
                if cond.eval(self.flag_zero, self.flag_neg) {
                    taken_target = Some(target);
                }
            }
            C::Call { target } => {
                self.call_stack.push(addr + 1);
                taken_target = Some(target);
            }
            C::Ret => match self.call_stack.pop() {
                Some(ret) => taken_target = Some(ret),
                None => {
                    self.fail(env);
                    return true;
                }
            },
            C::Ldi { rd, imm } => self.regs[rd.index() as usize] = i32::from(imm),
            C::Mov { rd, rs } => self.regs[rd.index() as usize] = self.regs[rs.index() as usize],
            C::Add { rd, rs1, rs2 } => {
                let v =
                    self.regs[rs1.index() as usize].wrapping_add(self.regs[rs2.index() as usize]);
                self.write_alu(rd.index(), v);
            }
            C::Addi { rd, rs, imm } => {
                let v = self.regs[rs.index() as usize].wrapping_add(i32::from(imm));
                self.write_alu(rd.index(), v);
            }
            C::Sub { rd, rs1, rs2 } => {
                let v =
                    self.regs[rs1.index() as usize].wrapping_sub(self.regs[rs2.index() as usize]);
                self.write_alu(rd.index(), v);
            }
            C::And { rd, rs1, rs2 } => {
                let v = self.regs[rs1.index() as usize] & self.regs[rs2.index() as usize];
                self.write_alu(rd.index(), v);
            }
            C::Or { rd, rs1, rs2 } => {
                let v = self.regs[rs1.index() as usize] | self.regs[rs2.index() as usize];
                self.write_alu(rd.index(), v);
            }
            C::Xor { rd, rs1, rs2 } => {
                let v = self.regs[rs1.index() as usize] ^ self.regs[rs2.index() as usize];
                self.write_alu(rd.index(), v);
            }
            C::Not { rd, rs } => {
                let v = !self.regs[rs.index() as usize];
                self.write_alu(rd.index(), v);
            }
            C::Cmp { rs1, rs2 } => {
                let v =
                    self.regs[rs1.index() as usize].wrapping_sub(self.regs[rs2.index() as usize]);
                self.set_flags(v);
            }
            C::Cmpi { rs, imm } => {
                let v = self.regs[rs.index() as usize].wrapping_sub(i32::from(imm));
                self.set_flags(v);
            }
            C::Fmr { rd, qubit } => {
                let entry = env.mrr.read(qubit);
                if !entry.valid {
                    // Stage I/II synchronization stall: stays in buffer.
                    self.stats.measure_wait_cycles += 1;
                    self.stall_flags.measure_wait = true;
                    env.wait_cycles.push(cycle);
                    return false;
                }
                self.regs[rd.index() as usize] = i32::from(entry.value);
                // FMR is a synchronization point: the wait duration was
                // unknowable at compile time, so the quantum timeline
                // re-anchors at the next issued group.
                self.timeline_anchored = false;
            }
            C::Qwait { .. } => unreachable!("QWAIT handled in the quantum stream"),
            C::Lds { rd, sreg } => {
                self.regs[rd.index() as usize] = env.shared_regs[sreg.index() as usize];
            }
            C::Sts { sreg, rs } => {
                env.shared_regs[sreg.index() as usize] = self.regs[rs.index() as usize];
            }
            C::Mrce {
                qubit,
                target,
                op_if_one,
                op_if_zero,
            } => {
                let entry = env.mrr.read(qubit);
                if entry.valid {
                    let chosen = if entry.value { op_if_one } else { op_if_zero };
                    if let Some(g) = chosen.gate() {
                        self.enqueue_quantum(
                            cycle,
                            Cycles::ZERO,
                            QuantumOp::Gate1(g, target),
                            None,
                            env,
                            true,
                        );
                    }
                } else if env.cfg.fast_context_switch {
                    if self.contexts.len() >= env.cfg.context_capacity {
                        self.stats.measure_wait_cycles += 1;
                        self.stall_flags.measure_wait = true;
                        env.wait_cycles.push(cycle);
                        return false; // context store full: stall
                    }
                    self.contexts.push(StoredContext {
                        qubit,
                        target,
                        op_if_one,
                        op_if_zero,
                    });
                } else {
                    // Fast context switch disabled: stall like FMR.
                    self.stats.measure_wait_cycles += 1;
                    self.stall_flags.measure_wait = true;
                    env.wait_cycles.push(cycle);
                    return false;
                }
            }
        }
        self.stats.dispatched_classical += 1;
        self.buffer.remove(buf_index);
        if let Some(target) = taken_target {
            self.stats.branches_taken += 1;
            self.redirect(target, env);
        } else if op.is_control_flow() {
            // Untaken branch: fetch resumes at the fall-through PC.
            self.fetch_blocked = false;
        }
        true
    }

    fn write_alu(&mut self, rd: u8, v: i32) {
        self.regs[rd as usize] = v;
        self.set_flags(v);
    }

    fn set_flags(&mut self, v: i32) {
        self.flag_zero = v == 0;
        self.flag_neg = v < 0;
    }

    /// Redirects fetch after a taken control transfer.
    fn redirect(&mut self, target: u32, env: &mut Env<'_>) {
        // No speculation: only instructions up to the transfer were ever
        // buffered, so nothing needs squashing — but any not-yet
        // dispatched younger entries (quantum instructions the transfer
        // bypassed) must be preserved. By construction the transfer was
        // the only classical instruction dispatched this cycle and fetch
        // was blocked, so the buffer holds only *older* instructions.
        self.pc = target;
        self.fetch_blocked = false;
        if self.icache.active().read(target).is_none() {
            // Transfer outside the resident block: unsupported (the
            // compiler keeps control flow block-local).
            self.fail(env);
        }
    }

    /// The cycle-*dependent* half of the skip check, used on the trusted
    /// fast path: the immediately preceding tick made no observable
    /// progress, which proves the cycle-independent state (dispatch,
    /// fetch, context resolution) inactive and leaves only this
    /// processor's clocked events to bound the jump. Returns `None` when
    /// one of them is due at `cycle` (the run loop must step), otherwise
    /// the stall verdict with the per-cycle counters the previous tick
    /// recorded. [`Processor::stall_info`] is the from-first-principles
    /// verifier this is cross-checked against under `debug_assertions`.
    pub(crate) fn skip_check(&self, cycle: u64) -> Option<StallInfo> {
        let mut stall = StallInfo {
            horizon: None,
            measure_wait: self.stall_flags.measure_wait,
            context_stall: self.stall_flags.context_stall,
        };
        if let Some(front) = self.tqueue.front() {
            if front.issue_cycle <= cycle {
                return None;
            }
            stall.merge_horizon(front.issue_cycle);
        }
        match self.state {
            State::Switching { until } => {
                if cycle >= until {
                    return None;
                }
                stall.merge_horizon(until);
            }
            State::ContextSwitch { fires_at, .. } => {
                if cycle >= fires_at {
                    return None;
                }
                stall.merge_horizon(fires_at);
            }
            State::Idle | State::Running | State::Halted => {}
        }
        Some(stall)
    }

    /// Read-only twin of [`Processor::tick`]: decides whether the tick at
    /// `cycle` would make *observable progress* (issue, dispatch, fetch,
    /// state transition, context resolution, block completion).
    ///
    /// Returns `None` when it would — the event-driven run loop must then
    /// step normally. Returns `Some(stall)` when the tick is provably a
    /// pure stall whose only effects are deterministic per-cycle counter
    /// bumps (`measure_wait` ⇒ `measure_wait_cycles` + one `wait_cycles`
    /// entry, `context_stall` ⇒ `context_dependency_stalls`), together
    /// with the earliest future cycle at which this processor *itself*
    /// could act (`horizon`; `None` = only external events can wake it).
    ///
    /// Soundness: a stall verdict only remains valid while no external
    /// state changes. The run loop therefore also bounds the skip by the
    /// DAQ's next delivery and the scheduler's next event, and re-checks
    /// every processor after each jump.
    pub(crate) fn stall_info(
        &self,
        cycle: u64,
        mrr: &MeasurementFile,
        cfg: &QuapeConfig,
    ) -> Option<StallInfo> {
        let mut stall = StallInfo::default();
        // Timing controller runs in every state: a due operation issues.
        if let Some(front) = self.tqueue.front() {
            if front.issue_cycle <= cycle {
                return None;
            }
            stall.merge_horizon(front.issue_cycle);
        }
        match self.state {
            State::Halted => return Some(stall),
            State::Switching { until } => {
                if cycle >= until {
                    return None; // would promote to Running and act
                }
                stall.merge_horizon(until);
                return Some(stall);
            }
            State::ContextSwitch { fires_at, .. } => {
                if cycle >= fires_at {
                    return None; // would fire the conditional op
                }
                stall.merge_horizon(fires_at);
                return Some(stall);
            }
            State::Idle | State::Running => {}
        }
        // MRCE context unit: a resolvable context triggers the switch.
        if self.contexts.iter().any(|c| mrr.is_valid(c.qubit)) {
            return None;
        }
        if matches!(self.state, State::Idle) {
            return Some(stall);
        }

        // Running. Fast path: an unblocked fetch with buffer room always
        // makes progress (checked first — it is the common reason a skip
        // attempt fails, and far cheaper than the dispatch mirror below).
        let fetch_open =
            !self.fetch_blocked && cfg.predecode_buffer > self.buffer.len() && cfg.fetch_width > 0;
        if fetch_open && self.icache.fetch(self.pc).is_some() {
            return None;
        }

        // Mirror the dispatch stage.
        if let Some(slot) = self.buffer.front() {
            match slot.instr {
                Instruction::Classical(ClassicalOp::Qwait { .. }) => return None,
                Instruction::Quantum(q) => {
                    if self.conflicts_with_context(&q.op) {
                        stall.context_stall = true;
                    } else {
                        return None; // quantum group would dispatch
                    }
                }
                Instruction::Classical(_) => {}
            }
        }
        // Classical lookahead — same pick as `dispatch`.
        let mut pick = None;
        for (i, slot) in self.buffer.iter().enumerate() {
            if let Instruction::Classical(op) = slot.instr {
                if matches!(op, ClassicalOp::Qwait { .. }) {
                    continue;
                }
                let needs_front = matches!(op, ClassicalOp::Stop | ClassicalOp::Halt)
                    || (matches!(op, ClassicalOp::Fmr { .. } | ClassicalOp::Mrce { .. })
                        && self.buffer.iter().take(i).any(|s| {
                            matches!(
                                s.instr,
                                Instruction::Quantum(q) if q.op.is_measure()
                            )
                        }));
                if needs_front && i != 0 {
                    break;
                }
                pick = Some(op);
                break;
            }
        }
        if let Some(op) = pick {
            match op {
                ClassicalOp::Stop => {
                    if self.tqueue.is_empty() && self.contexts.is_empty() {
                        return None; // STOP would retire the block
                    }
                    // Drain stall: no counters, wake on tqueue/context events.
                }
                ClassicalOp::Fmr { qubit, .. } => {
                    if mrr.is_valid(qubit) {
                        return None;
                    }
                    stall.measure_wait = true;
                }
                ClassicalOp::Mrce { qubit, .. } => {
                    if mrr.is_valid(qubit)
                        || (cfg.fast_context_switch && self.contexts.len() < cfg.context_capacity)
                    {
                        return None; // executes or parks a context
                    }
                    stall.measure_wait = true;
                }
                _ => return None, // any other classical op executes
            }
        }
        // Fetch walked past the end of the block (the fast path above saw
        // no instruction at `pc`): the implicit STOP fires once everything
        // has drained.
        if fetch_open
            && self.buffer.is_empty()
            && self.tqueue.is_empty()
            && self.contexts.is_empty()
        {
            return None;
        }
        Some(stall)
    }

    /// Fetch stage: refills the pre-decode buffer.
    fn fetch(&mut self, env: &mut Env<'_>) {
        if self.fetch_blocked {
            return;
        }
        let free = env.cfg.predecode_buffer.saturating_sub(self.buffer.len());
        let n = free.min(env.cfg.fetch_width);
        for _ in 0..n {
            match self.icache.fetch(self.pc) {
                Some(&instr) => {
                    self.buffer.push_back(Slot {
                        addr: self.pc,
                        instr,
                    });
                    self.pc += 1;
                    if let Instruction::Classical(op) = instr {
                        if op.is_control_flow() {
                            // Deterministic supply: never fetch past an
                            // unresolved control transfer.
                            self.fetch_blocked = true;
                            break;
                        }
                    }
                }
                None => {
                    // Walked past the end of the block: implicit STOP
                    // (subject to the same drain conditions as STOP).
                    if self.buffer.is_empty() && self.tqueue.is_empty() && self.contexts.is_empty()
                    {
                        self.finish_block();
                    }
                    break;
                }
            }
        }
    }
}
