//! Machine configuration and the presets used throughout the evaluation.

use quape_isa::{DependencyMode, OpTimings};
use serde::{Deserialize, Serialize};

/// Full configuration of a QuAPE machine.
///
/// Defaults model the paper's FPGA prototype: 100 MHz core fabric
/// (10 ns cycles), a DAQ chain tuned so the end-to-end feedback latency is
/// ≈ 450 ns (§7), 3-cycle fast context switch, and a dual-bank private
/// instruction cache per processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuapeConfig {
    /// Clock period in nanoseconds (10 ns = 100 MHz).
    pub clock_ns: u64,
    /// Number of processing units (1 = the QuMA_v2-like baseline).
    pub num_processors: usize,
    /// Instructions fetched per cycle (1 = scalar baseline, 8 = the
    /// paper's superscalar prototype).
    pub fetch_width: usize,
    /// Quantum pipelines per processor (instructions of one timing group
    /// dispatched per cycle). The paper couples this to the fetch width.
    pub quantum_pipes: usize,
    /// Pre-decode buffer capacity in instructions.
    pub predecode_buffer: usize,
    /// Nominal quantum-operation durations. The readout pulse defaults to
    /// 300 ns so the measured feedback latency lands at the paper's
    /// ≈ 450 ns.
    pub timings: OpTimings,
    /// DAQ demodulation/integration/threshold latency, base component.
    pub daq_base_ns: u64,
    /// DAQ latency jitter: the non-deterministic Stage II component is
    /// drawn uniformly from `0..=daq_jitter_ns`.
    pub daq_jitter_ns: u64,
    /// Concurrent demodulation servers per readout channel. A readout
    /// whose channel already has this many results in the demod pipeline
    /// waits for a server to free up, delaying its delivery (acquisition
    /// contention is modeled, not assumed infinite).
    pub daq_demod_slots: usize,
    /// Readout multiplexing: `None` (default) gives every qubit its own
    /// readout channel ([`crate::ChannelMap::linear`]); `Some(r)` shares
    /// `r` readout lines across the qubits
    /// ([`crate::ChannelMap::multiplexed`]), as in the paper's 8 readout
    /// channels for 10 qubits.
    pub readout_lines: Option<u16>,
    /// Scheduler response time per scheduling action, in cycles.
    pub scheduler_response_cycles: u64,
    /// Overrides the block-dependency mode the scheduler honours.
    /// `None` (the default) derives the mode from the program's block
    /// table, exactly as before this knob existed; forcing
    /// [`DependencyMode::Priority`] on a direct-dependency program (or
    /// vice versa) is a scheduling-policy ablation.
    pub dependency_mode: Option<DependencyMode>,
    /// Private instruction-cache banks per processor (the paper's
    /// prototype is dual-bank, §5.2.3: one executing, one prefetched).
    /// More banks give the scheduler more prefetch room.
    pub icache_banks: usize,
    /// Instruction words copied into a private cache bank per cycle.
    pub fill_words_per_cycle: usize,
    /// Cycles to switch a processor onto an already-prefetched cache bank.
    pub switch_cycles: u64,
    /// Cycles for the MRCE fast context switch (measured as 3 in §7).
    pub context_switch_cycles: u64,
    /// Capacity of the MRCE context store.
    pub context_capacity: usize,
    /// Enables prefetching of upcoming blocks into free cache banks.
    pub prefetch: bool,
    /// Enables the MRCE fast context switch; when disabled, MRCE stalls
    /// the pipeline like a plain FMR + branch (the ablation baseline).
    pub fast_context_switch: bool,
    /// Zero-cost scheduler used to compute the *ideal speedup* curve of
    /// Fig. 11b (all scheduling and allocation take no cycles).
    pub ideal_scheduler: bool,
    /// Seed for the machine's PRNG (DAQ jitter).
    pub seed: u64,
    /// Explicit qubit count for channel-map sizing. `None` (the default)
    /// sizes the setup by scanning the program for its highest qubit
    /// index; setting it avoids the scan and lets a setup expose more
    /// channels than the program touches (e.g. a fixed 10-qubit fridge
    /// running a 2-qubit job).
    pub num_qubits: Option<u16>,
}

impl QuapeConfig {
    /// The uniprocessor, scalar baseline — the configuration the paper
    /// equates with QuMA_v2 in the multiprocessor tests. Lowered from
    /// the builtin `baseline` [`MachineDescription`], the declarative
    /// source of truth for machine shapes.
    ///
    /// [`MachineDescription`]: crate::machdesc::MachineDescription
    pub fn uniprocessor() -> Self {
        crate::machdesc::MachineDescription::baseline().config_unvalidated()
    }

    /// Multiprocessor with `n` processing units (Fig. 11 sweeps 1/2/4/6).
    pub fn multiprocessor(n: usize) -> Self {
        crate::machdesc::MachineDescription::multiprocessor(n).config_unvalidated()
    }

    /// Scalar single-processor baseline for the superscalar comparison
    /// (Fig. 13).
    pub fn scalar_baseline() -> Self {
        Self::uniprocessor()
    }

    /// `w`-way superscalar single processor (the prototype implements
    /// w = 8).
    pub fn superscalar(w: usize) -> Self {
        crate::machdesc::MachineDescription::superscalar(w).config_unvalidated()
    }

    /// Derives the ideal-scheduler twin of this configuration (used for
    /// the theoretical-speedup series of Fig. 11b).
    pub fn ideal(mut self) -> Self {
        self.ideal_scheduler = true;
        self
    }

    /// Replaces the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fixes the setup's qubit count instead of scanning the program.
    pub fn with_num_qubits(mut self, num_qubits: u16) -> Self {
        self.num_qubits = Some(num_qubits);
        self
    }

    /// Multiplexes the readout over `lines` shared readout channels.
    pub fn with_readout_lines(mut self, lines: u16) -> Self {
        self.readout_lines = Some(lines);
        self
    }

    /// Sets the number of demod servers per readout channel.
    pub fn with_demod_slots(mut self, slots: usize) -> Self {
        self.daq_demod_slots = slots;
        self
    }

    /// Sets the number of private instruction-cache banks per processor.
    pub fn with_icache_banks(mut self, banks: usize) -> Self {
        self.icache_banks = banks;
        self
    }

    /// Forces the scheduler's block-dependency mode instead of deriving
    /// it from the program's block table.
    pub fn with_dependency_mode(mut self, mode: DependencyMode) -> Self {
        self.dependency_mode = Some(mode);
        self
    }

    /// Stable content digest of everything that shapes compilation and
    /// execution — every field except `seed`, which is a per-request
    /// runtime parameter (the shot engine and the job service derive all
    /// randomness from an explicit base seed, never from the compiled
    /// job's config).
    ///
    /// Used (combined with the program digest) to key compiled-job
    /// caches; stable across processes and runs.
    pub fn content_digest(&self) -> u64 {
        let mut h = quape_isa::Fnv64::new();
        h.write_u64(self.clock_ns)
            .write_u64(self.num_processors as u64)
            .write_u64(self.fetch_width as u64)
            .write_u64(self.quantum_pipes as u64)
            .write_u64(self.predecode_buffer as u64)
            .write_u64(self.timings.single_qubit_ns)
            .write_u64(self.timings.two_qubit_ns)
            .write_u64(self.timings.readout_pulse_ns)
            .write_u64(self.daq_base_ns)
            .write_u64(self.daq_jitter_ns)
            .write_u64(self.daq_demod_slots as u64)
            .write_u64(match self.readout_lines {
                None => u64::MAX,
                Some(l) => u64::from(l),
            })
            .write_u64(self.scheduler_response_cycles)
            .write_u64(match self.dependency_mode {
                None => u64::MAX,
                Some(DependencyMode::Direct) => 0,
                Some(DependencyMode::Priority) => 1,
            })
            .write_u64(self.icache_banks as u64)
            .write_u64(self.fill_words_per_cycle as u64)
            .write_u64(self.switch_cycles)
            .write_u64(self.context_switch_cycles)
            .write_u64(self.context_capacity as u64)
            .write_u32(u32::from(self.prefetch))
            .write_u32(u32::from(self.fast_context_switch))
            .write_u32(u32::from(self.ideal_scheduler))
            .write_u64(match self.num_qubits {
                None => u64::MAX,
                Some(n) => u64::from(n),
            });
        h.finish()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_ns == 0 {
            return Err("clock_ns must be positive".into());
        }
        if self.num_processors == 0 {
            return Err("need at least one processor".into());
        }
        if self.fetch_width == 0 || self.quantum_pipes == 0 {
            return Err("fetch width and quantum pipes must be positive".into());
        }
        if self.predecode_buffer < self.fetch_width {
            return Err("pre-decode buffer must hold at least one fetch group".into());
        }
        if self.fill_words_per_cycle == 0 {
            return Err("cache fill bandwidth must be positive".into());
        }
        if self.icache_banks < 2 {
            return Err("need at least two icache banks (execute + prefetch)".into());
        }
        if self.num_qubits == Some(0) {
            return Err("num_qubits override must be positive".into());
        }
        if self.daq_demod_slots == 0 {
            return Err("need at least one DAQ demod server per channel".into());
        }
        if self.readout_lines == Some(0) {
            return Err("readout multiplexing needs at least one line".into());
        }
        Ok(())
    }
}

impl Default for QuapeConfig {
    fn default() -> Self {
        Self::uniprocessor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        QuapeConfig::uniprocessor().validate().unwrap();
        QuapeConfig::multiprocessor(6).validate().unwrap();
        QuapeConfig::superscalar(8).validate().unwrap();
        QuapeConfig::superscalar(8).ideal().validate().unwrap();
    }

    #[test]
    fn superscalar_widths() {
        let c = QuapeConfig::superscalar(8);
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.quantum_pipes, 8);
        assert!(c.predecode_buffer >= 8);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = QuapeConfig::uniprocessor();
        c.clock_ns = 0;
        assert!(c.validate().is_err());
        let mut c = QuapeConfig::uniprocessor();
        c.num_processors = 0;
        assert!(c.validate().is_err());
        let mut c = QuapeConfig::superscalar(8);
        c.predecode_buffer = 4;
        assert!(c.validate().is_err());
        let mut c = QuapeConfig::uniprocessor();
        c.daq_demod_slots = 0;
        assert!(c.validate().is_err());
        let c = QuapeConfig::uniprocessor().with_readout_lines(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn content_digest_ignores_seed_only() {
        let base = QuapeConfig::superscalar(8);
        assert_eq!(base.content_digest(), base.clone().content_digest());
        assert_eq!(
            base.content_digest(),
            base.clone().with_seed(99).content_digest(),
            "seed is a runtime parameter, not cache-key material"
        );
        let mut slower = base.clone();
        slower.clock_ns = 20;
        assert_ne!(base.content_digest(), slower.content_digest());
        assert_ne!(
            base.content_digest(),
            base.clone().with_num_qubits(10).content_digest()
        );
        assert_ne!(
            base.content_digest(),
            base.clone().with_readout_lines(2).content_digest()
        );
    }

    #[test]
    fn ideal_flag_set() {
        assert!(QuapeConfig::multiprocessor(4).ideal().ideal_scheduler);
        assert!(!QuapeConfig::multiprocessor(4).ideal_scheduler);
    }
}
