//! Decoherence-cost estimation for control delays.
//!
//! The paper's motivation: "any delay in quantum operations issued from
//! the microarchitecture can result in additional accumulated quantum
//! errors" (§1), because qubits idle at a fixed error rate set by their
//! coherence times (T1/T2 ≈ 50–100 µs for superconducting qubits, §2.3).
//! This module converts a run's control-induced delays into an estimated
//! fidelity penalty, so configurations can be compared on the metric the
//! hardware actually cares about.

use crate::report::RunReport;
use serde::{Deserialize, Serialize};

/// Coherence parameters of the target qubits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoherenceParams {
    /// Energy-relaxation time T1 in nanoseconds.
    pub t1_ns: f64,
    /// Dephasing time T2 in nanoseconds (T2 ≤ 2·T1).
    pub t2_ns: f64,
}

impl CoherenceParams {
    /// §2.3's nominal superconducting-qubit numbers: T1 = 80 µs,
    /// T2 = 60 µs (within the quoted 50–100 µs range).
    pub const fn paper() -> Self {
        CoherenceParams {
            t1_ns: 80_000.0,
            t2_ns: 60_000.0,
        }
    }

    /// Per-nanosecond idle error rate: `1/T1 + 1/T2` (amplitude plus
    /// phase decay, first order).
    pub fn idle_error_rate(&self) -> f64 {
        1.0 / self.t1_ns + 1.0 / self.t2_ns
    }
}

impl Default for CoherenceParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Estimated decoherence cost of a run's control delays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecoherenceCost {
    /// Total control-induced delay accumulated by late issues, ns.
    pub late_ns: u64,
    /// Total stall time spent waiting for measurement results, ns
    /// (Stage I/II — unavoidable, reported separately).
    pub measure_wait_ns: u64,
    /// Estimated fidelity retained against *avoidable* delays:
    /// `exp(−late_ns · idle_error_rate)`.
    pub avoidable_fidelity: f64,
    /// Estimated fidelity retained including unavoidable waits.
    pub total_fidelity: f64,
}

/// Estimates the decoherence penalty of a run.
///
/// Late-issue cycles are control-architecture failures (the TR > 1
/// regime); measurement waits are physics. Both decay the state, but
/// only the former is chargeable to the microarchitecture.
pub fn decoherence_cost(
    report: &RunReport,
    clock_ns: u64,
    params: CoherenceParams,
) -> DecoherenceCost {
    let late_ns = report.stats.late_cycles * clock_ns;
    // From the stats counters, not `wait_cycles.len()`: the counters are
    // exact in both report modes, while lean reports leave the wait
    // trace empty (the two agree 1:1 on full reports — one trace entry
    // is pushed per counter increment).
    let measure_wait_cycles: u64 = report
        .stats
        .processors
        .iter()
        .map(|p| p.measure_wait_cycles)
        .sum();
    let measure_wait_ns = measure_wait_cycles * clock_ns;
    let rate = params.idle_error_rate();
    let avoidable_fidelity = (-(late_ns as f64) * rate).exp();
    let total_fidelity = (-((late_ns + measure_wait_ns) as f64) * rate).exp();
    DecoherenceCost {
        late_ns,
        measure_wait_ns,
        avoidable_fidelity,
        total_fidelity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{MachineStats, StopReason};

    fn report(late_cycles: u64, waits: usize) -> RunReport {
        RunReport {
            cycles: 1000,
            ns: 10_000,
            stop: StopReason::Completed,
            issued: Vec::new(),
            issued_ops: 0,
            violations: Vec::new(),
            playback: Vec::new(),
            awg_violations: Vec::new(),
            stats: MachineStats {
                late_cycles,
                processors: vec![crate::report::ProcessorStats {
                    measure_wait_cycles: waits as u64,
                    ..Default::default()
                }],
                ..Default::default()
            },
            step_dispatches: Vec::new(),
            wait_cycles: vec![0; waits],
            measurements: Vec::new(),
            block_events: Vec::new(),
            qpu_makespan_ns: 0,
        }
    }

    #[test]
    fn clean_run_keeps_full_fidelity() {
        let c = decoherence_cost(&report(0, 0), 10, CoherenceParams::paper());
        assert_eq!(c.late_ns, 0);
        assert_eq!(c.avoidable_fidelity, 1.0);
        assert_eq!(c.total_fidelity, 1.0);
    }

    #[test]
    fn lateness_decays_fidelity_monotonically() {
        let p = CoherenceParams::paper();
        let a = decoherence_cost(&report(10, 0), 10, p);
        let b = decoherence_cost(&report(100, 0), 10, p);
        assert!(b.avoidable_fidelity < a.avoidable_fidelity);
        assert!(a.avoidable_fidelity < 1.0);
    }

    #[test]
    fn measurement_waits_charge_total_but_not_avoidable() {
        let p = CoherenceParams::paper();
        let c = decoherence_cost(&report(0, 50), 10, p);
        assert_eq!(c.avoidable_fidelity, 1.0);
        assert!(c.total_fidelity < 1.0);
        assert_eq!(c.measure_wait_ns, 500);
    }

    #[test]
    fn rate_matches_hand_computation() {
        let p = CoherenceParams {
            t1_ns: 100.0,
            t2_ns: 50.0,
        };
        assert!((p.idle_error_rate() - 0.03).abs() < 1e-12);
        let c = decoherence_cost(&report(1, 0), 10, p);
        assert!((c.avoidable_fidelity - (-0.3f64).exp()).abs() < 1e-12);
    }
}
