//! QPU backend abstraction.
//!
//! The machine drives a QPU through this trait. Two implementations ship:
//! the behavioural/PRNG backend from `quape-qpu` (what the paper used for
//! its §7 QCP-only benchmarks) and a noisy state-vector backend used to
//! replay the §8 RB/simRB validation through the full control stack.

use quape_isa::{QuantumOp, Qubit};
use quape_qpu::{
    BehavioralQpu, DepolarizingNoise, IssuedOp, MeasurementModel, ReadoutError, StateVector,
    TimingViolation,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A quantum processing unit as seen by the control stack.
pub trait QpuBackend {
    /// Applies an operation at `time_ns`; returns the outcome for
    /// measurements.
    fn apply(&mut self, time_ns: u64, op: QuantumOp) -> Option<bool>;

    /// Every operation received so far, in arrival order.
    fn log(&self) -> &[IssuedOp];

    /// Timing violations (operations that arrived while a qubit was busy).
    fn violations(&self) -> &[TimingViolation];

    /// Hands the accumulated log and violations over by value at end of
    /// shot, leaving the backend's buffers empty — the report takes
    /// ownership instead of copying.
    fn take_results(&mut self) -> (Vec<IssuedOp>, Vec<TimingViolation>);

    /// Asks the backend to stop (or resume) materialising its
    /// per-operation log — the [`ReportMode::Lean`](crate::ReportMode)
    /// hook for batch/serving paths that only read counters. Backends
    /// that ignore the hint stay correct, just slower; outcomes must be
    /// identical either way.
    fn set_lean(&mut self, lean: bool) {
        let _ = lean;
    }

    /// Number of operations received so far. Must stay accurate even
    /// when the backend honours [`set_lean`](QpuBackend::set_lean) and
    /// leaves [`log`](QpuBackend::log) empty.
    fn issued_count(&self) -> u64 {
        self.log().len() as u64
    }

    /// When `qubit` becomes free under the occupancy model (0 if never
    /// used). The AWG bank keeps a device-side shadow of the same model
    /// ([`crate::AwgBank::qubit_busy_until`]); the differential suites
    /// assert the two views agree.
    fn busy_until(&self, qubit: Qubit) -> u64;

    /// Time at which the QPU becomes idle.
    fn makespan_ns(&self) -> u64;
}

impl QpuBackend for BehavioralQpu {
    fn apply(&mut self, time_ns: u64, op: QuantumOp) -> Option<bool> {
        BehavioralQpu::apply(self, time_ns, op)
    }

    fn log(&self) -> &[IssuedOp] {
        BehavioralQpu::log(self)
    }

    fn violations(&self) -> &[TimingViolation] {
        BehavioralQpu::violations(self)
    }

    fn take_results(&mut self) -> (Vec<IssuedOp>, Vec<TimingViolation>) {
        BehavioralQpu::take_results(self)
    }

    fn set_lean(&mut self, lean: bool) {
        self.set_record_log(!lean);
    }

    fn issued_count(&self) -> u64 {
        BehavioralQpu::issued_count(self)
    }

    fn busy_until(&self, qubit: Qubit) -> u64 {
        BehavioralQpu::busy_until(self, qubit)
    }

    fn makespan_ns(&self) -> u64 {
        BehavioralQpu::makespan_ns(self)
    }
}

/// A noisy state-vector QPU running behind the control stack.
///
/// Timing bookkeeping (occupancy, violations) is delegated to an inner
/// [`BehavioralQpu`]; the quantum state evolves in a dense state vector
/// with depolarizing noise and readout error, so measurement outcomes have
/// real quantum statistics.
#[derive(Debug, Clone)]
pub struct StateVectorQpu {
    state: StateVector,
    shadow: BehavioralQpu,
    noise: DepolarizingNoise,
    readout: ReadoutError,
    rng: SmallRng,
}

impl StateVectorQpu {
    /// Creates a `num_qubits`-qubit backend (dense — keep it small).
    pub fn new(
        num_qubits: u8,
        timings: quape_isa::OpTimings,
        noise: DepolarizingNoise,
        readout: ReadoutError,
        seed: u64,
    ) -> Self {
        StateVectorQpu {
            state: StateVector::new(num_qubits),
            shadow: BehavioralQpu::new(timings, MeasurementModel::AlwaysZero, seed),
            noise,
            readout,
            rng: SmallRng::seed_from_u64(seed.wrapping_add(0x5eed)),
        }
    }

    /// Probability that `qubit` reads 1 right now (diagnostic).
    pub fn prob_one(&self, qubit: Qubit) -> f64 {
        self.state.prob_one(qubit)
    }

    /// Direct access to the quantum state (diagnostic).
    pub fn state(&self) -> &StateVector {
        &self.state
    }
}

impl QpuBackend for StateVectorQpu {
    fn apply(&mut self, time_ns: u64, op: QuantumOp) -> Option<bool> {
        // Timing bookkeeping (the shadow's sampled outcome is discarded).
        let _ = self.shadow.apply(time_ns, op);
        match op {
            QuantumOp::Gate1(quape_isa::Gate1::Reset, q) => {
                self.state.reset(q, &mut self.rng);
                None
            }
            QuantumOp::Gate1(g, q) => {
                self.state.apply_gate1(g, q);
                self.noise.apply(&mut self.state, q, &mut self.rng);
                None
            }
            QuantumOp::Gate2(g, a, b) => {
                self.state.apply_gate2(g, a, b);
                self.noise.apply(&mut self.state, a, &mut self.rng);
                self.noise.apply(&mut self.state, b, &mut self.rng);
                None
            }
            QuantumOp::Measure(q) => {
                let ideal = self.state.measure(q, &mut self.rng);
                Some(self.readout.apply(ideal, &mut self.rng))
            }
        }
    }

    fn log(&self) -> &[IssuedOp] {
        self.shadow.log()
    }

    fn violations(&self) -> &[TimingViolation] {
        self.shadow.violations()
    }

    fn take_results(&mut self) -> (Vec<IssuedOp>, Vec<TimingViolation>) {
        self.shadow.take_results()
    }

    fn set_lean(&mut self, lean: bool) {
        self.shadow.set_record_log(!lean);
    }

    fn issued_count(&self) -> u64 {
        self.shadow.issued_count()
    }

    fn busy_until(&self, qubit: Qubit) -> u64 {
        self.shadow.busy_until(qubit)
    }

    fn makespan_ns(&self) -> u64 {
        self.shadow.makespan_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_isa::{Gate1, Gate2, OpTimings};

    fn q(i: u16) -> Qubit {
        Qubit::new(i)
    }

    fn noiseless(n: u8) -> StateVectorQpu {
        StateVectorQpu::new(
            n,
            OpTimings::paper(),
            DepolarizingNoise {
                pauli_error_prob: 0.0,
            },
            ReadoutError::default(),
            7,
        )
    }

    #[test]
    fn bell_pair_through_backend() {
        let mut qpu = noiseless(2);
        qpu.apply(0, QuantumOp::Gate1(Gate1::H, q(0)));
        qpu.apply(20, QuantumOp::Gate2(Gate2::Cnot, q(0), q(1)));
        let a = qpu
            .apply(60, QuantumOp::Measure(q(0)))
            .expect("measurement outcome");
        let b = qpu
            .apply(60, QuantumOp::Measure(q(1)))
            .expect("measurement outcome");
        assert_eq!(a, b, "Bell pair outcomes must correlate");
        assert!(qpu.violations().is_empty());
        assert_eq!(qpu.log().len(), 4);
    }

    #[test]
    fn reset_pulse_clears_state() {
        let mut qpu = noiseless(1);
        qpu.apply(0, QuantumOp::Gate1(Gate1::X, q(0)));
        qpu.apply(20, QuantumOp::Gate1(Gate1::Reset, q(0)));
        assert!(qpu.prob_one(q(0)) < 1e-9);
    }

    #[test]
    fn shadow_flags_timing_violations() {
        let mut qpu = noiseless(1);
        qpu.apply(0, QuantumOp::Gate1(Gate1::X, q(0)));
        qpu.apply(5, QuantumOp::Gate1(Gate1::X, q(0)));
        assert_eq!(qpu.violations().len(), 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut qpu = StateVectorQpu::new(
                1,
                OpTimings::paper(),
                DepolarizingNoise {
                    pauli_error_prob: 0.1,
                },
                ReadoutError {
                    p01: 0.05,
                    p10: 0.05,
                },
                99,
            );
            (0..32)
                .map(|i| {
                    qpu.apply(i * 1000, QuantumOp::Gate1(Gate1::H, q(0)));
                    qpu.apply(i * 1000 + 20, QuantumOp::Measure(q(0)))
                        .expect("outcome")
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
