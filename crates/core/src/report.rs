//! Run reports: everything a benchmark needs to compute the paper's
//! metrics after a machine run.

use crate::devices::{AwgViolation, AwgViolationKind, PlaybackEvent};
use quape_isa::{BlockId, BlockStatus, StepId};
use quape_qpu::{IssuedOp, TimingViolation};
use serde::{Deserialize, Serialize};

/// A change of a block's scheduler status (drives the Fig. 7 status-flow
/// reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockEvent {
    /// Cycle at which the transition happened.
    pub cycle: u64,
    /// The block.
    pub block: BlockId,
    /// The new status.
    pub status: BlockStatus,
    /// Processor involved, if any.
    pub processor: Option<usize>,
}

/// Dispatch record of one quantum instruction (feeds CES/TR metering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepDispatch {
    /// Cycle at which the instruction left the pre-decoder.
    pub cycle: u64,
    /// The circuit step it belongs to (from the compiler's step map).
    pub step: Option<StepId>,
    /// Dispatching processor.
    pub processor: usize,
}

/// Per-processor counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorStats {
    /// Quantum instructions dispatched.
    pub dispatched_quantum: u64,
    /// Classical instructions executed.
    pub dispatched_classical: u64,
    /// Cycles spent waiting for a measurement result (Stage I/II; excluded
    /// from CES per §3.2.1).
    pub measure_wait_cycles: u64,
    /// Cycles the quantum dispatch was blocked by an MRCE-context qubit
    /// dependency.
    pub context_dependency_stalls: u64,
    /// MRCE fast context switches performed.
    pub context_switches: u64,
    /// Taken control transfers.
    pub branches_taken: u64,
    /// Blocks executed to completion.
    pub blocks_completed: u64,
    /// Cycles with at least one instruction dispatched.
    pub active_cycles: u64,
}

/// Machine-wide counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MachineStats {
    /// Per-processor counters.
    pub processors: Vec<ProcessorStats>,
    /// Quantum operations that reached their timing queue *after* their
    /// scheduled issue time (the decoherence hazard the paper designs
    /// against).
    pub late_issues: u64,
    /// Total lateness across all late issues, in cycles.
    pub late_cycles: u64,
    /// Cycles the scheduler spent busy on allocation/prefetch work.
    pub scheduler_busy_cycles: u64,
    /// Waveform playbacks the AWG bank recorded.
    pub awg_triggers: u64,
    /// Highest number of simultaneously playing waveforms (the per-channel
    /// occupancy pressure a hierarchical controller would shard on).
    pub awg_max_concurrent: u64,
    /// Measurement results whose demodulation waited for a DAQ server.
    pub daq_contended_results: u64,
    /// Total delivery delay caused by DAQ demod contention, in ns.
    pub daq_contention_delay_ns: u64,
    /// Completed block-to-block switches that hit a prefetched bank.
    pub prefetch_hits: u64,
    /// Block starts that had to fill a cache bank on demand.
    pub prefetch_misses: u64,
}

impl ProcessorStats {
    /// Fraction of the run this processor spent dispatching instructions.
    pub fn busy_fraction(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.active_cycles as f64 / total_cycles as f64
        }
    }
}

impl MachineStats {
    /// Sum of quantum instructions dispatched across processors.
    pub fn total_quantum(&self) -> u64 {
        self.processors.iter().map(|p| p.dispatched_quantum).sum()
    }

    /// Sum of classical instructions executed across processors.
    pub fn total_classical(&self) -> u64 {
        self.processors.iter().map(|p| p.dispatched_classical).sum()
    }

    /// Mean processor utilization (the CLP load-balance indicator).
    pub fn mean_utilization(&self, total_cycles: u64) -> f64 {
        if self.processors.is_empty() {
            return 0.0;
        }
        self.processors
            .iter()
            .map(|p| p.busy_fraction(total_cycles))
            .sum::<f64>()
            / self.processors.len() as f64
    }
}

/// Why the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// All blocks done, all queues drained.
    Completed,
    /// A `HALT` instruction was executed.
    Halted,
    /// The cycle budget ran out first.
    CycleLimit,
    /// A processor hit an execution error (e.g. `RET` with an empty call
    /// stack).
    Error,
}

/// The result of one machine run.
///
/// `PartialEq` compares every field — the step-mode differential suite
/// relies on it to assert that event-driven and cycle-stepped executions
/// are bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Wall-clock program time in nanoseconds (cycles × clock period).
    pub ns: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Every quantum operation issued to the QPU, time-stamped. Left
    /// empty in [`ReportMode::Lean`](crate::ReportMode) runs — use
    /// [`issued_ops`](RunReport::issued_ops) for the count, which is
    /// exact in both modes.
    pub issued: Vec<IssuedOp>,
    /// Number of quantum operations issued (counted at the backend, so
    /// it is exact even when `issued` is not materialised).
    pub issued_ops: u64,
    /// Timing violations detected by the QPU occupancy model.
    pub violations: Vec<TimingViolation>,
    /// The AWG bank's recorded playback timeline: every waveform trigger
    /// with the extent it occupied its channel (what
    /// [`crate::render_timeline`] streams from). Left empty in
    /// [`ReportMode::Lean`](crate::ReportMode) runs — `stats.awg_triggers`
    /// holds the exact count in both modes.
    pub playback: Vec<PlaybackEvent>,
    /// Occupancy conflicts detected at the AWG bank (channel overlaps on
    /// shared lines, plus the device-side twin of the QPU qubit model).
    pub awg_violations: Vec<AwgViolation>,
    /// Counters.
    pub stats: MachineStats,
    /// Quantum-instruction dispatch records for CES/TR metering. Left
    /// empty in [`ReportMode::Lean`](crate::ReportMode) runs —
    /// `stats.processors[i].dispatched_quantum` stays exact.
    pub step_dispatches: Vec<StepDispatch>,
    /// Cycles during which a processor was blocked waiting on a
    /// measurement result (one entry per processor-cycle). Left empty in
    /// [`ReportMode::Lean`](crate::ReportMode) runs —
    /// `stats.processors[i].measure_wait_cycles` stays exact in both
    /// modes.
    pub wait_cycles: Vec<u64>,
    /// Measurement outcomes in issue order.
    pub measurements: Vec<crate::machine::MeasurementRecord>,
    /// Scheduler status transitions.
    pub block_events: Vec<BlockEvent>,
    /// When the QPU finished its last operation.
    pub qpu_makespan_ns: u64,
}

impl RunReport {
    /// End-to-end execution time: program time or QPU drain, whichever is
    /// later (the metric of Fig. 11/12).
    pub fn execution_time_ns(&self) -> u64 {
        self.ns.max(self.qpu_makespan_ns)
    }

    /// Number of quantum operations issued (exact in both report modes).
    pub fn issued_count(&self) -> usize {
        self.issued_ops as usize
    }

    /// True if no operation missed its deadline and the QPU saw no
    /// overlapping operations.
    pub fn timing_clean(&self) -> bool {
        self.stats.late_issues == 0 && self.violations.is_empty()
    }

    /// True if the analog devices saw no conflicts either: no AWG
    /// channel/qubit overlap and no DAQ demod contention. Stricter than
    /// [`RunReport::timing_clean`] on multiplexed-readout setups, where
    /// line contention is invisible to the per-qubit QPU model.
    pub fn device_clean(&self) -> bool {
        self.awg_violations.is_empty() && self.stats.daq_contended_results == 0
    }

    /// The AWG violations of one [`AwgViolationKind`].
    pub fn awg_violations_of(&self, kind: AwgViolationKind) -> impl Iterator<Item = &AwgViolation> {
        self.awg_violations.iter().filter(move |v| v.kind == kind)
    }
}
