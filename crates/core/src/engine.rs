//! The shot-batched execution engine.
//!
//! Real experiments are multi-shot: randomized benchmarking averages many
//! repetitions per sequence length, multiprogramming studies average over
//! seeds, and a control processor in production replays the same compiled
//! job thousands of times (the process-level parallelism axis that
//! HiMA-style architectures scale along). The [`ShotEngine`] runs `n`
//! shots of one [`CompiledJob`] across a configurable pool of OS threads:
//!
//! * each shot gets its own QPU backend from a [`QpuFactory`] and its own
//!   deterministic RNG stream (SplitMix64 of `base_seed ^ shot_index`), so
//!   the batch is **schedule-independent** — the same `base_seed` yields a
//!   bit-identical [`BatchAggregate`] whether it ran on 1 thread or 16;
//! * per-shot results are reduced to compact [`ShotSummary`] digests and
//!   folded **in shot order**, keeping memory O(shots) in digest size
//!   rather than O(shots × full report);
//! * the [`BatchReport`] carries per-qubit outcome histograms and survival
//!   estimates, cycle/lateness distributions (p50/p95/max), stop-reason
//!   counts, and the measured wall time / shots-per-second.

use crate::backend::{QpuBackend, StateVectorQpu};
use crate::machine::{CompiledJob, LoweredShotRunner, MeasurementRecord, ReportMode, StepMode};
use crate::report::StopReason;
use quape_isa::OpTimings;
use quape_qpu::{BehavioralQpuFactory, DepolarizingNoise, ReadoutError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One SplitMix64 scramble (stateless form of the standard stream mixer).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-shot seed: SplitMix64 of `base_seed ^ shot_index`,
/// with the base pre-scrambled through SplitMix64 first.
///
/// The pre-scramble matters: with a raw XOR, nearby bases yield
/// *permutations* of each other's seed sets (`1 ^ 1 == 2 ^ 2`), which an
/// order-insensitive aggregate cannot distinguish. Scrambling the base
/// spreads it across all 64 bits so every `(base_seed, shot_index)` pair
/// maps to an unrelated stream.
///
/// Every shot derives its QPU seed and machine-PRNG seed from this value,
/// so a batch's outcome depends only on `(base_seed, shot_index)` — never
/// on which thread ran the shot or in what order.
pub fn shot_seed(base_seed: u64, shot_index: u64) -> u64 {
    splitmix64(splitmix64(base_seed) ^ shot_index)
}

/// Builds one QPU backend per shot.
///
/// The engine calls `create` once per shot, on the worker thread that
/// runs the shot, with that shot's deterministic seed.
pub trait QpuFactory: Send + Sync {
    /// Creates the backend for the shot seeded with `seed`.
    fn create(&self, seed: u64) -> Box<dyn QpuBackend>;
}

/// A shared factory handle is itself a factory, so one factory can serve
/// many concurrently scheduled jobs (the job-service layer hands each
/// job's engine an `Arc` clone of the request's factory).
impl QpuFactory for std::sync::Arc<dyn QpuFactory> {
    fn create(&self, seed: u64) -> Box<dyn QpuBackend> {
        self.as_ref().create(seed)
    }
}

impl QpuFactory for BehavioralQpuFactory {
    fn create(&self, seed: u64) -> Box<dyn QpuBackend> {
        Box::new(BehavioralQpuFactory::create(self, seed))
    }
}

/// [`QpuFactory`] for the noisy state-vector backend
/// ([`StateVectorQpu`]).
#[derive(Debug, Clone)]
pub struct StateVectorQpuFactory {
    /// Number of simulated qubits (dense state — keep it small).
    pub num_qubits: u8,
    /// Nominal operation durations for the shadow timing model.
    pub timings: OpTimings,
    /// Depolarizing noise applied after every gate.
    pub noise: DepolarizingNoise,
    /// Readout assignment error.
    pub readout: ReadoutError,
}

impl QpuFactory for StateVectorQpuFactory {
    fn create(&self, seed: u64) -> Box<dyn QpuBackend> {
        Box::new(StateVectorQpu::new(
            self.num_qubits,
            self.timings,
            self.noise,
            self.readout,
            seed,
        ))
    }
}

/// Per-qubit outcome digest of one shot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
struct QubitShotDigest {
    zeros: u64,
    ones: u64,
    first: Option<bool>,
}

/// Compact digest of one shot (everything the batch aggregation needs).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ShotSummary {
    /// Shot index within the batch.
    pub shot: u64,
    /// The shot's derived seed (see [`shot_seed`]).
    pub seed: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// End-to-end execution time (program time or QPU drain).
    pub execution_time_ns: u64,
    /// Why the shot stopped.
    pub stop: StopReason,
    /// Quantum operations issued to the QPU.
    pub issued: u64,
    /// Late issues (operations that missed their deadline).
    pub late_issues: u64,
    /// Total lateness in cycles.
    pub late_cycles: u64,
    /// Timing violations flagged by the QPU occupancy model.
    pub violations: u64,
    /// Occupancy conflicts detected at the AWG bank.
    pub awg_violations: u64,
    /// Results delayed by DAQ demod contention.
    pub daq_contended: u64,
    /// Per-qubit outcome digest, indexed by qubit.
    per_qubit: Vec<QubitShotDigest>,
}

fn digest_measurements(
    num_qubits: u16,
    measurements: &[MeasurementRecord],
) -> Vec<QubitShotDigest> {
    let mut per_qubit = vec![QubitShotDigest::default(); num_qubits as usize];
    for m in measurements {
        let Some(d) = per_qubit.get_mut(m.qubit.index() as usize) else {
            continue;
        };
        if m.value {
            d.ones += 1;
        } else {
            d.zeros += 1;
        }
        if d.first.is_none() {
            d.first = Some(m.value);
        }
    }
    per_qubit
}

/// Aggregated outcome counts for one qubit across a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct QubitHistogram {
    /// Total `0` outcomes across all shots.
    pub zeros: u64,
    /// Total `1` outcomes across all shots.
    pub ones: u64,
    /// Shots in which this qubit was measured at least once.
    pub shots_measured: u64,
    /// Shots whose *first* measurement of this qubit read `0` (the RB
    /// survival event).
    pub first_zero_shots: u64,
}

impl QubitHistogram {
    /// Survival estimate: fraction of measuring shots whose first outcome
    /// was `0`. `None` if the qubit was never measured.
    pub fn survival(&self) -> Option<f64> {
        if self.shots_measured == 0 {
            None
        } else {
            Some(self.first_zero_shots as f64 / self.shots_measured as f64)
        }
    }

    /// Fraction of all outcomes that read `1`. `None` without outcomes.
    pub fn p_one(&self) -> Option<f64> {
        let total = self.zeros + self.ones;
        if total == 0 {
            None
        } else {
            Some(self.ones as f64 / total as f64)
        }
    }
}

/// Order statistics of a per-shot quantity.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct DistributionSummary {
    /// Smallest observed value.
    pub min: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// Largest observed value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl DistributionSummary {
    fn from_values(mut values: Vec<u64>) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        values.sort_unstable();
        let n = values.len();
        let rank = |p: usize| values[(n - 1) * p / 100];
        let sum: u128 = values.iter().map(|&v| u128::from(v)).sum();
        DistributionSummary {
            min: values[0],
            p50: rank(50),
            p95: rank(95),
            max: values[n - 1],
            mean: sum as f64 / n as f64,
        }
    }
}

/// Shots by stop reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct StopCounts {
    /// All blocks done, queues drained.
    pub completed: u64,
    /// `HALT` executed.
    pub halted: u64,
    /// Cycle budget ran out.
    pub cycle_limit: u64,
    /// Execution error.
    pub errors: u64,
}

/// The deterministic part of a batch result: identical for the same
/// `(job, factory, base_seed, shots)` regardless of thread count.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct BatchAggregate {
    /// Shots executed.
    pub shots: u64,
    /// Base seed the per-shot streams derive from.
    pub base_seed: u64,
    /// Per-qubit outcome histograms, indexed by qubit.
    pub qubits: Vec<QubitHistogram>,
    /// Shots by stop reason.
    pub stops: StopCounts,
    /// Distribution of per-shot cycle counts.
    pub cycles: DistributionSummary,
    /// Distribution of per-shot total lateness (cycles).
    pub lateness: DistributionSummary,
    /// Distribution of per-shot end-to-end execution times (ns).
    pub execution_time_ns: DistributionSummary,
    /// Quantum operations issued across all shots.
    pub issued_total: u64,
    /// Late issues across all shots.
    pub late_issues_total: u64,
    /// QPU timing violations across all shots.
    pub violations_total: u64,
    /// AWG-detected device violations across all shots.
    pub awg_violations_total: u64,
    /// DAQ demod-contended results across all shots.
    pub daq_contended_total: u64,
    /// Simulated nanoseconds across all shots.
    pub simulated_ns_total: u64,
}

impl BatchAggregate {
    /// Folds per-shot digests into the batch aggregate.
    ///
    /// `summaries` must be sorted by shot index — the fold is exactly the
    /// one [`ShotEngine::run`] performs, so any scheduler that executes
    /// the same shot set (e.g. the job service interleaving shot quanta
    /// from many jobs) reproduces a solo run's aggregate bit-identically
    /// by sorting its summaries and calling this.
    pub fn from_summaries(base_seed: u64, summaries: &[ShotSummary]) -> Self {
        let num_qubits = summaries
            .iter()
            .map(|s| s.per_qubit.len())
            .max()
            .unwrap_or(0);
        let mut qubits = vec![QubitHistogram::default(); num_qubits];
        let mut stops = StopCounts::default();
        let mut issued_total = 0u64;
        let mut late_issues_total = 0u64;
        let mut violations_total = 0u64;
        let mut awg_violations_total = 0u64;
        let mut daq_contended_total = 0u64;
        let mut simulated_ns_total = 0u64;
        for s in summaries {
            for (q, d) in s.per_qubit.iter().enumerate() {
                let h = &mut qubits[q];
                h.zeros += d.zeros;
                h.ones += d.ones;
                if d.zeros + d.ones > 0 {
                    h.shots_measured += 1;
                }
                if d.first == Some(false) {
                    h.first_zero_shots += 1;
                }
            }
            match s.stop {
                StopReason::Completed => stops.completed += 1,
                StopReason::Halted => stops.halted += 1,
                StopReason::CycleLimit => stops.cycle_limit += 1,
                StopReason::Error => stops.errors += 1,
            }
            issued_total += s.issued;
            late_issues_total += s.late_issues;
            violations_total += s.violations;
            awg_violations_total += s.awg_violations;
            daq_contended_total += s.daq_contended;
            simulated_ns_total += s.execution_time_ns;
        }
        BatchAggregate {
            shots: summaries.len() as u64,
            base_seed,
            qubits,
            stops,
            cycles: DistributionSummary::from_values(summaries.iter().map(|s| s.cycles).collect()),
            lateness: DistributionSummary::from_values(
                summaries.iter().map(|s| s.late_cycles).collect(),
            ),
            execution_time_ns: DistributionSummary::from_values(
                summaries.iter().map(|s| s.execution_time_ns).collect(),
            ),
            issued_total,
            late_issues_total,
            violations_total,
            awg_violations_total,
            daq_contended_total,
            simulated_ns_total,
        }
    }

    /// Survival estimate for `qubit` (see [`QubitHistogram::survival`]).
    pub fn survival(&self, qubit: u16) -> Option<f64> {
        self.qubits
            .get(qubit as usize)
            .and_then(QubitHistogram::survival)
    }

    /// True when no shot issued late and no QPU violation occurred.
    pub fn timing_clean(&self) -> bool {
        self.late_issues_total == 0 && self.violations_total == 0
    }
}

/// The result of a batched run: the deterministic [`BatchAggregate`] plus
/// host-side measurements (wall time, thread count).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The schedule-independent aggregate.
    pub aggregate: BatchAggregate,
    /// Worker threads used.
    pub threads: usize,
    /// Host wall time for the whole batch.
    pub wall_time: Duration,
}

impl BatchReport {
    /// Host throughput in shots per second.
    pub fn shots_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.aggregate.shots as f64 / secs
        }
    }
}

/// Cheap telemetry handles for the engine's shot hot path.
///
/// The default ([`EngineObs::off`]) is compile-time inert: every update
/// is an inlined no-op on `None`-backed handles, so an uninstrumented
/// engine pays one predictable branch per shot. The job service wires
/// live handles from its shard's `quape-obs` registry.
#[derive(Debug, Clone, Default)]
pub struct EngineObs {
    /// Shots executed through this engine.
    pub shots: quape_obs::Counter,
    /// Per-shot simulated cycle counts (log2 buckets).
    pub shot_cycles: quape_obs::Histogram,
}

impl EngineObs {
    /// The inert default.
    pub const fn off() -> Self {
        EngineObs {
            shots: quape_obs::Counter::off(),
            shot_cycles: quape_obs::Histogram::off(),
        }
    }

    /// Handles registered in `scope`'s metric registry.
    pub fn in_scope(scope: &quape_obs::ObsScope) -> Self {
        EngineObs {
            shots: scope.counter("engine.shots"),
            shot_cycles: scope.histogram("engine.shot_cycles"),
        }
    }

    #[inline]
    fn record(&self, summary: &ShotSummary) {
        self.shots.inc();
        self.shot_cycles.record(summary.cycles);
    }
}

/// Per-worker reusable machine state for
/// [`ShotEngine::run_shot_reusing`].
///
/// One scratch per worker thread; the engine's own `run` loops keep one
/// per worker automatically. The scratch lazily holds a
/// [`LoweredShotRunner`] keyed by job digest: shots of the same job
/// reuse its arena, a different job rebuilds it (so external pools —
/// e.g. the job service's workers — may hold one scratch across jobs).
#[derive(Default)]
pub struct WorkerScratch {
    runner: Option<LoweredShotRunner>,
}

impl WorkerScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scratch's runner for `job`, (re)built if the held one serves
    /// a different job.
    fn runner_for(&mut self, job: &CompiledJob) -> &mut LoweredShotRunner {
        let stale = self
            .runner
            .as_ref()
            .is_none_or(|r| r.job().digest() != job.digest());
        if stale {
            self.runner = Some(LoweredShotRunner::new(job.clone()));
        }
        self.runner.as_mut().expect("runner just ensured")
    }
}

/// Runs `n` shots of one [`CompiledJob`] across a thread pool.
///
/// ```
/// use quape_core::{CompiledJob, QuapeConfig, ShotEngine};
/// use quape_qpu::{BehavioralQpuFactory, MeasurementModel};
/// use quape_isa::assemble;
///
/// let program = assemble("0 H q0\n1 MEAS q0\nSTOP\n")?;
/// let cfg = QuapeConfig::superscalar(4);
/// let factory = BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 });
/// let job = CompiledJob::compile(cfg, program)?;
/// let report = ShotEngine::new(job, factory).base_seed(7).threads(2).run(64);
/// assert_eq!(report.aggregate.shots, 64);
/// assert_eq!(report.aggregate.stops.completed, 64);
/// let h = &report.aggregate.qubits[0];
/// assert_eq!(h.shots_measured, 64);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ShotEngine {
    job: CompiledJob,
    factory: Box<dyn QpuFactory>,
    threads: usize,
    base_seed: u64,
    cycle_limit: u64,
    step_mode: StepMode,
    report_mode: ReportMode,
    obs: EngineObs,
}

impl ShotEngine {
    /// Creates an engine for `job` with backends from `factory`.
    ///
    /// Defaults: automatic thread count (`available_parallelism`), base
    /// seed from the job's config, 10-million-cycle budget per shot, and
    /// event-driven stepping.
    pub fn new(job: CompiledJob, factory: impl QpuFactory + 'static) -> Self {
        let base_seed = job.cfg().seed;
        ShotEngine {
            job,
            factory: Box::new(factory),
            threads: 0,
            base_seed,
            cycle_limit: 10_000_000,
            step_mode: StepMode::default(),
            report_mode: ReportMode::Lean,
            obs: EngineObs::off(),
        }
    }

    /// Sets the worker thread count (`0` = `available_parallelism`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the base seed of the per-shot SplitMix64 streams.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Sets the per-shot cycle budget.
    pub fn cycle_limit(mut self, cycle_limit: u64) -> Self {
        self.cycle_limit = cycle_limit;
        self
    }

    /// Sets how shots advance time. [`StepMode::EventDriven`] (the
    /// default) skips provably idle spans; [`StepMode::Cycle`] is the
    /// bit-identical slow oracle for differential testing and perf
    /// comparisons.
    pub fn step_mode(mut self, step_mode: StepMode) -> Self {
        self.step_mode = step_mode;
        self
    }

    /// Sets how much of each shot's report is materialised. The engine
    /// defaults to [`ReportMode::Lean`]: every shot is reduced to a
    /// [`ShotSummary`] of counters anyway, so the per-shot
    /// `wait_cycles`/`issued`/`playback` vectors would be allocated only
    /// to be dropped. Aggregates are bit-identical in both modes
    /// (differential-tested); [`ReportMode::Full`] exists for
    /// apples-to-apples comparisons against figure-level runs.
    pub fn report_mode(mut self, report_mode: ReportMode) -> Self {
        self.report_mode = report_mode;
        self
    }

    /// Attaches telemetry handles. Recording is observation-only: it
    /// never changes seeds, scheduling, or summaries, so aggregates
    /// stay bit-identical to an uninstrumented run.
    pub fn obs(mut self, obs: EngineObs) -> Self {
        self.obs = obs;
        self
    }

    /// The job this engine runs.
    pub fn job(&self) -> &CompiledJob {
        &self.job
    }

    fn effective_threads(&self, shots: u64) -> usize {
        let auto = || std::thread::available_parallelism().map_or(1, |n| n.get());
        let t = if self.threads == 0 {
            auto()
        } else {
            self.threads
        };
        t.clamp(1, shots.max(1) as usize)
    }

    /// Runs exactly one shot of the batch and returns its digest — the
    /// *shot quantum* primitive of the engine.
    ///
    /// The summary depends only on `(job, factory, base_seed, shot)`:
    /// callers may execute any subset of a batch's shots, in any order,
    /// on any thread, and recover the batch aggregate by folding the
    /// sorted summaries with [`BatchAggregate::from_summaries`]. The
    /// multi-tenant job service schedules quanta of shots from many jobs
    /// onto one worker pool through this entry point.
    ///
    /// Each call builds the per-shot machine state from scratch; a
    /// worker executing many quanta should hold a [`WorkerScratch`] and
    /// call [`run_shot_reusing`](ShotEngine::run_shot_reusing) instead.
    pub fn run_shot(&self, shot: u64) -> ShotSummary {
        self.run_shot_reusing(shot, &mut WorkerScratch::default())
    }

    /// [`run_shot`](ShotEngine::run_shot) with a per-worker reusable
    /// arena: in the lean lowered configuration (the engine's hot path)
    /// the shot runs on `scratch`'s [`LoweredShotRunner`], so machine
    /// state is reset in place instead of reallocated per shot. Any
    /// other step/report mode falls back to the fresh-state path. The
    /// summary is bit-identical either way — `scratch` affects host
    /// allocation behaviour only, and it revalidates itself against the
    /// engine's job, so one scratch may serve engines of different jobs
    /// sequentially.
    pub fn run_shot_reusing(&self, shot: u64, scratch: &mut WorkerScratch) -> ShotSummary {
        let seed = shot_seed(self.base_seed, shot);
        // Distinct derived streams for the backend and the machine's DAQ
        // jitter so the two never correlate.
        let qpu = self.factory.create(seed);
        let machine_seed = splitmix64(seed ^ 0x51AE_17E5);
        if self.step_mode == StepMode::Lowered && self.report_mode == ReportMode::Lean {
            let runner = scratch.runner_for(&self.job);
            let outcome = runner.run_shot(qpu, machine_seed, self.cycle_limit);
            let summary = ShotSummary {
                shot,
                seed,
                cycles: outcome.cycles,
                execution_time_ns: outcome.execution_time_ns(),
                stop: outcome.stop,
                issued: outcome.issued_ops,
                late_issues: outcome.late_issues,
                late_cycles: outcome.late_cycles,
                violations: outcome.violations,
                awg_violations: outcome.awg_violations,
                daq_contended: outcome.daq_contended,
                per_qubit: digest_measurements(self.job.num_qubits(), outcome.measurements),
            };
            self.obs.record(&summary);
            return summary;
        }
        let report = self
            .job
            .shot(qpu, machine_seed)
            .report_mode(self.report_mode)
            .run_with_mode(self.step_mode, self.cycle_limit);
        let summary = ShotSummary {
            shot,
            seed,
            cycles: report.cycles,
            execution_time_ns: report.execution_time_ns(),
            stop: report.stop,
            issued: report.issued_ops,
            late_issues: report.stats.late_issues,
            late_cycles: report.stats.late_cycles,
            violations: report.violations.len() as u64,
            awg_violations: report.awg_violations.len() as u64,
            daq_contended: report.stats.daq_contended_results,
            per_qubit: digest_measurements(self.job.num_qubits(), &report.measurements),
        };
        self.obs.record(&summary);
        summary
    }

    /// Runs `shots` shots and aggregates them in shot order.
    ///
    /// Work is distributed dynamically (an atomic shot counter), but the
    /// aggregate folds summaries sorted by shot index, so the result is
    /// bit-identical for any thread count.
    pub fn run(&self, shots: u64) -> BatchReport {
        let start = Instant::now();
        let threads = self.effective_threads(shots);
        let summaries: Vec<ShotSummary> = if threads <= 1 {
            let mut scratch = WorkerScratch::new();
            (0..shots)
                .map(|i| self.run_shot_reusing(i, &mut scratch))
                .collect()
        } else {
            let next = AtomicU64::new(0);
            let mut buckets: Vec<Vec<ShotSummary>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            let mut scratch = WorkerScratch::new();
                            loop {
                                let shot = next.fetch_add(1, Ordering::Relaxed);
                                if shot >= shots {
                                    break;
                                }
                                local.push(self.run_shot_reusing(shot, &mut scratch));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shot worker panicked"))
                    .collect()
            });
            let mut all: Vec<ShotSummary> = buckets.drain(..).flatten().collect();
            all.sort_unstable_by_key(|s| s.shot);
            all
        };
        let aggregate = BatchAggregate::from_summaries(self.base_seed, &summaries);
        BatchReport {
            aggregate,
            threads,
            wall_time: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QuapeConfig;
    use quape_qpu::MeasurementModel;

    fn tiny_job(seed: u64) -> CompiledJob {
        let program =
            quape_isa::assemble("0 H q0\n2 MEAS q0\n0 MEAS q1\nSTOP\n").expect("valid program");
        CompiledJob::compile(QuapeConfig::superscalar(4).with_seed(seed), program)
            .expect("job compiles")
    }

    fn coin_factory(job: &CompiledJob) -> BehavioralQpuFactory {
        BehavioralQpuFactory::new(
            job.cfg().timings,
            MeasurementModel::Bernoulli { p_one: 0.5 },
        )
    }

    #[test]
    fn shot_seeds_are_spread() {
        let a = shot_seed(1, 0);
        let b = shot_seed(1, 1);
        let c = shot_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn nearby_bases_do_not_permute_each_others_streams() {
        // With a raw `base ^ shot` derivation, bases 1 and 2 produce the
        // same seed *multiset* over shots 0..n (1^1 == 2^2 == 0), which
        // collides order-insensitive aggregates.
        let set = |base: u64| {
            let mut v: Vec<u64> = (0..64).map(|i| shot_seed(base, i)).collect();
            v.sort_unstable();
            v
        };
        assert_ne!(set(1), set(2));
        assert_ne!(set(0), set(1));
    }

    #[test]
    fn aggregate_counts_are_consistent() {
        let job = tiny_job(3);
        let factory = coin_factory(&job);
        let report = ShotEngine::new(job, factory).threads(1).run(100);
        let agg = &report.aggregate;
        assert_eq!(agg.shots, 100);
        assert_eq!(agg.stops.completed, 100);
        assert_eq!(agg.qubits.len(), 2);
        for h in &agg.qubits {
            assert_eq!(h.zeros + h.ones, 100);
            assert_eq!(h.shots_measured, 100);
        }
        // A fair coin over 100 shots should not be degenerate.
        let p = agg.qubits[0].p_one().expect("measured");
        assert!((0.2..=0.8).contains(&p), "p_one = {p}");
        assert_eq!(agg.issued_total, 300);
    }

    #[test]
    fn thread_count_does_not_change_the_aggregate() {
        let job = tiny_job(9);
        let sequential = ShotEngine::new(job.clone(), coin_factory(&job))
            .threads(1)
            .run(64);
        let parallel = ShotEngine::new(job.clone(), coin_factory(&job))
            .threads(4)
            .run(64);
        assert_eq!(sequential.aggregate, parallel.aggregate);
        assert_eq!(parallel.threads, 4);
    }

    #[test]
    fn shot_quantum_api_reproduces_the_batch_aggregate() {
        // Running shots individually (in scrambled order) and folding the
        // sorted summaries is bit-identical to ShotEngine::run — the
        // contract the multi-tenant job service is built on.
        let job = tiny_job(11);
        let engine = ShotEngine::new(job.clone(), coin_factory(&job)).base_seed(42);
        let whole = engine.run(40);
        let mut summaries: Vec<ShotSummary> = (0..40).rev().map(|i| engine.run_shot(i)).collect();
        summaries.sort_unstable_by_key(|s| s.shot);
        let folded = BatchAggregate::from_summaries(42, &summaries);
        assert_eq!(whole.aggregate, folded);
    }

    #[test]
    fn base_seed_changes_outcomes() {
        let job = tiny_job(0);
        let a = ShotEngine::new(job.clone(), coin_factory(&job))
            .base_seed(1)
            .threads(1)
            .run(32);
        let b = ShotEngine::new(job.clone(), coin_factory(&job))
            .base_seed(2)
            .threads(1)
            .run(32);
        assert_ne!(a.aggregate.qubits, b.aggregate.qubits);
    }

    #[test]
    fn distribution_summary_ranks() {
        let d = DistributionSummary::from_values((1..=100).collect());
        assert_eq!(d.min, 1);
        assert_eq!(d.p50, 50);
        assert_eq!(d.p95, 95);
        assert_eq!(d.max, 100);
        assert!((d.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn state_vector_factory_runs_shots() {
        let program = quape_isa::assemble("0 X q0\n2 MEAS q0\nSTOP\n").expect("valid program");
        let job = CompiledJob::compile(QuapeConfig::superscalar(4), program).expect("job compiles");
        let factory = StateVectorQpuFactory {
            num_qubits: 1,
            timings: job.cfg().timings,
            noise: DepolarizingNoise {
                pauli_error_prob: 0.0,
            },
            readout: ReadoutError::default(),
        };
        let report = ShotEngine::new(job, factory).threads(2).run(16);
        let h = &report.aggregate.qubits[0];
        // Noiseless X then measure: every shot reads 1.
        assert_eq!(h.ones, 16);
        assert_eq!(h.zeros, 0);
    }
}
