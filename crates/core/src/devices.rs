//! Control-stack device models: measurement result registers, the DAQ
//! acquisition chain, the AWG bank, and the qubit→channel map.
//!
//! These mirror the boards of Fig. 9: the QCP sends codewords to AWGs to
//! trigger waveform generation and receives measurement results from DAQs,
//! which write the shared measurement result register file.

use quape_isa::{Gate1, Gate2, QuantumOp, Qubit};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One entry of the measurement result register file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MrrEntry {
    /// True once the DAQ has delivered a result not yet superseded by a
    /// newer measurement.
    pub valid: bool,
    /// The classical outcome bit.
    pub value: bool,
}

/// The measurement result register file, written by the DAQ and readable
/// by every processor (processors only read it, so sharing is safe —
/// §5.2.4). Registers live in a flat, qubit-indexed table: reads are a
/// bounds-checked load, which matters because both the FMR retry path and
/// the event-driven skip check consult the file on their hottest cycles.
#[derive(Debug, Clone, Default)]
pub struct MeasurementFile {
    entries: Vec<MrrEntry>,
}

impl MeasurementFile {
    /// Creates an empty file (all registers invalid).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the register of `qubit`.
    pub fn read(&self, qubit: Qubit) -> MrrEntry {
        self.entries
            .get(qubit.index() as usize)
            .copied()
            .unwrap_or_default()
    }

    /// True if a valid result is available for `qubit`.
    pub fn is_valid(&self, qubit: Qubit) -> bool {
        self.read(qubit).valid
    }

    fn slot(&mut self, qubit: Qubit) -> &mut MrrEntry {
        let i = qubit.index() as usize;
        if i >= self.entries.len() {
            self.entries.resize(i + 1, MrrEntry::default());
        }
        &mut self.entries[i]
    }

    /// Invalidates the register (a new measurement has been issued).
    pub fn invalidate(&mut self, qubit: Qubit) {
        *self.slot(qubit) = MrrEntry::default();
    }

    /// DAQ write path: stores a delivered result and marks it valid.
    pub fn deliver(&mut self, qubit: Qubit, value: bool) {
        *self.slot(qubit) = MrrEntry { valid: true, value };
    }
}

/// A measurement result travelling through the acquisition chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingResult {
    /// Qubit being read out.
    pub qubit: Qubit,
    /// The sampled outcome, known to the simulator but not yet to the QCP.
    pub value: bool,
    /// Absolute time at which the result reaches the result register.
    pub deliver_at_ns: u64,
}

/// The DAQ model: demodulation + integration + thresholding latency with a
/// non-deterministic jitter component (the Stage I/II uncertainty of §2.4).
#[derive(Debug, Clone, Default)]
pub struct Daq {
    pending: VecDeque<PendingResult>,
    delivered: usize,
}

impl Daq {
    /// Creates an idle DAQ.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a result for future delivery.
    pub fn schedule(&mut self, result: PendingResult) {
        // Binary search for the insertion point; `<=` keeps equal delivery
        // times in FIFO order (a new result lands after existing ties).
        let pos = self
            .pending
            .partition_point(|p| p.deliver_at_ns <= result.deliver_at_ns);
        self.pending.insert(pos, result);
    }

    /// Delivers every result due at `now_ns` into the register file.
    pub fn tick(&mut self, now_ns: u64, mrr: &mut MeasurementFile) {
        while let Some(front) = self.pending.front() {
            if front.deliver_at_ns > now_ns {
                break;
            }
            let r = self.pending.pop_front().expect("checked front");
            mrr.deliver(r.qubit, r.value);
            self.delivered += 1;
        }
    }

    /// Number of results still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Delivery time of the earliest in-flight result, if any — the DAQ's
    /// contribution to the event-driven run loop's horizon.
    pub fn next_delivery_ns(&self) -> Option<u64> {
        self.pending.front().map(|p| p.deliver_at_ns)
    }

    /// Total results delivered so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }
}

/// The analog channels assigned to one qubit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QubitChannels {
    /// Microwave (XY drive) channel.
    pub microwave: u16,
    /// Flux (Z / two-qubit) channel.
    pub flux: u16,
    /// Readout channel.
    pub readout: u16,
}

/// Static map from qubits to analog channels (hard-coded connection
/// information, as in the paper's experimental setup: 38 channels for 10
/// qubits).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelMap {
    num_qubits: u16,
}

impl ChannelMap {
    /// Standard layout: qubit q drives microwave channel `2q`, flux
    /// channel `2q+1`, and readout channel `2·num_qubits + q`.
    pub fn linear(num_qubits: u16) -> Self {
        ChannelMap { num_qubits }
    }

    /// Channels of one qubit.
    pub fn channels(&self, q: Qubit) -> QubitChannels {
        QubitChannels {
            microwave: 2 * q.index(),
            flux: 2 * q.index() + 1,
            readout: 2 * self.num_qubits + q.index(),
        }
    }

    /// Total number of analog channels in the setup.
    pub fn channel_count(&self) -> u16 {
        3 * self.num_qubits
    }
}

/// A codeword sent from the QCP to an AWG/DAQ board: the trigger for one
/// pre-loaded waveform on one analog channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Codeword {
    /// Absolute trigger time.
    pub time_ns: u64,
    /// Analog channel index.
    pub channel: u16,
    /// Waveform-table index encoding the pulse shape.
    pub waveform: u16,
}

/// The AWG bank: records every codeword it is asked to play.
#[derive(Debug, Clone, Default)]
pub struct AwgBank {
    codewords: Vec<Codeword>,
}

/// Derives a stable waveform-table index for an operation.
fn waveform_id(op: &QuantumOp) -> u16 {
    match op {
        QuantumOp::Gate1(g, _) => match g {
            Gate1::I => 0,
            Gate1::X => 1,
            Gate1::Y => 2,
            Gate1::Z => 3,
            Gate1::H => 4,
            Gate1::S => 5,
            Gate1::Sdg => 6,
            Gate1::T => 7,
            Gate1::Tdg => 8,
            Gate1::X90 => 9,
            Gate1::Xm90 => 10,
            Gate1::Y90 => 11,
            Gate1::Ym90 => 12,
            Gate1::Reset => 13,
            Gate1::Rx(a) => 100 + a.index() as u16,
            Gate1::Ry(a) => 200 + a.index() as u16,
            Gate1::Rz(a) => 300 + a.index() as u16,
        },
        QuantumOp::Gate2(Gate2::Cnot, ..) => 20,
        QuantumOp::Gate2(Gate2::Cz, ..) => 21,
        QuantumOp::Gate2(Gate2::Swap, ..) => 22,
        QuantumOp::Measure(_) => 30,
    }
}

impl AwgBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits the codeword(s) for one operation: microwave channel for
    /// single-qubit gates, flux channels of both qubits for two-qubit
    /// gates, readout channel for measurements.
    pub fn emit(&mut self, map: &ChannelMap, time_ns: u64, op: &QuantumOp) {
        let wf = waveform_id(op);
        match op {
            QuantumOp::Gate1(_, q) => {
                self.codewords.push(Codeword {
                    time_ns,
                    channel: map.channels(*q).microwave,
                    waveform: wf,
                });
            }
            QuantumOp::Gate2(_, a, b) => {
                self.codewords.push(Codeword {
                    time_ns,
                    channel: map.channels(*a).flux,
                    waveform: wf,
                });
                self.codewords.push(Codeword {
                    time_ns,
                    channel: map.channels(*b).flux,
                    waveform: wf,
                });
            }
            QuantumOp::Measure(q) => {
                self.codewords.push(Codeword {
                    time_ns,
                    channel: map.channels(*q).readout,
                    waveform: wf,
                });
            }
        }
    }

    /// All codewords in emission order.
    pub fn codewords(&self) -> &[Codeword] {
        &self.codewords
    }

    /// Codewords played on one channel.
    pub fn on_channel(&self, channel: u16) -> impl Iterator<Item = &Codeword> {
        self.codewords.iter().filter(move |c| c.channel == channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u16) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn mrr_lifecycle() {
        let mut mrr = MeasurementFile::new();
        assert!(!mrr.is_valid(q(3)));
        mrr.deliver(q(3), true);
        assert!(mrr.is_valid(q(3)));
        assert!(mrr.read(q(3)).value);
        mrr.invalidate(q(3));
        assert!(!mrr.is_valid(q(3)));
    }

    #[test]
    fn daq_delivers_in_time_order() {
        let mut daq = Daq::new();
        let mut mrr = MeasurementFile::new();
        daq.schedule(PendingResult {
            qubit: q(0),
            value: true,
            deliver_at_ns: 500,
        });
        daq.schedule(PendingResult {
            qubit: q(1),
            value: false,
            deliver_at_ns: 300,
        });
        daq.tick(299, &mut mrr);
        assert_eq!(daq.in_flight(), 2);
        daq.tick(300, &mut mrr);
        assert!(mrr.is_valid(q(1)));
        assert!(!mrr.is_valid(q(0)));
        daq.tick(1000, &mut mrr);
        assert!(mrr.is_valid(q(0)));
        assert_eq!(daq.delivered(), 2);
        assert_eq!(daq.in_flight(), 0);
    }

    #[test]
    fn daq_equal_delivery_times_stay_fifo() {
        let mut daq = Daq::new();
        // Three results due at the same instant, interleaved with others:
        // delivery into the MRR must preserve their scheduling order (the
        // last write wins per qubit, so order is observable).
        for (qubit, value, at) in [
            (q(0), false, 400),
            (q(7), true, 200),
            (q(0), true, 400),
            (q(9), true, 600),
            (q(0), false, 400),
        ] {
            daq.schedule(PendingResult {
                qubit,
                value,
                deliver_at_ns: at,
            });
        }
        assert_eq!(daq.next_delivery_ns(), Some(200));
        let mut mrr = MeasurementFile::new();
        daq.tick(400, &mut mrr);
        // FIFO among the 400 ns ties: false, true, false — last is false.
        assert!(!mrr.read(q(0)).value);
        assert_eq!(daq.next_delivery_ns(), Some(600));
        daq.tick(600, &mut mrr);
        assert_eq!(daq.next_delivery_ns(), None);
    }

    #[test]
    fn channel_map_is_injective() {
        let map = ChannelMap::linear(10);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10 {
            let ch = map.channels(q(i));
            assert!(seen.insert(ch.microwave));
            assert!(seen.insert(ch.flux));
            assert!(seen.insert(ch.readout));
        }
        assert_eq!(seen.len() as u16, map.channel_count());
    }

    #[test]
    fn awg_routes_ops_to_channels() {
        let map = ChannelMap::linear(4);
        let mut awg = AwgBank::new();
        awg.emit(&map, 0, &QuantumOp::Gate1(Gate1::H, q(0)));
        awg.emit(&map, 20, &QuantumOp::Gate2(Gate2::Cz, q(0), q(1)));
        awg.emit(&map, 60, &QuantumOp::Measure(q(1)));
        assert_eq!(awg.codewords().len(), 4); // 1 + 2 + 1
        assert_eq!(awg.on_channel(map.channels(q(0)).microwave).count(), 1);
        assert_eq!(awg.on_channel(map.channels(q(0)).flux).count(), 1);
        assert_eq!(awg.on_channel(map.channels(q(1)).flux).count(), 1);
        assert_eq!(awg.on_channel(map.channels(q(1)).readout).count(), 1);
    }

    #[test]
    fn rotation_waveforms_distinct_per_angle() {
        use quape_isa::Angle;
        let a = waveform_id(&QuantumOp::Gate1(Gate1::Rx(Angle::new(1)), q(0)));
        let b = waveform_id(&QuantumOp::Gate1(Gate1::Rx(Angle::new(2)), q(0)));
        assert_ne!(a, b);
    }
}
