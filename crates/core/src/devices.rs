//! Control-stack device models: measurement result registers, the DAQ
//! acquisition chain, the AWG bank, and the qubit→channel map.
//!
//! These mirror the boards of Fig. 9: the QCP sends codewords to AWGs to
//! trigger waveform generation and receives measurement results from DAQs,
//! which write the shared measurement result register file.
//!
//! Both analog devices are **event-timeline** models. The AWG bank keeps
//! per-channel occupancy and a queue of in-flight playbacks so timing
//! violations (a trigger arriving while the channel's previous waveform is
//! still playing, or while the target qubit is still busy) are caught *at
//! the device*, and exposes [`AwgBank::next_event_ns`] as an event horizon
//! for the time-skip run loop. The DAQ runs a bounded number of demod
//! servers per readout channel, so acquisition contention on a multiplexed
//! readout line delays delivery instead of being assumed away.

use quape_isa::{OpTimings, QuantumOp, Qubit};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default number of concurrent demodulation servers per readout channel
/// (see [`crate::QuapeConfig::daq_demod_slots`]).
pub(crate) const DEFAULT_DEMOD_SLOTS: usize = 4;

/// One entry of the measurement result register file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MrrEntry {
    /// True once the DAQ has delivered a result not yet superseded by a
    /// newer measurement.
    pub valid: bool,
    /// The classical outcome bit.
    pub value: bool,
}

/// The measurement result register file, written by the DAQ and readable
/// by every processor (processors only read it, so sharing is safe —
/// §5.2.4). Registers live in a flat, qubit-indexed table: reads are a
/// bounds-checked load, which matters because both the FMR retry path and
/// the event-driven skip check consult the file on their hottest cycles.
#[derive(Debug, Clone, Default)]
pub struct MeasurementFile {
    entries: Vec<MrrEntry>,
}

impl MeasurementFile {
    /// Creates an empty file (all registers invalid).
    pub fn new() -> Self {
        Self::default()
    }

    /// Invalidates every register in place, keeping the table allocation
    /// (the arena-reuse twin of `MeasurementFile::new`).
    pub fn reset(&mut self) {
        self.entries.fill(MrrEntry::default());
    }

    /// Reads the register of `qubit`.
    pub fn read(&self, qubit: Qubit) -> MrrEntry {
        self.entries
            .get(qubit.index() as usize)
            .copied()
            .unwrap_or_default()
    }

    /// True if a valid result is available for `qubit`.
    pub fn is_valid(&self, qubit: Qubit) -> bool {
        self.read(qubit).valid
    }

    fn slot(&mut self, qubit: Qubit) -> &mut MrrEntry {
        let i = qubit.index() as usize;
        if i >= self.entries.len() {
            self.entries.resize(i + 1, MrrEntry::default());
        }
        &mut self.entries[i]
    }

    /// Invalidates the register (a new measurement has been issued).
    pub fn invalidate(&mut self, qubit: Qubit) {
        *self.slot(qubit) = MrrEntry::default();
    }

    /// DAQ write path: stores a delivered result and marks it valid.
    pub fn deliver(&mut self, qubit: Qubit, value: bool) {
        *self.slot(qubit) = MrrEntry { valid: true, value };
    }
}

/// A measurement result travelling through the acquisition chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingResult {
    /// Qubit being read out.
    pub qubit: Qubit,
    /// The sampled outcome, known to the simulator but not yet to the QCP.
    pub value: bool,
    /// Absolute time at which the result reaches the result register.
    pub deliver_at_ns: u64,
}

/// The DAQ model: demodulation + integration + thresholding latency with a
/// non-deterministic jitter component (the Stage I/II uncertainty of §2.4),
/// served by a **bounded pool of demod servers per readout channel**. When
/// every server of a channel is still integrating a previous readout, a new
/// result waits for the earliest server to free up — its delivery into the
/// result register is pushed back by the contention, and the delay is
/// accounted in [`Daq::contended_results`] / [`Daq::contention_delay_ns`].
#[derive(Debug, Clone)]
pub struct Daq {
    pending: VecDeque<PendingResult>,
    demod_slots: usize,
    /// Per readout channel: delivery times of in-flight demod jobs
    /// (at most `demod_slots` entries survive a [`Daq::schedule_readout`]).
    servers: Vec<Vec<u64>>,
    delivered: usize,
    contended_results: u64,
    contention_delay_ns: u64,
}

impl Default for Daq {
    fn default() -> Self {
        Self::new(DEFAULT_DEMOD_SLOTS)
    }
}

impl Daq {
    /// Creates an idle DAQ with `demod_slots` concurrent demodulation
    /// servers per readout channel (must be ≥ 1).
    pub fn new(demod_slots: usize) -> Self {
        Daq {
            pending: VecDeque::new(),
            demod_slots: demod_slots.max(1),
            servers: Vec::new(),
            delivered: 0,
            contended_results: 0,
            contention_delay_ns: 0,
        }
    }

    /// Returns the DAQ to its just-constructed state, keeping the queue
    /// and per-channel server allocations (the arena-reuse twin of
    /// [`Daq::new`]).
    pub fn reset(&mut self) {
        self.pending.clear();
        for servers in &mut self.servers {
            servers.clear();
        }
        self.delivered = 0;
        self.contended_results = 0;
        self.contention_delay_ns = 0;
    }

    /// Enqueues a result for delivery at an explicit time, bypassing the
    /// demod-server model (raw acquisition-chain injection).
    pub fn schedule(&mut self, result: PendingResult) {
        // Binary search for the insertion point; `<=` keeps equal delivery
        // times in FIFO order (a new result lands after existing ties).
        let pos = self
            .pending
            .partition_point(|p| p.deliver_at_ns <= result.deliver_at_ns);
        self.pending.insert(pos, result);
    }

    /// Routes a readout through the demod pipeline of `channel`: the
    /// readout pulse ends at `ready_ns`, demodulation + integration +
    /// thresholding take `demod_ns`, and the result is delivered when a
    /// demod server has finished with it. With all of the channel's
    /// servers busy at `ready_ns`, demodulation starts when the earliest
    /// one frees up. Returns the delivery time.
    pub fn schedule_readout(
        &mut self,
        channel: u16,
        qubit: Qubit,
        value: bool,
        ready_ns: u64,
        demod_ns: u64,
    ) -> u64 {
        let ch = channel as usize;
        if ch >= self.servers.len() {
            self.servers.resize(ch + 1, Vec::new());
        }
        let servers = &mut self.servers[ch];
        // Servers whose previous job finished by `ready_ns` are free again.
        servers.retain(|&end| end > ready_ns);
        let start_ns = if servers.len() < self.demod_slots {
            ready_ns
        } else {
            // All servers busy: wait for the earliest to free up (ties
            // resolve to the first entry — deterministic).
            let (idx, &earliest) = servers
                .iter()
                .enumerate()
                .min_by_key(|&(_, &end)| end)
                .expect("servers non-empty when saturated");
            servers.swap_remove(idx);
            self.contended_results += 1;
            self.contention_delay_ns += earliest - ready_ns;
            earliest
        };
        let deliver_at_ns = start_ns + demod_ns;
        servers.push(deliver_at_ns);
        self.schedule(PendingResult {
            qubit,
            value,
            deliver_at_ns,
        });
        deliver_at_ns
    }

    /// Delivers every result due at `now_ns` into the register file,
    /// returning how many were delivered (the run loops' progress hint).
    pub fn tick(&mut self, now_ns: u64, mrr: &mut MeasurementFile) -> usize {
        let mut n = 0;
        while let Some(front) = self.pending.front() {
            if front.deliver_at_ns > now_ns {
                break;
            }
            let r = self.pending.pop_front().expect("checked front");
            mrr.deliver(r.qubit, r.value);
            self.delivered += 1;
            n += 1;
        }
        n
    }

    /// Number of results still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Delivery time of the earliest in-flight result, if any — the DAQ's
    /// contribution to the event-driven run loop's horizon.
    pub fn next_delivery_ns(&self) -> Option<u64> {
        self.pending.front().map(|p| p.deliver_at_ns)
    }

    /// Total results delivered so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Results whose demodulation was delayed by server contention.
    pub fn contended_results(&self) -> u64 {
        self.contended_results
    }

    /// Total delivery delay caused by demod contention, in nanoseconds.
    pub fn contention_delay_ns(&self) -> u64 {
        self.contention_delay_ns
    }
}

/// The analog channels assigned to one qubit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QubitChannels {
    /// Microwave (XY drive) channel.
    pub microwave: u16,
    /// Flux (Z / two-qubit) channel.
    pub flux: u16,
    /// Readout channel.
    pub readout: u16,
}

/// Static map from qubits to analog channels (hard-coded connection
/// information, as in the paper's experimental setup, which wires 38
/// analog channels to a 10-qubit device).
///
/// Two layouts ship:
///
/// * [`ChannelMap::linear`] — one microwave, one flux, and one dedicated
///   readout channel per qubit (`3·n` channels);
/// * [`ChannelMap::multiplexed`] — dedicated microwave/flux channels but
///   frequency-multiplexed readout: `r` shared readout lines serve all
///   qubits (qubits congruent modulo `r` share a line), giving `2·n + r`
///   channels — e.g. the paper's 8 readout channels for 10 qubits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelMap {
    num_qubits: u16,
    readout_lines: u16,
}

impl ChannelMap {
    /// Dedicated-readout layout: qubit q drives microwave channel `2q`,
    /// flux channel `2q+1`, and its own readout channel
    /// `2·num_qubits + q`.
    pub fn linear(num_qubits: u16) -> Self {
        ChannelMap {
            num_qubits,
            readout_lines: num_qubits.max(1),
        }
    }

    /// Multiplexed-readout layout: microwave/flux as in
    /// [`ChannelMap::linear`], but only `readout_lines` readout channels;
    /// qubit q shares line `2·num_qubits + (q mod readout_lines)` with
    /// every qubit congruent to it. `readout_lines` is clamped to
    /// `1..=num_qubits`.
    pub fn multiplexed(num_qubits: u16, readout_lines: u16) -> Self {
        ChannelMap {
            num_qubits,
            readout_lines: readout_lines.clamp(1, num_qubits.max(1)),
        }
    }

    /// Channels of one qubit.
    pub fn channels(&self, q: Qubit) -> QubitChannels {
        QubitChannels {
            microwave: 2 * q.index(),
            flux: 2 * q.index() + 1,
            readout: 2 * self.num_qubits + q.index() % self.readout_lines,
        }
    }

    /// Number of shared readout lines.
    pub fn readout_lines(&self) -> u16 {
        self.readout_lines
    }

    /// Total number of analog channels in the setup.
    pub fn channel_count(&self) -> u16 {
        2 * self.num_qubits + self.readout_lines
    }
}

/// One waveform playback recorded by the AWG bank: the trigger (codeword)
/// plus the extent the waveform occupies its channel. This is the
/// event-timeline record [`crate::render_timeline`] streams from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaybackEvent {
    /// Analog channel the waveform plays on.
    pub channel: u16,
    /// Qubit the channel drives for this playback.
    pub qubit: Qubit,
    /// Trigger (start) time.
    pub start_ns: u64,
    /// Time the waveform finishes playing.
    pub end_ns: u64,
    /// Waveform-table index encoding the pulse shape.
    pub waveform: u16,
    /// The operation that produced the trigger.
    pub op: QuantumOp,
}

/// What kind of occupancy conflict the AWG bank detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AwgViolationKind {
    /// The trigger arrived while the channel's previous waveform was still
    /// playing: the AWG cannot start the new waveform on time (a late
    /// trigger at the device). On a multiplexed readout line this also
    /// catches contention between *different* qubits sharing the line.
    ChannelOverlap,
    /// The target qubit was still executing a previous operation (possibly
    /// on another of its channels) — the device-side twin of the QPU
    /// shadow occupancy model's [`quape_qpu::TimingViolation`].
    QubitOverlap,
}

/// A timing violation detected at the AWG bank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AwgViolation {
    /// Conflict kind.
    pub kind: AwgViolationKind,
    /// Channel the trigger addressed.
    pub channel: u16,
    /// Qubit the trigger drives.
    pub qubit: Qubit,
    /// Trigger time.
    pub time_ns: u64,
    /// When the conflicting resource would have been free.
    pub busy_until_ns: u64,
}

/// Derives a stable waveform-table index for an operation (the shared
/// table lives in `quape_isa` so the lowering pass bakes identical
/// codewords into micro-ops).
fn waveform_id(op: &QuantumOp) -> u16 {
    quape_isa::waveform_index(op)
}

/// The AWG bank as an event-timeline playback device.
///
/// Each emitted codeword becomes a [`PlaybackEvent`] with the waveform's
/// duration (from the [`OpTimings`] in force) resolved at emit time. The
/// bank tracks per-channel and per-qubit occupancy so overlap/late-trigger
/// conflicts are flagged **at the device** ([`AwgViolation`]), keeps the
/// in-flight playbacks in an end-time-ordered queue, and exposes the
/// earliest playback end as [`AwgBank::next_event_ns`] — the AWG's
/// contribution to the event-driven run loop's horizon.
#[derive(Debug, Clone)]
pub struct AwgBank {
    timings: OpTimings,
    /// Per-channel occupancy: when the channel's last waveform ends.
    channel_busy_until: Vec<u64>,
    /// Device-side per-qubit occupancy, mirroring the QPU shadow model.
    qubit_busy_until: Vec<u64>,
    /// End times of in-flight playbacks, ascending (FIFO among ties).
    active_ends: VecDeque<u64>,
    timeline: Vec<PlaybackEvent>,
    violations: Vec<AwgViolation>,
    retired: usize,
    max_concurrent: usize,
    record_timeline: bool,
    triggers: u64,
}

impl AwgBank {
    /// Creates an idle bank playing waveforms of the given durations.
    pub fn new(timings: OpTimings) -> Self {
        AwgBank {
            timings,
            channel_busy_until: Vec::new(),
            qubit_busy_until: Vec::new(),
            active_ends: VecDeque::new(),
            timeline: Vec::new(),
            violations: Vec::new(),
            retired: 0,
            max_concurrent: 0,
            record_timeline: true,
            triggers: 0,
        }
    }

    /// Enables or disables materialising the playback timeline
    /// (lean/summary-only mode for batch paths). Occupancy tracking,
    /// violation detection, the in-flight queue (and thus
    /// [`next_event_ns`](AwgBank::next_event_ns)) and the
    /// [`triggers`](AwgBank::triggers) counter are unaffected, so
    /// execution is bit-identical either way — only
    /// [`timeline`](AwgBank::timeline) stays empty.
    pub fn set_record_timeline(&mut self, record: bool) {
        self.record_timeline = record;
    }

    /// Waveform playbacks triggered so far (counted even when the
    /// timeline itself is not recorded).
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Returns the bank to its just-constructed state (same timings,
    /// same `record_timeline` setting), keeping the occupancy-table and
    /// queue allocations (the arena-reuse twin of [`AwgBank::new`]).
    pub fn reset(&mut self) {
        self.channel_busy_until.fill(0);
        self.qubit_busy_until.fill(0);
        self.active_ends.clear();
        self.timeline.clear();
        self.violations.clear();
        self.retired = 0;
        self.max_concurrent = 0;
        self.triggers = 0;
    }

    fn busy_slot(v: &mut Vec<u64>, i: usize) -> &mut u64 {
        if i >= v.len() {
            v.resize(i + 1, 0);
        }
        &mut v[i]
    }

    /// Records one playback on `(channel, qubit)` and runs both occupancy
    /// checks.
    fn play(&mut self, channel: u16, qubit: Qubit, time_ns: u64, waveform: u16, op: &QuantumOp) {
        let duration = self.timings.duration_of(op);
        self.play_with(channel, qubit, time_ns, waveform, duration, op);
    }

    /// [`AwgBank::play`] with the waveform duration pre-resolved — the
    /// lowered fast path passes the duration baked into the micro-op
    /// instead of re-deriving it from the operation per trigger.
    pub(crate) fn play_with(
        &mut self,
        channel: u16,
        qubit: Qubit,
        time_ns: u64,
        waveform: u16,
        duration: u64,
        op: &QuantumOp,
    ) {
        let end_ns = time_ns + duration;

        // Channel occupancy: the line itself must be free. A conflicting
        // trigger still plays immediately (the AWG cannot delay it), so
        // the recorded extent stays `time_ns..end_ns` and the line is
        // busy until the latest recorded end — keeping the violation
        // report, the playback timeline, and the skip horizon in
        // agreement about when the line actually frees up.
        let ch = Self::busy_slot(&mut self.channel_busy_until, channel as usize);
        if time_ns < *ch {
            self.violations.push(AwgViolation {
                kind: AwgViolationKind::ChannelOverlap,
                channel,
                qubit,
                time_ns,
                busy_until_ns: *ch,
            });
        }
        *ch = (*ch).max(end_ns);

        // Qubit occupancy: the device's shadow of the QPU model — same
        // push-back update rule as `BehavioralQpu::apply`, so the two
        // stay in lock step (this is deliberately *not* the channel
        // rule above: the shadow must reproduce the QPU bit for bit).
        let qb = Self::busy_slot(&mut self.qubit_busy_until, qubit.index() as usize);
        if time_ns < *qb {
            self.violations.push(AwgViolation {
                kind: AwgViolationKind::QubitOverlap,
                channel,
                qubit,
                time_ns,
                busy_until_ns: *qb,
            });
        }
        *qb = time_ns.max(*qb) + duration;

        self.triggers += 1;
        if self.record_timeline {
            self.timeline.push(PlaybackEvent {
                channel,
                qubit,
                start_ns: time_ns,
                end_ns,
                waveform,
                op: *op,
            });
        }
        // In-flight queue, ordered by end time (FIFO among ties).
        let pos = self.active_ends.partition_point(|&e| e <= end_ns);
        self.active_ends.insert(pos, end_ns);
        self.max_concurrent = self.max_concurrent.max(self.active_ends.len());
    }

    /// Emits the codeword(s) for one operation: microwave channel for
    /// single-qubit gates, flux channels of both qubits for two-qubit
    /// gates, readout channel for measurements.
    pub fn emit(&mut self, map: &ChannelMap, time_ns: u64, op: &QuantumOp) {
        let wf = waveform_id(op);
        match *op {
            QuantumOp::Gate1(_, q) => {
                self.play(map.channels(q).microwave, q, time_ns, wf, op);
            }
            QuantumOp::Gate2(_, a, b) => {
                self.play(map.channels(a).flux, a, time_ns, wf, op);
                self.play(map.channels(b).flux, b, time_ns, wf, op);
            }
            QuantumOp::Measure(q) => {
                self.play(map.channels(q).readout, q, time_ns, wf, op);
            }
        }
    }

    /// [`AwgBank::emit`] with the waveform codeword and duration
    /// pre-resolved (lowered fast path). Channel routing is identical:
    /// microwave for single-qubit gates, both flux channels for
    /// two-qubit gates, readout for measurements.
    pub(crate) fn emit_pre(
        &mut self,
        map: &ChannelMap,
        time_ns: u64,
        op: &QuantumOp,
        waveform: u16,
        dur_ns: u64,
    ) {
        match *op {
            QuantumOp::Gate1(_, q) => {
                self.play_with(map.channels(q).microwave, q, time_ns, waveform, dur_ns, op);
            }
            QuantumOp::Gate2(_, a, b) => {
                self.play_with(map.channels(a).flux, a, time_ns, waveform, dur_ns, op);
                self.play_with(map.channels(b).flux, b, time_ns, waveform, dur_ns, op);
            }
            QuantumOp::Measure(q) => {
                self.play_with(map.channels(q).readout, q, time_ns, waveform, dur_ns, op);
            }
        }
    }

    /// Retires every playback that has finished by `now_ns`; returns how
    /// many retired this tick.
    pub fn tick(&mut self, now_ns: u64) -> usize {
        let mut n = 0;
        while let Some(&end) = self.active_ends.front() {
            if end > now_ns {
                break;
            }
            self.active_ends.pop_front();
            n += 1;
        }
        self.retired += n;
        n
    }

    /// End time of the earliest in-flight playback, if any — the AWG's
    /// contribution to the event-driven run loop's horizon.
    pub fn next_event_ns(&self) -> Option<u64> {
        self.active_ends.front().copied()
    }

    /// Number of waveforms currently playing.
    pub fn playing(&self) -> usize {
        self.active_ends.len()
    }

    /// Playbacks retired so far.
    pub fn retired(&self) -> usize {
        self.retired
    }

    /// Highest number of simultaneously playing waveforms observed.
    pub fn max_concurrent(&self) -> usize {
        self.max_concurrent
    }

    /// When `channel`'s last triggered waveform ends (0 if never used).
    pub fn channel_busy_until(&self, channel: u16) -> u64 {
        self.channel_busy_until
            .get(channel as usize)
            .copied()
            .unwrap_or(0)
    }

    /// The device's view of when `qubit` becomes free (0 if never driven).
    pub fn qubit_busy_until(&self, qubit: Qubit) -> u64 {
        self.qubit_busy_until
            .get(qubit.index() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// The recorded playback timeline, in emission order.
    pub fn timeline(&self) -> &[PlaybackEvent] {
        &self.timeline
    }

    /// Violations detected so far.
    pub fn violations(&self) -> &[AwgViolation] {
        &self.violations
    }

    /// Playbacks recorded on one channel.
    pub fn on_channel(&self, channel: u16) -> impl Iterator<Item = &PlaybackEvent> {
        self.timeline.iter().filter(move |e| e.channel == channel)
    }

    /// Hands the timeline and violations over by value at end of shot,
    /// leaving the bank's buffers empty.
    pub fn take_results(&mut self) -> (Vec<PlaybackEvent>, Vec<AwgViolation>) {
        (
            std::mem::take(&mut self.timeline),
            std::mem::take(&mut self.violations),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_isa::{Gate1, Gate2};

    fn q(i: u16) -> Qubit {
        Qubit::new(i)
    }

    fn timings() -> OpTimings {
        OpTimings {
            single_qubit_ns: 20,
            two_qubit_ns: 40,
            readout_pulse_ns: 300,
        }
    }

    #[test]
    fn mrr_lifecycle() {
        let mut mrr = MeasurementFile::new();
        assert!(!mrr.is_valid(q(3)));
        mrr.deliver(q(3), true);
        assert!(mrr.is_valid(q(3)));
        assert!(mrr.read(q(3)).value);
        mrr.invalidate(q(3));
        assert!(!mrr.is_valid(q(3)));
    }

    #[test]
    fn daq_delivers_in_time_order() {
        let mut daq = Daq::default();
        let mut mrr = MeasurementFile::new();
        daq.schedule(PendingResult {
            qubit: q(0),
            value: true,
            deliver_at_ns: 500,
        });
        daq.schedule(PendingResult {
            qubit: q(1),
            value: false,
            deliver_at_ns: 300,
        });
        daq.tick(299, &mut mrr);
        assert_eq!(daq.in_flight(), 2);
        daq.tick(300, &mut mrr);
        assert!(mrr.is_valid(q(1)));
        assert!(!mrr.is_valid(q(0)));
        daq.tick(1000, &mut mrr);
        assert!(mrr.is_valid(q(0)));
        assert_eq!(daq.delivered(), 2);
        assert_eq!(daq.in_flight(), 0);
    }

    #[test]
    fn daq_equal_delivery_times_stay_fifo() {
        let mut daq = Daq::default();
        // Three results due at the same instant, interleaved with others:
        // delivery into the MRR must preserve their scheduling order (the
        // last write wins per qubit, so order is observable).
        for (qubit, value, at) in [
            (q(0), false, 400),
            (q(7), true, 200),
            (q(0), true, 400),
            (q(9), true, 600),
            (q(0), false, 400),
        ] {
            daq.schedule(PendingResult {
                qubit,
                value,
                deliver_at_ns: at,
            });
        }
        assert_eq!(daq.next_delivery_ns(), Some(200));
        let mut mrr = MeasurementFile::new();
        daq.tick(400, &mut mrr);
        // FIFO among the 400 ns ties: false, true, false — last is false.
        assert!(!mrr.read(q(0)).value);
        assert_eq!(daq.next_delivery_ns(), Some(600));
        daq.tick(600, &mut mrr);
        assert_eq!(daq.next_delivery_ns(), None);
    }

    #[test]
    fn daq_unsaturated_channel_delivers_at_nominal_time() {
        let mut daq = Daq::new(2);
        // Two overlapping readouts fit in the two servers: no delay.
        assert_eq!(daq.schedule_readout(5, q(0), false, 300, 100), 400);
        assert_eq!(daq.schedule_readout(5, q(1), true, 320, 100), 420);
        assert_eq!(daq.contended_results(), 0);
        assert_eq!(daq.contention_delay_ns(), 0);
    }

    #[test]
    fn daq_demod_contention_delays_delivery() {
        let mut daq = Daq::new(1);
        // Same readout line, second result ready while the single server
        // still integrates the first: it waits until 400, delivers at 500.
        assert_eq!(daq.schedule_readout(5, q(0), false, 300, 100), 400);
        assert_eq!(daq.schedule_readout(5, q(1), true, 320, 100), 500);
        assert_eq!(daq.contended_results(), 1);
        assert_eq!(daq.contention_delay_ns(), 80);
        // A different channel has its own servers: no contention.
        assert_eq!(daq.schedule_readout(6, q(2), true, 320, 100), 420);
        // After the first two finish, the line is free again.
        assert_eq!(daq.schedule_readout(5, q(0), false, 600, 100), 700);
        assert_eq!(daq.contended_results(), 1);
    }

    #[test]
    fn channel_map_is_injective() {
        let map = ChannelMap::linear(10);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10 {
            let ch = map.channels(q(i));
            assert!(seen.insert(ch.microwave));
            assert!(seen.insert(ch.flux));
            assert!(seen.insert(ch.readout));
        }
        assert_eq!(seen.len() as u16, map.channel_count());
    }

    #[test]
    fn linear_channel_count_is_three_per_qubit() {
        assert_eq!(ChannelMap::linear(10).channel_count(), 30);
        assert_eq!(ChannelMap::linear(2).channel_count(), 6);
    }

    #[test]
    fn multiplexed_channel_count_shares_readout_lines() {
        // The paper's setup: 10 qubits over 8 readout channels.
        let map = ChannelMap::multiplexed(10, 8);
        assert_eq!(map.readout_lines(), 8);
        assert_eq!(map.channel_count(), 28);
        // Qubits congruent mod 8 share a line; drive channels stay private.
        let a = map.channels(q(0));
        let b = map.channels(q(8));
        assert_eq!(a.readout, b.readout);
        assert_ne!(a.microwave, b.microwave);
        assert_ne!(a.flux, b.flux);
        assert_ne!(map.channels(q(1)).readout, a.readout);
        // Clamped: at least one line, at most one per qubit.
        assert_eq!(ChannelMap::multiplexed(4, 0).readout_lines(), 1);
        assert_eq!(ChannelMap::multiplexed(4, 9).readout_lines(), 4);
    }

    #[test]
    fn awg_routes_ops_to_channels() {
        let map = ChannelMap::linear(4);
        let mut awg = AwgBank::new(timings());
        awg.emit(&map, 0, &QuantumOp::Gate1(Gate1::H, q(0)));
        awg.emit(&map, 20, &QuantumOp::Gate2(Gate2::Cz, q(0), q(1)));
        awg.emit(&map, 60, &QuantumOp::Measure(q(1)));
        assert_eq!(awg.timeline().len(), 4); // 1 + 2 + 1
        assert_eq!(awg.on_channel(map.channels(q(0)).microwave).count(), 1);
        assert_eq!(awg.on_channel(map.channels(q(0)).flux).count(), 1);
        assert_eq!(awg.on_channel(map.channels(q(1)).flux).count(), 1);
        assert_eq!(awg.on_channel(map.channels(q(1)).readout).count(), 1);
        assert!(awg.violations().is_empty());
    }

    #[test]
    fn awg_records_durations_at_emit_time() {
        let map = ChannelMap::linear(2);
        let mut awg = AwgBank::new(timings());
        awg.emit(&map, 100, &QuantumOp::Measure(q(1)));
        let e = &awg.timeline()[0];
        assert_eq!(e.start_ns, 100);
        assert_eq!(e.end_ns, 400);
        assert_eq!(awg.channel_busy_until(map.channels(q(1)).readout), 400);
        assert_eq!(awg.qubit_busy_until(q(1)), 400);
        assert_eq!(awg.next_event_ns(), Some(400));
    }

    #[test]
    fn awg_flags_channel_and_qubit_overlap() {
        let map = ChannelMap::linear(2);
        let mut awg = AwgBank::new(timings());
        awg.emit(&map, 0, &QuantumOp::Gate1(Gate1::X, q(0)));
        // Same microwave channel retriggered 10 ns in: both the channel
        // and the qubit are still busy.
        awg.emit(&map, 10, &QuantumOp::Gate1(Gate1::Y, q(0)));
        let kinds: Vec<AwgViolationKind> = awg.violations().iter().map(|v| v.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AwgViolationKind::ChannelOverlap,
                AwgViolationKind::QubitOverlap
            ]
        );
        assert_eq!(awg.violations()[0].busy_until_ns, 20);
    }

    #[test]
    fn awg_qubit_overlap_without_channel_overlap() {
        // X on q0's microwave line, then CNOT on q0's *flux* line while
        // the qubit is still busy: the flux channel itself is free, so
        // only the qubit-occupancy check fires — exactly what the QPU
        // shadow model reports.
        let map = ChannelMap::linear(2);
        let mut awg = AwgBank::new(timings());
        awg.emit(&map, 0, &QuantumOp::Gate1(Gate1::X, q(0)));
        awg.emit(&map, 10, &QuantumOp::Gate2(Gate2::Cnot, q(0), q(1)));
        let kinds: Vec<AwgViolationKind> = awg.violations().iter().map(|v| v.kind).collect();
        assert_eq!(kinds, vec![AwgViolationKind::QubitOverlap]);
        assert_eq!(awg.violations()[0].qubit, q(0));
    }

    #[test]
    fn awg_multiplexed_readout_contention_is_channel_overlap() {
        // Two different qubits sharing one readout line, measured 100 ns
        // apart: no qubit overlaps, but the shared line is still playing
        // the first readout tone — a conflict only the device can see.
        let map = ChannelMap::multiplexed(4, 1);
        let mut awg = AwgBank::new(timings());
        awg.emit(&map, 0, &QuantumOp::Measure(q(0)));
        awg.emit(&map, 100, &QuantumOp::Measure(q(1)));
        let kinds: Vec<AwgViolationKind> = awg.violations().iter().map(|v| v.kind).collect();
        assert_eq!(kinds, vec![AwgViolationKind::ChannelOverlap]);
        assert_eq!(awg.violations()[0].qubit, q(1));
        assert_eq!(awg.violations()[0].busy_until_ns, 300);
    }

    #[test]
    fn awg_overlap_does_not_push_back_channel_occupancy() {
        // A conflicting trigger still plays on schedule, so the line is
        // busy until the latest recorded end (400 ns), not a pushed-back
        // 600 ns: the violation list, the playback timeline, and
        // `next_event_ns` must agree on when the line frees up.
        let map = ChannelMap::multiplexed(4, 1);
        let mut awg = AwgBank::new(timings());
        awg.emit(&map, 0, &QuantumOp::Measure(q(0)));
        awg.emit(&map, 100, &QuantumOp::Measure(q(1))); // overlap: plays 100..400
        assert_eq!(awg.violations().len(), 1);
        let line = map.channels(q(0)).readout;
        assert_eq!(awg.channel_busy_until(line), 400);
        assert_eq!(awg.timeline()[1].end_ns, 400);
        // A third readout after the recorded end is clean.
        awg.emit(&map, 450, &QuantumOp::Measure(q(2)));
        assert_eq!(awg.violations().len(), 1);
    }

    #[test]
    fn awg_tick_retires_finished_playbacks() {
        let map = ChannelMap::linear(2);
        let mut awg = AwgBank::new(timings());
        awg.emit(&map, 0, &QuantumOp::Gate1(Gate1::X, q(0))); // ends 20
        awg.emit(&map, 0, &QuantumOp::Measure(q(1))); // ends 300
        assert_eq!(awg.playing(), 2);
        assert_eq!(awg.max_concurrent(), 2);
        assert_eq!(awg.next_event_ns(), Some(20));
        assert_eq!(awg.tick(19), 0);
        assert_eq!(awg.tick(20), 1);
        assert_eq!(awg.playing(), 1);
        assert_eq!(awg.next_event_ns(), Some(300));
        assert_eq!(awg.tick(1000), 1);
        assert_eq!(awg.playing(), 0);
        assert_eq!(awg.retired(), 2);
        assert_eq!(awg.next_event_ns(), None);
    }

    #[test]
    fn rotation_waveforms_distinct_per_angle() {
        use quape_isa::Angle;
        let a = waveform_id(&QuantumOp::Gate1(Gate1::Rx(Angle::new(1)), q(0)));
        let b = waveform_id(&QuantumOp::Gate1(Gate1::Rx(Angle::new(2)), q(0)));
        assert_ne!(a, b);
    }
}
