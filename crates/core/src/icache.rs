//! Multi-bank private instruction cache (§5.2.3; the paper's prototype
//! is dual-bank).
//!
//! Each processor owns `n ≥ 2` cache banks: one holds the block in
//! execution, the others receive *prefetched* upcoming blocks. Switching
//! between banks takes only a few cycles, which is what makes fast block
//! switching possible. The bank count is a
//! [`QuapeConfig::icache_banks`](crate::QuapeConfig::icache_banks) knob;
//! with the default 2 the behavior is exactly the classic dual-bank
//! cache.

use quape_isa::{BlockId, Instruction};
use std::sync::Arc;

/// One cache bank: a shared, zero-copy view of a program block's
/// instruction words. Fills clone an `Arc` instead of copying the words,
/// so per-shot cache traffic is O(blocks started), not O(instructions),
/// and a free bank holds no allocation at all.
#[derive(Debug, Clone, Default)]
pub struct CacheBank {
    block: Option<BlockId>,
    base: u32,
    words: Option<Arc<[Instruction]>>,
}

impl CacheBank {
    /// The block resident in this bank.
    pub fn block(&self) -> Option<BlockId> {
        self.block
    }

    /// True if no block is resident.
    pub fn is_free(&self) -> bool {
        self.block.is_none()
    }

    /// Installs a fully fetched block (an O(1) handle clone).
    pub fn install(&mut self, block: BlockId, base: u32, words: Arc<[Instruction]>) {
        self.block = Some(block);
        self.base = base;
        self.words = Some(words);
    }

    /// Evicts the resident block.
    pub fn clear(&mut self) {
        self.block = None;
        self.base = 0;
        self.words = None;
    }

    /// Reads the instruction at absolute address `pc`, if resident.
    pub fn read(&self, pc: u32) -> Option<&Instruction> {
        if pc < self.base {
            return None;
        }
        self.words.as_ref()?.get((pc - self.base) as usize)
    }

    /// First address of the resident block.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// One-past-the-end address of the resident block.
    #[allow(dead_code)] // part of the cache API; exercised by tests
    pub fn end(&self) -> u32 {
        self.base + self.words.as_ref().map_or(0, |w| w.len()) as u32
    }
}

/// The multi-bank private instruction cache.
#[derive(Debug, Clone)]
pub struct PrivateICache {
    banks: Vec<CacheBank>,
    active: usize,
}

impl PrivateICache {
    /// Creates an empty cache with `banks` banks (min 2, enforced by
    /// [`QuapeConfig::validate`](crate::QuapeConfig::validate) upstream).
    pub fn new(banks: usize) -> Self {
        PrivateICache {
            banks: vec![CacheBank::default(); banks],
            active: 0,
        }
    }

    /// The bank currently feeding the fetch unit.
    pub fn active(&self) -> &CacheBank {
        &self.banks[self.active]
    }

    /// Index of a bank available for prefetching: the lowest-indexed free
    /// bank that is not active (with two banks: the inactive bank, when
    /// free — the classic dual-bank rule).
    pub fn free_bank(&self) -> Option<usize> {
        (0..self.banks.len()).find(|&i| i != self.active && self.banks[i].is_free())
    }

    /// The first non-active bank (the inactive bank of a dual-bank
    /// cache).
    #[allow(dead_code)] // part of the cache API; exercised by tests
    pub fn inactive(&self) -> &CacheBank {
        &self.banks[if self.active == 0 { 1 } else { 0 }]
    }

    /// Installs a block into `bank`.
    pub fn install(&mut self, bank: usize, block: BlockId, base: u32, words: Arc<[Instruction]>) {
        self.banks[bank].install(block, base, words);
    }

    /// Installs a block into the active bank (initial pre-task load).
    pub fn install_active(&mut self, block: BlockId, base: u32, words: Arc<[Instruction]>) {
        let a = self.active;
        self.banks[a].install(block, base, words);
    }

    /// Finds the bank holding `block`.
    pub fn bank_of(&self, block: BlockId) -> Option<usize> {
        self.banks.iter().position(|b| b.block() == Some(block))
    }

    /// Switches the fetch path to `bank` and frees the previous bank.
    pub fn switch_to(&mut self, bank: usize) {
        if bank != self.active {
            self.banks[self.active].clear();
            self.active = bank;
        }
    }

    /// Frees the active bank (block finished, nothing prefetched).
    pub fn retire_active(&mut self) {
        let a = self.active;
        self.banks[a].clear();
    }

    /// Fetches the instruction at `pc` from the active bank.
    pub fn fetch(&self, pc: u32) -> Option<&Instruction> {
        self.active().read(pc)
    }

    /// Evicts `block` from whichever bank holds it.
    pub fn evict(&mut self, block: BlockId) {
        for bank in &mut self.banks {
            if bank.block() == Some(block) {
                bank.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quape_isa::{ClassicalOp, Gate1, QuantumOp, Qubit};

    fn prog(n: usize) -> Arc<[Instruction]> {
        (0..n)
            .map(|i| {
                if i == n - 1 {
                    Instruction::Classical(ClassicalOp::Stop)
                } else {
                    Instruction::quantum(0, QuantumOp::Gate1(Gate1::H, Qubit::new(i as u16)))
                }
            })
            .collect()
    }

    #[test]
    fn read_respects_base_offset() {
        let mut c = PrivateICache::new(2);
        c.install_active(BlockId(0), 100, prog(5));
        assert!(c.fetch(99).is_none());
        assert!(c.fetch(100).is_some());
        assert!(c.fetch(104).is_some());
        assert!(c.fetch(105).is_none());
        assert_eq!(c.active().end(), 105);
    }

    #[test]
    fn prefetch_and_switch() {
        let mut c = PrivateICache::new(2);
        c.install_active(BlockId(0), 0, prog(3));
        let free = c.free_bank().expect("inactive bank free");
        c.install(free, BlockId(1), 3, prog(4));
        assert!(c.free_bank().is_none(), "both banks occupied");
        assert_eq!(c.bank_of(BlockId(1)), Some(free));
        c.switch_to(free);
        assert_eq!(c.active().block(), Some(BlockId(1)));
        assert!(c.fetch(3).is_some());
        // Old bank was freed by the switch.
        assert!(c.free_bank().is_some());
    }

    #[test]
    fn retire_frees_active() {
        let mut c = PrivateICache::new(2);
        c.install_active(BlockId(0), 0, prog(2));
        c.retire_active();
        assert!(c.active().is_free());
        assert!(c.fetch(0).is_none());
    }
}
