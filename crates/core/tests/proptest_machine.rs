//! Property tests for the machine: random straight-line programs always
//! terminate, issue exactly their quantum instructions, never lose
//! operations across configurations, and are deterministic under seeds.

use proptest::prelude::*;
use quape_core::{Machine, QuapeConfig, StopReason};
use quape_isa::{ClassicalOp, Gate1, Gate2, Program, QuantumOp, Qubit};
use quape_qpu::{BehavioralQpu, MeasurementModel};

#[derive(Debug, Clone)]
enum ProgOp {
    G1(u8, u16),
    G2(u16, u16),
    Meas(u16),
    Wait(u8),
}

fn arb_prog(num_qubits: u16) -> impl Strategy<Value = Vec<ProgOp>> {
    let op = prop_oneof![
        5 => (0u8..14, 0..num_qubits).prop_map(|(g, q)| ProgOp::G1(g, q)),
        3 => (0..num_qubits, 0..num_qubits).prop_map(|(a, b)| ProgOp::G2(a, b)),
        1 => (0..num_qubits).prop_map(ProgOp::Meas),
        1 => (1u8..30).prop_map(ProgOp::Wait),
    ];
    proptest::collection::vec(op, 1..80)
}

fn build(ops: &[ProgOp]) -> Program {
    let mut b = quape_isa::ProgramBuilder::new();
    for op in ops {
        match *op {
            ProgOp::G1(g, q) => {
                let gate = Gate1::FIXED[g as usize % Gate1::FIXED.len()];
                b.quantum(2, QuantumOp::Gate1(gate, Qubit::new(q)));
            }
            ProgOp::G2(a, bq) if a != bq => {
                b.quantum(
                    4,
                    QuantumOp::Gate2(Gate2::Cnot, Qubit::new(a), Qubit::new(bq)),
                );
            }
            ProgOp::G2(..) => {}
            ProgOp::Meas(q) => {
                b.quantum(2, QuantumOp::Measure(Qubit::new(q)));
            }
            ProgOp::Wait(c) => {
                b.push(ClassicalOp::Qwait {
                    cycles: quape_isa::Cycles::new(u32::from(c)),
                });
            }
        }
    }
    b.push(ClassicalOp::Stop);
    b.finish().expect("straight-line program is valid")
}

fn run(cfg: QuapeConfig, program: Program, seed: u64) -> quape_core::RunReport {
    let qpu = BehavioralQpu::new(
        cfg.timings,
        MeasurementModel::Bernoulli { p_one: 0.5 },
        seed,
    );
    Machine::new(cfg, program, Box::new(qpu))
        .expect("machine builds")
        .run_with_limit(500_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Straight-line programs always complete and issue exactly their
    /// quantum instruction count, on every configuration.
    #[test]
    fn straight_line_programs_complete(ops in arb_prog(8)) {
        let program = build(&ops);
        let expected = program.quantum_count();
        for cfg in [
            QuapeConfig::scalar_baseline(),
            QuapeConfig::superscalar(4),
            QuapeConfig::superscalar(8),
        ] {
            let report = run(cfg, program.clone(), 3);
            prop_assert_eq!(report.stop, StopReason::Completed);
            prop_assert_eq!(report.issued_count(), expected);
        }
    }

    /// Issue times are non-decreasing per qubit and the QPU sees ops in
    /// global time order.
    #[test]
    fn issue_times_are_monotone(ops in arb_prog(6)) {
        let program = build(&ops);
        let report = run(QuapeConfig::superscalar(8), program, 9);
        let times: Vec<u64> = report.issued.iter().map(|o| o.time_ns).collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }

    /// Equal seeds give identical runs; the superscalar never issues
    /// later than the scalar for the final operation.
    #[test]
    fn determinism_and_superscalar_no_slower(ops in arb_prog(6)) {
        let program = build(&ops);
        let a = run(QuapeConfig::superscalar(8), program.clone(), 42);
        let b = run(QuapeConfig::superscalar(8), program.clone(), 42);
        prop_assert_eq!(a.cycles, b.cycles);
        let a_times: Vec<u64> = a.issued.iter().map(|o| o.time_ns).collect();
        let b_times: Vec<u64> = b.issued.iter().map(|o| o.time_ns).collect();
        prop_assert_eq!(a_times, b_times);

        let scalar = run(QuapeConfig::scalar_baseline(), program, 42);
        let wide_end = a.issued.last().map_or(0, |o| o.time_ns);
        let scalar_end = scalar.issued.last().map_or(0, |o| o.time_ns);
        prop_assert!(
            wide_end <= scalar_end,
            "superscalar finished at {wide_end}, scalar at {scalar_end}"
        );
    }

    /// Encoding to binary and back never changes behaviour.
    #[test]
    fn binary_roundtrip_equivalence(ops in arb_prog(5)) {
        let program = build(&ops);
        let words = program.encode_all().expect("encodes");
        let decoded = Program::from_words(&words).expect("decodes");
        let a = run(QuapeConfig::superscalar(4), program, 7);
        let b = run(QuapeConfig::superscalar(4), decoded, 7);
        let at: Vec<(u64, String)> = a.issued.iter().map(|o| (o.time_ns, o.op.to_string())).collect();
        let bt: Vec<(u64, String)> = b.issued.iter().map(|o| (o.time_ns, o.op.to_string())).collect();
        prop_assert_eq!(at, bt);
    }
}

/// Random RUS-style loops terminate under a fair coin across seeds.
#[test]
fn random_feedback_loops_terminate() {
    for seed in 0..30u64 {
        let src = "top: 0 Y q0\n2 MEAS q0\nFMR r0, q0\nCMPI r0, 1\nBR EQ, top\nSTOP\n";
        let program = quape_isa::assemble(src).expect("valid");
        let report = run(QuapeConfig::uniprocessor().with_seed(seed), program, seed);
        assert_eq!(report.stop, StopReason::Completed, "seed {seed}");
    }
}
