//! Deterministic three-way executor equivalence suite.
//!
//! The machine has three executors over one microarchitecture model: the
//! cycle-stepped oracle (`StepMode::Cycle`), the event-driven time-skip
//! loop (`StepMode::EventDriven`), and the lowered micro-op fast path
//! (`StepMode::Lowered`). On every workload here — FMR feedback chains,
//! MRCE context switching, branch loops with live ALU state, multi-block
//! scheduling — all three must produce bit-identical [`RunReport`]s, and
//! the shot engine must produce bit-identical [`BatchAggregate`]s.

use quape_core::{
    BatchAggregate, CompiledJob, LoweredShotRunner, QuapeConfig, ReportMode, RunReport, ShotEngine,
    StepMode,
};
use quape_isa::{
    ClassicalOp, Cond, CondOp, Dependency, Gate1, Program, ProgramBuilder, QuantumOp, Qubit, Reg,
};
use quape_qpu::{BehavioralQpu, BehavioralQpuFactory, MeasurementModel};

/// Measure → FMR → conditional X, `rounds` times: the Stage I/II
/// synchronization-stall workload the lowered fast path targets.
fn fmr_chain(rounds: usize) -> Program {
    let mut b = ProgramBuilder::new();
    for r in 0..rounds {
        let q = (r % 2) as u16;
        b.quantum(2, QuantumOp::Measure(Qubit::new(q)));
        b.fmr(0, q);
        b.cmpi(0, 1);
        let skip = format!("skip{r}");
        b.br_to(Cond::Ne, &skip);
        b.quantum(0, QuantumOp::Gate1(Gate1::X, Qubit::new(q)));
        b.label(&skip);
    }
    b.push(ClassicalOp::Stop);
    b.finish().expect("valid fmr chain")
}

/// Measure → MRCE, `rounds` times: exercises the context store and the
/// 3-cycle fast context switch.
fn mrce_chain(rounds: usize) -> Program {
    let mut b = ProgramBuilder::new();
    for r in 0..rounds {
        let q = (r % 2) as u16;
        b.quantum(2, QuantumOp::Measure(Qubit::new(q)));
        b.push(ClassicalOp::Mrce {
            qubit: Qubit::new(q),
            target: Qubit::new(q),
            op_if_one: CondOp::X,
            op_if_zero: CondOp::None,
        });
    }
    b.push(ClassicalOp::Stop);
    b.finish().expect("valid mrce chain")
}

/// A backward-branching measurement loop with live counter state: taken
/// and untaken branches, ALU flags, and timeline re-anchoring all in one.
fn counted_loop(iterations: i16) -> Program {
    let mut b = ProgramBuilder::new();
    b.push(ClassicalOp::Ldi {
        rd: Reg::new(1),
        imm: iterations,
    });
    b.label("loop");
    b.quantum(2, QuantumOp::Measure(Qubit::new(0)));
    b.fmr(0, 0);
    b.cmpi(0, 1);
    b.br_to(Cond::Ne, "skip");
    b.quantum(0, QuantumOp::Gate1(Gate1::X, Qubit::new(0)));
    b.label("skip");
    b.push(ClassicalOp::Addi {
        rd: Reg::new(1),
        rs: Reg::new(1),
        imm: -1,
    });
    b.cmpi(1, 0);
    b.br_to(Cond::Ne, "loop");
    b.push(ClassicalOp::Stop);
    b.finish().expect("valid loop program")
}

/// Two priority blocks the scheduler distributes across processors, each
/// running its own feedback round.
fn two_blocks() -> Program {
    let mut b = ProgramBuilder::new();
    for (name, q) in [("left", 0u16), ("right", 1u16)] {
        b.begin_block(name, Dependency::Priority(0));
        b.quantum(0, QuantumOp::Gate1(Gate1::H, Qubit::new(q)));
        b.quantum(2, QuantumOp::Measure(Qubit::new(q)));
        b.push(ClassicalOp::Mrce {
            qubit: Qubit::new(q),
            target: Qubit::new(q),
            op_if_one: CondOp::X,
            op_if_zero: CondOp::None,
        });
        b.push(ClassicalOp::Stop);
        b.end_block();
    }
    b.finish().expect("valid two-block program")
}

fn run(job: &CompiledJob, mode: StepMode, seed: u64) -> RunReport {
    let qpu = BehavioralQpu::new(
        job.cfg().timings,
        MeasurementModel::Bernoulli { p_one: 0.5 },
        seed,
    );
    job.shot(Box::new(qpu), seed)
        .report_mode(ReportMode::Full)
        .run_with_mode(mode, 2_000_000)
}

fn workloads() -> Vec<(&'static str, Program)> {
    vec![
        ("fmr_chain", fmr_chain(24)),
        ("mrce_chain", mrce_chain(24)),
        ("counted_loop", counted_loop(8)),
        ("two_blocks", two_blocks()),
    ]
}

#[test]
fn all_three_step_modes_are_bit_identical() {
    for (label, program) in workloads() {
        for cfg in [QuapeConfig::uniprocessor(), QuapeConfig::superscalar(4)] {
            let job = CompiledJob::compile(cfg, program.clone()).expect("job compiles");
            for seed in [3, 17, 40] {
                let cycle = run(&job, StepMode::Cycle, seed);
                let event = run(&job, StepMode::EventDriven, seed);
                let lowered = run(&job, StepMode::Lowered, seed);
                assert!(cycle.issued_ops > 0, "{label}: trivial run");
                assert_eq!(cycle, event, "{label}/{seed}: event-driven diverged");
                assert_eq!(cycle, lowered, "{label}/{seed}: lowered diverged");
            }
        }
    }
}

#[test]
fn engine_batches_are_identical_across_step_modes() {
    for (label, program) in workloads() {
        let cfg = QuapeConfig::superscalar(4);
        let job = CompiledJob::compile(cfg.clone(), program).expect("job compiles");
        let factory =
            BehavioralQpuFactory::new(cfg.timings, MeasurementModel::Bernoulli { p_one: 0.5 });
        let batch = |mode: StepMode| -> BatchAggregate {
            ShotEngine::new(job.clone(), factory.clone())
                .base_seed(7)
                .threads(2)
                .step_mode(mode)
                .run(32)
                .aggregate
        };
        let cycle = batch(StepMode::Cycle);
        let event = batch(StepMode::EventDriven);
        let lowered = batch(StepMode::Lowered);
        assert_eq!(cycle, event, "{label}: event-driven batch diverged");
        assert_eq!(cycle, lowered, "{label}: lowered batch diverged");
    }
}

/// The arena reset must be indistinguishable from fresh construction:
/// pumping shots through one reused [`LoweredShotRunner`] yields the
/// same outcome, shot for shot, as building a fresh lean lowered
/// [`Shot`](quape_core::Shot) per seed — across every workload,
/// including multi-block scheduling where the reset has to rewind the
/// scheduler table and the icache banks.
#[test]
fn reused_runner_matches_fresh_shots() {
    for (label, program) in workloads() {
        for cfg in [QuapeConfig::uniprocessor(), QuapeConfig::superscalar(4)] {
            let job = CompiledJob::compile(cfg, program.clone()).expect("job compiles");
            let mut runner = LoweredShotRunner::new(job.clone());
            for seed in 0..12u64 {
                let qpu = || {
                    Box::new(BehavioralQpu::new(
                        job.cfg().timings,
                        MeasurementModel::Bernoulli { p_one: 0.5 },
                        seed,
                    ))
                };
                let fresh = job
                    .shot(qpu(), seed)
                    .report_mode(ReportMode::Lean)
                    .run_with_mode(StepMode::Lowered, 2_000_000);
                let reused = runner.run_shot(qpu(), seed, 2_000_000);
                assert_eq!(fresh.cycles, reused.cycles, "{label}/{seed}: cycles");
                assert_eq!(fresh.stop, reused.stop, "{label}/{seed}: stop");
                assert_eq!(
                    fresh.issued_ops, reused.issued_ops,
                    "{label}/{seed}: issued"
                );
                assert_eq!(
                    fresh.execution_time_ns(),
                    reused.execution_time_ns(),
                    "{label}/{seed}: execution time"
                );
                assert_eq!(
                    fresh.stats.late_issues, reused.late_issues,
                    "{label}/{seed}: late issues"
                );
                assert_eq!(
                    fresh.stats.late_cycles, reused.late_cycles,
                    "{label}/{seed}: late cycles"
                );
                assert_eq!(
                    fresh.violations.len() as u64,
                    reused.violations,
                    "{label}/{seed}: violations"
                );
                assert_eq!(
                    fresh.awg_violations.len() as u64,
                    reused.awg_violations,
                    "{label}/{seed}: awg violations"
                );
                assert_eq!(
                    fresh.stats.daq_contended_results, reused.daq_contended,
                    "{label}/{seed}: daq contention"
                );
                assert_eq!(
                    fresh.measurements,
                    reused.measurements.to_vec(),
                    "{label}/{seed}: measurements"
                );
            }
        }
    }
}

#[test]
fn compiled_jobs_share_a_stable_lowering() {
    let cfg = QuapeConfig::superscalar(4);
    let a = CompiledJob::compile(cfg.clone(), fmr_chain(8)).expect("compiles");
    let b = CompiledJob::compile(cfg, fmr_chain(8)).expect("compiles");
    assert_eq!(a.lowered().len(), a.program().len());
    assert_eq!(a.lowered().digest(), b.lowered().digest());
    // Cloning the job shares the lowering artifact, not a re-lowering.
    let c = a.clone();
    assert!(std::ptr::eq(a.lowered(), c.lowered()));
}
